//! Cache design-space exploration on the OLTP trace: one workload pass
//! feeding a grid of cache geometries, as the paper's Figure 4 sweep does.
//!
//! Run with: `cargo run --release --example cache_explorer [base|all]`

use codelayout::memsim::{CacheConfig, StreamFilter, SweepSink};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::OptimizationSet;

fn main() {
    let layout = std::env::args().nth(1).unwrap_or_else(|| "base".into());
    let set = OptimizationSet::paper_series()
        .into_iter()
        .find(|(n, _)| *n == layout)
        .map(|(_, s)| s)
        .unwrap_or_else(|| {
            eprintln!("unknown layout {layout}; use one of base/porder/chain/chain+split/chain+porder/all");
            std::process::exit(2);
        });

    let scenario = Scenario::quick();
    let study = build_study(&scenario);
    let image = study.image(set);

    // A 45-cell grid: sizes × line sizes × associativities, one pass.
    let mut configs = Vec::new();
    for &size_kb in &[16u64, 32, 64] {
        for &line in &[32u32, 64, 128] {
            for &ways in &[1u32, 2, 4] {
                configs.push(CacheConfig::new(size_kb * 1024, line, ways));
            }
        }
    }
    let mut sweep = SweepSink::new(configs, scenario.num_cpus, StreamFilter::UserOnly);
    let out = study.run_measured(&image, &study.base_kernel_image, &mut sweep);
    out.assert_correct();

    println!("layout: {layout}");
    println!(
        "{:>6} {:>6} {:>6} {:>10} {:>9}",
        "size", "line", "ways", "misses", "missrate"
    );
    for cell in sweep.results() {
        println!(
            "{:>5}K {:>5}B {:>6} {:>10} {:>8.2}%",
            cell.config.size_bytes / 1024,
            cell.config.line_bytes,
            cell.config.ways,
            cell.stats.misses,
            100.0 * cell.stats.miss_rate(),
        );
    }
}
