//! Cache design-space exploration on the OLTP trace: one workload pass
//! feeding a grid of cache geometries, as the paper's Figure 4 sweep does.
//!
//! Run with: `cargo run --release --example cache_explorer [base|all]`

use codelayout::memsim::{StreamFilter, SweepSink, SweepSpec};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::OptimizationSet;

fn main() {
    let layout = std::env::args().nth(1).unwrap_or_else(|| "base".into());
    let set = OptimizationSet::paper_series()
        .into_iter()
        .find(|(n, _)| *n == layout)
        .map(|(_, s)| s)
        .unwrap_or_else(|| {
            eprintln!("unknown layout {layout}; use one of base/porder/chain/chain+split/chain+porder/all");
            std::process::exit(2);
        });

    let scenario = Scenario::quick();
    let study = build_study(&scenario);
    let image = study.image(set);

    // A 27-cell grid: sizes × line sizes × associativities, one pass.
    let spec = SweepSpec::grid()
        .sizes_kb(&[16, 32, 64])
        .lines_b(&[32, 64, 128])
        .ways_each(&[1, 2, 4])
        .cpus(scenario.num_cpus)
        .filter(StreamFilter::UserOnly);
    let mut sweep = SweepSink::from_spec(&spec);
    let out = study.run_measured(&image, &study.base_kernel_image, &mut sweep);
    out.assert_correct();

    println!("layout: {layout}");
    println!(
        "{:>6} {:>6} {:>6} {:>10} {:>9}",
        "size", "line", "ways", "misses", "missrate"
    );
    for cell in sweep.results() {
        println!(
            "{:>5}K {:>5}B {:>6} {:>10} {:>8.2}%",
            cell.config.size_bytes / 1024,
            cell.config.line_bytes,
            cell.config.ways,
            cell.stats.misses,
            100.0 * cell.stats.miss_rate(),
        );
    }
}
