//! End-to-end OLTP study: generate the workload, profile, optimize, and
//! print the headline comparison the paper reports.
//!
//! Run with: `cargo run --release --example oltp_report [quick|sim|hw]`

use codelayout::memsim::{SequenceProfiler, StreamFilter, SweepSink, SweepSpec};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::OptimizationSet;
use codelayout::vm::TeeSink;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "quick".into());
    let scenario = match which.as_str() {
        "sim" => Scenario::paper_sim(),
        "hw" => Scenario::paper_hw(),
        _ => Scenario::quick(),
    };
    println!("building study ({which})…");
    let study = build_study(&scenario);
    let stats = study.app.program.stats();
    println!(
        "application: {} procedures, {} blocks, ~{} KB static text",
        stats.procs,
        stats.blocks,
        stats.body_instrs * 4 / 1024
    );

    let spec = SweepSpec::grid()
        .sizes_kb(&[32, 64, 128])
        .line_b(128)
        .ways(4)
        .cpus(scenario.num_cpus)
        .filter(StreamFilter::UserOnly);

    println!(
        "\n{:>14} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "layout", "32KB", "64KB", "128KB", "seq len", "txns"
    );
    for (name, set) in OptimizationSet::paper_series() {
        let image = study.image(set);
        let mut sweep = SweepSink::from_spec(&spec);
        let mut seq = SequenceProfiler::new(StreamFilter::UserOnly);
        let mut sink = TeeSink(&mut sweep, &mut seq);
        let out = study.run_measured(&image, &study.base_kernel_image, &mut sink);
        out.assert_correct();
        let misses: Vec<u64> = sweep.results().iter().map(|c| c.stats.misses).collect();
        let seq = seq.finish();
        println!(
            "{:>14} {:>10} {:>10} {:>10} {:>8.2} {:>9}",
            name,
            misses[0],
            misses[1],
            misses[2],
            seq.average_length(),
            out.invariants.history_count,
        );
    }
    println!("\nTPC-B invariants held for every layout (asserted).");
}
