//! Quickstart: build a small program, profile it, optimize its layout, and
//! compare instruction-cache misses.
//!
//! Run with: `cargo run --release --example quickstart`

use codelayout::ir::link::link;
use codelayout::ir::{BinOp, Cond, Layout, Operand, ProcBuilder, ProgramBuilder, Reg};
use codelayout::memsim::{AccessClass, CacheConfig, ICacheSim};
use codelayout::opt::{LayoutPipeline, OptimizationSet};
use codelayout::profile::PixieCollector;
use codelayout::vm::{Machine, MachineConfig, NullSink, RecordingSink, APP_TEXT_BASE};
use std::sync::Arc;

const N: Reg = Reg(1);
const ACC: Reg = Reg(2);
const TMP: Reg = Reg(3);

/// A toy "server": a loop that usually takes a hot path and rarely an
/// error path, calling a helper each iteration.
fn build_program() -> codelayout::ir::Program {
    let mut pb = ProgramBuilder::new("quickstart");
    let main = pb.declare_proc("main");
    let helper = pb.declare_proc("helper");

    let mut f = ProcBuilder::new();
    let head = f.entry();
    let hot = f.new_block();
    let cold = f.new_block();
    let tail = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.branch(Cond::Gt, N, Operand::Imm(0), hot, done);
    f.select(hot);
    // The hot path: arithmetic plus a call.
    f.work(TMP, 14).call(helper);
    f.bin_imm(BinOp::And, TMP, N, 0xFFF);
    f.branch(Cond::Gt, TMP, Operand::Imm(1 << 40), cold, tail); // never taken
    f.select(cold);
    // Inline error handling that never runs but occupies hot cache lines.
    f.work(TMP, 56);
    f.jump(tail);
    f.select(tail);
    f.bin_imm(BinOp::Sub, N, N, 1);
    f.jump(head);
    f.select(done);
    f.emit(ACC);
    f.halt();
    pb.define_proc(main, f).unwrap();

    let mut g = ProcBuilder::new();
    g.bin(BinOp::Add, ACC, ACC, N);
    g.work(Reg(4), 12);
    g.ret();
    pb.define_proc(helper, g).unwrap();

    pb.finish(main).unwrap()
}

fn miss_count(image: Arc<codelayout::ir::Image>, iters: i64) -> (u64, Vec<i64>) {
    let mut m = Machine::new(image, MachineConfig::default());
    m.set_reg(0, N, iters);
    let mut sink = RecordingSink::default();
    let report = m.run(&mut sink, 10_000_000);
    assert!(report.faults.is_empty());
    // Feed the fetch trace to a tiny direct-mapped cache.
    let mut cache = ICacheSim::new(CacheConfig::new(256, 64, 1));
    for rec in &sink.fetches {
        cache.access(rec.addr, AccessClass::from_kernel_flag(rec.kernel));
    }
    (cache.stats().misses, m.emitted(0).to_vec())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_program();

    // 1. Profile the natural layout (this is "running pixie").
    let base_image = Arc::new(link(&program, &Layout::natural(&program), APP_TEXT_BASE)?);
    let mut m = Machine::new(Arc::clone(&base_image), MachineConfig::default());
    m.set_reg(0, N, 1000);
    let mut pixie = PixieCollector::user(program.blocks.len());
    m.run_hooked(&mut NullSink, &mut pixie, 10_000_000);
    let profile = pixie.into_profile();

    // 2. Optimize the layout (this is "running Spike").
    let pipeline = LayoutPipeline::new(&program, &profile);
    let optimized = pipeline.build(OptimizationSet::ALL);
    let opt_image = Arc::new(link(&program, &optimized, APP_TEXT_BASE)?);

    // 3. Compare.
    let (base_misses, base_out) = miss_count(base_image, 1000);
    let (opt_misses, opt_out) = miss_count(opt_image, 1000);
    assert_eq!(base_out, opt_out, "layouts must preserve semantics");

    println!("I-cache misses (256B direct-mapped toy cache):");
    println!("  natural layout:   {base_misses}");
    println!("  optimized layout: {opt_misses}");
    println!(
        "  reduction:        {:.0}%",
        100.0 * (1.0 - opt_misses as f64 / base_misses as f64)
    );
    Ok(())
}
