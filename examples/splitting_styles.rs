//! Compares procedure-splitting styles on the OLTP workload:
//!
//! * fine-grain splitting + Pettis–Hansen (the paper's `all`),
//! * the Spike distribution's hot/cold splitting,
//! * the conflict-free-area (software trace cache) layout the paper
//!   rejected for OLTP.
//!
//! Run with: `cargo run --release --example splitting_styles`

use codelayout::ir::link::link;
use codelayout::memsim::{StreamFilter, SweepSink, SweepSpec};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::{cfa_layout, hot_cold_layout, LayoutPipeline, OptimizationSet};
use codelayout::vm::APP_TEXT_BASE;
use std::sync::Arc;

fn main() {
    let scenario = Scenario::quick();
    let study = build_study(&scenario);
    let pipeline = LayoutPipeline::new(&study.app.program, &study.profile);

    let (cfa, cfa_report) = cfa_layout(&study.app.program, &study.profile, 16 * 1024);
    let layouts = vec![
        ("base", pipeline.build(OptimizationSet::BASE)),
        ("fine-grain+PH (all)", pipeline.build(OptimizationSet::ALL)),
        (
            "hot/cold+PH",
            hot_cold_layout(&study.app.program, &study.profile),
        ),
        ("CFA (16KB reserved)", cfa),
    ];

    let spec = SweepSpec::grid()
        .sizes_kb(&[16, 32, 64])
        .line_b(128)
        .ways(2)
        .cpus(scenario.num_cpus)
        .filter(StreamFilter::UserOnly);

    println!("{:>22} {:>9} {:>9} {:>9}", "layout", "16KB", "32KB", "64KB");
    for (name, layout) in layouts {
        let image =
            Arc::new(link(&study.app.program, &layout, APP_TEXT_BASE).expect("layout links"));
        let mut sweep = SweepSink::from_spec(&spec);
        let out = study.run_measured(&image, &study.base_kernel_image, &mut sweep);
        out.assert_correct();
        let m: Vec<u64> = sweep.results().iter().map(|c| c.stats.misses).collect();
        println!("{:>22} {:>9} {:>9} {:>9}", name, m[0], m[1], m[2]);
    }
    println!(
        "\nCFA coverage: {}‰ of execution in the reserved area; traces covering 90% \
         of execution need {} KB (the paper found this footprint too large — same here).",
        cfa_report.coverage_permille,
        cfa_report.bytes_for_90pct / 1024,
    );
}
