//! Raw execution-tier throughput on a tight loop, without OLTP
//! scheduling in the way: `cargo run --release -p codelayout-vm
//! --example engine_bench`.

use codelayout_ir::link::link;
use codelayout_ir::{BinOp, Cond, Layout, MemSpace, Operand, ProcBuilder, ProgramBuilder, Reg};
use codelayout_vm::{Machine, MachineConfig, NullSink, VmEngine, APP_TEXT_BASE};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut pb = ProgramBuilder::new("spin");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let body = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.branch(Cond::Gt, Reg(1), Operand::Imm(0), body, done);
    f.select(body);
    // A representative mix: ALU chain, a private load+store, a shared rmw.
    f.imm(Reg(2), 3)
        .bin(BinOp::Add, Reg(3), Reg(3), Reg(2))
        .bin_imm(BinOp::Xor, Reg(4), Reg(3), 0x55)
        .store(Reg(4), Reg(6), 0, MemSpace::Private)
        .load(Reg(5), Reg(6), 0, MemSpace::Private)
        .bin(BinOp::Add, Reg(7), Reg(7), Reg(5))
        .atomic_rmw(BinOp::Add, Reg(8), Reg(0), 16, Reg(2), MemSpace::Shared)
        .bin_imm(BinOp::Sub, Reg(1), Reg(1), 1);
    f.jump(head);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let image = Arc::new(link(&p, &Layout::natural(&p), APP_TEXT_BASE).unwrap());

    let iters: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000_000);
    for engine in [VmEngine::Interp, VmEngine::Block] {
        let mut m = Machine::new(
            Arc::clone(&image),
            MachineConfig {
                engine,
                quantum: 100_000,
                ..MachineConfig::default()
            },
        );
        m.set_reg(0, Reg(1), iters);
        let t = Instant::now();
        let report = m.run(&mut NullSink, u64::MAX);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:>6}: {} instrs in {:.3}s = {:.1} M inst/s",
            format!("{engine:?}"),
            report.instructions,
            secs,
            report.instructions as f64 / secs / 1e6
        );
    }
}
