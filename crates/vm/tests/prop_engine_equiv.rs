//! Differential tests: the block-compiled tier must be observationally
//! identical to the interpreter oracle — same fetch/data record stream,
//! same hook event stream, same registers/memory/emitted values, same
//! stop and fault reasons, same scheduling — on random programs ×
//! layouts × quanta, including mid-block quantum expiry, blocking
//! syscalls and context-switch boundaries.

use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{
    BinOp, BlockId, Cond, Layout, MemSpace, Operand, ProcBuilder, ProcId, Program, ProgramBuilder,
    Reg,
};
use codelayout_vm::{
    ExecHook, Machine, MachineConfig, RecordingSink, RunReport, SyscallDef, VmEngine,
    APP_TEXT_BASE, KERNEL_TEXT_BASE,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Records every hook event with full payload, for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct HookLog(Vec<(u8, bool, u32, u32)>);

impl ExecHook for HookLog {
    fn block(&mut self, kernel: bool, block: BlockId) {
        self.0.push((0, kernel, block.0, 0));
    }
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        self.0.push((1, kernel, from.0, to.0));
    }
    fn call(&mut self, kernel: bool, from_block: BlockId, callee: ProcId) {
        self.0.push((2, kernel, from_block.0, callee.0));
    }
    fn tick(&mut self, kernel: bool, block: BlockId) {
        self.0.push((3, kernel, block.0, 0));
    }
}

/// Everything observable about a run.
#[derive(Debug, Clone, PartialEq)]
struct Observation {
    sink: (
        Vec<codelayout_vm::FetchRecord>,
        Vec<codelayout_vm::DataRecord>,
    ),
    hooks: Vec<(u8, bool, u32, u32)>,
    chunk_reports: Vec<RunReport>,
    emitted: Vec<Vec<i64>>,
    priv_sums: Vec<u64>,
    shared_sum: u64,
    states: Vec<(bool, u32, u32, u64, bool)>,
    dispatches: Vec<u64>,
    now: u64,
}

/// A kernel image plus its syscall table.
type KernelSpec = (Arc<codelayout_ir::Image>, Vec<(u16, SyscallDef)>);

struct RunSpec {
    app: Arc<codelayout_ir::Image>,
    kernel: Option<KernelSpec>,
    cfg: MachineConfig,
    /// `(pid, reg, value)` initial register seeds.
    seeds: Vec<(usize, Reg, i64)>,
    chunk: u64,
    fuel: u64,
}

fn observe(spec: &RunSpec, engine: VmEngine) -> Observation {
    let cfg = MachineConfig {
        engine,
        ..spec.cfg.clone()
    };
    let mut m = match &spec.kernel {
        Some((k, table)) => {
            Machine::with_kernel(Arc::clone(&spec.app), Arc::clone(k), table.clone(), cfg)
        }
        None => Machine::new(Arc::clone(&spec.app), cfg),
    };
    for &(pid, reg, v) in &spec.seeds {
        m.set_reg(pid, reg, v);
    }
    let mut sink = RecordingSink::default();
    let mut hooks = HookLog::default();
    let mut chunk_reports = Vec::new();
    while m.now() < spec.fuel && m.live_processes() > 0 {
        let before = m.now();
        let r = m.run_hooked(&mut sink, &mut hooks, spec.chunk);
        chunk_reports.push(r);
        if m.now() == before {
            break; // nothing runnable and nothing will wake
        }
    }
    Observation {
        sink: (sink.fetches, sink.data),
        hooks: hooks.0,
        chunk_reports,
        emitted: (0..m.num_processes())
            .map(|p| m.emitted(p).to_vec())
            .collect(),
        priv_sums: (0..m.num_processes())
            .map(|p| m.private_checksum(p))
            .collect(),
        shared_sum: m.shared_checksum(),
        states: (0..m.num_processes()).map(|p| m.process_state(p)).collect(),
        dispatches: m.dispatch_counts().to_vec(),
        now: m.now(),
    }
}

fn assert_engines_agree(spec: &RunSpec) {
    let interp = observe(spec, VmEngine::Interp);
    let block = observe(spec, VmEngine::Block);
    assert_eq!(
        interp.chunk_reports, block.chunk_reports,
        "per-chunk reports diverged"
    );
    assert_eq!(interp.hooks, block.hooks, "hook event streams diverged");
    assert_eq!(
        interp.sink.0.len(),
        block.sink.0.len(),
        "fetch counts diverged"
    );
    assert_eq!(interp.sink, block.sink, "sink record streams diverged");
    assert_eq!(interp.emitted, block.emitted, "emitted values diverged");
    assert_eq!(interp.priv_sums, block.priv_sums, "private memory diverged");
    assert_eq!(
        interp.shared_sum, block.shared_sum,
        "shared memory diverged"
    );
    assert_eq!(interp.states, block.states, "process states diverged");
    assert_eq!(
        interp.dispatches, block.dispatches,
        "dispatch counts diverged"
    );
    assert_eq!(interp.now, block.now, "clocks diverged");
    assert_eq!(interp, block, "observations diverged");
}

fn shuffled_layout(program: &Program, seed: u64) -> Layout {
    let mut order: Vec<BlockId> = Layout::natural(program).order;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    Layout { order }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (syscall-free) programs under random layouts, quanta and
    /// chunk sizes: small quanta force mid-block expiry and the
    /// compiled tier's single-step fallback; small chunks force many
    /// re-entries through the scheduler.
    #[test]
    fn random_programs_execute_identically(
        seed in 0u64..10_000,
        shuffle in 0u64..1_000,
        qi in 0usize..5,
        ci in 0usize..3,
        nprocs in 1usize..3,
    ) {
        let quantum = [1u64, 3, 7, 61, 10_000][qi];
        let chunk = [17u64, 4_096, 1_000_000][ci];
        let program = random_program(seed, &GenConfig::default());
        let layout = shuffled_layout(&program, shuffle);
        let app = Arc::new(link(&program, &layout, APP_TEXT_BASE).unwrap());
        let spec = RunSpec {
            app,
            kernel: None,
            cfg: MachineConfig {
                num_cpus: 1,
                processes_per_cpu: nprocs,
                quantum,
                ..MachineConfig::default()
            },
            seeds: vec![],
            chunk,
            fuel: 2_000_000,
        };
        assert_engines_agree(&spec);
    }
}

/// App: each process runs `r1` transactions; every transaction does a
/// straight-line burst of register work, private stores/loads, a shared
/// atomic, an emit, and a blocking syscall. Long straight-line blocks
/// make small quanta expire mid-block.
fn txn_app() -> Program {
    let mut pb = ProgramBuilder::new("txn");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let body = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.branch(Cond::Gt, Reg(1), Operand::Imm(0), body, done);
    f.select(body);
    // Straight-line burst (compiles to one long run).
    f.imm(Reg(2), 5)
        .bin(BinOp::Add, Reg(2), Reg(2), Reg(1))
        .imm(Reg(3), 9)
        .imm(Reg(6), 11)
        .bin(BinOp::Mul, Reg(3), Reg(3), Reg(2))
        .store(Reg(3), Reg(4), 0, MemSpace::Private)
        .load(Reg(5), Reg(4), 0, MemSpace::Private)
        .bin(BinOp::Add, Reg(5), Reg(5), Reg(6))
        .atomic_rmw(BinOp::Add, Reg(7), Reg(0), 64, Reg(2), MemSpace::Shared)
        .emit(Reg(5))
        .syscall(1)
        .emit(Reg(0))
        .bin_imm(BinOp::Sub, Reg(1), Reg(1), 1);
    f.jump(head);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();
    pb.finish(main).unwrap()
}

/// Kernel: a looping service handler (multi-block kernel code) plus a
/// scheduler procedure run on every context switch.
fn txn_kernel() -> Program {
    let mut pb = ProgramBuilder::new("txnk");
    let handler = pb.declare_proc("handler");
    let sched = pb.declare_proc("sched");

    let mut h = ProcBuilder::new();
    let top = h.entry();
    let body = h.new_block();
    let out = h.new_block();
    h.select(top);
    h.imm(Reg(2), 3).imm(Reg(4), 100);
    h.jump(body);
    h.select(body);
    h.store(Reg(2), Reg(4), 0, MemSpace::Shared)
        .bin_imm(BinOp::Add, Reg(4), Reg(4), 1)
        .bin_imm(BinOp::Sub, Reg(2), Reg(2), 1);
    h.branch(Cond::Gt, Reg(2), Operand::Imm(0), body, out);
    h.select(out);
    h.imm(Reg(0), 7);
    h.ret();
    pb.define_proc(handler, h).unwrap();

    let mut s = ProcBuilder::new();
    s.imm(Reg(5), 1)
        .atomic_rmw(BinOp::Add, Reg(6), Reg(5), 200, Reg(5), MemSpace::Shared);
    s.ret();
    pb.define_proc(sched, s).unwrap();

    pb.finish(handler).unwrap()
}

/// Blocking syscalls + kernel scheduler + register banking + context
/// switches, swept over quanta that expire at every possible point
/// (including mid-run and exactly at run boundaries).
#[test]
fn kernel_syscall_scheduling_identical_across_engines() {
    let app = Arc::new(link(&txn_app(), &Layout::natural(&txn_app()), APP_TEXT_BASE).unwrap());
    let kprog = txn_kernel();
    let kernel = Arc::new(link(&kprog, &Layout::natural(&kprog), KERNEL_TEXT_BASE).unwrap());
    let table = vec![(
        1,
        SyscallDef {
            proc: ProcId(0),
            block_instrs: 40,
        },
    )];
    for quantum in [1u64, 2, 3, 5, 7, 13, 29, 10_000] {
        for chunk in [23u64, 1_000_000] {
            let mut seeds = Vec::new();
            for pid in 0..4usize {
                seeds.push((pid, Reg(1), 6 + pid as i64));
                seeds.push((pid, Reg(4), 8 * pid as i64));
            }
            let spec = RunSpec {
                app: Arc::clone(&app),
                kernel: Some((Arc::clone(&kernel), table.clone())),
                cfg: MachineConfig {
                    num_cpus: 2,
                    processes_per_cpu: 2,
                    quantum,
                    sched_proc: Some(ProcId(1)),
                    ..MachineConfig::default()
                },
                seeds,
                chunk,
                fuel: 400_000,
            };
            assert_engines_agree(&spec);
        }
    }
}

/// A shuffled layout of the kernel program too: returns landing at
/// block entries (fall-through-eliminated calls) and cross-block
/// fall-throughs move around, and both engines must track them.
#[test]
fn shuffled_layouts_with_kernel_identical_across_engines() {
    let aprog = txn_app();
    let kprog = txn_kernel();
    for shuffle in 0..6u64 {
        let app = Arc::new(link(&aprog, &shuffled_layout(&aprog, shuffle), APP_TEXT_BASE).unwrap());
        let kernel = Arc::new(
            link(
                &kprog,
                &shuffled_layout(&kprog, shuffle + 100),
                KERNEL_TEXT_BASE,
            )
            .unwrap(),
        );
        let spec = RunSpec {
            app,
            kernel: Some((
                kernel,
                vec![(
                    1,
                    SyscallDef {
                        proc: ProcId(0),
                        block_instrs: 15,
                    },
                )],
            )),
            cfg: MachineConfig {
                num_cpus: 1,
                processes_per_cpu: 3,
                quantum: 11,
                sched_proc: Some(ProcId(1)),
                ..MachineConfig::default()
            },
            seeds: (0..3).map(|pid| (pid, Reg(1), 4)).collect(),
            chunk: 50_000,
            fuel: 300_000,
        };
        assert_engines_agree(&spec);
    }
}

/// Faults must be reported identically: call-depth overflow and
/// unknown syscalls, under quanta that can expire between the
/// triggering instructions.
#[test]
fn faults_identical_across_engines() {
    // Unbounded recursion.
    let mut pb = ProgramBuilder::new("rec");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.call(main);
    f.ret();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let app = Arc::new(link(&p, &Layout::natural(&p), APP_TEXT_BASE).unwrap());
    for quantum in [1u64, 7, 10_000] {
        let spec = RunSpec {
            app: Arc::clone(&app),
            kernel: None,
            cfg: MachineConfig {
                max_call_depth: 16,
                quantum,
                ..MachineConfig::default()
            },
            seeds: vec![],
            chunk: 1_000,
            fuel: 50_000,
        };
        assert_engines_agree(&spec);
    }

    // Unknown syscall with a kernel attached.
    let mut pb = ProgramBuilder::new("sysu");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.imm(Reg(1), 2).syscall(42);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let kprog = txn_kernel();
    let spec = RunSpec {
        app: Arc::new(link(&p, &Layout::natural(&p), APP_TEXT_BASE).unwrap()),
        kernel: Some((
            Arc::new(link(&kprog, &Layout::natural(&kprog), KERNEL_TEXT_BASE).unwrap()),
            vec![],
        )),
        cfg: MachineConfig::default(),
        seeds: vec![],
        chunk: 1_000,
        fuel: 10_000,
    };
    assert_engines_agree(&spec);
}
