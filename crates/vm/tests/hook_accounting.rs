//! Block-accounting invariants of the hook and trace layers, checked
//! against real machine runs on both execution tiers: every executed
//! instruction produces exactly one tick attributed to the right
//! mode and block, block events fire exactly at block entries, and
//! the packed trace agrees with the hook stream on kernel/user
//! attribution.

use codelayout_ir::link::link;
use codelayout_ir::{
    BinOp, BlockId, Cond, Layout, Operand, ProcBuilder, ProcId, Program, ProgramBuilder, Reg,
};
use codelayout_vm::{
    ExecHook, Machine, MachineConfig, SyscallDef, TraceBuffer, VmEngine, APP_TEXT_BASE,
    KERNEL_TEXT_BASE,
};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Default)]
struct Accounting {
    ticks: HashMap<(bool, BlockId), u64>,
    blocks: Vec<(bool, BlockId)>,
    edges: Vec<(bool, BlockId, BlockId)>,
}

impl ExecHook for Accounting {
    fn block(&mut self, kernel: bool, block: BlockId) {
        self.blocks.push((kernel, block));
    }
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        self.edges.push((kernel, from, to));
    }
    fn tick(&mut self, kernel: bool, block: BlockId) {
        *self.ticks.entry((kernel, block)).or_default() += 1;
    }
}

/// 3-block countdown: `head` (1 instr branch), `body` (2 instrs),
/// `done` (1 halt), `n` iterations.
fn countdown() -> Program {
    let mut pb = ProgramBuilder::new("count");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let body = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.branch(Cond::Gt, Reg(1), Operand::Imm(0), body, done);
    f.select(body);
    f.emit(Reg(1)).bin_imm(BinOp::Sub, Reg(1), Reg(1), 1);
    f.jump(head);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();
    pb.finish(main).unwrap()
}

fn engines() -> [VmEngine; 2] {
    [VmEngine::Interp, VmEngine::Block]
}

#[test]
fn every_instruction_ticks_exactly_once_in_its_block() {
    let p = countdown();
    let image = Arc::new(link(&p, &Layout::natural(&p), APP_TEXT_BASE).unwrap());
    for engine in engines() {
        let mut m = Machine::new(
            Arc::clone(&image),
            MachineConfig {
                engine,
                ..MachineConfig::default()
            },
        );
        let n = 10i64;
        m.set_reg(0, Reg(1), n);
        let mut acc = Accounting::default();
        let report = m.run_hooked(&mut codelayout_vm::NullSink, &mut acc, 1_000_000);
        let total: u64 = acc.ticks.values().sum();
        assert_eq!(total, report.instructions, "{engine:?}: tick per instr");
        // head: n+1 branch evaluations; body: 3 instrs × n iterations
        // (emit, sub, jump); done: 1 halt. Blocks are laid out naturally
        // so head=0, body=1, done=2.
        assert_eq!(acc.ticks[&(false, BlockId(0))], (n + 1) as u64);
        assert_eq!(acc.ticks[&(false, BlockId(1))], 3 * n as u64);
        assert_eq!(acc.ticks[&(false, BlockId(2))], 1);
        // Block events: entry + per-iteration (body, head) + final done.
        assert_eq!(acc.blocks.len() as i64, 1 + 2 * n + 1, "{engine:?}");
        // Every block event after the first is the destination of the
        // immediately preceding edge event.
        assert_eq!(acc.edges.len() + 1, acc.blocks.len());
        for (e, b) in acc.edges.iter().zip(acc.blocks.iter().skip(1)) {
            assert_eq!((e.0, e.2), *b, "{engine:?}: edge/block pairing");
        }
    }
}

/// App that traps into a kernel handler; checks kernel/user tick
/// attribution against the report and against the packed trace.
#[test]
fn kernel_ticks_match_report_and_trace_attribution() {
    let mut pb = ProgramBuilder::new("app");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.imm(Reg(1), 3).syscall(7).emit(Reg(0));
    f.halt();
    pb.define_proc(main, f).unwrap();
    let ap = pb.finish(main).unwrap();

    let mut pb = ProgramBuilder::new("kern");
    let handler = pb.declare_proc("handler");
    let mut f = ProcBuilder::new();
    f.imm(Reg(0), 7).bin_imm(BinOp::Add, Reg(0), Reg(0), 0);
    f.ret();
    pb.define_proc(handler, f).unwrap();
    let kp = pb.finish(handler).unwrap();

    let app = Arc::new(link(&ap, &Layout::natural(&ap), APP_TEXT_BASE).unwrap());
    let kernel = Arc::new(link(&kp, &Layout::natural(&kp), KERNEL_TEXT_BASE).unwrap());

    let mut traces = Vec::new();
    for engine in engines() {
        let mut m = Machine::with_kernel(
            Arc::clone(&app),
            Arc::clone(&kernel),
            vec![(
                7,
                SyscallDef {
                    proc: ProcId(0),
                    block_instrs: 0,
                },
            )],
            MachineConfig {
                engine,
                ..MachineConfig::default()
            },
        );
        let mut acc = Accounting::default();
        let mut buf = TraceBuffer::new();
        let report = m.run_hooked(&mut buf, &mut acc, 1_000_000);

        let kernel_ticks: u64 = acc
            .ticks
            .iter()
            .filter(|((k, _), _)| *k)
            .map(|(_, n)| n)
            .sum();
        let user_ticks: u64 = acc
            .ticks
            .iter()
            .filter(|((k, _), _)| !*k)
            .map(|(_, n)| n)
            .sum();
        assert_eq!(kernel_ticks, report.kernel_instrs, "{engine:?}");
        assert_eq!(user_ticks, report.user_instrs, "{engine:?}");
        assert_eq!(m.emitted(0), &[7], "{engine:?}: r0 forwarded");

        // The packed trace agrees: kernel-flagged instruction fetches
        // equal kernel ticks.
        let frozen = buf.freeze();
        let mut counts = codelayout_vm::CountingSink::default();
        frozen.replay(&mut counts);
        assert_eq!(counts.kernel_fetches, kernel_ticks, "{engine:?}");
        assert_eq!(counts.fetches, report.instructions, "{engine:?}");
        traces.push(frozen);
    }
    assert_eq!(
        traces[0], traces[1],
        "packed traces must be bit-identical across engines"
    );
    assert_eq!(traces[0].digest(), traces[1].digest());
}

/// Mid-block quantum expiry must not double-tick or skip: the tick
/// stream across many tiny quanta equals one uninterrupted run.
#[test]
fn tick_stream_is_quantum_invariant() {
    let p = countdown();
    let image = Arc::new(link(&p, &Layout::natural(&p), APP_TEXT_BASE).unwrap());
    let reference: Vec<(bool, BlockId)> = {
        let mut m = Machine::new(Arc::clone(&image), MachineConfig::default());
        m.set_reg(0, Reg(1), 8);
        let mut log = TickLog::default();
        m.run_hooked(&mut codelayout_vm::NullSink, &mut log, 1_000_000);
        log.0
    };
    for engine in engines() {
        for quantum in [1u64, 2, 3, 5] {
            let mut m = Machine::new(
                Arc::clone(&image),
                MachineConfig {
                    engine,
                    quantum,
                    ..MachineConfig::default()
                },
            );
            m.set_reg(0, Reg(1), 8);
            let mut log = TickLog::default();
            m.run_hooked(&mut codelayout_vm::NullSink, &mut log, 1_000_000);
            assert_eq!(log.0, reference, "{engine:?} quantum={quantum}");
        }
    }
}

#[derive(Default)]
struct TickLog(Vec<(bool, BlockId)>);

impl ExecHook for TickLog {
    fn tick(&mut self, kernel: bool, block: BlockId) {
        self.0.push((kernel, block));
    }
}
