//! Behavioural tests for the multi-process machine.

use codelayout_ir::link::link;
use codelayout_ir::{
    BinOp, BlockId, Cond, Layout, MemSpace, Operand, ProcBuilder, ProcId, Program, ProgramBuilder,
    Reg,
};
use codelayout_vm::{
    CountingSink, ExecHook, Machine, MachineConfig, NullSink, RecordingSink, SyscallDef,
    APP_TEXT_BASE, KERNEL_TEXT_BASE,
};
use std::sync::Arc;

const R0: Reg = Reg(0);
const R1: Reg = Reg(1);
const R2: Reg = Reg(2);
const R3: Reg = Reg(3);

fn app_image(p: &Program) -> Arc<codelayout_ir::Image> {
    Arc::new(link(p, &Layout::natural(p), APP_TEXT_BASE).unwrap())
}

fn kernel_image(p: &Program) -> Arc<codelayout_ir::Image> {
    Arc::new(link(p, &Layout::natural(p), KERNEL_TEXT_BASE).unwrap())
}

/// Counts r1 down from its initial value, emitting each value.
fn countdown_program() -> Program {
    let mut pb = ProgramBuilder::new("countdown");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let body = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.branch(Cond::Gt, R1, Operand::Imm(0), body, done);
    f.select(body);
    f.emit(R1).bin_imm(BinOp::Sub, R1, R1, 1);
    f.jump(head);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();
    pb.finish(main).unwrap()
}

#[test]
fn countdown_emits_descending_values() {
    let p = countdown_program();
    let mut m = Machine::new(app_image(&p), MachineConfig::default());
    m.set_reg(0, R1, 3);
    let report = m.run(&mut NullSink, 1_000);
    assert!(report.faults.is_empty());
    assert_eq!(report.halted_processes, 1);
    assert_eq!(m.emitted(0), &[3, 2, 1]);
}

#[test]
fn call_and_return_work() {
    let mut pb = ProgramBuilder::new("callret");
    let main = pb.declare_proc("main");
    let double = pb.declare_proc("double");

    let mut f = ProcBuilder::new();
    f.imm(R1, 21).call(double).emit(R1);
    f.halt();
    pb.define_proc(main, f).unwrap();

    let mut g = ProcBuilder::new();
    g.bin(BinOp::Add, R1, R1, R1);
    g.ret();
    pb.define_proc(double, g).unwrap();

    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(app_image(&p), MachineConfig::default());
    let report = m.run(&mut NullSink, 1_000);
    assert!(report.faults.is_empty());
    assert_eq!(m.emitted(0), &[42]);
}

#[test]
fn top_level_return_halts_process() {
    let mut pb = ProgramBuilder::new("ret");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.imm(R1, 1);
    f.ret();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(app_image(&p), MachineConfig::default());
    let report = m.run(&mut NullSink, 100);
    assert_eq!(report.halted_processes, 1);
    assert!(report.faults.is_empty());
}

#[test]
fn recursion_depth_fault() {
    let mut pb = ProgramBuilder::new("rec");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.call(main);
    f.ret();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(
        app_image(&p),
        MachineConfig {
            max_call_depth: 16,
            ..MachineConfig::default()
        },
    );
    let report = m.run(&mut NullSink, 10_000);
    assert_eq!(report.faults.len(), 1);
    assert!(matches!(
        report.faults[0].1,
        codelayout_vm::Fault::CallDepthExceeded
    ));
}

#[test]
fn syscall_without_kernel_returns_zero() {
    let mut pb = ProgramBuilder::new("sys");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.imm(R0, 99).syscall(5).emit(R0);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(app_image(&p), MachineConfig::default());
    let report = m.run(&mut NullSink, 100);
    assert!(report.faults.is_empty());
    assert_eq!(report.syscalls, 1);
    assert_eq!(m.emitted(0), &[0]);
}

fn simple_kernel() -> Program {
    let mut pb = ProgramBuilder::new("kernel");
    let set7 = pb.declare_proc("sys_set7");
    let mut f = ProcBuilder::new();
    f.imm(R0, 7);
    f.ret();
    pb.define_proc(set7, f).unwrap();
    pb.finish(set7).unwrap()
}

#[test]
fn syscall_with_kernel_runs_handler() {
    let mut pb = ProgramBuilder::new("sysk");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.syscall(1).emit(R0);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();

    let k = simple_kernel();
    let mut m = Machine::with_kernel(
        app_image(&p),
        kernel_image(&k),
        vec![(
            1,
            SyscallDef {
                proc: ProcId(0),
                block_instrs: 0,
            },
        )],
        MachineConfig::default(),
    );
    let mut sink = CountingSink::default();
    let report = m.run(&mut sink, 1_000);
    assert!(report.faults.is_empty());
    assert_eq!(m.emitted(0), &[7]);
    assert!(report.kernel_instrs >= 2);
    assert!(sink.kernel_fetches >= 2);
}

#[test]
fn unknown_syscall_faults_when_kernel_attached() {
    let mut pb = ProgramBuilder::new("sysu");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.syscall(42);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let k = simple_kernel();
    let mut m = Machine::with_kernel(
        app_image(&p),
        kernel_image(&k),
        vec![],
        MachineConfig::default(),
    );
    let report = m.run(&mut NullSink, 100);
    assert_eq!(report.faults.len(), 1);
    assert!(matches!(
        report.faults[0].1,
        codelayout_vm::Fault::UnknownSyscall(42)
    ));
}

#[test]
fn blocking_syscall_interleaves_processes() {
    // Each process: syscall(1) [blocking], then emit own pid, halt.
    let mut pb = ProgramBuilder::new("blk");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.syscall(1).emit(R1);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let k = simple_kernel();
    let mut m = Machine::with_kernel(
        app_image(&p),
        kernel_image(&k),
        vec![(
            1,
            SyscallDef {
                proc: ProcId(0),
                block_instrs: 500,
            },
        )],
        MachineConfig {
            processes_per_cpu: 2,
            quantum: 100,
            ..MachineConfig::default()
        },
    );
    m.set_reg(0, R1, 100);
    m.set_reg(1, R1, 101);
    let report = m.run(&mut NullSink, 100_000);
    assert!(report.faults.is_empty());
    assert_eq!(report.halted_processes, 2);
    assert_eq!(m.emitted(0), &[100]);
    assert_eq!(m.emitted(1), &[101]);
    assert!(report.context_switches >= 1);
    assert!(report.idle_instrs > 0, "both blocked at once at some point");
}

#[test]
fn atomic_rmw_is_exact_across_processes() {
    // Each of 4 processes adds 1 to shared[0] N times.
    let n = 1000;
    let mut pb = ProgramBuilder::new("atomic");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let body = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.imm(R2, 0).imm(R3, 1);
    f.jump(body);
    f.select(body);
    f.atomic_rmw(BinOp::Add, R0, R2, 0, R3, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R1, R1, 1);
    f.branch(Cond::Lt, R1, Operand::Imm(n), body, done);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(
        app_image(&p),
        MachineConfig {
            num_cpus: 2,
            processes_per_cpu: 2,
            quantum: 37, // deliberately odd to force mid-loop preemption
            ..MachineConfig::default()
        },
    );
    let report = m.run(&mut NullSink, 10_000_000);
    assert!(report.faults.is_empty());
    assert_eq!(report.halted_processes, 4);
    assert_eq!(m.shared_word(0), 4 * n);
}

#[test]
fn deterministic_traces() {
    let p = countdown_program();
    let run = || {
        let mut m = Machine::new(
            app_image(&p),
            MachineConfig {
                processes_per_cpu: 3,
                quantum: 7,
                ..MachineConfig::default()
            },
        );
        for pid in 0..3 {
            m.set_reg(pid, R1, 50 + pid as i64);
        }
        let mut sink = RecordingSink::default();
        m.run(&mut sink, 100_000);
        sink.fetches
    };
    assert_eq!(run(), run());
}

#[derive(Default)]
struct EventCounter {
    blocks: u64,
    edges: u64,
    calls: u64,
    ticks: u64,
}

impl ExecHook for EventCounter {
    fn block(&mut self, _k: bool, _b: BlockId) {
        self.blocks += 1;
    }
    fn edge(&mut self, _k: bool, _f: BlockId, _t: BlockId) {
        self.edges += 1;
    }
    fn call(&mut self, _k: bool, _f: BlockId, _c: ProcId) {
        self.calls += 1;
    }
    fn tick(&mut self, _k: bool, _b: BlockId) {
        self.ticks += 1;
    }
}

#[test]
fn hook_sees_blocks_edges_calls() {
    // main: loop 3 times calling leaf.
    let mut pb = ProgramBuilder::new("hook");
    let main = pb.declare_proc("main");
    let leaf = pb.declare_proc("leaf");

    let mut f = ProcBuilder::new();
    let head = f.entry();
    let body = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.imm(R1, 3);
    f.jump(body);
    f.select(body);
    f.call(leaf).bin_imm(BinOp::Sub, R1, R1, 1);
    f.branch(Cond::Gt, R1, Operand::Imm(0), body, done);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();

    let mut g = ProcBuilder::new();
    g.nop();
    g.ret();
    pb.define_proc(leaf, g).unwrap();

    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(app_image(&p), MachineConfig::default());
    let mut hook = EventCounter::default();
    let report = m.run_hooked(&mut NullSink, &mut hook, 10_000);
    assert!(report.faults.is_empty());
    assert_eq!(hook.calls, 3);
    // Blocks: entry(head) + jump->body + 3 leaf entries + 2 back-edges to
    // body + 1 edge to done = entry(1) + body(3) + leaf(3) + done(1) = 8.
    assert_eq!(hook.blocks, 8);
    // Edges: head->body, body->body (x2), body->done = 4.
    assert_eq!(hook.edges, 4);
    assert_eq!(hook.ticks, report.instructions);
}

#[test]
fn quantum_preempts_spinner() {
    // Process 0 spins forever; process 1 counts down and halts. With
    // round-robin quanta, process 1 must finish.
    let mut pb = ProgramBuilder::new("spin");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let spin = f.new_block();
    let count = f.new_block();
    let done = f.new_block();
    f.select(head);
    // r2 == 0 -> spinner, else countdown
    f.branch(Cond::Eq, R2, Operand::Imm(0), spin, count);
    f.select(spin);
    f.nop();
    f.jump(spin);
    f.select(count);
    f.bin_imm(BinOp::Sub, R1, R1, 1);
    f.branch(Cond::Gt, R1, Operand::Imm(0), count, done);
    f.select(done);
    f.emit(R1);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(
        app_image(&p),
        MachineConfig {
            processes_per_cpu: 2,
            quantum: 50,
            ..MachineConfig::default()
        },
    );
    m.set_reg(0, R2, 0);
    m.set_reg(1, R2, 1);
    m.set_reg(1, R1, 500);
    let report = m.run(&mut NullSink, 100_000);
    assert_eq!(report.halted_processes, 1);
    assert_eq!(m.emitted(1), &[0]);
    assert!(report.context_switches > 2);
    assert_eq!(report.instructions, 100_000); // spinner consumed the budget
}

#[test]
fn private_memory_is_isolated_per_process() {
    let mut pb = ProgramBuilder::new("priv");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.imm(R2, 10).store(R1, R2, 0, MemSpace::Private);
    f.load(R3, R2, 0, MemSpace::Private).emit(R3);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let mut m = Machine::new(
        app_image(&p),
        MachineConfig {
            processes_per_cpu: 2,
            ..MachineConfig::default()
        },
    );
    m.set_reg(0, R1, 111);
    m.set_reg(1, R1, 222);
    let report = m.run(&mut NullSink, 10_000);
    assert!(report.faults.is_empty());
    assert_eq!(m.emitted(0), &[111]);
    assert_eq!(m.emitted(1), &[222]);
    assert_eq!(m.private_word(0, 10), 111);
    assert_eq!(m.private_word(1, 10), 222);
    assert_ne!(m.private_checksum(0), m.private_checksum(1));
}

#[test]
fn fetch_addresses_fall_in_the_right_segments() {
    let mut pb = ProgramBuilder::new("addr");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.syscall(1);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();
    let k = simple_kernel();
    let mut m = Machine::with_kernel(
        app_image(&p),
        kernel_image(&k),
        vec![(
            1,
            SyscallDef {
                proc: ProcId(0),
                block_instrs: 0,
            },
        )],
        MachineConfig::default(),
    );
    let mut sink = RecordingSink::default();
    let report = m.run(&mut sink, 1_000);
    assert!(report.faults.is_empty());
    for rec in &sink.fetches {
        if rec.kernel {
            assert!(rec.addr >= KERNEL_TEXT_BASE);
        } else {
            assert!(rec.addr >= APP_TEXT_BASE && rec.addr < KERNEL_TEXT_BASE);
        }
    }
    assert!(sink.fetches.iter().any(|r| r.kernel));
    assert!(sink.fetches.iter().any(|r| !r.kernel));
}

#[test]
fn chunked_driving_never_starves_a_lock_holder() {
    // Regression test: drive the machine in externally-chunked runs whose
    // size resonates with the CPU rotation. Every process must keep making
    // progress — an early scheduler version advanced the round-robin
    // cursor past a chosen-but-not-run process on budget exhaustion,
    // systematically skipping the same process and leaving a spinlock
    // holder unscheduled forever.
    let n = 200;
    let mut pb = ProgramBuilder::new("spinlock");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    let head = f.entry();
    let acquire = f.new_block();
    let spin_chk = f.new_block();
    let crit = f.new_block();
    let done = f.new_block();
    f.select(head);
    f.imm(R2, 0).imm(R3, 1).imm(R1, 0);
    f.jump(acquire);
    f.select(acquire);
    // old = shared[1] |= 1
    f.atomic_rmw(BinOp::Or, R0, R2, 1, R3, MemSpace::Shared);
    f.branch(Cond::Eq, R0, Operand::Imm(0), crit, spin_chk);
    f.select(spin_chk);
    f.nop();
    f.jump(acquire);
    f.select(crit);
    // counter++ under the lock (non-atomic: the lock must protect it),
    // then some critical-section work so preemption mid-section happens,
    // then release.
    f.load(R0, R2, 0, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R0, R0, 1);
    f.store(R0, R2, 0, MemSpace::Shared);
    f.work(Reg(4), 37);
    f.imm(R0, 0);
    f.store(R0, R2, 1, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R1, R1, 1);
    f.branch(Cond::Lt, R1, Operand::Imm(n), acquire, done);
    f.select(done);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();

    let mut m = Machine::new(
        app_image(&p),
        MachineConfig {
            num_cpus: 4,
            processes_per_cpu: 2,
            quantum: 64, // short quantum: preemption inside the section
            ..MachineConfig::default()
        },
    );
    // Resonant chunk size: one quantum-sized slice per call.
    let mut total = 0u64;
    for _ in 0..3_000_000 {
        let r = m.run(&mut NullSink, 64);
        total += r.instructions;
        if m.live_processes() == 0 {
            break;
        }
        assert!(
            total < 80_000_000,
            "machine livelocked under chunked driving"
        );
    }
    assert_eq!(m.live_processes(), 0, "all processes must finish");
    assert_eq!(m.shared_word(0), 8 * n); // lock protected the counter
}

#[test]
fn kernel_register_banking_preserves_user_state() {
    // The kernel handler trashes every register; on return only r0 may
    // change (syscall return convention).
    let mut pb = ProgramBuilder::new("bank");
    let main = pb.declare_proc("main");
    let mut f = ProcBuilder::new();
    f.imm(R1, 11).imm(R2, 22).imm(R3, 33);
    f.syscall(1);
    f.emit(R0).emit(R1).emit(R2).emit(R3);
    f.halt();
    pb.define_proc(main, f).unwrap();
    let p = pb.finish(main).unwrap();

    let mut kb = ProgramBuilder::new("kernel");
    let h = kb.declare_proc("trash");
    let mut g = ProcBuilder::new();
    for r in 0..32u8 {
        g.imm(Reg(r), -7);
    }
    g.imm(R0, 55); // syscall return value
    g.ret();
    kb.define_proc(h, g).unwrap();
    let k = kb.finish(h).unwrap();

    let mut m = Machine::with_kernel(
        app_image(&p),
        kernel_image(&k),
        vec![(
            1,
            SyscallDef {
                proc: ProcId(0),
                block_instrs: 0,
            },
        )],
        MachineConfig::default(),
    );
    let report = m.run(&mut NullSink, 1_000);
    assert!(report.faults.is_empty());
    assert_eq!(m.emitted(0), &[55, 11, 22, 33]);
}

#[test]
fn layout_change_preserves_semantics() {
    // Run the countdown under natural and a scrambled-but-valid layout;
    // emitted values and memory checksums must match.
    let p = countdown_program();
    let natural = Layout::natural(&p);
    let mut scrambled = natural.clone();
    scrambled.order.reverse();

    let run = |layout: &Layout| {
        let img = Arc::new(link(&p, layout, APP_TEXT_BASE).unwrap());
        let mut m = Machine::new(img, MachineConfig::default());
        m.set_reg(0, R1, 10);
        let report = m.run(&mut NullSink, 100_000);
        assert!(report.faults.is_empty());
        (m.emitted(0).to_vec(), m.private_checksum(0))
    };

    assert_eq!(run(&natural), run(&scrambled));
}
