//! The toolkit's central invariant, tested property-style: **any** valid
//! layout of a program produces bit-identical observable behaviour —
//! emitted values, final private memory, final shared memory — differing
//! only in its instruction-address trace.

use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{BlockId, Layout};
use codelayout_vm::{Machine, MachineConfig, NullSink, APP_TEXT_BASE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const FUEL: u64 = 2_000_000;

fn shuffled_layout(program: &codelayout_ir::Program, seed: u64) -> Layout {
    let mut order: Vec<BlockId> = Layout::natural(program).order;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    Layout { order }
}

fn observe(program: &codelayout_ir::Program, layout: &Layout) -> (Vec<i64>, u64, u64) {
    let image = Arc::new(link(program, layout, APP_TEXT_BASE).expect("valid layout"));
    let mut m = Machine::new(image, MachineConfig::default());
    let report = m.run(&mut NullSink, FUEL);
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);
    assert!(
        report.instructions < FUEL,
        "generated program must terminate"
    );
    (
        m.emitted(0).to_vec(),
        m.private_checksum(0),
        m.shared_checksum(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_layout_preserves_semantics(seed in 0u64..10_000, shuffle in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let natural = observe(&program, &Layout::natural(&program));
        let shuffled = observe(&program, &shuffled_layout(&program, shuffle));
        prop_assert_eq!(natural, shuffled);
    }

    #[test]
    fn reversed_layout_preserves_semantics(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig {
            procs: 3,
            max_blocks: 6,
            max_instrs: 4,
            loop_iters: 6,
            call_prob: 0.5,
        });
        let mut rev = Layout::natural(&program);
        rev.order.reverse();
        prop_assert_eq!(
            observe(&program, &Layout::natural(&program)),
            observe(&program, &rev)
        );
    }

    #[test]
    fn trace_length_differs_but_work_is_equal(seed in 0u64..10_000) {
        // Different layouts may execute different numbers of *branch*
        // instructions but identical numbers of body instructions.
        let program = random_program(seed, &GenConfig::default());
        let count = |layout: &Layout| {
            let image = Arc::new(link(&program, layout, APP_TEXT_BASE).unwrap());
            let mut m = Machine::new(image, MachineConfig::default());
            let mut sink = codelayout_vm::CountingSink::default();
            let report = m.run(&mut sink, FUEL);
            assert!(report.faults.is_empty());
            (sink.reads, sink.writes, m.emitted(0).len())
        };
        let mut rev = Layout::natural(&program);
        rev.order.reverse();
        prop_assert_eq!(count(&Layout::natural(&program)), count(&rev));
    }
}
