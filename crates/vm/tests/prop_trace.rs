//! Property tests for the compact trace buffer: record → freeze →
//! replay must reproduce the exact event sequence, deterministically.

use codelayout_vm::{
    DataRecord, FetchRecord, RecordingSink, TraceBuffer, TraceSink, MAX_TRACE_ADDR,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random interleaving of fetch and data events exercising the full
/// packed-field ranges (45-bit addresses, 8-bit cpu/pid, all flags).
fn random_events(seed: u64, len: usize) -> (Vec<FetchRecord>, Vec<DataRecord>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fetches = Vec::new();
    let mut data = Vec::new();
    // `order[i]` = true for a fetch, false for a data event.
    let mut order = Vec::with_capacity(len);
    for _ in 0..len {
        let addr = if rng.gen_bool(0.1) {
            // Hammer the extremes of the 45-bit address field.
            if rng.gen_bool(0.5) {
                MAX_TRACE_ADDR
            } else {
                0
            }
        } else {
            rng.gen_range(0..=MAX_TRACE_ADDR)
        };
        let cpu = rng.gen_range(0u64..256) as u8;
        let pid = rng.gen_range(0u64..256) as u8;
        let kernel = rng.gen_bool(0.3);
        if rng.gen_bool(0.7) {
            fetches.push(FetchRecord {
                addr,
                cpu,
                pid,
                kernel,
            });
            order.push(true);
        } else {
            data.push(DataRecord {
                addr,
                cpu,
                pid,
                kernel,
                write: rng.gen_bool(0.4),
            });
            order.push(false);
        }
    }
    (fetches, data, order)
}

fn feed(sink: &mut impl TraceSink, evs: &(Vec<FetchRecord>, Vec<DataRecord>, Vec<bool>)) {
    let (fetches, data, order) = evs;
    let (mut fi, mut di) = (0, 0);
    for &is_fetch in order {
        if is_fetch {
            sink.fetch(fetches[fi]);
            fi += 1;
        } else {
            sink.data(data[di]);
            di += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_reproduces_exact_sequence(seed in 0u64..10_000, len in 0usize..2_000) {
        let evs = random_events(seed, len);
        let mut buf = TraceBuffer::new();
        let mut direct = RecordingSink::default();
        feed(&mut buf, &evs);
        feed(&mut direct, &evs);

        prop_assert_eq!(buf.len(), len);
        let frozen = buf.freeze();
        let mut replayed = RecordingSink::default();
        frozen.replay(&mut replayed);
        prop_assert_eq!(&replayed.fetches, &direct.fetches);
        prop_assert_eq!(&replayed.data, &direct.data);
    }

    #[test]
    fn replaying_twice_is_deterministic(seed in 0u64..10_000) {
        let evs = random_events(seed, 1_000);
        let mut buf = TraceBuffer::new();
        feed(&mut buf, &evs);
        let frozen = buf.freeze();
        let (mut a, mut b) = (RecordingSink::default(), RecordingSink::default());
        frozen.replay(&mut a);
        frozen.replay(&mut b);
        prop_assert_eq!(&a.fetches, &b.fetches);
        prop_assert_eq!(&a.data, &b.data);
        // And a clone of the frozen trace replays identically too.
        let mut c = RecordingSink::default();
        frozen.clone().replay(&mut c);
        prop_assert_eq!(&a.fetches, &c.fetches);
    }

    #[test]
    fn fetch_only_buffer_keeps_the_fetch_subsequence(seed in 0u64..10_000) {
        let evs = random_events(seed, 1_500);
        let mut buf = TraceBuffer::fetch_only();
        let mut direct = RecordingSink::default();
        feed(&mut buf, &evs);
        feed(&mut direct, &evs);
        let frozen = buf.freeze();
        prop_assert_eq!(frozen.len(), direct.fetches.len());
        let mut replayed = RecordingSink::default();
        frozen.replay(&mut replayed);
        prop_assert_eq!(&replayed.fetches, &direct.fetches);
        prop_assert!(replayed.data.is_empty());
    }
}
