//! The process-wide code cache: one [`CompiledImage`] per live linked
//! image, shared by every machine executing that image.
//!
//! **Invalidation rule:** the cache key is the identity of the image's
//! `Arc` allocation, so a compiled entry lives exactly as long as some
//! machine (or the cache lookup in flight) holds the image alive — the
//! entry itself only holds a `Weak`. Re-linking a program under a new
//! layout produces a new `Arc<Image>`, hence a new key and a fresh
//! compile; dropping the last reference to an old layout's image kills
//! its compiled form. There is no way to mutate an `Image` in place, so
//! a cache hit can never serve stale code. Reclaimed (dead-weak)
//! entries are counted as `vm.cache.invalidations`.
//!
//! Metrics (in the global [`codelayout_obs`] registry):
//! `vm.cache.compiles`, `vm.cache.hits`, `vm.cache.invalidations`,
//! `vm.cache.blocks` (compiled runs), `vm.cache.bytes`.

use crate::block::CompiledImage;
use codelayout_ir::Image;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

type Registry = Mutex<HashMap<usize, Weak<CompiledImage>>>;

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the compiled form of `image`, compiling it on first sight.
///
/// Keyed by the `Arc` allocation address: while the caller's `Arc` is
/// alive that address cannot be reused, so a live entry is always the
/// right image; a dead entry (its image dropped, address possibly
/// recycled by a new layout) is replaced and counted as an
/// invalidation.
pub(crate) fn get_or_compile(image: &Arc<Image>) -> Arc<CompiledImage> {
    let key = Arc::as_ptr(image) as usize;
    let m = codelayout_obs::metrics();
    let mut reg = registry().lock().expect("code cache poisoned");
    if let Some(w) = reg.get(&key) {
        if let Some(c) = w.upgrade() {
            m.add("vm.cache.hits", 1);
            return c;
        }
        m.add("vm.cache.invalidations", 1);
    }
    let compiled = Arc::new(CompiledImage::compile(image));
    m.add("vm.cache.compiles", 1);
    m.add("vm.cache.blocks", compiled.num_runs() as u64);
    m.add("vm.cache.bytes", compiled.size_bytes() as u64);
    reg.insert(key, Arc::downgrade(&compiled));
    // Sweep dead entries occasionally so long-lived processes that
    // churn through layouts (sweeps, proptests) don't accrete tombstones.
    if reg.len() > 128 {
        let before = reg.len();
        reg.retain(|_, w| w.strong_count() > 0);
        m.add("vm.cache.invalidations", (before - reg.len()) as u64);
    }
    compiled
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::link::link;
    use codelayout_ir::testgen::{random_program, GenConfig};
    use codelayout_ir::Layout;

    #[test]
    fn same_arc_hits_new_arc_compiles() {
        let program = random_program(7, &GenConfig::default());
        let layout = Layout::natural(&program);
        let a = Arc::new(link(&program, &layout, crate::APP_TEXT_BASE).unwrap());
        let c1 = get_or_compile(&a);
        let c2 = get_or_compile(&a);
        assert!(Arc::ptr_eq(&c1, &c2), "same image must share compiled form");
        // A re-link of the same program/layout is a *different* image
        // allocation: new key, fresh compile.
        let b = Arc::new(link(&program, &layout, crate::APP_TEXT_BASE).unwrap());
        let c3 = get_or_compile(&b);
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert_eq!(c1.num_runs(), c3.num_runs());
    }

    #[test]
    fn two_machines_on_one_image_share_a_single_compilation() {
        let program = random_program(13, &GenConfig::default());
        let layout = Layout::natural(&program);
        let img = Arc::new(link(&program, &layout, crate::APP_TEXT_BASE).unwrap());
        let cfg = crate::MachineConfig {
            engine: crate::VmEngine::Block,
            ..crate::MachineConfig::default()
        };
        let m1 = crate::Machine::new(Arc::clone(&img), cfg.clone());
        let m2 = crate::Machine::new(Arc::clone(&img), cfg);
        let c1 = m1.capp.as_ref().expect("block engine compiles");
        let c2 = m2.capp.as_ref().expect("block engine compiles");
        assert!(
            Arc::ptr_eq(c1, c2),
            "two machines on one image must share one compiled form"
        );
    }

    #[test]
    fn dropping_the_last_machine_evicts_the_compiled_image() {
        let program = random_program(17, &GenConfig::default());
        let layout = Layout::natural(&program);
        let img = Arc::new(link(&program, &layout, crate::APP_TEXT_BASE).unwrap());
        let cfg = crate::MachineConfig {
            engine: crate::VmEngine::Block,
            ..crate::MachineConfig::default()
        };
        let m1 = crate::Machine::new(Arc::clone(&img), cfg.clone());
        let weak = Arc::downgrade(m1.capp.as_ref().expect("compiled"));
        assert!(weak.upgrade().is_some());
        drop(m1);
        // The registry only holds a `Weak`; the machine held the last
        // strong reference, so its compiled form is gone now.
        assert!(
            weak.upgrade().is_none(),
            "compiled image must die with its last machine"
        );
        // A new machine on the *same* image `Arc` finds the dead entry
        // and recompiles fresh (the old allocation no longer exists).
        let m2 = crate::Machine::new(Arc::clone(&img), cfg);
        let c2 = m2.capp.as_ref().expect("recompiled");
        assert!(c2.num_runs() > 0);
        // The recompile is cached again: a sibling machine shares it.
        let m3 = crate::Machine::new(
            Arc::clone(&img),
            crate::MachineConfig {
                engine: crate::VmEngine::Block,
                ..crate::MachineConfig::default()
            },
        );
        assert!(Arc::ptr_eq(c2, m3.capp.as_ref().expect("cached")));
    }

    #[test]
    fn compiled_form_reports_nonzero_footprint() {
        let program = random_program(11, &GenConfig::default());
        let layout = Layout::natural(&program);
        let img = Arc::new(link(&program, &layout, crate::APP_TEXT_BASE).unwrap());
        let c = get_or_compile(&img);
        assert!(c.num_runs() > 0);
        assert!(c.size_bytes() > 0);
    }
}
