//! Record-once / replay-many trace storage.
//!
//! A [`TraceBuffer`] is a [`TraceSink`] that packs every event into one
//! `u64` (8 bytes per executed instruction) instead of the 16-byte
//! in-memory records [`RecordingSink`] stores. Freezing it yields a
//! [`FrozenTrace`] — an `Arc`-shared, immutable event array that any
//! number of threads can [`replay`](FrozenTrace::replay) concurrently
//! into their own sinks. Replaying reproduces the exact record sequence
//! the machine emitted, so a simulator fed by replay is bit-identical
//! to one that observed the live run.
//!
//! This is the substrate for the parallel configuration sweeps: the
//! workload executes once, and the 100+ cache-grid simulations replay
//! the frozen trace from worker threads.
//!
//! [`RecordingSink`]: crate::RecordingSink

use crate::sink::{DataRecord, FetchRecord, TraceSink};
use std::sync::Arc;

// One event per u64:
//   bit  0      kind: 0 = fetch, 1 = data
//   bit  1      kernel flag
//   bit  2      write flag (data events; always 0 for fetches)
//   bits 3..11  cpu
//   bits 11..19 pid
//   bits 19..64 byte address (45 bits)
const KIND_DATA: u64 = 1 << 0;
const KERNEL: u64 = 1 << 1;
const WRITE: u64 = 1 << 2;
const CPU_SHIFT: u32 = 3;
const PID_SHIFT: u32 = 11;
const ADDR_SHIFT: u32 = 19;

/// Largest byte address a packed trace event can carry (45 bits). All
/// of the VM's address spaces (text, shared data, per-process private
/// data) lie far below this.
pub const MAX_TRACE_ADDR: u64 = (1 << (64 - ADDR_SHIFT)) - 1;

#[inline]
fn pack(addr: u64, cpu: u8, pid: u8, flags: u64) -> u64 {
    debug_assert!(addr <= MAX_TRACE_ADDR, "address {addr:#x} exceeds 45 bits");
    flags | ((cpu as u64) << CPU_SHIFT) | ((pid as u64) << PID_SHIFT) | (addr << ADDR_SHIFT)
}

/// An appendable compact trace; a [`TraceSink`] for the recording pass.
///
/// ```
/// use codelayout_vm::{FetchRecord, RecordingSink, TraceBuffer, TraceSink};
///
/// let mut buf = TraceBuffer::new();
/// buf.fetch(FetchRecord { addr: 0x40_0000, cpu: 1, pid: 2, kernel: false });
/// let frozen = buf.freeze();
/// let mut replayed = RecordingSink::default();
/// frozen.replay(&mut replayed);
/// assert_eq!(replayed.fetches[0].addr, 0x40_0000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<u64>,
    fetch_only: bool,
}

impl TraceBuffer {
    /// An empty buffer recording both fetch and data events.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// An empty buffer that drops data events at record time. The
    /// instruction-cache sweeps only consume fetches, and skipping data
    /// records keeps the buffer at 8 bytes per executed instruction.
    pub fn fetch_only() -> Self {
        TraceBuffer {
            events: Vec::new(),
            fetch_only: true,
        }
    }

    /// Pre-reserves room for `events` packed events. Growth reallocs
    /// (and the copying they imply) land inside the recording run, so
    /// callers that know the expected instruction count up front should
    /// size the buffer once here.
    pub fn reserve(&mut self, events: usize) {
        self.events.reserve(events);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Bytes of backing storage in use.
    pub fn size_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<u64>()
    }

    /// Appends `n` pre-packed fetch events stepping by one instruction.
    /// Out of line so the short-run path of `fetch_run` stays small
    /// enough to inline into the engines' emit sites.
    fn bulk_fetches(&mut self, ev: u64, n: u64) {
        const STEP: u64 = codelayout_ir::INSTR_BYTES << ADDR_SHIFT;
        // Exact-size iterator: one reservation, no per-push growth
        // checks, and the addition vectorizes.
        self.events.extend((0..n).map(|i| ev + i * STEP));
    }

    /// Seals the buffer into an immutable, `Arc`-shared trace.
    pub fn freeze(self) -> FrozenTrace {
        let m = codelayout_obs::metrics();
        m.add("trace.frozen", 1);
        m.add("trace.events", self.events.len() as u64);
        m.add("trace.bytes", self.size_bytes() as u64);
        FrozenTrace {
            events: Arc::from(self.events),
        }
    }
}

impl TraceSink for TraceBuffer {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        let flags = if rec.kernel { KERNEL } else { 0 };
        self.events.push(pack(rec.addr, rec.cpu, rec.pid, flags));
    }

    #[inline]
    fn fetch_run(&mut self, first: FetchRecord, n: u64) {
        // Pack once; consecutive instructions differ only in the address
        // field, so the whole run is one add per event.
        let flags = if first.kernel { KERNEL } else { 0 };
        let ev = pack(first.addr, first.cpu, first.pid, flags);
        const STEP: u64 = codelayout_ir::INSTR_BYTES << ADDR_SHIFT;
        debug_assert!(
            first.addr + n.saturating_sub(1) * codelayout_ir::INSTR_BYTES <= MAX_TRACE_ADDR
        );
        if n <= 4 {
            // The block engine folds pending fetches into memory-op
            // records, so short runs dominate; keep this path as cheap
            // as a plain `fetch` so it inlines at the emit sites.
            for i in 0..n {
                self.events.push(ev + i * STEP);
            }
        } else {
            self.bulk_fetches(ev, n);
        }
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        if self.fetch_only {
            return;
        }
        let mut flags = KIND_DATA;
        if rec.kernel {
            flags |= KERNEL;
        }
        if rec.write {
            flags |= WRITE;
        }
        self.events.push(pack(rec.addr, rec.cpu, rec.pid, flags));
    }
}

/// An immutable recorded trace, cheap to clone and share across
/// threads (`Arc`-backed). See the module docs for the intended
/// record-once / replay-in-parallel pattern.
///
/// Equality compares the full packed event streams, so two traces are
/// equal exactly when they replay identical record sequences — this is
/// what the cross-VM-engine oracle in the bench harness asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenTrace {
    events: Arc<[u64]>,
}

impl FrozenTrace {
    /// FNV-1a digest of the packed event stream, as a lowercase hex
    /// string. Stable across processes and machines; used by benchmark
    /// artifacts to prove two engines produced byte-identical traces.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &e in self.events.iter() {
            for b in e.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        format!("{h:016x}")
    }
    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True for a trace with no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Bytes of shared backing storage.
    pub fn size_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<u64>()
    }

    /// Replays every event, in recorded order, into `sink`. The records
    /// delivered are identical to the ones the original run emitted.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        for &e in self.events.iter() {
            let addr = e >> ADDR_SHIFT;
            let cpu = (e >> CPU_SHIFT) as u8;
            let pid = (e >> PID_SHIFT) as u8;
            let kernel = e & KERNEL != 0;
            if e & KIND_DATA == 0 {
                sink.fetch(FetchRecord {
                    addr,
                    cpu,
                    pid,
                    kernel,
                });
            } else {
                sink.data(DataRecord {
                    addr,
                    cpu,
                    pid,
                    kernel,
                    write: e & WRITE != 0,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    fn fetch(addr: u64, cpu: u8, pid: u8, kernel: bool) -> FetchRecord {
        FetchRecord {
            addr,
            cpu,
            pid,
            kernel,
        }
    }

    fn data(addr: u64, cpu: u8, pid: u8, kernel: bool, write: bool) -> DataRecord {
        DataRecord {
            addr,
            cpu,
            pid,
            kernel,
            write,
        }
    }

    #[test]
    fn replay_reproduces_interleaved_records_exactly() {
        let mut buf = TraceBuffer::new();
        let mut direct = RecordingSink::default();
        let evs_f = [
            fetch(0x40_0000, 0, 0, false),
            fetch(crate::KERNEL_TEXT_BASE, 3, 7, true),
            fetch(MAX_TRACE_ADDR, 255, 255, false),
        ];
        let evs_d = [
            data(crate::SHARED_DATA_BASE, 1, 2, false, true),
            data(crate::PRIVATE_DATA_BASE + 8, 2, 5, true, false),
        ];
        buf.fetch(evs_f[0]);
        direct.fetch(evs_f[0]);
        buf.data(evs_d[0]);
        direct.data(evs_d[0]);
        buf.fetch(evs_f[1]);
        direct.fetch(evs_f[1]);
        buf.data(evs_d[1]);
        direct.data(evs_d[1]);
        buf.fetch(evs_f[2]);
        direct.fetch(evs_f[2]);

        assert_eq!(buf.len(), 5);
        assert_eq!(buf.size_bytes(), 40);
        let frozen = buf.freeze();
        let mut replayed = RecordingSink::default();
        frozen.replay(&mut replayed);
        assert_eq!(replayed.fetches, direct.fetches);
        assert_eq!(replayed.data, direct.data);
    }

    #[test]
    fn fetch_only_drops_data_events() {
        let mut buf = TraceBuffer::fetch_only();
        buf.fetch(fetch(0x1000, 0, 0, false));
        buf.data(data(0x2000, 0, 0, false, true));
        buf.fetch(fetch(0x1004, 0, 0, false));
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 2);
        let mut replayed = RecordingSink::default();
        frozen.replay(&mut replayed);
        assert_eq!(replayed.fetches.len(), 2);
        assert!(replayed.data.is_empty());
    }

    #[test]
    fn replay_is_repeatable_and_clones_share_storage() {
        let mut buf = TraceBuffer::new();
        for i in 0..100u64 {
            buf.fetch(fetch(0x40_0000 + i * 4, (i % 4) as u8, 0, i % 3 == 0));
        }
        let frozen = buf.freeze();
        let clone = frozen.clone();
        assert_eq!(clone.size_bytes(), frozen.size_bytes());
        let (mut a, mut b) = (RecordingSink::default(), RecordingSink::default());
        frozen.replay(&mut a);
        clone.replay(&mut b);
        assert_eq!(a.fetches, b.fetches);
        assert_eq!(a.fetches.len(), 100);
    }

    #[test]
    fn batched_fetch_run_is_bit_identical_to_per_record_stream() {
        // The block engine records straight-line runs via fetch_run; the
        // interpreter records one fetch per instruction. Both must pack
        // to the same events or the cross-engine oracle would be vacuous.
        let mut batched = TraceBuffer::new();
        let mut single = TraceBuffer::new();
        batched.fetch_run(fetch(0x40_0010, 2, 3, false), 5);
        for i in 0..5 {
            single.fetch(fetch(0x40_0010 + i * 4, 2, 3, false));
        }
        // Kernel-mode run, interleaved with a data record on both sides.
        batched.data(data(crate::SHARED_DATA_BASE, 2, 3, true, true));
        single.data(data(crate::SHARED_DATA_BASE, 2, 3, true, true));
        batched.fetch_run(fetch(crate::KERNEL_TEXT_BASE, 2, 3, true), 2);
        for i in 0..2 {
            single.fetch(fetch(crate::KERNEL_TEXT_BASE + i * 4, 2, 3, true));
        }
        let (a, b) = (batched.freeze(), single.freeze());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let (mut ra, mut rb) = (RecordingSink::default(), RecordingSink::default());
        a.replay(&mut ra);
        b.replay(&mut rb);
        assert_eq!(ra.fetches, rb.fetches);
        assert_eq!(ra.data, rb.data);
        // Kernel/user attribution survives the batched path.
        assert!(ra.fetches[..5].iter().all(|r| !r.kernel));
        assert!(ra.fetches[5..].iter().all(|r| r.kernel));
    }

    #[test]
    fn digest_distinguishes_different_traces() {
        let mut a = TraceBuffer::new();
        let mut b = TraceBuffer::new();
        a.fetch(fetch(0x40_0000, 0, 0, false));
        b.fetch(fetch(0x40_0004, 0, 0, false));
        let (fa, fb) = (a.freeze(), b.freeze());
        assert_ne!(fa, fb);
        assert_ne!(fa.digest(), fb.digest());
        assert_eq!(fa.digest().len(), 16);
    }

    #[test]
    fn empty_buffer_freezes_to_empty_trace() {
        let buf = TraceBuffer::new();
        assert!(buf.is_empty());
        let frozen = buf.freeze();
        assert!(frozen.is_empty());
        assert_eq!(frozen.len(), 0);
        let mut sink = RecordingSink::default();
        frozen.replay(&mut sink);
        assert!(sink.fetches.is_empty());
    }
}
