//! The instruction-at-a-time executor: one [`ExecCtx::step`] per
//! instruction, plus the plain interpreter loop built on it.
//!
//! This module is the **oracle**. `step` is a verbatim port of the
//! original decode-dispatch interpreter and is deliberately kept plain:
//! no pre-decoding, no fusion, no batching. The block-compiled tier
//! ([`crate::block`]) must be observationally identical to a loop of
//! `step` calls, and reuses `step` itself for every case it does not
//! compile (mid-block resumption after quantum expiry, returns landing
//! mid-block, uncompilable runs), so the two tiers cannot drift apart on
//! the hard paths.

use crate::hook::ExecHook;
use crate::machine::{rget, rset, Fault, Machine, Process, RunReport, Stop, SyscallDef};
use crate::sink::{DataRecord, FetchRecord, TraceSink};
use crate::{PRIVATE_DATA_BASE, PRIVATE_DATA_STRIDE, SHARED_DATA_BASE};
use codelayout_ir::{Image, LInstr, MemSpace, Operand};
use std::sync::Arc;

/// Everything one `exec` call needs, borrowed once from the [`Machine`]
/// so both executors share identical state access and accounting.
pub(crate) struct ExecCtx<'a> {
    pub(crate) app: &'a Image,
    pub(crate) kernel: Option<&'a Image>,
    pub(crate) syscalls: &'a [Option<SyscallDef>],
    pub(crate) p: &'a mut Process,
    pub(crate) shared: &'a mut [i64],
    pub(crate) now: u64,
    pub(crate) cpu: u8,
    pub(crate) pid8: u8,
    pub(crate) max_depth: usize,
    pub(crate) priv_base: u64,
    pub(crate) priv_mask: usize,
    pub(crate) shared_mask: usize,
    /// Instructions executed by this `exec` call so far.
    pub(crate) executed: u64,
    /// Kernel-mode instructions executed by this `exec` call so far.
    pub(crate) kernel_executed: u64,
    /// Syscalls dispatched by this `exec` call so far.
    pub(crate) syscalls_dispatched: u64,
}

impl<'a> ExecCtx<'a> {
    /// Borrows the machine's state for one `exec` call of process `pid`.
    /// `app`/`kernel` must be (derefs of) clones of the machine's image
    /// `Arc`s, taken before the process is mutably borrowed.
    pub(crate) fn new(
        m: &'a mut Machine,
        app: &'a Arc<Image>,
        kernel: Option<&'a Arc<Image>>,
        cpu: u8,
        pid: usize,
    ) -> Self {
        let max_depth = m.cfg.max_call_depth;
        let priv_base = PRIVATE_DATA_BASE + pid as u64 * PRIVATE_DATA_STRIDE;
        let shared_mask = m.shared.len() - 1;
        let now = m.now;
        let p = &mut m.procs[pid];
        let priv_mask = p.priv_mem.len() - 1;
        ExecCtx {
            app,
            kernel: kernel.map(Arc::as_ref),
            syscalls: &m.syscalls,
            p,
            shared: &mut m.shared,
            now,
            cpu,
            pid8: pid as u8,
            max_depth,
            priv_base,
            priv_mask,
            shared_mask,
            executed: 0,
            kernel_executed: 0,
            syscalls_dispatched: 0,
        }
    }

    /// Fires the one-time process-start block event.
    pub(crate) fn start_event<H: ExecHook>(&mut self, hook: &mut H) {
        if !self.p.started {
            self.p.started = true;
            hook.block(false, self.p.cur_block_user);
        }
    }

    /// Flushes this call's accounting into the report, consuming the
    /// context (releasing its machine borrows). Returns the executed
    /// instruction count for the caller to advance the machine clock.
    pub(crate) fn flush(self, report: &mut RunReport) -> u64 {
        report.instructions += self.executed;
        report.kernel_instrs += self.kernel_executed;
        report.user_instrs += self.executed - self.kernel_executed;
        report.syscalls += self.syscalls_dispatched;
        self.executed
    }

    /// Executes exactly one instruction. Returns `Some(stop)` when the
    /// process can no longer continue (the quantum is the caller's
    /// responsibility and is *not* checked here).
    #[allow(clippy::too_many_lines)]
    #[inline]
    pub(crate) fn step<S: TraceSink, H: ExecHook>(
        &mut self,
        sink: &mut S,
        hook: &mut H,
    ) -> Option<Stop> {
        let p = &mut *self.p;
        let kmode = p.kernel_mode;
        self.kernel_executed += u64::from(kmode);
        let image: &Image = if kmode {
            self.kernel.expect("kernel mode without kernel")
        } else {
            self.app
        };
        let pc = if kmode { p.kpc } else { p.pc };
        let Some(instr) = image.code.get(pc as usize) else {
            return Some(Stop::Faulted(Fault::PcOutOfRange));
        };
        sink.fetch(FetchRecord {
            addr: image.addr(pc),
            cpu: self.cpu,
            pid: self.pid8,
            kernel: kmode,
        });
        self.executed += 1;
        let cur_block = image.block_of[pc as usize];
        hook.tick(kmode, cur_block);

        // Default next pc: sequential.
        let mut next = pc + 1;
        let mut transferred = false;

        match instr {
            LInstr::Imm { dst, value } => {
                rset(&mut p.regs, *dst, *value);
            }
            LInstr::Mov { dst, src } => {
                let v = rget(&p.regs, *src);
                rset(&mut p.regs, *dst, v);
            }
            LInstr::Bin { op, dst, lhs, rhs } => {
                let l = rget(&p.regs, *lhs);
                let r = operand(&p.regs, *rhs);
                rset(&mut p.regs, *dst, op.apply(l, r));
            }
            LInstr::Load {
                dst,
                base,
                offset,
                space,
            } => {
                let idx = (rget(&p.regs, *base).wrapping_add(*offset as i64)) as usize;
                let (val, addr) = match space {
                    MemSpace::Private => {
                        let i = idx & self.priv_mask;
                        (p.priv_mem[i], self.priv_base + (i as u64) * 8)
                    }
                    MemSpace::Shared => {
                        let i = idx & self.shared_mask;
                        (self.shared[i], SHARED_DATA_BASE + (i as u64) * 8)
                    }
                };
                rset(&mut p.regs, *dst, val);
                sink.data(DataRecord {
                    addr,
                    cpu: self.cpu,
                    pid: self.pid8,
                    kernel: kmode,
                    write: false,
                });
            }
            LInstr::Store {
                src,
                base,
                offset,
                space,
            } => {
                let idx = (rget(&p.regs, *base).wrapping_add(*offset as i64)) as usize;
                let val = rget(&p.regs, *src);
                let addr = match space {
                    MemSpace::Private => {
                        let i = idx & self.priv_mask;
                        p.priv_mem[i] = val;
                        self.priv_base + (i as u64) * 8
                    }
                    MemSpace::Shared => {
                        let i = idx & self.shared_mask;
                        self.shared[i] = val;
                        SHARED_DATA_BASE + (i as u64) * 8
                    }
                };
                sink.data(DataRecord {
                    addr,
                    cpu: self.cpu,
                    pid: self.pid8,
                    kernel: kmode,
                    write: true,
                });
            }
            LInstr::AtomicRmw {
                op,
                dst,
                base,
                offset,
                src,
                space,
            } => {
                let idx = (rget(&p.regs, *base).wrapping_add(*offset as i64)) as usize;
                let rhs = rget(&p.regs, *src);
                let addr = match space {
                    MemSpace::Private => {
                        let i = idx & self.priv_mask;
                        let old = p.priv_mem[i];
                        p.priv_mem[i] = op.apply(old, rhs);
                        rset(&mut p.regs, *dst, old);
                        self.priv_base + (i as u64) * 8
                    }
                    MemSpace::Shared => {
                        let i = idx & self.shared_mask;
                        let old = self.shared[i];
                        self.shared[i] = op.apply(old, rhs);
                        rset(&mut p.regs, *dst, old);
                        SHARED_DATA_BASE + (i as u64) * 8
                    }
                };
                sink.data(DataRecord {
                    addr,
                    cpu: self.cpu,
                    pid: self.pid8,
                    kernel: kmode,
                    write: true,
                });
            }
            LInstr::Emit { src } => {
                let v = rget(&p.regs, *src);
                p.emitted.push(v);
            }
            LInstr::Nop => {}
            LInstr::Br { target } => {
                next = *target;
                transferred = true;
            }
            LInstr::BrCond {
                cond,
                reg,
                rhs,
                target,
            } => {
                let l = rget(&p.regs, *reg);
                let r = operand(&p.regs, *rhs);
                if cond.eval(l, r) {
                    next = *target;
                    transferred = true;
                }
            }
            LInstr::JmpTbl {
                reg,
                table,
                default,
            } => {
                let v = rget(&p.regs, *reg);
                next = if v >= 0 && (v as usize) < table.len() {
                    table[v as usize]
                } else {
                    *default
                };
                transferred = true;
            }
            LInstr::Call { callee, target } => {
                let stack = if kmode { &mut p.kstack } else { &mut p.stack };
                if stack.len() >= self.max_depth {
                    return Some(Stop::Faulted(Fault::CallDepthExceeded));
                }
                stack.push(pc + 1);
                hook.call(kmode, cur_block, *callee);
                let entry_block = image.block_of[*target as usize];
                hook.block(kmode, entry_block);
                if kmode {
                    p.kpc = *target;
                    p.cur_block_kernel = entry_block;
                } else {
                    p.pc = *target;
                    p.cur_block_user = entry_block;
                }
                return None;
            }
            LInstr::Ret => {
                // Returning normally lands mid-block (after the call
                // instruction). But when a call is the *last* body
                // instruction of a block whose jump terminator was
                // fall-through-eliminated, the return address is the
                // first instruction of the next block: that IS a block
                // entry (the eliminated jump's flow edge), and
                // profilers must see it.
                if kmode {
                    match p.kstack.pop() {
                        Some(r) => {
                            let kimg = self.kernel.expect("kernel mode without kernel");
                            p.kpc = r;
                            let nb = kimg.block_of[r as usize];
                            if kimg.block_start[nb.index()] == r {
                                let from = kimg.block_of[r as usize - 1];
                                hook.edge(true, from, nb);
                                hook.block(true, nb);
                            }
                            p.cur_block_kernel = nb;
                        }
                        None => {
                            // Kernel service finished: back to user mode.
                            // Restore the banked user registers,
                            // forwarding r0 when this entry was a
                            // syscall.
                            p.kernel_mode = false;
                            let r0 = p.regs[0];
                            p.regs = p.saved_regs;
                            if p.kernel_returns_r0 {
                                p.regs[0] = r0;
                            }
                            if p.pending_block > 0 {
                                p.blocked_until = self.now + self.executed + p.pending_block;
                                p.pending_block = 0;
                                return Some(Stop::Blocked);
                            }
                        }
                    }
                } else {
                    match p.stack.pop() {
                        Some(r) => {
                            p.pc = r;
                            let nb = self.app.block_of[r as usize];
                            if self.app.block_start[nb.index()] == r {
                                let from = self.app.block_of[r as usize - 1];
                                hook.edge(false, from, nb);
                                hook.block(false, nb);
                            }
                            p.cur_block_user = nb;
                        }
                        None => {
                            // Entry procedure returned: process done.
                            p.halted = true;
                            return Some(Stop::Halted);
                        }
                    }
                }
                return None;
            }
            LInstr::Syscall { code } => {
                if kmode {
                    return Some(Stop::Faulted(Fault::SyscallInKernel));
                }
                p.pc = next;
                p.syscalls += 1;
                self.syscalls_dispatched += 1;
                if let Some(kimg) = self.kernel {
                    let def = self.syscalls.get(*code as usize).copied().flatten();
                    let Some(def) = def else {
                        return Some(Stop::Faulted(Fault::UnknownSyscall(*code)));
                    };
                    // Inline kernel entry (cannot call Machine::enter_kernel
                    // while `p` is borrowed; replicate).
                    p.kernel_mode = true;
                    p.saved_regs = p.regs;
                    p.kernel_returns_r0 = true;
                    p.kpc = kimg.proc_entry[def.proc.index()];
                    p.kstack.clear();
                    p.pending_block = def.block_instrs;
                    let eb = kimg.block_of[p.kpc as usize];
                    p.cur_block_kernel = eb;
                    hook.block(true, eb);
                } else {
                    // No kernel: emulate as `r0 = 0`.
                    p.regs[0] = 0;
                }
                return None;
            }
            LInstr::Halt => {
                p.halted = true;
                return Some(Stop::Halted);
            }
        }

        // Sequential or branch advance; detect block entry.
        if (next as usize) >= image.code.len() {
            return Some(Stop::Faulted(Fault::PcOutOfRange));
        }
        let new_block = image.block_of[next as usize];
        if transferred || new_block != cur_block {
            hook.edge(kmode, cur_block, new_block);
            hook.block(kmode, new_block);
            if kmode {
                p.cur_block_kernel = new_block;
            } else {
                p.cur_block_user = new_block;
            }
        }
        if kmode {
            p.kpc = next;
        } else {
            p.pc = next;
        }
        None
    }
}

/// The plain interpreter tier: a quantum-checked loop of [`ExecCtx::step`].
pub(crate) fn interp_exec<S: TraceSink, H: ExecHook>(
    m: &mut Machine,
    cpu: u8,
    pid: usize,
    quantum: u64,
    sink: &mut S,
    hook: &mut H,
    report: &mut RunReport,
) -> Stop {
    let app = Arc::clone(&m.app);
    let kernel = m.kernel.clone();
    let mut ctx = ExecCtx::new(m, &app, kernel.as_ref(), cpu, pid);
    ctx.start_event(hook);
    let outcome = loop {
        if ctx.executed >= quantum {
            break Stop::Quantum;
        }
        if let Some(stop) = ctx.step(sink, hook) {
            break stop;
        }
    };
    let executed = ctx.flush(report);
    m.now += executed;
    outcome
}

/// Reads a register-or-immediate operand.
#[inline]
pub(crate) fn operand(regs: &[i64; 32], op: Operand) -> i64 {
    match op {
        Operand::Reg(r) => rget(regs, r),
        Operand::Imm(v) => v,
    }
}
