//! Trace sinks: consumers of the per-instruction event stream.

/// One instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRecord {
    /// Byte address of the fetched instruction.
    pub addr: u64,
    /// Executing CPU.
    pub cpu: u8,
    /// Executing process id.
    pub pid: u8,
    /// True when executing kernel text.
    pub kernel: bool,
}

/// One data memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRecord {
    /// Byte address of the accessed word.
    pub addr: u64,
    /// Executing CPU.
    pub cpu: u8,
    /// Executing process id.
    pub pid: u8,
    /// True when executing kernel text.
    pub kernel: bool,
    /// True for stores and atomic read-modify-writes.
    pub write: bool,
}

/// Consumes the execution trace of a [`crate::Machine`] run.
///
/// The machine calls `fetch` once per executed instruction, in execution
/// order, and `data` once per memory access. Implementations are typically
/// cache simulators; a fan-out implementation can feed dozens of cache
/// configurations from one run.
pub trait TraceSink {
    /// Called for every executed instruction.
    fn fetch(&mut self, rec: FetchRecord);
    /// Called for every data memory access. Default: ignored.
    fn data(&mut self, rec: DataRecord) {
        let _ = rec;
    }
    /// Delivers `n` consecutive instruction fetches starting at `first`,
    /// each [`codelayout_ir::INSTR_BYTES`] past the previous, all with
    /// `first`'s cpu/pid/kernel attribution. The block-compiled engine
    /// uses this for straight-line runs; the default expands to `n`
    /// [`TraceSink::fetch`] calls, so every sink observes the identical
    /// record stream whether or not it overrides this.
    #[inline]
    fn fetch_run(&mut self, first: FetchRecord, n: u64) {
        let mut rec = first;
        for _ in 0..n {
            self.fetch(rec);
            rec.addr += codelayout_ir::INSTR_BYTES;
        }
    }
}

/// Discards the trace. Useful for pure-semantics runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn fetch(&mut self, _rec: FetchRecord) {}

    #[inline]
    fn fetch_run(&mut self, _first: FetchRecord, _n: u64) {}
}

/// Counts fetches and data accesses without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Instructions fetched.
    pub fetches: u64,
    /// Instructions fetched in kernel mode.
    pub kernel_fetches: u64,
    /// Data reads.
    pub reads: u64,
    /// Data writes.
    pub writes: u64,
}

impl TraceSink for CountingSink {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        self.fetches += 1;
        self.kernel_fetches += u64::from(rec.kernel);
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        if rec.write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }

    #[inline]
    fn fetch_run(&mut self, first: FetchRecord, n: u64) {
        self.fetches += n;
        self.kernel_fetches += n * u64::from(first.kernel);
    }
}

/// Stores the whole trace in memory. Only suitable for short runs (tests).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// All fetch records, in order.
    pub fetches: Vec<FetchRecord>,
    /// All data records, in order.
    pub data: Vec<DataRecord>,
}

impl TraceSink for RecordingSink {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        self.fetches.push(rec);
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        self.data.push(rec);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        (**self).fetch(rec);
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        (**self).data(rec);
    }

    #[inline]
    fn fetch_run(&mut self, first: FetchRecord, n: u64) {
        (**self).fetch_run(first, n);
    }
}

/// Feeds two sinks from one trace; nests for arbitrary fan-out.
#[derive(Debug, Clone, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        self.0.fetch(rec);
        self.1.fetch(rec);
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        self.0.data(rec);
        self.1.data(rec);
    }

    #[inline]
    fn fetch_run(&mut self, first: FetchRecord, n: u64) {
        self.0.fetch_run(first, n);
        self.1.fetch_run(first, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(addr: u64, kernel: bool) -> FetchRecord {
        FetchRecord {
            addr,
            cpu: 0,
            pid: 0,
            kernel,
        }
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.fetch(f(0, false));
        s.fetch(f(4, true));
        s.data(DataRecord {
            addr: 8,
            cpu: 0,
            pid: 0,
            kernel: false,
            write: true,
        });
        s.data(DataRecord {
            addr: 8,
            cpu: 0,
            pid: 0,
            kernel: false,
            write: false,
        });
        assert_eq!(s.fetches, 2);
        assert_eq!(s.kernel_fetches, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn tee_feeds_both() {
        let mut t = TeeSink(CountingSink::default(), RecordingSink::default());
        t.fetch(f(16, false));
        assert_eq!(t.0.fetches, 1);
        assert_eq!(t.1.fetches.len(), 1);
    }

    #[test]
    fn default_fetch_run_expands_to_consecutive_fetches() {
        let mut rec = RecordingSink::default();
        rec.fetch_run(f(0x40_0000, false), 3);
        let addrs: Vec<u64> = rec.fetches.iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0x40_0000, 0x40_0004, 0x40_0008]);
    }

    #[test]
    fn counting_fetch_run_matches_expanded_stream() {
        let mut batched = CountingSink::default();
        let mut expanded = CountingSink::default();
        batched.fetch_run(f(0x100, true), 5);
        for i in 0..5 {
            expanded.fetch(f(0x100 + i * 4, true));
        }
        assert_eq!(batched, expanded);
    }

    #[test]
    fn tee_fetch_run_feeds_both_identically() {
        let mut t = TeeSink(CountingSink::default(), RecordingSink::default());
        t.fetch_run(f(0x40, false), 4);
        assert_eq!(t.0.fetches, 4);
        assert_eq!(t.1.fetches.len(), 4);
        assert_eq!(t.1.fetches[3].addr, 0x4c);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        let mut c = CountingSink::default();
        {
            let r: &mut CountingSink = &mut c;
            r.fetch(f(0, false));
        }
        assert_eq!(c.fetches, 1);
    }
}
