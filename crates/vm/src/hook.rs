//! Execution hooks: block/edge/call observation for profilers.

use codelayout_ir::{BlockId, ProcId};

/// Receives control-flow events during execution. This is the instrumentation
/// interface the Pixie-style profiler in `codelayout-profile` plugs into.
///
/// Events distinguish the application and kernel images via the `kernel`
/// flag; block and procedure ids are image-local.
pub trait ExecHook {
    /// A basic block began executing (including procedure entries).
    fn block(&mut self, kernel: bool, block: BlockId) {
        let _ = (kernel, block);
    }

    /// Control flowed from `from` to `to` via a terminator (jump, branch
    /// outcome, or table jump). Call/return transitions are *not* edges.
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        let _ = (kernel, from, to);
    }

    /// A call instruction in `from_block` invoked procedure `callee`.
    fn call(&mut self, kernel: bool, from_block: BlockId, callee: ProcId) {
        let _ = (kernel, from_block, callee);
    }

    /// One clock tick: an instruction finished executing. Used by the
    /// sampling (DCPI-style) profiler; `block` is the block the retiring
    /// instruction belongs to.
    fn tick(&mut self, kernel: bool, block: BlockId) {
        let _ = (kernel, block);
    }

    /// `n` consecutive ticks, all attributed to the same `block` and
    /// mode. The block-compiled engine uses this for straight-line runs
    /// (a run never crosses a block boundary, so every retiring
    /// instruction belongs to one block). The default expands to `n`
    /// [`ExecHook::tick`] calls, so samplers observe the identical tick
    /// stream whether or not they override this.
    #[inline]
    fn tick_run(&mut self, kernel: bool, block: BlockId, n: u64) {
        for _ in 0..n {
            self.tick(kernel, block);
        }
    }
}

/// A hook that observes nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHook;

impl ExecHook for NullHook {}

/// Feeds two hooks from one execution; nests for arbitrary fan-out (for
/// example a user-stream and a kernel-stream profiler in one run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairHook<A, B>(pub A, pub B);

impl<A: ExecHook, B: ExecHook> ExecHook for PairHook<A, B> {
    #[inline]
    fn block(&mut self, kernel: bool, block: BlockId) {
        self.0.block(kernel, block);
        self.1.block(kernel, block);
    }

    #[inline]
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        self.0.edge(kernel, from, to);
        self.1.edge(kernel, from, to);
    }

    #[inline]
    fn call(&mut self, kernel: bool, from_block: BlockId, callee: ProcId) {
        self.0.call(kernel, from_block, callee);
        self.1.call(kernel, from_block, callee);
    }

    #[inline]
    fn tick(&mut self, kernel: bool, block: BlockId) {
        self.0.tick(kernel, block);
        self.1.tick(kernel, block);
    }

    #[inline]
    fn tick_run(&mut self, kernel: bool, block: BlockId, n: u64) {
        self.0.tick_run(kernel, block, n);
        self.1.tick_run(kernel, block, n);
    }
}

impl<H: ExecHook + ?Sized> ExecHook for &mut H {
    #[inline]
    fn block(&mut self, kernel: bool, block: BlockId) {
        (**self).block(kernel, block);
    }

    #[inline]
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        (**self).edge(kernel, from, to);
    }

    #[inline]
    fn call(&mut self, kernel: bool, from_block: BlockId, callee: ProcId) {
        (**self).call(kernel, from_block, callee);
    }

    #[inline]
    fn tick(&mut self, kernel: bool, block: BlockId) {
        (**self).tick(kernel, block);
    }

    #[inline]
    fn tick_run(&mut self, kernel: bool, block: BlockId, n: u64) {
        (**self).tick_run(kernel, block, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter(u64);

    impl ExecHook for Counter {
        fn block(&mut self, _k: bool, _b: BlockId) {
            self.0 += 1;
        }
    }

    /// Records every tick individually, so tests can compare a batched
    /// `tick_run` stream against the per-instruction one.
    #[derive(Default, Debug, PartialEq, Eq)]
    struct TickLog(Vec<(bool, BlockId)>);

    impl ExecHook for TickLog {
        fn tick(&mut self, kernel: bool, block: BlockId) {
            self.0.push((kernel, block));
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut h = NullHook;
        h.block(false, BlockId(0));
        h.edge(false, BlockId(0), BlockId(1));
        h.call(true, BlockId(0), ProcId(0));
        h.tick(false, BlockId(0));
        h.tick_run(true, BlockId(2), 7);
    }

    #[test]
    fn mut_ref_delegates() {
        let mut c = Counter::default();
        {
            let r: &mut Counter = &mut c;
            r.block(false, BlockId(3));
        }
        assert_eq!(c.0, 1);
    }

    #[test]
    fn default_tick_run_expands_to_ticks() {
        let mut batched = TickLog::default();
        let mut expanded = TickLog::default();
        batched.tick_run(true, BlockId(5), 3);
        for _ in 0..3 {
            expanded.tick(true, BlockId(5));
        }
        assert_eq!(batched, expanded);
        assert_eq!(batched.0.len(), 3);
    }

    #[test]
    fn pair_hook_tick_run_reaches_both_sides() {
        let mut pair = PairHook(TickLog::default(), TickLog::default());
        pair.tick_run(false, BlockId(1), 4);
        assert_eq!(pair.0, pair.1);
        assert_eq!(pair.0 .0.len(), 4);
    }

    #[test]
    fn mut_ref_tick_run_delegates() {
        let mut log = TickLog::default();
        {
            let r: &mut TickLog = &mut log;
            r.tick_run(false, BlockId(9), 2);
        }
        assert_eq!(log.0, vec![(false, BlockId(9)), (false, BlockId(9))]);
    }
}
