//! Deterministic multi-process virtual machine for `codelayout` images.
//!
//! The machine models the execution environment the paper measured: several
//! database *server processes* per CPU running one shared application text
//! image, trapping into a *kernel* image for system services, with
//! round-robin quantum scheduling and blocking I/O. Every executed
//! instruction is streamed to a [`TraceSink`] as a fetch record (plus data
//! records for memory instructions), which is exactly the trace format the
//! paper fed to its instruction-cache simulators.
//!
//! Determinism: given the same images, configuration and initial memory, a
//! run produces a bit-identical instruction trace. There is no wall-clock or
//! host randomness anywhere in the interpreter.
//!
//! # Example
//!
//! ```
//! use codelayout_ir::{ProcBuilder, ProgramBuilder, Reg, Layout};
//! use codelayout_vm::{Machine, MachineConfig, CountingSink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new("hello");
//! let main = pb.declare_proc("main");
//! let mut f = ProcBuilder::new();
//! f.imm(Reg(1), 42).emit(Reg(1));
//! f.halt();
//! pb.define_proc(main, f)?;
//! let program = pb.finish(main)?;
//! let image = codelayout_ir::link::link(&program, &Layout::natural(&program), 0x40_0000)?;
//!
//! let mut m = Machine::new(image.into(), MachineConfig::default());
//! let mut sink = CountingSink::default();
//! let report = m.run(&mut sink, 1_000_000);
//! assert_eq!(report.faults.len(), 0);
//! assert_eq!(m.emitted(0), &[42]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod cache;
mod exec;
mod hook;
mod machine;
mod sink;
mod trace;

pub use hook::{ExecHook, NullHook, PairHook};
pub use machine::{Fault, Machine, MachineConfig, RunReport, SyscallDef, VmEngine};
pub use sink::{
    CountingSink, DataRecord, FetchRecord, NullSink, RecordingSink, TeeSink, TraceSink,
};
pub use trace::{FrozenTrace, TraceBuffer, MAX_TRACE_ADDR};

/// Base byte address of application text segments.
pub const APP_TEXT_BASE: u64 = 0x0040_0000;
/// Base byte address of kernel text segments.
pub const KERNEL_TEXT_BASE: u64 = 0x8000_0000;
/// Base byte address of the shared data region.
pub const SHARED_DATA_BASE: u64 = 0x2000_0000;
/// Base byte address of per-process private data regions.
pub const PRIVATE_DATA_BASE: u64 = 0x4000_0000;
/// Byte stride between per-process private regions.
pub const PRIVATE_DATA_STRIDE: u64 = 0x0100_0000;

/// FNV-1a checksum over a word slice; used to compare architectural state
/// across different code layouts.
pub fn checksum_words(words: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let a = checksum_words(&[1, 2, 3]);
        let b = checksum_words(&[3, 2, 1]);
        assert_ne!(a, b);
        assert_eq!(a, checksum_words(&[1, 2, 3]));
        assert_ne!(checksum_words(&[]), 0);
    }
}
