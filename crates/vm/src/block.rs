//! The block-compiled execution tier.
//!
//! A linked [`Image`] is pre-decoded once into a [`CompiledImage`]: for
//! every basic block, the instructions are lowered to a flat
//! superinstruction stream ([`COp`]) with operands already masked,
//! memory space and base pre-selected, immediate offsets pre-widened,
//! and common pairs fused (`Imm`+`Bin`, `Imm`+`Imm`, `Load`+use).
//! Block extents are additionally split at **every** control-transfer
//! instruction (`Call`, `Syscall`, `Br`, `BrCond`, `JmpTbl`, `Ret`,
//! `Halt`) into **runs** — the linker's extents legitimately contain
//! internal guard branches, so one block can span several runs — which
//! makes every resumption point the scheduler, a branch, or a `Ret` can
//! land on (block entries, branch targets, post-call and post-syscall
//! continuations) itself a run entry. Fall-through and transfer targets
//! are resolved to `(pc, BlockId)` pairs at compile time, pending
//! instruction fetches fold into the next memory op's record, and
//! straight-line tails are emitted as one batched
//! [`TraceSink::fetch_run`] call — placed so that data records keep
//! their exact position in the stream. A non-stopping terminator chains
//! directly into the successor run while the remaining quantum covers
//! it, without returning to the dispatch loop.
//!
//! **Oracle contract:** executing a run is observationally identical —
//! same sink records, same hook events, same architectural effects,
//! same fault points — to executing its instructions one at a time with
//! [`ExecCtx::step`]. Anything the compiler cannot prove it can
//! reproduce exactly (a block whose fall-through leaves the text
//! segment, an unresolvable transfer target) is simply not registered
//! in the run table, and the engine falls back to `step` for it. The
//! same fallback executes mid-run entry points (quantum-expiry
//! resumption, returns landing mid-block), which guarantees exact
//! equivalence on those paths by construction.

use crate::exec::ExecCtx;
use crate::hook::ExecHook;
use crate::machine::{rget, rset, Fault, Machine, RunReport, Stop};
use crate::sink::{DataRecord, FetchRecord, TraceSink};
use crate::SHARED_DATA_BASE;
use codelayout_ir::{BinOp, BlockId, Cond, Image, LInstr, MemSpace, Operand, ProcId, Reg};
use std::sync::Arc;

/// Sentinel in the run table: this pc is not a run entry.
const NO_RUN: u32 = u32::MAX;

/// Register-or-immediate operand with the immediate pre-widened.
#[derive(Debug, Clone, Copy)]
enum CRhs {
    R(Reg),
    I(i64),
}

#[inline(always)]
fn crhs(regs: &[i64; 32], r: CRhs) -> i64 {
    match r {
        CRhs::R(reg) => rget(regs, reg),
        CRhs::I(v) => v,
    }
}

impl CRhs {
    fn of(op: Operand) -> CRhs {
        match op {
            Operand::Reg(r) => CRhs::R(r),
            Operand::Imm(v) => CRhs::I(v),
        }
    }
}

/// One pre-decoded superinstruction.
#[derive(Debug, Clone)]
enum COp {
    /// Emit `n` consecutive instruction-fetch records. Placed so the
    /// sink's fetch/data interleaving matches the interpreter exactly;
    /// `Nop`s contribute a fetch but no operation.
    Fetch {
        n: u32,
    },
    Imm {
        dst: Reg,
        val: i64,
    },
    /// Fused `Imm` + `Imm`.
    Imm2 {
        d1: Reg,
        v1: i64,
        d2: Reg,
        v2: i64,
    },
    /// Fused `Imm` + `Bin` whose rhs register is the just-written
    /// immediate destination.
    ImmBin {
        imm_dst: Reg,
        imm: i64,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
    },
    Mov {
        dst: Reg,
        src: Reg,
    },
    BinRR {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    BinRI {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        imm: i64,
    },
    LoadPriv {
        nf: u32,
        dst: Reg,
        base: Reg,
        off: i64,
    },
    LoadShared {
        nf: u32,
        dst: Reg,
        base: Reg,
        off: i64,
    },
    /// Fused load + `Bin` whose lhs is the just-loaded destination.
    LoadOpPriv {
        nf: u32,
        dst: Reg,
        base: Reg,
        off: i64,
        op: BinOp,
        bdst: Reg,
        rhs: CRhs,
    },
    LoadOpShared {
        nf: u32,
        dst: Reg,
        base: Reg,
        off: i64,
        op: BinOp,
        bdst: Reg,
        rhs: CRhs,
    },
    StorePriv {
        nf: u32,
        src: Reg,
        base: Reg,
        off: i64,
    },
    StoreShared {
        nf: u32,
        src: Reg,
        base: Reg,
        off: i64,
    },
    RmwPriv {
        nf: u32,
        op: BinOp,
        dst: Reg,
        base: Reg,
        off: i64,
        src: Reg,
    },
    RmwShared {
        nf: u32,
        op: BinOp,
        dst: Reg,
        base: Reg,
        off: i64,
        src: Reg,
    },
    Emit {
        src: Reg,
    },
}

/// How a run ends, with every target pre-resolved to `(pc, block)`.
#[derive(Debug, Clone)]
enum CTerm {
    /// The run's last instruction is a plain body instruction and the
    /// next pc starts a different block (fall-through edge). Carries no
    /// instruction of its own.
    FallThrough {
        next_pc: u32,
        next_block: BlockId,
    },
    Jump {
        target: u32,
        block: BlockId,
    },
    Branch {
        cond: Cond,
        reg: Reg,
        rhs: CRhs,
        taken: u32,
        taken_block: BlockId,
        fall: u32,
        fall_block: BlockId,
    },
    JmpTbl {
        reg: Reg,
        targets: Box<[(u32, BlockId)]>,
        default: u32,
        default_block: BlockId,
    },
    Call {
        callee: ProcId,
        target: u32,
        target_block: BlockId,
        ret_pc: u32,
    },
    Syscall {
        code: u16,
        ret_pc: u32,
    },
    Ret,
    Halt,
}

/// A maximal straight-line run: part of one basic block, ending at the
/// block terminator or at a `Call`/`Syscall`.
#[derive(Debug, Clone)]
struct CRun {
    ops: (u32, u32),
    /// Byte address of the run's first instruction (base pre-applied).
    first_addr: u64,
    /// Instructions this run covers, including a real terminator
    /// instruction (but not a fall-through, which has none).
    n_instrs: u32,
    /// Pc of the terminator instruction. The interpreter leaves the
    /// process pc pointing at the instruction that stopped it (halt,
    /// fault, blocking return); stop paths restore this to match.
    /// Meaningless for a fall-through (which has no terminator).
    term_pc: u32,
    block: BlockId,
    term: CTerm,
}

/// A fully pre-decoded image: the run table plus the flattened
/// superinstruction stream. Immutable once built; shared via the
/// process-wide code cache ([`crate::cache`]).
#[derive(Debug)]
pub(crate) struct CompiledImage {
    /// `run_at[pc]` = run index, or [`NO_RUN`].
    run_at: Vec<u32>,
    runs: Vec<CRun>,
    ops: Vec<COp>,
    /// Heap bytes held by jump-table targets.
    table_bytes: usize,
}

impl CompiledImage {
    /// Pre-decodes every basic block of `image`.
    pub(crate) fn compile(image: &Image) -> CompiledImage {
        let n = image.code.len();
        let mut out = CompiledImage {
            run_at: vec![NO_RUN; n],
            runs: Vec::new(),
            ops: Vec::new(),
            table_bytes: 0,
        };
        // Blocks occupy contiguous pc ranges; walk the block_of runs.
        let mut i = 0usize;
        while i < n {
            let b = image.block_of[i];
            let mut j = i + 1;
            while j < n && image.block_of[j] == b {
                j += 1;
            }
            out.compile_extent(image, i, j, b);
            i = j;
        }
        out
    }

    /// Number of compiled runs.
    pub(crate) fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Approximate resident bytes of the compiled form.
    pub(crate) fn size_bytes(&self) -> usize {
        self.run_at.len() * std::mem::size_of::<u32>()
            + self.runs.len() * std::mem::size_of::<CRun>()
            + self.ops.len() * std::mem::size_of::<COp>()
            + self.table_bytes
    }

    #[inline]
    fn run_index(&self, pc: u32) -> Option<u32> {
        match self.run_at.get(pc as usize) {
            Some(&ri) if ri != NO_RUN => Some(ri),
            _ => None,
        }
    }

    /// Compiles one block extent `[s, e)` into runs, splitting at every
    /// control-transfer instruction — `Call`/`Syscall` continuations and
    /// the fall-through side of a mid-extent `Br`/`BrCond` are run
    /// entries of their own. Bails out (leaving the remainder to the
    /// interpreter) on anything it cannot reproduce exactly.
    fn compile_extent(&mut self, image: &Image, s: usize, e: usize, b: BlockId) {
        let code = &image.code;
        let n = code.len();
        let resolve = |pc: u32| -> Option<(u32, BlockId)> {
            ((pc as usize) < n).then(|| (pc, image.block_of[pc as usize]))
        };
        let mut run_start = s;
        for (k, instr) in code.iter().enumerate().take(e).skip(s) {
            let term = match instr {
                LInstr::Call { callee, target } => {
                    let Some((target, target_block)) = resolve(*target) else {
                        return;
                    };
                    CTerm::Call {
                        callee: *callee,
                        target,
                        target_block,
                        ret_pc: k as u32 + 1,
                    }
                }
                LInstr::Syscall { code: sc } => CTerm::Syscall {
                    code: *sc,
                    ret_pc: k as u32 + 1,
                },
                LInstr::Br { target } => {
                    let Some((target, block)) = resolve(*target) else {
                        return;
                    };
                    CTerm::Jump { target, block }
                }
                LInstr::BrCond {
                    cond,
                    reg,
                    rhs,
                    target,
                } => {
                    let Some((taken, taken_block)) = resolve(*target) else {
                        return;
                    };
                    let Some((fall, fall_block)) = resolve(k as u32 + 1) else {
                        return;
                    };
                    CTerm::Branch {
                        cond: *cond,
                        reg: *reg,
                        rhs: CRhs::of(*rhs),
                        taken,
                        taken_block,
                        fall,
                        fall_block,
                    }
                }
                LInstr::JmpTbl {
                    reg,
                    table,
                    default,
                } => {
                    let mut targets = Vec::with_capacity(table.len());
                    for &t in table.iter() {
                        let Some(rt) = resolve(t) else { return };
                        targets.push(rt);
                    }
                    let Some((default, default_block)) = resolve(*default) else {
                        return;
                    };
                    self.table_bytes += targets.len() * std::mem::size_of::<(u32, BlockId)>();
                    CTerm::JmpTbl {
                        reg: *reg,
                        targets: targets.into_boxed_slice(),
                        default,
                        default_block,
                    }
                }
                LInstr::Ret => CTerm::Ret,
                LInstr::Halt => CTerm::Halt,
                _ => continue,
            };
            self.push_run(image, run_start, k, (k - run_start + 1) as u32, b, term);
            run_start = k + 1;
        }
        if run_start >= e {
            return; // extent ended with a control transfer
        }
        // Trailing body instructions: fall-through edge to the next
        // block (if there is no next instruction, the interpreter's
        // mid-run PcOutOfRange cannot be batched).
        let Some((next_pc, next_block)) = resolve(e as u32) else {
            return;
        };
        self.push_run(
            image,
            run_start,
            e,
            (e - run_start) as u32,
            b,
            CTerm::FallThrough {
                next_pc,
                next_block,
            },
        );
    }

    /// Lowers the body `[start, body_end)` plus terminator into the op
    /// stream and registers the run at `start`.
    fn push_run(
        &mut self,
        image: &Image,
        start: usize,
        body_end: usize,
        n_instrs: u32,
        block: BlockId,
        term: CTerm,
    ) {
        debug_assert!(n_instrs >= 1);
        let code = &image.code;
        let ops_start = self.ops.len() as u32;
        // `pending` counts instruction fetches not yet emitted; a fetch
        // batch is flushed immediately before every data-emitting op so
        // the sink's fetch/data interleaving matches the interpreter.
        let mut pending: u32 = 0;
        let mut k = start;
        while k < body_end {
            let nxt = if k + 1 < body_end {
                Some(&code[k + 1])
            } else {
                None
            };
            match &code[k] {
                LInstr::Imm { dst, value } => {
                    if let Some(LInstr::Bin {
                        op,
                        dst: bdst,
                        lhs,
                        rhs: Operand::Reg(r),
                    }) = nxt
                    {
                        if r == dst {
                            self.ops.push(COp::ImmBin {
                                imm_dst: *dst,
                                imm: *value,
                                op: *op,
                                dst: *bdst,
                                lhs: *lhs,
                            });
                            pending += 2;
                            k += 2;
                            continue;
                        }
                    }
                    if let Some(LInstr::Imm { dst: d2, value: v2 }) = nxt {
                        self.ops.push(COp::Imm2 {
                            d1: *dst,
                            v1: *value,
                            d2: *d2,
                            v2: *v2,
                        });
                        pending += 2;
                        k += 2;
                        continue;
                    }
                    self.ops.push(COp::Imm {
                        dst: *dst,
                        val: *value,
                    });
                    pending += 1;
                    k += 1;
                }
                LInstr::Mov { dst, src } => {
                    self.ops.push(COp::Mov {
                        dst: *dst,
                        src: *src,
                    });
                    pending += 1;
                    k += 1;
                }
                LInstr::Bin { op, dst, lhs, rhs } => {
                    self.ops.push(match rhs {
                        Operand::Reg(r) => COp::BinRR {
                            op: *op,
                            dst: *dst,
                            lhs: *lhs,
                            rhs: *r,
                        },
                        Operand::Imm(v) => COp::BinRI {
                            op: *op,
                            dst: *dst,
                            lhs: *lhs,
                            imm: *v,
                        },
                    });
                    pending += 1;
                    k += 1;
                }
                LInstr::Load {
                    dst,
                    base,
                    offset,
                    space,
                } => {
                    let off = *offset as i64;
                    // Fuse a following Bin that consumes the loaded value.
                    let fused = match nxt {
                        Some(LInstr::Bin {
                            op,
                            dst: bdst,
                            lhs,
                            rhs,
                        }) if lhs == dst => Some((*op, *bdst, CRhs::of(*rhs))),
                        _ => None,
                    };
                    let nf = pending + 1;
                    pending = 0;
                    match (space, fused) {
                        (MemSpace::Private, None) => self.ops.push(COp::LoadPriv {
                            nf,
                            dst: *dst,
                            base: *base,
                            off,
                        }),
                        (MemSpace::Shared, None) => self.ops.push(COp::LoadShared {
                            nf,
                            dst: *dst,
                            base: *base,
                            off,
                        }),
                        (MemSpace::Private, Some((op, bdst, rhs))) => {
                            self.ops.push(COp::LoadOpPriv {
                                nf,
                                dst: *dst,
                                base: *base,
                                off,
                                op,
                                bdst,
                                rhs,
                            })
                        }
                        (MemSpace::Shared, Some((op, bdst, rhs))) => {
                            self.ops.push(COp::LoadOpShared {
                                nf,
                                dst: *dst,
                                base: *base,
                                off,
                                op,
                                bdst,
                                rhs,
                            })
                        }
                    }
                    if fused.is_some() {
                        // The fused Bin's fetch opens the next segment.
                        pending = 1;
                        k += 2;
                    } else {
                        k += 1;
                    }
                }
                LInstr::Store {
                    src,
                    base,
                    offset,
                    space,
                } => {
                    let off = *offset as i64;
                    let nf = pending + 1;
                    pending = 0;
                    self.ops.push(match space {
                        MemSpace::Private => COp::StorePriv {
                            nf,
                            src: *src,
                            base: *base,
                            off,
                        },
                        MemSpace::Shared => COp::StoreShared {
                            nf,
                            src: *src,
                            base: *base,
                            off,
                        },
                    });
                    k += 1;
                }
                LInstr::AtomicRmw {
                    op,
                    dst,
                    base,
                    offset,
                    src,
                    space,
                } => {
                    let off = *offset as i64;
                    let nf = pending + 1;
                    pending = 0;
                    self.ops.push(match space {
                        MemSpace::Private => COp::RmwPriv {
                            nf,
                            op: *op,
                            dst: *dst,
                            base: *base,
                            off,
                            src: *src,
                        },
                        MemSpace::Shared => COp::RmwShared {
                            nf,
                            op: *op,
                            dst: *dst,
                            base: *base,
                            off,
                            src: *src,
                        },
                    });
                    k += 1;
                }
                LInstr::Emit { src } => {
                    self.ops.push(COp::Emit { src: *src });
                    pending += 1;
                    k += 1;
                }
                LInstr::Nop => {
                    // Architecturally invisible: contributes only its fetch.
                    pending += 1;
                    k += 1;
                }
                // Terminators cannot appear in a body (checked by
                // compile_extent; calls/syscalls split runs).
                LInstr::Br { .. }
                | LInstr::BrCond { .. }
                | LInstr::JmpTbl { .. }
                | LInstr::Call { .. }
                | LInstr::Syscall { .. }
                | LInstr::Ret
                | LInstr::Halt => unreachable!("terminator in run body"),
            }
        }
        // The terminator instruction's own fetch (none for fall-through).
        if !matches!(term, CTerm::FallThrough { .. }) {
            pending += 1;
        }
        if pending > 0 {
            self.ops.push(COp::Fetch { n: pending });
        }
        let ri = self.runs.len() as u32;
        self.runs.push(CRun {
            ops: (ops_start, self.ops.len() as u32),
            first_addr: image.addr(start as u32),
            n_instrs,
            term_pc: body_end as u32,
            block,
            term,
        });
        self.run_at[start] = ri;
    }
}

/// The one trace-emission site shared by every memory-op arm: the
/// pending instruction fetches folded into the op, then its data
/// record. Outlined on purpose — inlining a recording sink's push
/// paths into all eight memory arms bloats the dispatch loop well past
/// L1i and costs more than the call ever does.
#[inline(never)]
fn emit_mem<S: TraceSink>(sink: &mut S, fetch: FetchRecord, nf: u32, daddr: u64, write: bool) {
    sink.fetch_run(fetch, u64::from(nf));
    sink.data(DataRecord {
        addr: daddr,
        cpu: fetch.cpu,
        pid: fetch.pid,
        kernel: fetch.kernel,
        write,
    });
}

impl ExecCtx<'_> {
    /// Executes a *chain* of runs: one whole run, then — as long as the
    /// next pc is itself a compiled run in the same image and mode and
    /// the remaining quantum covers it — the successor run, without
    /// returning to the dispatch loop. The caller has already checked
    /// that the remaining quantum covers the first run. Returns `None`
    /// when the chain breaks (quantum nearly spent, uncompiled
    /// successor, or a user/kernel mode switch) and the dispatcher must
    /// re-select.
    #[inline]
    fn exec_chain<S: TraceSink, H: ExecHook>(
        &mut self,
        cimg: &CompiledImage,
        mut ri: u32,
        kmode: bool,
        quantum: u64,
        sink: &mut S,
        hook: &mut H,
    ) -> Option<Stop> {
        loop {
            let run = &cimg.runs[ri as usize];
            let n = u64::from(run.n_instrs);
            self.executed += n;
            if kmode {
                self.kernel_executed += n;
            }
            // All of a run's ticks belong to one block; the hook stream is
            // independent of the sink stream, so batching them up front
            // preserves per-stream ordering (terminator events still follow).
            hook.tick_run(kmode, run.block, n);

            let p = &mut *self.p;
            let mut addr = run.first_addr;
            let (o0, o1) = run.ops;
            for op in &cimg.ops[o0 as usize..o1 as usize] {
                match op {
                    COp::Fetch { n } => {
                        sink.fetch_run(
                            FetchRecord {
                                addr,
                                cpu: self.cpu,
                                pid: self.pid8,
                                kernel: kmode,
                            },
                            u64::from(*n),
                        );
                        addr += u64::from(*n) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::Imm { dst, val } => rset(&mut p.regs, *dst, *val),
                    COp::Imm2 { d1, v1, d2, v2 } => {
                        rset(&mut p.regs, *d1, *v1);
                        rset(&mut p.regs, *d2, *v2);
                    }
                    COp::ImmBin {
                        imm_dst,
                        imm,
                        op,
                        dst,
                        lhs,
                    } => {
                        rset(&mut p.regs, *imm_dst, *imm);
                        let l = rget(&p.regs, *lhs);
                        rset(&mut p.regs, *dst, op.apply(l, *imm));
                    }
                    COp::Mov { dst, src } => {
                        let v = rget(&p.regs, *src);
                        rset(&mut p.regs, *dst, v);
                    }
                    COp::BinRR { op, dst, lhs, rhs } => {
                        let l = rget(&p.regs, *lhs);
                        let r = rget(&p.regs, *rhs);
                        rset(&mut p.regs, *dst, op.apply(l, r));
                    }
                    COp::BinRI { op, dst, lhs, imm } => {
                        let l = rget(&p.regs, *lhs);
                        rset(&mut p.regs, *dst, op.apply(l, *imm));
                    }
                    COp::LoadPriv { nf, dst, base, off } => {
                        let i = (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.priv_mask;
                        rset(&mut p.regs, *dst, p.priv_mem[i]);
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, self.priv_base + (i as u64) * 8, false);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::LoadShared { nf, dst, base, off } => {
                        let i =
                            (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.shared_mask;
                        rset(&mut p.regs, *dst, self.shared[i]);
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, SHARED_DATA_BASE + (i as u64) * 8, false);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::LoadOpPriv {
                        nf,
                        dst,
                        base,
                        off,
                        op,
                        bdst,
                        rhs,
                    } => {
                        let i = (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.priv_mask;
                        rset(&mut p.regs, *dst, p.priv_mem[i]);
                        let l = rget(&p.regs, *dst);
                        let r = crhs(&p.regs, *rhs);
                        rset(&mut p.regs, *bdst, op.apply(l, r));
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, self.priv_base + (i as u64) * 8, false);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::LoadOpShared {
                        nf,
                        dst,
                        base,
                        off,
                        op,
                        bdst,
                        rhs,
                    } => {
                        let i =
                            (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.shared_mask;
                        rset(&mut p.regs, *dst, self.shared[i]);
                        let l = rget(&p.regs, *dst);
                        let r = crhs(&p.regs, *rhs);
                        rset(&mut p.regs, *bdst, op.apply(l, r));
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, SHARED_DATA_BASE + (i as u64) * 8, false);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::StorePriv { nf, src, base, off } => {
                        let i = (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.priv_mask;
                        p.priv_mem[i] = rget(&p.regs, *src);
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, self.priv_base + (i as u64) * 8, true);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::StoreShared { nf, src, base, off } => {
                        let i =
                            (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.shared_mask;
                        self.shared[i] = rget(&p.regs, *src);
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, SHARED_DATA_BASE + (i as u64) * 8, true);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::RmwPriv {
                        nf,
                        op,
                        dst,
                        base,
                        off,
                        src,
                    } => {
                        let i = (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.priv_mask;
                        let rhs = rget(&p.regs, *src);
                        let old = p.priv_mem[i];
                        p.priv_mem[i] = op.apply(old, rhs);
                        rset(&mut p.regs, *dst, old);
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, self.priv_base + (i as u64) * 8, true);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::RmwShared {
                        nf,
                        op,
                        dst,
                        base,
                        off,
                        src,
                    } => {
                        let i =
                            (rget(&p.regs, *base).wrapping_add(*off)) as usize & self.shared_mask;
                        let rhs = rget(&p.regs, *src);
                        let old = self.shared[i];
                        self.shared[i] = op.apply(old, rhs);
                        rset(&mut p.regs, *dst, old);
                        let fetch = FetchRecord {
                            addr,
                            cpu: self.cpu,
                            pid: self.pid8,
                            kernel: kmode,
                        };
                        emit_mem(sink, fetch, *nf, SHARED_DATA_BASE + (i as u64) * 8, true);
                        addr += u64::from(*nf) * codelayout_ir::INSTR_BYTES;
                    }
                    COp::Emit { src } => {
                        let v = rget(&p.regs, *src);
                        p.emitted.push(v);
                    }
                }
            }

            // Each non-stopping arm leaves the architectural pc/block fully
            // updated and yields the next pc, so the chain check below can
            // keep executing without returning to the dispatcher.
            let next_pc: u32 = match &run.term {
                CTerm::FallThrough {
                    next_pc,
                    next_block,
                } => {
                    hook.edge(kmode, run.block, *next_block);
                    hook.block(kmode, *next_block);
                    if kmode {
                        p.kpc = *next_pc;
                        p.cur_block_kernel = *next_block;
                    } else {
                        p.pc = *next_pc;
                        p.cur_block_user = *next_block;
                    }
                    *next_pc
                }
                CTerm::Jump { target, block } => {
                    hook.edge(kmode, run.block, *block);
                    hook.block(kmode, *block);
                    if kmode {
                        p.kpc = *target;
                        p.cur_block_kernel = *block;
                    } else {
                        p.pc = *target;
                        p.cur_block_user = *block;
                    }
                    *target
                }
                CTerm::Branch {
                    cond,
                    reg,
                    rhs,
                    taken,
                    taken_block,
                    fall,
                    fall_block,
                } => {
                    let l = rget(&p.regs, *reg);
                    let r = crhs(&p.regs, *rhs);
                    let taken_now = cond.eval(l, r);
                    let (pc, nb) = if taken_now {
                        (*taken, *taken_block)
                    } else {
                        (*fall, *fall_block)
                    };
                    // The interpreter reports edge/block only on a transfer
                    // or a block change — a guard branch falling through
                    // within its own block is invisible to hooks.
                    if taken_now || nb != run.block {
                        hook.edge(kmode, run.block, nb);
                        hook.block(kmode, nb);
                    }
                    if kmode {
                        p.kpc = pc;
                        p.cur_block_kernel = nb;
                    } else {
                        p.pc = pc;
                        p.cur_block_user = nb;
                    }
                    pc
                }
                CTerm::JmpTbl {
                    reg,
                    targets,
                    default,
                    default_block,
                } => {
                    let v = rget(&p.regs, *reg);
                    let (pc, nb) = if v >= 0 && (v as usize) < targets.len() {
                        targets[v as usize]
                    } else {
                        (*default, *default_block)
                    };
                    hook.edge(kmode, run.block, nb);
                    hook.block(kmode, nb);
                    if kmode {
                        p.kpc = pc;
                        p.cur_block_kernel = nb;
                    } else {
                        p.pc = pc;
                        p.cur_block_user = nb;
                    }
                    pc
                }
                CTerm::Call {
                    callee,
                    target,
                    target_block,
                    ret_pc,
                } => {
                    let stack = if kmode { &mut p.kstack } else { &mut p.stack };
                    if stack.len() >= self.max_depth {
                        // Leave pc at the faulting call, as the oracle does.
                        if kmode {
                            p.kpc = run.term_pc;
                        } else {
                            p.pc = run.term_pc;
                        }
                        return Some(Stop::Faulted(Fault::CallDepthExceeded));
                    }
                    stack.push(*ret_pc);
                    hook.call(kmode, run.block, *callee);
                    hook.block(kmode, *target_block);
                    if kmode {
                        p.kpc = *target;
                        p.cur_block_kernel = *target_block;
                    } else {
                        p.pc = *target;
                        p.cur_block_user = *target_block;
                    }
                    *target
                }
                CTerm::Syscall { code, ret_pc } => {
                    if kmode {
                        p.kpc = run.term_pc;
                        return Some(Stop::Faulted(Fault::SyscallInKernel));
                    }
                    p.pc = *ret_pc;
                    p.syscalls += 1;
                    self.syscalls_dispatched += 1;
                    if let Some(kimg) = self.kernel {
                        let def = self.syscalls.get(*code as usize).copied().flatten();
                        let Some(def) = def else {
                            return Some(Stop::Faulted(Fault::UnknownSyscall(*code)));
                        };
                        p.kernel_mode = true;
                        p.saved_regs = p.regs;
                        p.kernel_returns_r0 = true;
                        p.kpc = kimg.proc_entry[def.proc.index()];
                        p.kstack.clear();
                        p.pending_block = def.block_instrs;
                        let eb = kimg.block_of[p.kpc as usize];
                        p.cur_block_kernel = eb;
                        hook.block(true, eb);
                        // Mode switch: the kernel runs from its own
                        // compiled image; hand back to the dispatcher.
                        return None;
                    }
                    p.regs[0] = 0;
                    *ret_pc
                }
                CTerm::Ret => {
                    if kmode {
                        match p.kstack.pop() {
                            Some(r) => {
                                let kimg = self.kernel.expect("kernel mode without kernel");
                                p.kpc = r;
                                let nb = kimg.block_of[r as usize];
                                if kimg.block_start[nb.index()] == r {
                                    let from = kimg.block_of[r as usize - 1];
                                    hook.edge(true, from, nb);
                                    hook.block(true, nb);
                                }
                                p.cur_block_kernel = nb;
                                r
                            }
                            None => {
                                p.kpc = run.term_pc;
                                p.kernel_mode = false;
                                let r0 = p.regs[0];
                                p.regs = p.saved_regs;
                                if p.kernel_returns_r0 {
                                    p.regs[0] = r0;
                                }
                                if p.pending_block > 0 {
                                    p.blocked_until = self.now + self.executed + p.pending_block;
                                    p.pending_block = 0;
                                    return Some(Stop::Blocked);
                                }
                                // Kernel exit back to user mode.
                                return None;
                            }
                        }
                    } else {
                        match p.stack.pop() {
                            Some(r) => {
                                p.pc = r;
                                let nb = self.app.block_of[r as usize];
                                if self.app.block_start[nb.index()] == r {
                                    let from = self.app.block_of[r as usize - 1];
                                    hook.edge(false, from, nb);
                                    hook.block(false, nb);
                                }
                                p.cur_block_user = nb;
                                r
                            }
                            None => {
                                p.pc = run.term_pc;
                                p.halted = true;
                                return Some(Stop::Halted);
                            }
                        }
                    }
                }
                CTerm::Halt => {
                    if kmode {
                        p.kpc = run.term_pc;
                    } else {
                        p.pc = run.term_pc;
                    }
                    p.halted = true;
                    return Some(Stop::Halted);
                }
            };

            // Chain: keep going while the successor is compiled and the
            // remaining quantum covers it whole.
            match cimg.run_index(next_pc) {
                Some(nri)
                    if quantum - self.executed >= u64::from(cimg.runs[nri as usize].n_instrs) =>
                {
                    ri = nri;
                }
                _ => return None,
            }
        }
    }
}

/// The block-compiled tier: whole runs when the remaining quantum
/// covers them, the single-step oracle for everything else (mid-run
/// entry, imminent quantum expiry, uncompiled pcs).
pub(crate) fn block_exec<S: TraceSink, H: ExecHook>(
    m: &mut Machine,
    cpu: u8,
    pid: usize,
    quantum: u64,
    sink: &mut S,
    hook: &mut H,
    report: &mut RunReport,
) -> Stop {
    let app = Arc::clone(&m.app);
    let kernel = m.kernel.clone();
    let capp = m.capp.clone().expect("block engine without compiled app");
    let ckernel = m.ckernel.clone();
    let mut ctx = ExecCtx::new(m, &app, kernel.as_ref(), cpu, pid);
    ctx.start_event(hook);
    let outcome = loop {
        if ctx.executed >= quantum {
            break Stop::Quantum;
        }
        let kmode = ctx.p.kernel_mode;
        let (cimg, pc) = if kmode {
            (ckernel.as_deref(), ctx.p.kpc)
        } else {
            (Some(&*capp), ctx.p.pc)
        };
        if let Some(c) = cimg {
            if let Some(ri) = c.run_index(pc) {
                if quantum - ctx.executed >= u64::from(c.runs[ri as usize].n_instrs) {
                    if let Some(stop) = ctx.exec_chain(c, ri, kmode, quantum, sink, hook) {
                        break stop;
                    }
                    continue;
                }
            }
        }
        if let Some(stop) = ctx.step(sink, hook) {
            break stop;
        }
    };
    let executed = ctx.flush(report);
    m.now += executed;
    outcome
}
