//! The multi-process, multi-CPU interpreter.

use crate::hook::{ExecHook, NullHook};
use crate::sink::{DataRecord, FetchRecord, TraceSink};
use crate::{checksum_words, PRIVATE_DATA_BASE, PRIVATE_DATA_STRIDE, SHARED_DATA_BASE};
use codelayout_ir::{BlockId, Image, LInstr, MemSpace, Operand, ProcId, Reg};
use std::sync::Arc;

/// Kernel service routine bound to a syscall code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallDef {
    /// Kernel procedure implementing the service.
    pub proc: ProcId,
    /// Instructions the process stays blocked after the handler returns
    /// (models I/O latency); `0` means non-blocking.
    pub block_instrs: u64,
}

/// Machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of simulated CPUs; processes are statically assigned
    /// round-robin (`pid % num_cpus`).
    pub num_cpus: usize,
    /// Server processes per CPU (the paper uses 8).
    pub processes_per_cpu: usize,
    /// Scheduling quantum in instructions.
    pub quantum: u64,
    /// Words of per-process private memory (rounded up to a power of two).
    pub private_words: usize,
    /// Words of shared memory (rounded up to a power of two).
    pub shared_words: usize,
    /// Call-stack depth limit per mode.
    pub max_call_depth: usize,
    /// Kernel procedure executed on every context switch (scheduler code),
    /// when a kernel image is attached.
    pub sched_proc: Option<ProcId>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cpus: 1,
            processes_per_cpu: 1,
            quantum: 10_000,
            private_words: 1 << 16,
            shared_words: 1 << 20,
            max_call_depth: 512,
            sched_proc: None,
        }
    }
}

/// Why a process stopped making progress permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Program counter left the text segment.
    PcOutOfRange,
    /// Call stack exceeded [`MachineConfig::max_call_depth`].
    CallDepthExceeded,
    /// `Syscall` executed while already in kernel mode.
    SyscallInKernel,
    /// `Syscall` with a code that has no kernel binding (and a kernel image
    /// is attached).
    UnknownSyscall(u16),
    /// Kernel `Return` executed with no kernel image attached.
    KernelStateCorrupt,
}

/// Aggregate outcome of a [`Machine::run`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Total executed instructions (user + kernel).
    pub instructions: u64,
    /// Instructions executed in user mode.
    pub user_instrs: u64,
    /// Instructions executed in kernel mode.
    pub kernel_instrs: u64,
    /// Idle "instruction slots" spent with every process blocked.
    pub idle_instrs: u64,
    /// Syscalls dispatched to the kernel (or emulated when no kernel).
    pub syscalls: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Processes that halted normally.
    pub halted_processes: usize,
    /// Faulted processes and their faults.
    pub faults: Vec<(u8, Fault)>,
}

impl RunReport {
    /// Accumulates another report into this one (for chunked runs).
    pub fn absorb(&mut self, other: &RunReport) {
        self.instructions += other.instructions;
        self.user_instrs += other.user_instrs;
        self.kernel_instrs += other.kernel_instrs;
        self.idle_instrs += other.idle_instrs;
        self.syscalls += other.syscalls;
        self.context_switches += other.context_switches;
        self.halted_processes += other.halted_processes;
        self.faults.extend(other.faults.iter().copied());
    }
}

#[derive(Debug, Clone)]
struct Process {
    regs: [i64; 32],
    /// User register snapshot taken at kernel entry; restored at kernel
    /// exit (register banking, like Alpha PALcode shadow registers), so
    /// kernel code may clobber any register.
    saved_regs: [i64; 32],
    /// Whether `r0` carries a kernel return value back to user mode
    /// (true for syscalls, false for preemption/scheduler entries).
    kernel_returns_r0: bool,
    pc: u32,
    stack: Vec<u32>,
    kernel_mode: bool,
    kpc: u32,
    kstack: Vec<u32>,
    pending_block: u64,
    cur_block_user: BlockId,
    cur_block_kernel: BlockId,
    priv_mem: Vec<i64>,
    emitted: Vec<i64>,
    halted: bool,
    fault: Option<Fault>,
    blocked_until: u64,
    started: bool,
    syscalls: u64,
}

enum Stop {
    Quantum,
    Halted,
    Blocked,
    Faulted(Fault),
}

/// A deterministic multi-process machine executing one application image and
/// an optional kernel image.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Machine {
    app: Arc<Image>,
    kernel: Option<Arc<Image>>,
    syscalls: Vec<Option<SyscallDef>>,
    cfg: MachineConfig,
    procs: Vec<Process>,
    shared: Vec<i64>,
    now: u64,
    last_pid: Vec<Option<usize>>,
    /// Next CPU to serve; persists across `run` calls so chunked runs
    /// cannot starve CPUs (for example a preempted lock holder).
    cpu_rr: usize,
    /// Per-CPU next-process cursor; persists across `run` calls for the
    /// same fairness reason.
    proc_rr: Vec<usize>,
    /// Diagnostic: dispatch count per process.
    dispatches: Vec<u64>,
}

impl Machine {
    /// Creates a machine running `app` on every process, without a kernel:
    /// syscalls become no-ops returning `0` in `r0`.
    pub fn new(app: Arc<Image>, cfg: MachineConfig) -> Self {
        Self::with_kernel_opt(app, None, Vec::new(), cfg)
    }

    /// Creates a machine with a kernel image and a syscall table mapping
    /// codes to kernel procedures.
    pub fn with_kernel(
        app: Arc<Image>,
        kernel: Arc<Image>,
        table: Vec<(u16, SyscallDef)>,
        cfg: MachineConfig,
    ) -> Self {
        Self::with_kernel_opt(app, Some(kernel), table, cfg)
    }

    fn with_kernel_opt(
        app: Arc<Image>,
        kernel: Option<Arc<Image>>,
        table: Vec<(u16, SyscallDef)>,
        cfg: MachineConfig,
    ) -> Self {
        let nprocs = cfg.num_cpus.max(1) * cfg.processes_per_cpu.max(1);
        assert!(nprocs <= 256, "at most 256 processes");
        assert!(cfg.num_cpus <= 64, "at most 64 CPUs");
        let priv_words = cfg.private_words.next_power_of_two();
        let shared_words = cfg.shared_words.next_power_of_two();
        assert!(
            priv_words as u64 * 8 <= PRIVATE_DATA_STRIDE,
            "private region exceeds its address stride"
        );
        let mut syscalls = Vec::new();
        for (code, def) in table {
            let idx = code as usize;
            if syscalls.len() <= idx {
                syscalls.resize(idx + 1, None);
            }
            syscalls[idx] = Some(def);
        }
        let entry_block = app.block_of[app.entry as usize];
        let procs = (0..nprocs)
            .map(|_| Process {
                regs: [0; 32],
                saved_regs: [0; 32],
                kernel_returns_r0: false,
                pc: app.entry,
                stack: Vec::new(),
                kernel_mode: false,
                kpc: 0,
                kstack: Vec::new(),
                pending_block: 0,
                cur_block_user: entry_block,
                cur_block_kernel: BlockId(0),
                priv_mem: vec![0; priv_words],
                emitted: Vec::new(),
                halted: false,
                fault: None,
                blocked_until: 0,
                started: false,
                syscalls: 0,
            })
            .collect();
        let last_pid = vec![None; cfg.num_cpus.max(1)];
        let proc_rr = vec![0; cfg.num_cpus.max(1)];
        Machine {
            cpu_rr: 0,
            dispatches: vec![0; nprocs],
            proc_rr,
            app,
            kernel,
            syscalls,
            cfg: MachineConfig {
                private_words: priv_words,
                shared_words,
                ..cfg
            },
            procs,
            shared: vec![0; shared_words],
            now: 0,
            last_pid,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Debug snapshot of a process: `(kernel_mode, pc, kpc, blocked_until,
    /// halted)`. Intended for diagnostics and tests.
    pub fn process_state(&self, pid: usize) -> (bool, u32, u32, u64, bool) {
        let p = &self.procs[pid];
        (p.kernel_mode, p.pc, p.kpc, p.blocked_until, p.halted)
    }

    /// Diagnostic: how many times each process has been dispatched.
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.dispatches
    }

    /// Processes that have neither halted nor faulted.
    pub fn live_processes(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| !p.halted && p.fault.is_none())
            .count()
    }

    /// The machine configuration (with memory sizes normalized).
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Global instruction clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sets a register of a (not yet started) process.
    ///
    /// # Panics
    /// Panics if `pid` is out of range.
    pub fn set_reg(&mut self, pid: usize, reg: Reg, value: i64) {
        self.procs[pid].regs[reg.index() & 31] = value;
    }

    /// Reads a register of a process.
    pub fn reg(&self, pid: usize, reg: Reg) -> i64 {
        self.procs[pid].regs[reg.index() & 31]
    }

    /// Writes a word of shared memory.
    pub fn set_shared_word(&mut self, idx: usize, value: i64) {
        let m = self.shared.len() - 1;
        self.shared[idx & m] = value;
    }

    /// Reads a word of shared memory.
    pub fn shared_word(&self, idx: usize) -> i64 {
        self.shared[idx & (self.shared.len() - 1)]
    }

    /// Writes a word of a process's private memory.
    pub fn set_private_word(&mut self, pid: usize, idx: usize, value: i64) {
        let mem = &mut self.procs[pid].priv_mem;
        let m = mem.len() - 1;
        mem[idx & m] = value;
    }

    /// Reads a word of a process's private memory.
    pub fn private_word(&self, pid: usize, idx: usize) -> i64 {
        let mem = &self.procs[pid].priv_mem;
        mem[idx & (mem.len() - 1)]
    }

    /// Values emitted (via `Emit`) by a process, in order.
    pub fn emitted(&self, pid: usize) -> &[i64] {
        &self.procs[pid].emitted
    }

    /// Checksum of shared memory (layout-invariant architectural state).
    pub fn shared_checksum(&self) -> u64 {
        checksum_words(&self.shared)
    }

    /// Checksum of a process's private memory.
    pub fn private_checksum(&self, pid: usize) -> u64 {
        checksum_words(&self.procs[pid].priv_mem)
    }

    /// Runs without an execution hook. See [`Machine::run_hooked`].
    pub fn run<S: TraceSink>(&mut self, sink: &mut S, max_instrs: u64) -> RunReport {
        self.run_hooked(sink, &mut NullHook, max_instrs)
    }

    /// Runs all processes until they halt/fault or `max_instrs` instructions
    /// have executed, streaming fetch/data records to `sink` and
    /// block/edge/call events to `hook`.
    ///
    /// Scheduling: CPUs are served round-robin; on each turn a CPU picks its
    /// next runnable process (round-robin within the CPU) and runs it for up
    /// to one quantum, or until it halts, faults, or blocks. If a kernel is
    /// attached and [`MachineConfig::sched_proc`] is set, the scheduler
    /// procedure executes (as kernel instructions, in the incoming process's
    /// context) on every context switch.
    pub fn run_hooked<S: TraceSink, H: ExecHook>(
        &mut self,
        sink: &mut S,
        hook: &mut H,
        max_instrs: u64,
    ) -> RunReport {
        let mut report = RunReport::default();
        let ncpus = self.cfg.num_cpus.max(1);
        let nprocs = self.procs.len();
        let budget_end = self.now.saturating_add(max_instrs);

        loop {
            let mut any_ran = false;
            let mut min_wake = u64::MAX;
            let mut all_done = true;

            let cpu_base = self.cpu_rr;
            for turn in 0..ncpus {
                let cpu = (cpu_base + turn) % ncpus;
                // Budget check BEFORE selecting a process: selecting
                // advances the round-robin cursor, and doing that without
                // actually running the process would systematically skip
                // it under resonant chunked driving (a starvation bug that
                // once left a lock holder unscheduled forever).
                let quantum = self.cfg.quantum.min(budget_end.saturating_sub(self.now));
                if quantum == 0 {
                    self.cpu_rr = cpu;
                    break;
                }
                // Processes assigned to this cpu: pid % ncpus == cpu.
                let count = (nprocs + ncpus - 1 - cpu) / ncpus;
                if count == 0 {
                    continue;
                }
                let mut chosen = None;
                for k in 0..count {
                    let slot = (self.proc_rr[cpu] + k) % count;
                    let pid = slot * ncpus + cpu;
                    let p = &self.procs[pid];
                    if p.halted || p.fault.is_some() {
                        continue;
                    }
                    all_done = false;
                    if p.blocked_until > self.now {
                        min_wake = min_wake.min(p.blocked_until);
                        continue;
                    }
                    chosen = Some((slot, pid));
                    break;
                }
                let Some((slot, pid)) = chosen else { continue };
                self.proc_rr[cpu] = (slot + 1) % count;
                self.dispatches[pid] += 1;
                any_ran = true;

                if self.last_pid[cpu] != Some(pid) {
                    if self.last_pid[cpu].is_some() {
                        report.context_switches += 1;
                    }
                    self.last_pid[cpu] = Some(pid);
                    // Run the kernel scheduler path in the incoming process's
                    // context — unless it was preempted inside the kernel, in
                    // which case its saved kernel state must not be clobbered.
                    if let (Some(sp), true) = (self.cfg.sched_proc, self.kernel.is_some()) {
                        if !self.procs[pid].kernel_mode {
                            self.enter_kernel(pid, sp, 0, false, hook);
                        }
                    }
                }

                self.cpu_rr = (cpu + 1) % ncpus;
                let stop = self.exec(cpu as u8, pid, quantum, sink, hook, &mut report);
                match stop {
                    Stop::Halted => {
                        report.halted_processes += 1;
                        self.last_pid[cpu] = None;
                    }
                    Stop::Faulted(f) => {
                        report.faults.push((pid as u8, f));
                        self.procs[pid].fault = Some(f);
                        self.last_pid[cpu] = None;
                    }
                    Stop::Blocked | Stop::Quantum => {}
                }
            }

            if all_done {
                break;
            }
            if self.now >= budget_end {
                break;
            }
            if !any_ran {
                if min_wake == u64::MAX {
                    break; // nothing runnable and nothing will wake
                }
                let wake = min_wake.min(budget_end);
                report.idle_instrs += wake - self.now;
                self.now = wake;
            }
        }
        report
    }

    /// Enters kernel mode at the entry of `proc`, recording the
    /// post-handler blocking latency to apply at kernel exit. User
    /// registers are banked and restored at kernel exit; `returns_r0`
    /// selects whether the kernel's `r0` is forwarded back (syscall return
    /// convention) or the user's `r0` is preserved (preemption).
    fn enter_kernel<H: ExecHook>(
        &mut self,
        pid: usize,
        kproc: ProcId,
        block: u64,
        returns_r0: bool,
        hook: &mut H,
    ) {
        let kernel = self.kernel.as_ref().expect("kernel image attached");
        let p = &mut self.procs[pid];
        debug_assert!(!p.kernel_mode, "nested kernel entry");
        p.kernel_mode = true;
        p.saved_regs = p.regs;
        p.kernel_returns_r0 = returns_r0;
        p.kpc = kernel.proc_entry[kproc.index()];
        p.kstack.clear();
        p.pending_block = block;
        let entry_block = kernel.block_of[p.kpc as usize];
        p.cur_block_kernel = entry_block;
        hook.block(true, entry_block);
    }

    /// Executes process `pid` for up to `quantum` instructions.
    #[allow(clippy::too_many_lines)]
    fn exec<S: TraceSink, H: ExecHook>(
        &mut self,
        cpu: u8,
        pid: usize,
        quantum: u64,
        sink: &mut S,
        hook: &mut H,
        report: &mut RunReport,
    ) -> Stop {
        let app = Arc::clone(&self.app);
        let kernel = self.kernel.clone();
        let max_depth = self.cfg.max_call_depth;
        let priv_base = PRIVATE_DATA_BASE + pid as u64 * PRIVATE_DATA_STRIDE;
        let shared_mask = self.shared.len() - 1;

        let p = &mut self.procs[pid];
        let priv_mask = p.priv_mem.len() - 1;
        if !p.started {
            p.started = true;
            hook.block(false, p.cur_block_user);
        }
        let pid8 = pid as u8;
        let mut executed: u64 = 0;
        let mut kernel_executed: u64 = 0;

        let outcome = loop {
            if executed >= quantum {
                break Stop::Quantum;
            }
            let kmode = p.kernel_mode;
            kernel_executed += u64::from(kmode);
            let image: &Image = if kmode {
                kernel.as_deref().expect("kernel mode without kernel")
            } else {
                &app
            };
            let pc = if kmode { p.kpc } else { p.pc };
            let Some(instr) = image.code.get(pc as usize) else {
                break Stop::Faulted(Fault::PcOutOfRange);
            };
            sink.fetch(FetchRecord {
                addr: image.addr(pc),
                cpu,
                pid: pid8,
                kernel: kmode,
            });
            executed += 1;
            let cur_block = image.block_of[pc as usize];
            hook.tick(kmode, cur_block);

            // Default next pc: sequential.
            let mut next = pc + 1;
            let mut transferred = false;

            match instr {
                LInstr::Imm { dst, value } => {
                    p.regs[dst.index() & 31] = *value;
                }
                LInstr::Mov { dst, src } => {
                    p.regs[dst.index() & 31] = p.regs[src.index() & 31];
                }
                LInstr::Bin { op, dst, lhs, rhs } => {
                    let l = p.regs[lhs.index() & 31];
                    let r = operand(&p.regs, *rhs);
                    p.regs[dst.index() & 31] = op.apply(l, r);
                }
                LInstr::Load {
                    dst,
                    base,
                    offset,
                    space,
                } => {
                    let idx = (p.regs[base.index() & 31].wrapping_add(*offset as i64)) as usize;
                    let (val, addr) = match space {
                        MemSpace::Private => {
                            let i = idx & priv_mask;
                            (p.priv_mem[i], priv_base + (i as u64) * 8)
                        }
                        MemSpace::Shared => {
                            let i = idx & shared_mask;
                            (self.shared[i], SHARED_DATA_BASE + (i as u64) * 8)
                        }
                    };
                    p.regs[dst.index() & 31] = val;
                    sink.data(DataRecord {
                        addr,
                        cpu,
                        pid: pid8,
                        kernel: kmode,
                        write: false,
                    });
                }
                LInstr::Store {
                    src,
                    base,
                    offset,
                    space,
                } => {
                    let idx = (p.regs[base.index() & 31].wrapping_add(*offset as i64)) as usize;
                    let val = p.regs[src.index() & 31];
                    let addr = match space {
                        MemSpace::Private => {
                            let i = idx & priv_mask;
                            p.priv_mem[i] = val;
                            priv_base + (i as u64) * 8
                        }
                        MemSpace::Shared => {
                            let i = idx & shared_mask;
                            self.shared[i] = val;
                            SHARED_DATA_BASE + (i as u64) * 8
                        }
                    };
                    sink.data(DataRecord {
                        addr,
                        cpu,
                        pid: pid8,
                        kernel: kmode,
                        write: true,
                    });
                }
                LInstr::AtomicRmw {
                    op,
                    dst,
                    base,
                    offset,
                    src,
                    space,
                } => {
                    let idx = (p.regs[base.index() & 31].wrapping_add(*offset as i64)) as usize;
                    let rhs = p.regs[src.index() & 31];
                    let addr = match space {
                        MemSpace::Private => {
                            let i = idx & priv_mask;
                            let old = p.priv_mem[i];
                            p.priv_mem[i] = op.apply(old, rhs);
                            p.regs[dst.index() & 31] = old;
                            priv_base + (i as u64) * 8
                        }
                        MemSpace::Shared => {
                            let i = idx & shared_mask;
                            let old = self.shared[i];
                            self.shared[i] = op.apply(old, rhs);
                            p.regs[dst.index() & 31] = old;
                            SHARED_DATA_BASE + (i as u64) * 8
                        }
                    };
                    sink.data(DataRecord {
                        addr,
                        cpu,
                        pid: pid8,
                        kernel: kmode,
                        write: true,
                    });
                }
                LInstr::Emit { src } => {
                    p.emitted.push(p.regs[src.index() & 31]);
                }
                LInstr::Nop => {}
                LInstr::Br { target } => {
                    next = *target;
                    transferred = true;
                }
                LInstr::BrCond {
                    cond,
                    reg,
                    rhs,
                    target,
                } => {
                    let l = p.regs[reg.index() & 31];
                    let r = operand(&p.regs, *rhs);
                    if cond.eval(l, r) {
                        next = *target;
                        transferred = true;
                    }
                }
                LInstr::JmpTbl {
                    reg,
                    table,
                    default,
                } => {
                    let v = p.regs[reg.index() & 31];
                    next = if v >= 0 && (v as usize) < table.len() {
                        table[v as usize]
                    } else {
                        *default
                    };
                    transferred = true;
                }
                LInstr::Call { callee, target } => {
                    let stack = if kmode { &mut p.kstack } else { &mut p.stack };
                    if stack.len() >= max_depth {
                        break Stop::Faulted(Fault::CallDepthExceeded);
                    }
                    stack.push(pc + 1);
                    hook.call(kmode, cur_block, *callee);
                    let entry_block = image.block_of[*target as usize];
                    hook.block(kmode, entry_block);
                    if kmode {
                        p.kpc = *target;
                        p.cur_block_kernel = entry_block;
                    } else {
                        p.pc = *target;
                        p.cur_block_user = entry_block;
                    }
                    continue;
                }
                LInstr::Ret => {
                    // Returning normally lands mid-block (after the call
                    // instruction). But when a call is the *last* body
                    // instruction of a block whose jump terminator was
                    // fall-through-eliminated, the return address is the
                    // first instruction of the next block: that IS a block
                    // entry (the eliminated jump's flow edge), and
                    // profilers must see it.
                    if kmode {
                        match p.kstack.pop() {
                            Some(r) => {
                                let kimg = kernel.as_deref().expect("kernel mode without kernel");
                                p.kpc = r;
                                let nb = kimg.block_of[r as usize];
                                if kimg.block_start[nb.index()] == r {
                                    let from = kimg.block_of[r as usize - 1];
                                    hook.edge(true, from, nb);
                                    hook.block(true, nb);
                                }
                                p.cur_block_kernel = nb;
                            }
                            None => {
                                // Kernel service finished: back to user mode.
                                // Restore the banked user registers,
                                // forwarding r0 when this entry was a
                                // syscall.
                                p.kernel_mode = false;
                                let r0 = p.regs[0];
                                p.regs = p.saved_regs;
                                if p.kernel_returns_r0 {
                                    p.regs[0] = r0;
                                }
                                if p.pending_block > 0 {
                                    p.blocked_until = self.now + executed + p.pending_block;
                                    p.pending_block = 0;
                                    break Stop::Blocked;
                                }
                            }
                        }
                    } else {
                        match p.stack.pop() {
                            Some(r) => {
                                p.pc = r;
                                let nb = app.block_of[r as usize];
                                if app.block_start[nb.index()] == r {
                                    let from = app.block_of[r as usize - 1];
                                    hook.edge(false, from, nb);
                                    hook.block(false, nb);
                                }
                                p.cur_block_user = nb;
                            }
                            None => {
                                // Entry procedure returned: process done.
                                p.halted = true;
                                break Stop::Halted;
                            }
                        }
                    }
                    continue;
                }
                LInstr::Syscall { code } => {
                    if kmode {
                        break Stop::Faulted(Fault::SyscallInKernel);
                    }
                    p.pc = next;
                    p.syscalls += 1;
                    report.syscalls += 1;
                    if kernel.is_some() {
                        let def = self.syscalls.get(*code as usize).copied().flatten();
                        let Some(def) = def else {
                            break Stop::Faulted(Fault::UnknownSyscall(*code));
                        };
                        // Inline kernel entry (cannot call self.enter_kernel
                        // while `p` is borrowed; replicate).
                        let kimg = kernel.as_deref().expect("checked above");
                        p.kernel_mode = true;
                        p.saved_regs = p.regs;
                        p.kernel_returns_r0 = true;
                        p.kpc = kimg.proc_entry[def.proc.index()];
                        p.kstack.clear();
                        p.pending_block = def.block_instrs;
                        let eb = kimg.block_of[p.kpc as usize];
                        p.cur_block_kernel = eb;
                        hook.block(true, eb);
                    } else {
                        // No kernel: emulate as `r0 = 0`.
                        p.regs[0] = 0;
                    }
                    continue;
                }
                LInstr::Halt => {
                    p.halted = true;
                    break Stop::Halted;
                }
            }

            // Sequential or branch advance; detect block entry.
            if (next as usize) >= image.code.len() {
                break Stop::Faulted(Fault::PcOutOfRange);
            }
            let new_block = image.block_of[next as usize];
            if transferred || new_block != cur_block {
                hook.edge(kmode, cur_block, new_block);
                hook.block(kmode, new_block);
                if kmode {
                    p.cur_block_kernel = new_block;
                } else {
                    p.cur_block_user = new_block;
                }
            }
            if kmode {
                p.kpc = next;
            } else {
                p.pc = next;
            }
        };

        report.instructions += executed;
        report.kernel_instrs += kernel_executed;
        report.user_instrs += executed - kernel_executed;
        self.now += executed;
        outcome
    }
}

#[inline]
fn operand(regs: &[i64; 32], op: Operand) -> i64 {
    match op {
        Operand::Reg(r) => regs[r.index() & 31],
        Operand::Imm(v) => v,
    }
}

#[allow(unused)]
fn _assert_reg_bound(_r: Reg) {}
