//! The engine-agnostic machine core: process, scheduler, fault and
//! syscall state, shared by both execution tiers.
//!
//! The actual instruction execution lives in two sibling modules with
//! identical observable behaviour: [`crate::exec`] (the
//! deliberately-plain decode-dispatch interpreter, the oracle) and
//! [`crate::block`] (the block-compiled tier). [`MachineConfig::engine`]
//! selects between them.

use crate::block::CompiledImage;
use crate::hook::{ExecHook, NullHook};
use crate::sink::TraceSink;
use crate::{checksum_words, PRIVATE_DATA_STRIDE};
use codelayout_ir::{BlockId, Image, ProcId, Reg};
pub use codelayout_obs::VmEngine;
use std::sync::Arc;

/// The single register-file indexing rule: 32 registers, index masked
/// so a malformed [`Reg`] wraps instead of panicking. Every operand
/// decode — interpreter and compiled tier alike — goes through this, so
/// the two engines cannot diverge on register addressing.
#[inline(always)]
pub(crate) fn reg_idx(r: Reg) -> usize {
    r.index() & 31
}

/// Reads register `r`. See [`reg_idx`].
#[inline(always)]
pub(crate) fn rget(regs: &[i64; 32], r: Reg) -> i64 {
    regs[reg_idx(r)]
}

/// Writes register `r`. See [`reg_idx`].
#[inline(always)]
pub(crate) fn rset(regs: &mut [i64; 32], r: Reg, v: i64) {
    regs[reg_idx(r)] = v;
}

/// Kernel service routine bound to a syscall code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallDef {
    /// Kernel procedure implementing the service.
    pub proc: ProcId,
    /// Instructions the process stays blocked after the handler returns
    /// (models I/O latency); `0` means non-blocking.
    pub block_instrs: u64,
}

/// Machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of simulated CPUs; processes are statically assigned
    /// round-robin (`pid % num_cpus`).
    pub num_cpus: usize,
    /// Server processes per CPU (the paper uses 8).
    pub processes_per_cpu: usize,
    /// Scheduling quantum in instructions.
    pub quantum: u64,
    /// Words of per-process private memory (rounded up to a power of two).
    pub private_words: usize,
    /// Words of shared memory (rounded up to a power of two).
    pub shared_words: usize,
    /// Call-stack depth limit per mode.
    pub max_call_depth: usize,
    /// Kernel procedure executed on every context switch (scheduler code),
    /// when a kernel image is attached.
    pub sched_proc: Option<ProcId>,
    /// Execution tier. The default honours `CODELAYOUT_VM_ENGINE`
    /// (falling back to [`VmEngine::Block`]), so a whole process —
    /// including the test suite — can be flipped to the interpreter
    /// oracle from the environment. Fixed at machine construction.
    pub engine: VmEngine,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cpus: 1,
            processes_per_cpu: 1,
            quantum: 10_000,
            private_words: 1 << 16,
            shared_words: 1 << 20,
            max_call_depth: 512,
            sched_proc: None,
            engine: codelayout_obs::run_env().vm_engine,
        }
    }
}

/// Why a process stopped making progress permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Program counter left the text segment.
    PcOutOfRange,
    /// Call stack exceeded [`MachineConfig::max_call_depth`].
    CallDepthExceeded,
    /// `Syscall` executed while already in kernel mode.
    SyscallInKernel,
    /// `Syscall` with a code that has no kernel binding (and a kernel image
    /// is attached).
    UnknownSyscall(u16),
    /// Kernel `Return` executed with no kernel image attached.
    KernelStateCorrupt,
}

/// Aggregate outcome of a [`Machine::run`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Total executed instructions (user + kernel).
    pub instructions: u64,
    /// Instructions executed in user mode.
    pub user_instrs: u64,
    /// Instructions executed in kernel mode.
    pub kernel_instrs: u64,
    /// Idle "instruction slots" spent with every process blocked.
    pub idle_instrs: u64,
    /// Syscalls dispatched to the kernel (or emulated when no kernel).
    pub syscalls: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Processes that halted normally.
    pub halted_processes: usize,
    /// Faulted processes and their faults.
    pub faults: Vec<(u8, Fault)>,
}

impl RunReport {
    /// Accumulates another report into this one (for chunked runs).
    pub fn absorb(&mut self, other: &RunReport) {
        self.instructions += other.instructions;
        self.user_instrs += other.user_instrs;
        self.kernel_instrs += other.kernel_instrs;
        self.idle_instrs += other.idle_instrs;
        self.syscalls += other.syscalls;
        self.context_switches += other.context_switches;
        self.halted_processes += other.halted_processes;
        self.faults.extend(other.faults.iter().copied());
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Process {
    pub(crate) regs: [i64; 32],
    /// User register snapshot taken at kernel entry; restored at kernel
    /// exit (register banking, like Alpha PALcode shadow registers), so
    /// kernel code may clobber any register.
    pub(crate) saved_regs: [i64; 32],
    /// Whether `r0` carries a kernel return value back to user mode
    /// (true for syscalls, false for preemption/scheduler entries).
    pub(crate) kernel_returns_r0: bool,
    pub(crate) pc: u32,
    pub(crate) stack: Vec<u32>,
    pub(crate) kernel_mode: bool,
    pub(crate) kpc: u32,
    pub(crate) kstack: Vec<u32>,
    pub(crate) pending_block: u64,
    pub(crate) cur_block_user: BlockId,
    pub(crate) cur_block_kernel: BlockId,
    pub(crate) priv_mem: Vec<i64>,
    pub(crate) emitted: Vec<i64>,
    pub(crate) halted: bool,
    pub(crate) fault: Option<Fault>,
    pub(crate) blocked_until: u64,
    pub(crate) started: bool,
    pub(crate) syscalls: u64,
}

pub(crate) enum Stop {
    Quantum,
    Halted,
    Blocked,
    Faulted(Fault),
}

/// A deterministic multi-process machine executing one application image and
/// an optional kernel image.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) app: Arc<Image>,
    pub(crate) kernel: Option<Arc<Image>>,
    pub(crate) syscalls: Vec<Option<SyscallDef>>,
    pub(crate) cfg: MachineConfig,
    pub(crate) procs: Vec<Process>,
    pub(crate) shared: Vec<i64>,
    pub(crate) now: u64,
    last_pid: Vec<Option<usize>>,
    /// Next CPU to serve; persists across `run` calls so chunked runs
    /// cannot starve CPUs (for example a preempted lock holder).
    cpu_rr: usize,
    /// Per-CPU next-process cursor; persists across `run` calls for the
    /// same fairness reason.
    proc_rr: Vec<usize>,
    /// Diagnostic: dispatch count per process.
    dispatches: Vec<u64>,
    /// Pre-decoded images, present iff `cfg.engine == VmEngine::Block`;
    /// obtained from (and shared through) the process-wide code cache.
    pub(crate) capp: Option<Arc<CompiledImage>>,
    pub(crate) ckernel: Option<Arc<CompiledImage>>,
}

impl Machine {
    /// Creates a machine running `app` on every process, without a kernel:
    /// syscalls become no-ops returning `0` in `r0`.
    pub fn new(app: Arc<Image>, cfg: MachineConfig) -> Self {
        Self::with_kernel_opt(app, None, Vec::new(), cfg)
    }

    /// Creates a machine with a kernel image and a syscall table mapping
    /// codes to kernel procedures.
    pub fn with_kernel(
        app: Arc<Image>,
        kernel: Arc<Image>,
        table: Vec<(u16, SyscallDef)>,
        cfg: MachineConfig,
    ) -> Self {
        Self::with_kernel_opt(app, Some(kernel), table, cfg)
    }

    fn with_kernel_opt(
        app: Arc<Image>,
        kernel: Option<Arc<Image>>,
        table: Vec<(u16, SyscallDef)>,
        cfg: MachineConfig,
    ) -> Self {
        let nprocs = cfg.num_cpus.max(1) * cfg.processes_per_cpu.max(1);
        assert!(nprocs <= 256, "at most 256 processes");
        assert!(cfg.num_cpus <= 64, "at most 64 CPUs");
        let priv_words = cfg.private_words.next_power_of_two();
        let shared_words = cfg.shared_words.next_power_of_two();
        assert!(
            priv_words as u64 * 8 <= PRIVATE_DATA_STRIDE,
            "private region exceeds its address stride"
        );
        let mut syscalls = Vec::new();
        for (code, def) in table {
            let idx = code as usize;
            if syscalls.len() <= idx {
                syscalls.resize(idx + 1, None);
            }
            syscalls[idx] = Some(def);
        }
        let entry_block = app.block_of[app.entry as usize];
        let procs = (0..nprocs)
            .map(|_| Process {
                regs: [0; 32],
                saved_regs: [0; 32],
                kernel_returns_r0: false,
                pc: app.entry,
                stack: Vec::new(),
                kernel_mode: false,
                kpc: 0,
                kstack: Vec::new(),
                pending_block: 0,
                cur_block_user: entry_block,
                cur_block_kernel: BlockId(0),
                priv_mem: vec![0; priv_words],
                emitted: Vec::new(),
                halted: false,
                fault: None,
                blocked_until: 0,
                started: false,
                syscalls: 0,
            })
            .collect();
        let last_pid = vec![None; cfg.num_cpus.max(1)];
        let proc_rr = vec![0; cfg.num_cpus.max(1)];
        let (capp, ckernel) = if cfg.engine == VmEngine::Block {
            (
                Some(crate::cache::get_or_compile(&app)),
                kernel.as_ref().map(crate::cache::get_or_compile),
            )
        } else {
            (None, None)
        };
        Machine {
            cpu_rr: 0,
            dispatches: vec![0; nprocs],
            proc_rr,
            app,
            kernel,
            syscalls,
            cfg: MachineConfig {
                private_words: priv_words,
                shared_words,
                ..cfg
            },
            procs,
            shared: vec![0; shared_words],
            now: 0,
            last_pid,
            capp,
            ckernel,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Debug snapshot of a process: `(kernel_mode, pc, kpc, blocked_until,
    /// halted)`. Intended for diagnostics and tests.
    pub fn process_state(&self, pid: usize) -> (bool, u32, u32, u64, bool) {
        let p = &self.procs[pid];
        (p.kernel_mode, p.pc, p.kpc, p.blocked_until, p.halted)
    }

    /// Diagnostic: how many times each process has been dispatched.
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.dispatches
    }

    /// Processes that have neither halted nor faulted.
    pub fn live_processes(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| !p.halted && p.fault.is_none())
            .count()
    }

    /// The machine configuration (with memory sizes normalized).
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The execution tier this machine was built with.
    pub fn engine(&self) -> VmEngine {
        self.cfg.engine
    }

    /// Code-cache footprint for this machine's compiled images, as
    /// `(runs, bytes)` summed over app and kernel. `None` under the
    /// interpreter engine (nothing is compiled).
    pub fn code_cache_stats(&self) -> Option<(usize, usize)> {
        let mut any = false;
        let (mut runs, mut bytes) = (0, 0);
        for c in [self.capp.as_deref(), self.ckernel.as_deref()]
            .into_iter()
            .flatten()
        {
            any = true;
            runs += c.num_runs();
            bytes += c.size_bytes();
        }
        any.then_some((runs, bytes))
    }

    /// Global instruction clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sets a register of a (not yet started) process.
    ///
    /// # Panics
    /// Panics if `pid` is out of range.
    pub fn set_reg(&mut self, pid: usize, reg: Reg, value: i64) {
        rset(&mut self.procs[pid].regs, reg, value);
    }

    /// Reads a register of a process.
    pub fn reg(&self, pid: usize, reg: Reg) -> i64 {
        rget(&self.procs[pid].regs, reg)
    }

    /// Writes a word of shared memory.
    pub fn set_shared_word(&mut self, idx: usize, value: i64) {
        let m = self.shared.len() - 1;
        self.shared[idx & m] = value;
    }

    /// Reads a word of shared memory.
    pub fn shared_word(&self, idx: usize) -> i64 {
        self.shared[idx & (self.shared.len() - 1)]
    }

    /// Writes a word of a process's private memory.
    pub fn set_private_word(&mut self, pid: usize, idx: usize, value: i64) {
        let mem = &mut self.procs[pid].priv_mem;
        let m = mem.len() - 1;
        mem[idx & m] = value;
    }

    /// Reads a word of a process's private memory.
    pub fn private_word(&self, pid: usize, idx: usize) -> i64 {
        let mem = &self.procs[pid].priv_mem;
        mem[idx & (mem.len() - 1)]
    }

    /// Values emitted (via `Emit`) by a process, in order.
    pub fn emitted(&self, pid: usize) -> &[i64] {
        &self.procs[pid].emitted
    }

    /// The full shared-memory image (layout-invariant architectural
    /// state). A serving loop snapshots this at an epoch boundary and
    /// restores it into a fresh machine via [`Machine::load_shared`].
    pub fn shared_mem(&self) -> &[i64] {
        &self.shared
    }

    /// Overwrites shared memory with a snapshot taken by
    /// [`Machine::shared_mem`] on a machine of the same configuration.
    ///
    /// # Panics
    /// Panics if `words` is not exactly this machine's shared size
    /// (snapshots do not transfer between differently-sized machines).
    pub fn load_shared(&mut self, words: &[i64]) {
        assert_eq!(
            words.len(),
            self.shared.len(),
            "shared snapshot size must match the machine's shared memory"
        );
        self.shared.copy_from_slice(words);
    }

    /// Checksum of shared memory (layout-invariant architectural state).
    pub fn shared_checksum(&self) -> u64 {
        checksum_words(&self.shared)
    }

    /// Checksum of a process's private memory.
    pub fn private_checksum(&self, pid: usize) -> u64 {
        checksum_words(&self.procs[pid].priv_mem)
    }

    /// Runs without an execution hook. See [`Machine::run_hooked`].
    pub fn run<S: TraceSink>(&mut self, sink: &mut S, max_instrs: u64) -> RunReport {
        self.run_hooked(sink, &mut NullHook, max_instrs)
    }

    /// Runs all processes until they halt/fault or `max_instrs` instructions
    /// have executed, streaming fetch/data records to `sink` and
    /// block/edge/call events to `hook`.
    ///
    /// Scheduling: CPUs are served round-robin; on each turn a CPU picks its
    /// next runnable process (round-robin within the CPU) and runs it for up
    /// to one quantum, or until it halts, faults, or blocks. If a kernel is
    /// attached and [`MachineConfig::sched_proc`] is set, the scheduler
    /// procedure executes (as kernel instructions, in the incoming process's
    /// context) on every context switch.
    pub fn run_hooked<S: TraceSink, H: ExecHook>(
        &mut self,
        sink: &mut S,
        hook: &mut H,
        max_instrs: u64,
    ) -> RunReport {
        let mut report = RunReport::default();
        let ncpus = self.cfg.num_cpus.max(1);
        let nprocs = self.procs.len();
        let budget_end = self.now.saturating_add(max_instrs);

        loop {
            let mut any_ran = false;
            let mut min_wake = u64::MAX;
            let mut all_done = true;

            let cpu_base = self.cpu_rr;
            for turn in 0..ncpus {
                let cpu = (cpu_base + turn) % ncpus;
                // Budget check BEFORE selecting a process: selecting
                // advances the round-robin cursor, and doing that without
                // actually running the process would systematically skip
                // it under resonant chunked driving (a starvation bug that
                // once left a lock holder unscheduled forever).
                let quantum = self.cfg.quantum.min(budget_end.saturating_sub(self.now));
                if quantum == 0 {
                    self.cpu_rr = cpu;
                    break;
                }
                // Processes assigned to this cpu: pid % ncpus == cpu.
                let count = (nprocs + ncpus - 1 - cpu) / ncpus;
                if count == 0 {
                    continue;
                }
                let mut chosen = None;
                for k in 0..count {
                    let slot = (self.proc_rr[cpu] + k) % count;
                    let pid = slot * ncpus + cpu;
                    let p = &self.procs[pid];
                    if p.halted || p.fault.is_some() {
                        continue;
                    }
                    all_done = false;
                    if p.blocked_until > self.now {
                        min_wake = min_wake.min(p.blocked_until);
                        continue;
                    }
                    chosen = Some((slot, pid));
                    break;
                }
                let Some((slot, pid)) = chosen else { continue };
                self.proc_rr[cpu] = (slot + 1) % count;
                self.dispatches[pid] += 1;
                any_ran = true;

                if self.last_pid[cpu] != Some(pid) {
                    if self.last_pid[cpu].is_some() {
                        report.context_switches += 1;
                    }
                    self.last_pid[cpu] = Some(pid);
                    // Run the kernel scheduler path in the incoming process's
                    // context — unless it was preempted inside the kernel, in
                    // which case its saved kernel state must not be clobbered.
                    if let (Some(sp), true) = (self.cfg.sched_proc, self.kernel.is_some()) {
                        if !self.procs[pid].kernel_mode {
                            self.enter_kernel(pid, sp, 0, false, hook);
                        }
                    }
                }

                self.cpu_rr = (cpu + 1) % ncpus;
                let stop = match self.cfg.engine {
                    VmEngine::Interp => crate::exec::interp_exec(
                        self,
                        cpu as u8,
                        pid,
                        quantum,
                        sink,
                        hook,
                        &mut report,
                    ),
                    VmEngine::Block => crate::block::block_exec(
                        self,
                        cpu as u8,
                        pid,
                        quantum,
                        sink,
                        hook,
                        &mut report,
                    ),
                };
                match stop {
                    Stop::Halted => {
                        report.halted_processes += 1;
                        self.last_pid[cpu] = None;
                    }
                    Stop::Faulted(f) => {
                        report.faults.push((pid as u8, f));
                        self.procs[pid].fault = Some(f);
                        self.last_pid[cpu] = None;
                    }
                    Stop::Blocked | Stop::Quantum => {}
                }
            }

            if all_done {
                break;
            }
            if self.now >= budget_end {
                break;
            }
            if !any_ran {
                if min_wake == u64::MAX {
                    break; // nothing runnable and nothing will wake
                }
                let wake = min_wake.min(budget_end);
                report.idle_instrs += wake - self.now;
                self.now = wake;
            }
        }
        report
    }

    /// Enters kernel mode at the entry of `proc`, recording the
    /// post-handler blocking latency to apply at kernel exit. User
    /// registers are banked and restored at kernel exit; `returns_r0`
    /// selects whether the kernel's `r0` is forwarded back (syscall return
    /// convention) or the user's `r0` is preserved (preemption).
    fn enter_kernel<H: ExecHook>(
        &mut self,
        pid: usize,
        kproc: ProcId,
        block: u64,
        returns_r0: bool,
        hook: &mut H,
    ) {
        let kernel = self.kernel.as_ref().expect("kernel image attached");
        let p = &mut self.procs[pid];
        debug_assert!(!p.kernel_mode, "nested kernel entry");
        p.kernel_mode = true;
        p.saved_regs = p.regs;
        p.kernel_returns_r0 = returns_r0;
        p.kpc = kernel.proc_entry[kproc.index()];
        p.kstack.clear();
        p.pending_block = block;
        let entry_block = kernel.block_of[p.kpc as usize];
        p.cur_block_kernel = entry_block;
        hook.block(true, entry_block);
    }
}
