//! Composition of the layout optimizations into the paper's pipelines.

use crate::chain::chain_all_with;
use crate::graph::pettis_hansen_order;
use crate::params::LayoutParams;
use crate::split::{split_all_with, Segment};
use codelayout_ir::{BlockId, Layout, ProcId, Program};
use codelayout_profile::Profile;
use std::fmt;

/// Which optimizations to apply, mirroring the x-axis of the paper's
/// Figures 7 and 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptimizationSet {
    /// Basic block chaining within procedures.
    pub chain: bool,
    /// Fine-grain procedure splitting into segments.
    pub split: bool,
    /// Pettis–Hansen procedure (or segment) ordering.
    pub porder: bool,
}

impl OptimizationSet {
    /// No optimization: the compiler's natural layout.
    pub const BASE: Self = Self {
        chain: false,
        split: false,
        porder: false,
    };
    /// Procedure ordering alone.
    pub const PORDER: Self = Self {
        chain: false,
        split: false,
        porder: true,
    };
    /// Basic block chaining alone.
    pub const CHAIN: Self = Self {
        chain: true,
        split: false,
        porder: false,
    };
    /// Chaining plus fine-grain splitting (cold segments sink to the end).
    pub const CHAIN_SPLIT: Self = Self {
        chain: true,
        split: true,
        porder: false,
    };
    /// Chaining plus whole-procedure ordering.
    pub const CHAIN_PORDER: Self = Self {
        chain: true,
        split: false,
        porder: true,
    };
    /// All three: chaining, splitting, segment ordering.
    pub const ALL: Self = Self {
        chain: true,
        split: true,
        porder: true,
    };

    /// The six configurations evaluated in the paper's Figures 7 and 15, in
    /// presentation order, with the paper's labels.
    pub fn paper_series() -> [(&'static str, Self); 6] {
        [
            ("base", Self::BASE),
            ("porder", Self::PORDER),
            ("chain", Self::CHAIN),
            ("chain+split", Self::CHAIN_SPLIT),
            ("chain+porder", Self::CHAIN_PORDER),
            ("all", Self::ALL),
        ]
    }
}

impl fmt::Display for OptimizationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.chain, self.split, self.porder) {
            (false, false, false) => write!(f, "base"),
            (false, false, true) => write!(f, "porder"),
            (true, false, false) => write!(f, "chain"),
            (true, true, false) => write!(f, "chain+split"),
            (true, false, true) => write!(f, "chain+porder"),
            (true, true, true) => write!(f, "all"),
            (false, true, false) => write!(f, "split"),
            (false, true, true) => write!(f, "split+porder"),
        }
    }
}

/// Profile-driven layout generator: the Rust equivalent of running Spike on
/// an executable with a profile.
///
/// ```
/// # use codelayout_ir::{ProcBuilder, ProgramBuilder, Reg};
/// # use codelayout_profile::Profile;
/// use codelayout_core::{LayoutPipeline, OptimizationSet};
///
/// # let mut pb = ProgramBuilder::new("p");
/// # let main = pb.declare_proc("main");
/// # let mut f = ProcBuilder::new();
/// # f.halt();
/// # pb.define_proc(main, f).unwrap();
/// # let program = pb.finish(main).unwrap();
/// # let profile = Profile::new(program.blocks.len());
/// let pipeline = LayoutPipeline::new(&program, &profile);
/// let layout = pipeline.build(OptimizationSet::ALL);
/// assert_eq!(layout.len(), program.blocks.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LayoutPipeline<'a> {
    program: &'a Program,
    profile: &'a Profile,
    params: LayoutParams,
}

impl<'a> LayoutPipeline<'a> {
    /// Creates a pipeline over a program and its profile, with the default
    /// [`LayoutParams`] (the historical hard-coded constants).
    pub fn new(program: &'a Program, profile: &'a Profile) -> Self {
        Self::with_params(program, profile, LayoutParams::default())
    }

    /// Creates a pipeline with explicit layout-construction parameters.
    ///
    /// `with_params(p, prof, LayoutParams::default())` is bit-identical to
    /// [`LayoutPipeline::new`] for every series.
    pub fn with_params(program: &'a Program, profile: &'a Profile, params: LayoutParams) -> Self {
        LayoutPipeline {
            program,
            profile,
            params,
        }
    }

    /// The pipeline's layout-construction parameters.
    pub fn params(&self) -> &LayoutParams {
        &self.params
    }

    /// Per-procedure block orders after the (optional) chaining stage.
    pub fn block_orders(&self, chain: bool) -> Vec<Vec<BlockId>> {
        if chain {
            let _span = codelayout_obs::span("chain");
            let orders = chain_all_with(self.program, self.profile, &self.params.chain);
            codelayout_obs::metrics().add(
                "layout.blocks_chained",
                orders.iter().map(Vec::len).sum::<usize>() as u64,
            );
            orders
        } else {
            self.program
                .procs
                .iter()
                .map(|p| p.blocks.clone())
                .collect()
        }
    }

    /// The segments produced by chaining (optional) followed by fine-grain
    /// splitting.
    pub fn segments(&self, chain: bool) -> Vec<Segment> {
        let orders = self.block_orders(chain);
        let _span = codelayout_obs::span("split");
        let segs = split_all_with(self.program, self.profile, &orders, &self.params.split);
        codelayout_obs::metrics().add("layout.segments", segs.len() as u64);
        segs
    }

    /// Builds the final layout for an optimization set.
    ///
    /// Every constructed layout is checked with
    /// [`codelayout_ir::verify_layout`]; under `debug_assertions` the
    /// pipeline's positional conventions are additionally checked with
    /// [`codelayout_ir::verify_layout_placement`].
    ///
    /// # Panics
    /// Panics if the constructed layout fails verification — that is always
    /// a bug in the optimization stages, never a property of the input.
    pub fn build(&self, set: OptimizationSet) -> Layout {
        let _span = codelayout_obs::span("layout");
        codelayout_obs::metrics().add("layout.builds", 1);
        let layout = self.build_unchecked(set);
        let verify_span = codelayout_obs::span("verify");
        codelayout_ir::verify_layout(self.program, &layout)
            .unwrap_or_else(|e| panic!("pipeline produced an invalid `{set}` layout: {e}"));
        #[cfg(debug_assertions)]
        codelayout_ir::verify_layout_placement(self.program, &layout, set.split)
            .unwrap_or_else(|e| panic!("pipeline violated `{set}` placement conventions: {e}"));
        verify_span.finish();
        layout
    }

    /// Builds the layout for any [`crate::LayoutSeries`], checking each
    /// series' own placement conventions (see
    /// [`crate::LayoutSeries::placement_split`]).
    ///
    /// The CFA series sizes its reserved area from the pipeline's
    /// parameters (default [`CFA_RESERVED_BYTES`]); every other series
    /// likewise consumes its sub-struct of the pipeline's
    /// [`LayoutParams`].
    ///
    /// # Panics
    /// Panics if the constructed layout fails verification, as in
    /// [`LayoutPipeline::build`].
    pub fn build_series(&self, series: crate::LayoutSeries) -> Layout {
        use crate::LayoutSeries;
        if let LayoutSeries::Paper(set) = series {
            return self.build(set);
        }
        let layout = match series {
            LayoutSeries::Paper(_) => unreachable!("handled above"),
            LayoutSeries::HotCold => {
                crate::hot_cold_layout_with(self.program, self.profile, &self.params)
            }
            LayoutSeries::Cfa => crate::cfa_layout_with(self.program, self.profile, &self.params).0,
            LayoutSeries::ExtTsp => {
                crate::exttsp_layout_with(self.program, self.profile, &self.params)
            }
            LayoutSeries::Stitcher => {
                crate::stitcher_layout_params(self.program, self.profile, &self.params)
            }
        };
        let verify_span = codelayout_obs::span("verify");
        codelayout_ir::verify_layout(self.program, &layout)
            .unwrap_or_else(|e| panic!("pipeline produced an invalid `{series}` layout: {e}"));
        #[cfg(debug_assertions)]
        if let Some(split) = series.placement_split() {
            codelayout_ir::verify_layout_placement(self.program, &layout, split).unwrap_or_else(
                |e| panic!("pipeline violated `{series}` placement conventions: {e}"),
            );
        }
        verify_span.finish();
        layout
    }

    fn build_unchecked(&self, set: OptimizationSet) -> Layout {
        let order: Vec<BlockId> = if set.split {
            let segs = self.segments(set.chain);
            let seg_order: Vec<usize> = if set.porder {
                let _span = codelayout_obs::span("porder");
                let edges = segment_edges(self.program, self.profile, &segs);
                pettis_hansen_order(segs.len(), edges)
                    .into_iter()
                    .map(|i| i as usize)
                    .collect()
            } else {
                // Splitting without ordering keeps placement unchanged:
                // segments only gain *flexibility* for a follow-on
                // ordering pass (paper §4.1: "Adding splitting … alone
                // does not improve performance significantly").
                (0..segs.len()).collect()
            };
            seg_order
                .into_iter()
                .flat_map(|i| segs[i].blocks.iter().copied())
                .collect()
        } else {
            let orders = self.block_orders(set.chain);
            let proc_order: Vec<u32> = if set.porder {
                let _span = codelayout_obs::span("porder");
                let w = self.profile.proc_call_weights(self.program);
                pettis_hansen_order(
                    self.program.procs.len(),
                    w.into_iter().map(|((a, b), c)| (a, b, c)),
                )
            } else {
                (0..self.program.procs.len() as u32).collect()
            };
            proc_order
                .into_iter()
                .flat_map(|p| orders[p as usize].iter().copied())
                .collect()
        };
        Layout { order }
    }
}

/// The reserved conflict-free-area size used whenever the CFA series is
/// built through the uniform series surface: 32 KiB, a quarter of the
/// evaluation's largest simulated instruction cache.
pub const CFA_RESERVED_BYTES: u64 = 32 * 1024;

/// Weighted edges between segments: inter-segment flow edges plus call
/// edges mapped to the callee's entry segment.
pub(crate) fn segment_edges(
    program: &Program,
    profile: &Profile,
    segs: &[Segment],
) -> Vec<(u32, u32, u64)> {
    let mut seg_of = vec![u32::MAX; program.blocks.len()];
    for (si, s) in segs.iter().enumerate() {
        for &b in &s.blocks {
            seg_of[b.index()] = si as u32;
        }
    }
    let mut edges = Vec::new();
    for (&(from, to), &c) in &profile.edge_counts {
        let (sf, st) = (seg_of[from as usize], seg_of[to as usize]);
        if sf != st && sf != u32::MAX && st != u32::MAX && c > 0 {
            edges.push((sf, st, c));
        }
    }
    for (&(from_block, callee), &c) in &profile.call_counts {
        let sf = seg_of[from_block as usize];
        let entry = program.proc(ProcId(callee)).entry;
        let st = seg_of[entry.index()];
        if sf != st && sf != u32::MAX && st != u32::MAX && c > 0 {
            edges.push((sf, st, c));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{verify_layout, Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// Three procedures: main calls a (hot) and b (cold); a has a hot/cold
    /// diamond.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_proc("main");
        let pa = pb.declare_proc("a");
        let z = pb.declare_proc("z_cold");

        let mut f = ProcBuilder::new();
        f.call(pa).call(z);
        f.halt();
        pb.define_proc(main, f).unwrap();

        let mut g = ProcBuilder::new();
        let e = g.entry();
        let hot = g.new_block();
        let cold = g.new_block();
        let out = g.new_block();
        g.select(e);
        g.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        g.select(hot);
        g.nop();
        g.jump(out);
        g.select(cold);
        g.nop();
        g.jump(out);
        g.select(out);
        g.ret();
        pb.define_proc(pa, g).unwrap();

        let mut h = ProcBuilder::new();
        h.nop();
        h.ret();
        pb.define_proc(z, h).unwrap();

        pb.finish(main).unwrap()
    }

    fn profile(p: &Program) -> Profile {
        // Blocks: 0 = main, 1..=4 = a (entry,hot,cold,out), 5 = z.
        let mut prof = Profile::new(p.blocks.len());
        prof.block_counts = vec![1000, 1000, 990, 10, 1000, 0];
        prof.edge_counts.insert((1, 2), 990);
        prof.edge_counts.insert((1, 3), 10);
        prof.edge_counts.insert((2, 4), 990);
        prof.edge_counts.insert((3, 4), 10);
        prof.call_counts.insert((0, 1), 1000);
        prof
    }

    #[test]
    fn every_preset_yields_a_valid_layout() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        for (name, set) in OptimizationSet::paper_series() {
            let layout = pipe.build(set);
            verify_layout(&p, &layout).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(set.to_string(), name);
        }
    }

    #[test]
    fn base_is_natural() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        assert_eq!(pipe.build(OptimizationSet::BASE), Layout::natural(&p));
    }

    #[test]
    fn chain_puts_hot_arm_on_fallthrough() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        let l = pipe.build(OptimizationSet::CHAIN);
        let pos: Vec<usize> = {
            let mut v = vec![0; p.blocks.len()];
            for (i, b) in l.order.iter().enumerate() {
                v[b.index()] = i;
            }
            v
        };
        // a's entry (1) falls into hot (2) falls into out (4).
        assert_eq!(pos[2], pos[1] + 1);
        assert_eq!(pos[4], pos[2] + 1);
    }

    #[test]
    fn split_without_porder_leaves_placement_unchanged() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        // Splitting alone only creates flexibility for the ordering pass;
        // the layout equals the chained layout (paper §4.1).
        assert_eq!(
            pipe.build(OptimizationSet::CHAIN_SPLIT),
            pipe.build(OptimizationSet::CHAIN)
        );
    }

    #[test]
    fn all_places_caller_next_to_callee_entry() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        let l = pipe.build(OptimizationSet::ALL);
        let pos: Vec<usize> = {
            let mut v = vec![0; p.blocks.len()];
            for (i, b) in l.order.iter().enumerate() {
                v[b.index()] = i;
            }
            v
        };
        // main (block 0) and a's entry segment head (block 1) should end up
        // adjacent segments under PH with the 1000-weight call edge.
        assert!(pos[0].abs_diff(pos[1]) <= 2, "order: {:?}", l.order);
        // Cold z still last.
        assert_eq!(*l.order.last().unwrap(), BlockId(5));
    }

    #[test]
    fn default_params_reproduce_every_series() {
        let p = program();
        let prof = profile(&p);
        let legacy = LayoutPipeline::new(&p, &prof);
        let parameterized = LayoutPipeline::with_params(&p, &prof, LayoutParams::default());
        for series in crate::LayoutSeries::all() {
            assert_eq!(
                legacy.build_series(series),
                parameterized.build_series(series),
                "{series} diverged under default params"
            );
        }
    }

    #[test]
    fn non_default_params_reach_the_passes() {
        let p = program();
        let prof = profile(&p);
        // A chain threshold above every edge weight suppresses all
        // chaining, which must change the `all` layout for this profile.
        let params = LayoutParams {
            chain: crate::ChainParams {
                min_edge_weight: 100_000,
            },
            ..LayoutParams::default()
        };
        let tuned = LayoutPipeline::with_params(&p, &prof, params);
        let legacy = LayoutPipeline::new(&p, &prof);
        assert_ne!(
            tuned.build(OptimizationSet::CHAIN),
            legacy.build(OptimizationSet::CHAIN)
        );
        verify_layout(&p, &tuned.build_series(crate::LayoutSeries::Stitcher)).unwrap();
    }

    #[test]
    fn segment_edges_cross_segments_only() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        let segs = pipe.segments(true);
        let edges = segment_edges(&p, &prof, &segs);
        for (a, b, w) in &edges {
            assert_ne!(a, b);
            assert!(*w > 0);
        }
        // The call edge main->a must be present.
        let mut seg_of = vec![u32::MAX; p.blocks.len()];
        for (si, s) in segs.iter().enumerate() {
            for bl in &s.blocks {
                seg_of[bl.index()] = si as u32;
            }
        }
        assert!(edges
            .iter()
            .any(|&(a, b, _)| a == seg_of[0] && b == seg_of[1]));
    }
}
