//! [`LayoutSeries`]: the pass-selection surface over every layout
//! algorithm this crate implements.
//!
//! The paper's six chain/split/porder combinations, the two algorithms it
//! compares against (hot/cold splitting, CFA), and the two modern
//! successors (ext-TSP, Codestitcher) are all addressable by one stable
//! label, so benchmarks, lints, env knobs and figure tables can name any
//! series uniformly.

use crate::pipeline::OptimizationSet;
use std::fmt;

/// One selectable layout algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutSeries {
    /// One of the paper's chain/split/porder combinations.
    Paper(OptimizationSet),
    /// Spike-distribution hot/cold splitting ([`crate::hot_cold_layout`]).
    HotCold,
    /// Conflict-free-area / software trace cache ([`crate::cfa_layout`]).
    Cfa,
    /// ext-TSP chain merging ([`crate::exttsp_layout`]).
    ExtTsp,
    /// Codestitcher hierarchical collocation ([`crate::stitcher_layout`]).
    Stitcher,
}

impl LayoutSeries {
    /// Every series, in presentation order: the paper's six, then the two
    /// algorithms the paper compares against, then the two modern
    /// successors.
    pub fn all() -> [LayoutSeries; 10] {
        [
            LayoutSeries::Paper(OptimizationSet::BASE),
            LayoutSeries::Paper(OptimizationSet::PORDER),
            LayoutSeries::Paper(OptimizationSet::CHAIN),
            LayoutSeries::Paper(OptimizationSet::CHAIN_SPLIT),
            LayoutSeries::Paper(OptimizationSet::CHAIN_PORDER),
            LayoutSeries::Paper(OptimizationSet::ALL),
            LayoutSeries::HotCold,
            LayoutSeries::Cfa,
            LayoutSeries::ExtTsp,
            LayoutSeries::Stitcher,
        ]
    }

    /// The five series of the cross-algorithm comparison table: the
    /// baseline, the paper trio's best (`all`), hot/cold splitting, and
    /// the two modern passes.
    pub fn comparison() -> [LayoutSeries; 5] {
        [
            LayoutSeries::Paper(OptimizationSet::BASE),
            LayoutSeries::Paper(OptimizationSet::ALL),
            LayoutSeries::HotCold,
            LayoutSeries::ExtTsp,
            LayoutSeries::Stitcher,
        ]
    }

    /// The series gated by the `layout_lint` matrix: the paper's six plus
    /// the two modern passes (hot/cold and CFA interleave segments their
    /// own way and are evaluated, not gated).
    pub fn lint_matrix() -> [LayoutSeries; 8] {
        [
            LayoutSeries::Paper(OptimizationSet::BASE),
            LayoutSeries::Paper(OptimizationSet::PORDER),
            LayoutSeries::Paper(OptimizationSet::CHAIN),
            LayoutSeries::Paper(OptimizationSet::CHAIN_SPLIT),
            LayoutSeries::Paper(OptimizationSet::CHAIN_PORDER),
            LayoutSeries::Paper(OptimizationSet::ALL),
            LayoutSeries::ExtTsp,
            LayoutSeries::Stitcher,
        ]
    }

    /// Stable lowercase label, as accepted by `CODELAYOUT_LAYOUT_SERIES`
    /// and used by the harness, figures and manifests.
    pub fn label(self) -> &'static str {
        match self {
            LayoutSeries::Paper(OptimizationSet::BASE) => "base",
            LayoutSeries::Paper(OptimizationSet::PORDER) => "porder",
            LayoutSeries::Paper(OptimizationSet::CHAIN) => "chain",
            LayoutSeries::Paper(OptimizationSet::CHAIN_SPLIT) => "chain+split",
            LayoutSeries::Paper(OptimizationSet::CHAIN_PORDER) => "chain+porder",
            LayoutSeries::Paper(_) => "all",
            LayoutSeries::HotCold => "hotcold",
            LayoutSeries::Cfa => "cfa",
            LayoutSeries::ExtTsp => "exttsp",
            LayoutSeries::Stitcher => "stitcher",
        }
    }

    /// Parses a label produced by [`LayoutSeries::label`].
    ///
    /// The error names every accepted label, so misspelled env knobs and
    /// harness run names fail with an actionable message instead of a
    /// bare `None`.
    pub fn parse(s: &str) -> Result<LayoutSeries, ParseSeriesError> {
        LayoutSeries::all()
            .into_iter()
            .find(|x| x.label() == s)
            .ok_or_else(|| ParseSeriesError {
                input: s.to_string(),
            })
    }

    /// The optimization claims `lint_layout` should judge this series
    /// under. The paper series carry their own set; ext-TSP arranges
    /// fall-throughs and orders procedures (chain + porder claims, no
    /// splitting — procedures stay contiguous); Codestitcher places
    /// exactly the chained-and-split segments, so the full `all` premises
    /// hold. Hot/cold and CFA interleave code their own way and only
    /// claim chaining.
    pub fn lint_set(self) -> OptimizationSet {
        match self {
            LayoutSeries::Paper(set) => set,
            LayoutSeries::HotCold | LayoutSeries::Cfa => OptimizationSet::CHAIN,
            LayoutSeries::ExtTsp => OptimizationSet::CHAIN_PORDER,
            LayoutSeries::Stitcher => OptimizationSet::ALL,
        }
    }

    /// The placement convention the series guarantees, as checked by
    /// [`codelayout_ir::verify_layout_placement`]: `Some(false)` for
    /// procedure-contiguous layouts, `Some(true)` for segment-level
    /// placements, `None` for series with no positional convention
    /// (hot/cold and CFA deliberately interleave procedures).
    pub fn placement_split(self) -> Option<bool> {
        match self {
            LayoutSeries::Paper(set) => Some(set.split),
            LayoutSeries::ExtTsp => Some(false),
            LayoutSeries::Stitcher => Some(true),
            LayoutSeries::HotCold | LayoutSeries::Cfa => None,
        }
    }
}

impl fmt::Display for LayoutSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned by [`LayoutSeries::parse`] for an unknown label. Its
/// display lists the full set of accepted labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeriesError {
    input: String,
}

impl ParseSeriesError {
    /// The rejected input.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown layout series `{}`; accepted labels: ",
            self.input
        )?;
        for (i, s) in LayoutSeries::all().into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(s.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for s in LayoutSeries::all() {
            assert_eq!(LayoutSeries::parse(s.label()), Ok(s), "{s}");
        }
        let err = LayoutSeries::parse("nope").unwrap_err();
        assert_eq!(err.input(), "nope");
        let msg = err.to_string();
        for s in LayoutSeries::all() {
            assert!(msg.contains(s.label()), "error omits `{s}`: {msg}");
        }
    }

    #[test]
    fn label_sets_are_consistent() {
        let all: Vec<&str> = LayoutSeries::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            all,
            [
                "base",
                "porder",
                "chain",
                "chain+split",
                "chain+porder",
                "all",
                "hotcold",
                "cfa",
                "exttsp",
                "stitcher"
            ]
        );
        for s in LayoutSeries::comparison() {
            assert!(all.contains(&s.label()));
        }
        for s in LayoutSeries::lint_matrix() {
            assert!(all.contains(&s.label()));
        }
    }

    #[test]
    fn paper_labels_match_optimization_set_display() {
        for (name, set) in OptimizationSet::paper_series() {
            assert_eq!(LayoutSeries::Paper(set).label(), name);
            assert_eq!(LayoutSeries::Paper(set).lint_set(), set);
            assert_eq!(LayoutSeries::Paper(set).placement_split(), Some(set.split));
        }
    }
}
