//! Codestitcher-style hierarchical collocation (Lavaee, Criswell & Ding,
//! *Codestitcher: inter-procedural basic block layout*, PAPERS.md).
//!
//! The paper trio places whole procedures (or split segments) with one
//! flat Pettis–Hansen pass, treating a 100-byte and a 100-kilobyte
//! separation as equally bad. Codestitcher's observation is that the
//! benefit of collocating two pieces of code depends on the *distance
//! class* the collocation achieves: sharing a cache line, sharing a TLB
//! page, or sharing a huge page. This pass therefore merges
//! inter-procedural basic-block chains in three levels of increasing byte
//! budget — cache line, then page, then huge page — so the hottest call
//! and flow edges are resolved at the tightest distance class first, and
//! looser relations only influence placement at coarser granularity.
//!
//! The chains are the pipeline's existing chained-and-split segments
//! ([`crate::split_all`] over [`crate::chain_all`]), and the edges between
//! them are the pipeline's segment edges (flow plus calls mapped to the
//! callee's entry segment) — no new profile machinery, as the edge
//! profiles already carry everything the hierarchy needs.

use crate::exttsp::block_bytes;
use crate::params::LayoutParams;
use crate::pipeline::segment_edges;
use crate::split::split_all_with;
use codelayout_ir::{Layout, Program};
use codelayout_profile::Profile;
use std::collections::{BinaryHeap, HashMap};

/// Byte budgets of the three collocation levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchLevels {
    /// Innermost level: a merged cluster must fit one cache line.
    pub line: u64,
    /// Middle level: a merged cluster must fit one instruction-TLB page.
    pub page: u64,
    /// Outer level: a merged cluster must fit one huge page.
    pub huge: u64,
}

impl Default for StitchLevels {
    /// 128-byte lines (the simulated caches), 8 KiB pages (the simulated
    /// iTLB) and 2 MiB huge pages.
    fn default() -> Self {
        StitchLevels {
            line: 128,
            page: 8 * 1024,
            huge: 2 * 1024 * 1024,
        }
    }
}

/// Builds the Codestitcher layout with the default level budgets.
pub fn stitcher_layout(program: &Program, profile: &Profile) -> Layout {
    stitcher_layout_params(program, profile, &LayoutParams::default())
}

/// Builds the Codestitcher layout with explicit level budgets (chaining
/// and splitting stay at their defaults).
pub fn stitcher_layout_with(program: &Program, profile: &Profile, levels: StitchLevels) -> Layout {
    let params = LayoutParams {
        stitch: levels,
        ..LayoutParams::default()
    };
    stitcher_layout_params(program, profile, &params)
}

/// Builds the Codestitcher layout under a full parameter set: `chain` and
/// `split` shape the segments, `stitch` sets the level budgets.
///
/// The result is a permutation of the chained-and-split segments, so it
/// honors the same placement conventions as the paper's `all` series
/// (segments never straddle, conditional tails stay unique per
/// procedure).
pub fn stitcher_layout_params(
    program: &Program,
    profile: &Profile,
    params: &LayoutParams,
) -> Layout {
    let _span = codelayout_obs::span("stitcher");
    let levels = params.stitch;
    let orders = crate::chain::chain_all_with(program, profile, &params.chain);
    let segs = split_all_with(program, profile, &orders, &params.split);
    let edges = segment_edges(program, profile, &segs);
    let sizes: Vec<u64> = segs
        .iter()
        .map(|s| s.blocks.iter().map(|&b| block_bytes(program, b)).sum())
        .collect();
    let seg_order = merge_levels(
        segs.len(),
        edges,
        sizes,
        &[levels.line, levels.page, levels.huge],
    );
    let order = seg_order
        .into_iter()
        .flat_map(|i| segs[i as usize].blocks.iter().copied())
        .collect();
    Layout { order }
}

/// Pettis–Hansen node merging run once per level with a cluster byte
/// budget: a merge is only admissible while the combined cluster fits the
/// level's budget. Pairs that overflow one level stay adjacent and get
/// reconsidered at the next, looser level. Emission matches
/// [`crate::pettis_hansen_order`]: groups hottest-first, never-connected
/// nodes last in id order.
fn merge_levels(
    num_nodes: usize,
    edges: Vec<(u32, u32, u64)>,
    mut size: Vec<u64>,
    budgets: &[u64],
) -> Vec<u32> {
    let mut undirected: HashMap<(u32, u32), u64> = HashMap::new();
    for (a, b, w) in edges {
        if a == b || w == 0 {
            continue;
        }
        let key = (a.min(b), a.max(b));
        *undirected.entry(key).or_insert(0) += w;
    }
    let orig = undirected.clone();

    let mut list: Vec<Option<Vec<u32>>> = (0..num_nodes as u32).map(|i| Some(vec![i])).collect();
    let mut heat: Vec<u64> = vec![0; num_nodes];
    let mut adj: Vec<HashMap<u32, u64>> = vec![HashMap::new(); num_nodes];
    for (&(a, b), &w) in &undirected {
        adj[a as usize].insert(b, w);
        adj[b as usize].insert(a, w);
    }

    let score = |orig: &HashMap<(u32, u32), u64>, x: u32, y: u32| -> u64 {
        orig.get(&(x.min(y), x.max(y))).copied().unwrap_or(0)
    };

    for &budget in budgets {
        // Fresh lazy heap per level: pairs skipped for size at a tighter
        // level must come back once the budget loosens.
        let mut heap: BinaryHeap<(u64, std::cmp::Reverse<u32>, std::cmp::Reverse<u32>)> =
            BinaryHeap::new();
        for (a, nbrs) in adj.iter().enumerate() {
            for (&b, &w) in nbrs {
                if (a as u32) < b {
                    heap.push((w, std::cmp::Reverse(a as u32), std::cmp::Reverse(b)));
                }
            }
        }
        while let Some((w, std::cmp::Reverse(a), std::cmp::Reverse(b))) = heap.pop() {
            if list[a as usize].is_none() || list[b as usize].is_none() {
                continue;
            }
            if adj[a as usize].get(&b).copied() != Some(w) {
                continue;
            }
            // The level's one addition to Pettis–Hansen: the merged
            // cluster must fit the current distance class. Sizes only
            // grow, so dropping the heap entry is safe — the pair stays
            // in the adjacency for the next level.
            if size[a as usize] + size[b as usize] > budget {
                continue;
            }

            let la = list[a as usize].take().expect("checked");
            let lb = list[b as usize].take().expect("checked");
            let (ha, ta) = (la[0], *la.last().expect("nonempty"));
            let (hb, tb) = (lb[0], *lb.last().expect("nonempty"));
            let candidates = [
                score(&orig, ta, hb), // A ++ B
                score(&orig, ta, tb), // A ++ rev(B)
                score(&orig, ha, hb), // rev(A) ++ B
                score(&orig, ha, tb), // rev(A) ++ rev(B)
            ];
            let bestc = candidates
                .iter()
                .enumerate()
                .max_by(|(i, x), (j, y)| x.cmp(y).then(j.cmp(i)))
                .map(|(i, _)| i)
                .expect("four candidates");
            let mut merged = Vec::with_capacity(la.len() + lb.len());
            match bestc {
                0 => {
                    merged.extend(la);
                    merged.extend(lb);
                }
                1 => {
                    merged.extend(la);
                    merged.extend(lb.into_iter().rev());
                }
                2 => {
                    merged.extend(la.into_iter().rev());
                    merged.extend(lb);
                }
                _ => {
                    merged.extend(la.into_iter().rev());
                    merged.extend(lb.into_iter().rev());
                }
            }
            list[a as usize] = Some(merged);
            heat[a as usize] = heat[a as usize] + heat[b as usize] + w;
            size[a as usize] += size[b as usize];

            let b_adj: Vec<(u32, u64)> = adj[b as usize].drain().collect();
            adj[a as usize].remove(&b);
            for (nbr, wb) in b_adj {
                if nbr == a {
                    continue;
                }
                adj[nbr as usize].remove(&b);
                let entry = adj[a as usize].entry(nbr).or_insert(0);
                *entry += wb;
                let w_new = *entry;
                *adj[nbr as usize].entry(a).or_insert(0) = w_new;
                let (x, y) = (a.min(nbr), a.max(nbr));
                heap.push((w_new, std::cmp::Reverse(x), std::cmp::Reverse(y)));
            }
        }
    }

    let mut groups: Vec<(u64, u32, Vec<u32>)> = list
        .into_iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|l| (heat[i], i as u32, l)))
        .collect();
    groups.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut out = Vec::with_capacity(num_nodes);
    for (_, _, l) in groups {
        out.extend(l);
    }
    debug_assert_eq!(out.len(), num_nodes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_all;
    use codelayout_ir::{
        verify_layout, verify_layout_placement, Cond, Operand, ProcBuilder, ProgramBuilder, Reg,
    };

    /// main calls a (hot) and z (cold); a has a hot/cold diamond.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_proc("main");
        let pa = pb.declare_proc("a");
        let z = pb.declare_proc("z_cold");

        let mut f = ProcBuilder::new();
        f.call(pa).call(z);
        f.halt();
        pb.define_proc(main, f).unwrap();

        let mut g = ProcBuilder::new();
        let e = g.entry();
        let hot = g.new_block();
        let cold = g.new_block();
        let out = g.new_block();
        g.select(e);
        g.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        g.select(hot);
        g.nop();
        g.jump(out);
        g.select(cold);
        g.nop();
        g.jump(out);
        g.select(out);
        g.ret();
        pb.define_proc(pa, g).unwrap();

        let mut h = ProcBuilder::new();
        h.nop();
        h.ret();
        pb.define_proc(z, h).unwrap();

        pb.finish(main).unwrap()
    }

    fn profile(p: &Program) -> Profile {
        let mut prof = Profile::new(p.blocks.len());
        prof.block_counts = vec![1000, 1000, 990, 10, 1000, 0];
        prof.edge_counts.insert((1, 2), 990);
        prof.edge_counts.insert((1, 3), 10);
        prof.edge_counts.insert((2, 4), 990);
        prof.edge_counts.insert((3, 4), 10);
        prof.call_counts.insert((0, 1), 1000);
        prof
    }

    #[test]
    fn layout_is_valid_and_keeps_segments_intact() {
        let p = program();
        let prof = profile(&p);
        let l = stitcher_layout(&p, &prof);
        verify_layout(&p, &l).unwrap();
        // Segments stay intact, so the split-layout placement conventions
        // hold exactly as for the paper's `all` series.
        verify_layout_placement(&p, &l, true).unwrap();
    }

    #[test]
    fn caller_lands_next_to_hot_callee() {
        let p = program();
        let prof = profile(&p);
        let l = stitcher_layout(&p, &prof);
        let pos: Vec<usize> = {
            let mut v = vec![0; p.blocks.len()];
            for (i, b) in l.order.iter().enumerate() {
                v[b.index()] = i;
            }
            v
        };
        // The 1000-weight call edge main->a resolves at the line level.
        assert!(pos[0].abs_diff(pos[1]) <= 2, "order: {:?}", l.order);
        // Cold z sinks to the end.
        assert_eq!(l.order.last().unwrap().index(), 5);
    }

    #[test]
    fn line_budget_blocks_oversized_merges() {
        // Two segments whose combined size exceeds a tiny line budget can
        // only merge at the page level; with page also tiny, never.
        let p = program();
        let prof = profile(&p);
        let starved = stitcher_layout_with(
            &p,
            &prof,
            StitchLevels {
                line: 1,
                page: 1,
                huge: 1,
            },
        );
        verify_layout(&p, &starved).unwrap();
        // No merges happen, so emission is the chained segments in
        // construction order.
        let orders = crate::chain_all(&p, &prof);
        let segs = split_all(&p, &prof, &orders);
        let expected: Vec<_> = segs.iter().flat_map(|s| s.blocks.iter().copied()).collect();
        assert_eq!(starved.order, expected);
    }

    #[test]
    fn deterministic() {
        let p = program();
        let prof = profile(&p);
        assert_eq!(stitcher_layout(&p, &prof), stitcher_layout(&p, &prof));
    }
}
