//! Conflict-free-area (CFA) layout — the software-trace-cache style
//! optimization the paper implemented and found ineffective for OLTP
//! (§2: "the footprint for such traces in our OLTP workload was too large
//! to fit within a reasonably sized fraction of the cache, and the
//! optimization yielded no gains").
//!
//! The idea (Torrellas et al. / Ramirez et al.): reserve an area of the
//! instruction cache for the hottest traces by placing them in a contiguous
//! region at the start of the image whose size is a fraction of the cache;
//! everything else is laid out after it, so nothing maps on top of the
//! reserved sets. We reproduce both the mechanism and the paper's negative
//! result (see the `cfa_ablation` experiment).

use crate::graph::pettis_hansen_order;
use crate::params::LayoutParams;
use crate::pipeline::{segment_edges, LayoutPipeline};
use codelayout_ir::{BlockId, Layout, Program, INSTR_BYTES};
use codelayout_profile::Profile;

/// Outcome of a CFA layout: the layout plus how well the hot traces fit the
/// reserved area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfaReport {
    /// Bytes of reserved conflict-free area requested.
    pub reserved_bytes: u64,
    /// Bytes of trace actually placed in the reserved area.
    pub placed_bytes: u64,
    /// Fraction (×1000) of dynamic execution covered by the reserved traces.
    pub coverage_permille: u32,
    /// Bytes that traces covering 90% of execution would need.
    pub bytes_for_90pct: u64,
}

/// Builds a CFA layout: hottest segments (by execution weight) are packed
/// into a reserved area of `reserved_bytes`; the remainder is Pettis–Hansen
/// ordered after it. Chaining and splitting run with default parameters.
pub fn cfa_layout(
    program: &Program,
    profile: &Profile,
    reserved_bytes: u64,
) -> (Layout, CfaReport) {
    let params = LayoutParams {
        cfa: crate::CfaParams { reserved_bytes },
        ..LayoutParams::default()
    };
    cfa_layout_with(program, profile, &params)
}

/// Builds a CFA layout under a full parameter set: `chain`/`split` shape
/// the segments, `cfa.reserved_bytes` sizes the conflict-free area.
pub fn cfa_layout_with(
    program: &Program,
    profile: &Profile,
    params: &LayoutParams,
) -> (Layout, CfaReport) {
    let reserved_bytes = params.cfa.reserved_bytes;
    let pipe = LayoutPipeline::with_params(program, profile, *params);
    let segs = pipe.segments(true);

    // Approximate segment sizes: body instructions + one terminator slot
    // per block.
    let seg_bytes = |si: usize| -> u64 {
        segs[si]
            .blocks
            .iter()
            .map(|&b| (program.block(b).instrs.len() as u64 + 1) * INSTR_BYTES)
            .sum()
    };

    // Hottest first (by total weight, tie on index).
    let mut by_heat: Vec<usize> = (0..segs.len()).collect();
    by_heat.sort_by(|&a, &b| segs[b].weight.cmp(&segs[a].weight).then(a.cmp(&b)));

    let total_weight: u64 = segs.iter().map(|s| s.weight).sum();
    let mut placed: Vec<usize> = Vec::new();
    let mut placed_bytes = 0u64;
    let mut covered = 0u64;
    let mut cum_weight = 0u64;
    let mut bytes_cum = 0u64;
    let mut bytes_for_90pct = 0u64;
    for &si in &by_heat {
        if segs[si].weight == 0 {
            break;
        }
        let sz = seg_bytes(si);
        bytes_cum += sz;
        cum_weight += segs[si].weight;
        if bytes_for_90pct == 0 && total_weight > 0 && cum_weight * 10 >= total_weight * 9 {
            bytes_for_90pct = bytes_cum;
        }
        if placed_bytes + sz <= reserved_bytes {
            placed.push(si);
            placed_bytes += sz;
            covered += segs[si].weight;
        }
    }

    let in_reserved = {
        let mut v = vec![false; segs.len()];
        for &si in &placed {
            v[si] = true;
        }
        v
    };

    // Order the rest with Pettis–Hansen over the full segment graph, then
    // filter out the reserved ones.
    let edges = segment_edges(program, profile, &segs);
    let ph = pettis_hansen_order(segs.len(), edges);

    let mut order: Vec<BlockId> = Vec::with_capacity(program.blocks.len());
    for &si in &placed {
        order.extend(segs[si].blocks.iter().copied());
    }
    for si in ph {
        if !in_reserved[si as usize] {
            order.extend(segs[si as usize].blocks.iter().copied());
        }
    }

    let coverage_permille = if total_weight == 0 {
        0
    } else {
        ((covered as u128 * 1000) / total_weight as u128) as u32
    };
    (
        Layout { order },
        CfaReport {
            reserved_bytes,
            placed_bytes,
            coverage_permille,
            bytes_for_90pct,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{verify_layout, ProcBuilder, ProgramBuilder, Reg};

    fn two_proc_program() -> Program {
        let mut pb = ProgramBuilder::new("cfa");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let mut f = ProcBuilder::new();
        f.work(Reg(1), 10).call(leaf);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.work(Reg(2), 30);
        g.ret();
        pb.define_proc(leaf, g).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn reserved_area_holds_hottest_segment() {
        let p = two_proc_program();
        let mut prof = Profile::new(2);
        prof.block_counts = vec![5, 100];
        prof.call_counts.insert((0, 1), 5);
        let (l, rep) = cfa_layout(&p, &prof, 1024);
        verify_layout(&p, &l).unwrap();
        // leaf (block 1, weight 100) placed first.
        assert_eq!(l.order[0], BlockId(1));
        assert!(rep.placed_bytes > 0 && rep.placed_bytes <= 1024);
        assert!(rep.coverage_permille > 900);
    }

    #[test]
    fn tiny_reservation_places_nothing() {
        let p = two_proc_program();
        let mut prof = Profile::new(2);
        prof.block_counts = vec![5, 100];
        let (l, rep) = cfa_layout(&p, &prof, 4);
        verify_layout(&p, &l).unwrap();
        assert_eq!(rep.placed_bytes, 0);
        assert_eq!(rep.coverage_permille, 0);
    }

    #[test]
    fn cold_program_reports_zero_coverage() {
        let p = two_proc_program();
        let prof = Profile::new(2);
        let (l, rep) = cfa_layout(&p, &prof, 1 << 20);
        verify_layout(&p, &l).unwrap();
        assert_eq!(rep.coverage_permille, 0);
        assert_eq!(rep.bytes_for_90pct, 0);
    }
}
