//! Fine-grain procedure splitting (paper §2, Fig. 1b).
//!
//! After chaining, a procedure's block sequence is cut into *segments* at
//! every unconditional control transfer (unconditional branch, table jump,
//! return, halt). Each segment is an independently placeable unit for the
//! follow-on procedure ordering; conditional branches never end a segment,
//! so a segment's interior keeps its fall-throughs regardless of where the
//! segment lands in memory.
//!
//! This is the paper's *fine-grain* splitting, which it contrasts with the
//! hot/cold splitting shipped in the Spike distribution (see
//! [`crate::hot_cold_layout`]).

use crate::params::SplitParams;
use codelayout_ir::{BlockId, ProcId, Program};
use codelayout_profile::Profile;

/// One placeable code segment: a run of blocks ending at an unconditional
/// transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Procedure the segment was cut from.
    pub proc: ProcId,
    /// Blocks of the segment, in order.
    pub blocks: Vec<BlockId>,
    /// True when the segment contains the procedure's entry block.
    pub is_entry: bool,
    /// Total profile count of the segment's blocks.
    pub weight: u64,
}

impl Segment {
    /// True when no block of the segment was ever executed.
    pub fn is_cold(&self) -> bool {
        self.weight == 0
    }

    /// First block of the segment (its "entry").
    pub fn head(&self) -> BlockId {
        self.blocks[0]
    }
}

/// Splits one procedure's (typically chained) block order into segments,
/// under the default [`SplitParams`].
///
/// A cut happens after a block whose terminator never falls through *and*
/// whose (single) target is not the next block in the order: a `Jump` to
/// the adjacent block is a fall-through the linker will erase, so cutting
/// there would let the follow-on segment ordering separate two blocks that
/// currently execute back-to-back.
pub fn split_order(
    program: &Program,
    profile: &Profile,
    proc: ProcId,
    order: &[BlockId],
) -> Vec<Segment> {
    split_order_with(program, profile, proc, order, &SplitParams::default())
}

/// Splits one procedure's block order into segments under explicit
/// parameters (see [`SplitParams::cut_fallthrough_jumps`] for the one
/// deviation from [`split_order`]).
pub fn split_order_with(
    program: &Program,
    profile: &Profile,
    proc: ProcId,
    order: &[BlockId],
    params: &SplitParams,
) -> Vec<Segment> {
    let entry = program.proc(proc).entry;
    let mut segments = Vec::new();
    let mut cur: Vec<BlockId> = Vec::new();
    for (pos, &b) in order.iter().enumerate() {
        cur.push(b);
        let term = &program.block(b).term;
        let cuts = match term {
            codelayout_ir::Terminator::Jump(t) => {
                params.cut_fallthrough_jumps || order.get(pos + 1) != Some(t)
            }
            _ => term.is_unconditional(),
        };
        if cuts {
            segments.push(make_segment(profile, proc, entry, std::mem::take(&mut cur)));
        }
    }
    if !cur.is_empty() {
        // A trailing run ending in a conditional branch (its arms are in
        // other segments); still a valid segment.
        segments.push(make_segment(profile, proc, entry, cur));
    }
    segments
}

fn make_segment(profile: &Profile, proc: ProcId, entry: BlockId, blocks: Vec<BlockId>) -> Segment {
    let weight = blocks.iter().map(|&b| profile.block_count(b)).sum();
    let is_entry = blocks.contains(&entry);
    Segment {
        proc,
        blocks,
        is_entry,
        weight,
    }
}

/// Splits every procedure of a program given per-procedure block orders
/// (for example from [`crate::chain_all`]). Returns all segments, in
/// procedure order then segment order.
pub fn split_all(program: &Program, profile: &Profile, orders: &[Vec<BlockId>]) -> Vec<Segment> {
    split_all_with(program, profile, orders, &SplitParams::default())
}

/// Splits every procedure under explicit parameters.
pub fn split_all_with(
    program: &Program,
    profile: &Profile,
    orders: &[Vec<BlockId>],
    params: &SplitParams,
) -> Vec<Segment> {
    let mut out = Vec::new();
    for (pi, order) in orders.iter().enumerate() {
        out.extend(split_order_with(
            program,
            profile,
            ProcId(pi as u32),
            order,
            params,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// b0: cond -> (b1,b2); b1: jump b3; b2: jump b3; b3: halt
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new("d");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let b0 = f.entry();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.select(b0);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), b1, b2);
        f.select(b1);
        f.jump(b3);
        f.select(b2);
        f.jump(b3);
        f.select(b3);
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn cuts_after_unconditional_transfers_only() {
        let prog = diamond();
        let mut prof = Profile::new(4);
        prof.block_counts = vec![10, 9, 1, 10];
        let order = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)];
        let segs = split_order(&prog, &prof, ProcId(0), &order);
        // b0 ends in a conditional: stays glued to b1. b1 jumps to b3 which
        // is NOT next -> cut. b2 jumps to b3 which IS next -> fall-through,
        // no cut. b3 halts -> cut.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].blocks, vec![BlockId(0), BlockId(1)]);
        assert_eq!(segs[1].blocks, vec![BlockId(2), BlockId(3)]);
        assert!(segs[0].is_entry);
        assert!(!segs[1].is_entry);
        assert_eq!(segs[0].weight, 19);
        assert_eq!(segs[1].weight, 11);
        assert!(!segs[0].is_cold());
    }

    #[test]
    fn concatenation_preserves_order() {
        let prog = diamond();
        let prof = Profile::new(4);
        let order = vec![BlockId(3), BlockId(2), BlockId(0), BlockId(1)];
        let segs = split_order(&prog, &prof, ProcId(0), &order);
        let flat: Vec<BlockId> = segs.iter().flat_map(|s| s.blocks.clone()).collect();
        assert_eq!(flat, order);
        assert!(segs.iter().all(Segment::is_cold));
    }

    #[test]
    fn trailing_conditional_makes_final_segment() {
        let prog = diamond();
        let prof = Profile::new(4);
        // Order ending with the conditional block b0.
        let order = vec![BlockId(1), BlockId(2), BlockId(3), BlockId(0)];
        let segs = split_order(&prog, &prof, ProcId(0), &order);
        assert_eq!(segs.last().unwrap().blocks, vec![BlockId(0)]);
    }

    #[test]
    fn cut_fallthrough_jumps_frees_the_glued_pair() {
        let prog = diamond();
        let prof = Profile::new(4);
        let order = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)];
        // Default: b2's jump to the adjacent b3 is a kept fall-through.
        assert_eq!(split_order(&prog, &prof, ProcId(0), &order).len(), 2);
        // With the knob on, every unconditional jump cuts.
        let segs = split_order_with(
            &prog,
            &prof,
            ProcId(0),
            &order,
            &SplitParams {
                cut_fallthrough_jumps: true,
            },
        );
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[1].blocks, vec![BlockId(2)]);
    }

    #[test]
    fn split_all_covers_every_proc() {
        let prog = diamond();
        let prof = Profile::new(4);
        let orders = vec![prog.proc(ProcId(0)).blocks.clone()];
        let segs = split_all(&prog, &prof, &orders);
        let total: usize = segs.iter().map(|s| s.blocks.len()).sum();
        assert_eq!(total, 4);
    }
}
