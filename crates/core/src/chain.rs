//! Basic block chaining (paper §2, Fig. 1a).
//!
//! Spike's greedy algorithm: flow edges of a procedure are processed in
//! decreasing weight order; an edge chains its source to its destination
//! when the source has no successor yet, the destination has no predecessor
//! yet, and the link would not close a cycle. Chains are then emitted with
//! the entry chain first and the rest in decreasing first-block execution
//! count. The effect is that hot conditional branches become not-taken
//! fall-throughs and hot unconditional branches disappear entirely.

use crate::params::ChainParams;
use codelayout_ir::{BlockId, ProcId, Program};
use codelayout_profile::Profile;
use std::collections::HashMap;

/// Returns the chained block order for one procedure under the default
/// [`ChainParams`].
///
/// The result is a permutation of `program.proc(proc).blocks`.
pub fn chain_proc(program: &Program, profile: &Profile, proc: ProcId) -> Vec<BlockId> {
    chain_proc_with(program, profile, proc, &ChainParams::default())
}

/// Returns the chained block order for one procedure under explicit
/// parameters.
///
/// The result is a permutation of `program.proc(proc).blocks`.
pub fn chain_proc_with(
    program: &Program,
    profile: &Profile,
    proc: ProcId,
    params: &ChainParams,
) -> Vec<BlockId> {
    let blocks = &program.proc(proc).blocks;
    let entry = program.proc(proc).entry;
    if blocks.len() <= 1 {
        return blocks.clone();
    }

    // Local dense indices for this procedure.
    let mut local: HashMap<BlockId, usize> = HashMap::with_capacity(blocks.len());
    for (i, &b) in blocks.iter().enumerate() {
        local.insert(b, i);
    }

    // Candidate edges: intra-procedure, non-self, deduplicated.
    let mut edges: Vec<(u64, u32, u32)> = Vec::new();
    for (i, &b) in blocks.iter().enumerate() {
        let term = &program.block(b).term;
        let mut seen: Vec<BlockId> = Vec::new();
        for s in term.successors() {
            if s == b || seen.contains(&s) {
                continue;
            }
            seen.push(s);
            if let Some(&j) = local.get(&s) {
                let w = profile.edge_count(b, s);
                if w < params.min_edge_weight {
                    continue;
                }
                edges.push((w, i as u32, j as u32));
            }
        }
    }
    // Heaviest first; deterministic tie-break on (from, to).
    edges.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let n = blocks.len();
    let mut next: Vec<Option<u32>> = vec![None; n];
    let mut prev: Vec<Option<u32>> = vec![None; n];
    // Union-find over chain membership for cycle avoidance.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for (_, from, to) in edges {
        if next[from as usize].is_some() || prev[to as usize].is_some() {
            continue;
        }
        let rf = find(&mut parent, from);
        let rt = find(&mut parent, to);
        if rf == rt {
            continue; // would close a cycle
        }
        next[from as usize] = Some(to);
        prev[to as usize] = Some(from);
        parent[rf as usize] = rt;
    }

    // Collect chains: heads have no predecessor.
    let mut chains: Vec<Vec<u32>> = Vec::new();
    for head in 0..n as u32 {
        if prev[head as usize].is_some() {
            continue;
        }
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(nx) = next[cur as usize] {
            chain.push(nx);
            cur = nx;
        }
        chains.push(chain);
    }
    debug_assert_eq!(chains.iter().map(Vec::len).sum::<usize>(), n);

    // Entry chain first; the rest by decreasing first-block count, with a
    // deterministic id tie-break.
    let entry_local = local[&entry] as u32;
    let chain_key = |c: &Vec<u32>| {
        let first = BlockId(blocks[c[0] as usize].0);
        (profile.block_count(first), u32::MAX - c[0])
    };
    chains.sort_by(|a, b| {
        let a_entry = a.contains(&entry_local);
        let b_entry = b.contains(&entry_local);
        b_entry
            .cmp(&a_entry)
            .then_with(|| chain_key(b).cmp(&chain_key(a)))
    });

    chains
        .into_iter()
        .flatten()
        .map(|i| blocks[i as usize])
        .collect()
}

/// Chains every procedure; returns per-procedure block orders indexed by
/// `ProcId`.
pub fn chain_all(program: &Program, profile: &Profile) -> Vec<Vec<BlockId>> {
    chain_all_with(program, profile, &ChainParams::default())
}

/// Chains every procedure under explicit parameters.
pub fn chain_all_with(
    program: &Program,
    profile: &Profile,
    params: &ChainParams,
) -> Vec<Vec<BlockId>> {
    (0..program.procs.len())
        .map(|p| chain_proc_with(program, profile, ProcId(p as u32), params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// Builds the paper's Fig 1(a) shape: a diamond with a hot arm, a loop
    /// and a cold error path.
    ///
    /// entry(b0) -> hot(b1) [w 90] / cold(b2) [w 10]; hot -> join(b3);
    /// cold -> join; join -> entry [loop w 50] / exit(b4).
    fn fig1_program() -> Program {
        let mut pb = ProgramBuilder::new("fig1");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let b0 = f.entry();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let b4 = f.new_block();
        f.select(b0);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), b1, b2);
        f.select(b1);
        f.nop();
        f.jump(b3);
        f.select(b2);
        f.nop();
        f.jump(b3);
        f.select(b3);
        f.branch(Cond::Gt, Reg(2), Operand::Imm(0), b0, b4);
        f.select(b4);
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    fn fig1_profile() -> Profile {
        let mut p = Profile::new(5);
        p.block_counts = vec![100, 90, 10, 100, 50];
        p.edge_counts.insert((0, 1), 90);
        p.edge_counts.insert((0, 2), 10);
        p.edge_counts.insert((1, 3), 90);
        p.edge_counts.insert((2, 3), 10);
        p.edge_counts.insert((3, 0), 50);
        p.edge_counts.insert((3, 4), 50);
        p
    }

    #[test]
    fn hot_path_becomes_sequential() {
        let prog = fig1_program();
        let prof = fig1_profile();
        let order = chain_proc(&prog, &prof, ProcId(0));
        // Heaviest edges: 0->1 (90) and 1->3 (90) chain first, so the hot
        // path 0,1,3 must be consecutive.
        let pos: HashMap<u32, usize> = order.iter().enumerate().map(|(i, b)| (b.0, i)).collect();
        assert_eq!(pos[&1], pos[&0] + 1, "entry falls through to hot arm");
        assert_eq!(pos[&3], pos[&1] + 1, "hot arm falls through to join");
        // All blocks present exactly once.
        let mut sorted: Vec<u32> = order.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn entry_chain_placed_first() {
        let prog = fig1_program();
        let prof = fig1_profile();
        let order = chain_proc(&prog, &prof, ProcId(0));
        assert_eq!(order[0], BlockId(0), "entry chain first");
    }

    #[test]
    fn cycle_is_avoided() {
        // Two blocks looping: 0 -> 1 (hot), 1 -> 0 (hot). Without cycle
        // avoidance chaining both edges would orphan the blocks.
        let mut pb = ProgramBuilder::new("loop");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let a = f.entry();
        let b = f.new_block();
        f.select(a);
        f.jump(b);
        f.select(b);
        f.jump(a);
        pb.define_proc(main, f).unwrap();
        let prog = pb.finish(main).unwrap();
        let mut prof = Profile::new(2);
        prof.edge_counts.insert((0, 1), 100);
        prof.edge_counts.insert((1, 0), 99);
        let order = chain_proc(&prog, &prof, ProcId(0));
        assert_eq!(order, vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn zero_profile_is_still_a_permutation() {
        let prog = fig1_program();
        let prof = Profile::new(5);
        let order = chain_proc(&prog, &prof, ProcId(0));
        let mut sorted: Vec<u32> = order.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(order[0], BlockId(0));
    }

    #[test]
    fn min_edge_weight_suppresses_light_edges() {
        let prog = fig1_program();
        let prof = fig1_profile();
        // A threshold above every edge weight leaves only singleton
        // chains: entry first, the rest by decreasing block count.
        let order = chain_proc_with(
            &prog,
            &prof,
            ProcId(0),
            &ChainParams {
                min_edge_weight: 1000,
            },
        );
        let ids: Vec<u32> = order.iter().map(|b| b.0).collect();
        assert_eq!(ids, vec![0, 3, 1, 4, 2]);
        // The zero threshold is the historical behavior.
        assert_eq!(
            chain_proc_with(&prog, &prof, ProcId(0), &ChainParams::default()),
            chain_proc(&prog, &prof, ProcId(0))
        );
    }

    #[test]
    fn single_block_proc_unchanged() {
        let mut pb = ProgramBuilder::new("one");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        f.halt();
        pb.define_proc(main, f).unwrap();
        let prog = pb.finish(main).unwrap();
        let prof = Profile::new(1);
        assert_eq!(chain_proc(&prog, &prof, ProcId(0)), vec![BlockId(0)]);
        assert_eq!(chain_all(&prog, &prof), vec![vec![BlockId(0)]]);
    }
}
