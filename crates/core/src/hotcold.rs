//! Hot/cold procedure splitting — the splitting algorithm shipped in the
//! Spike distribution, which the paper contrasts with its fine-grain
//! splitting (§2: "The latter algorithm only splits a procedure into a hot
//! and a cold part based on the relative execution frequency of the basic
//! blocks within the procedure").
//!
//! Provided as an ablation baseline: chaining, then each procedure is cut
//! into at most two parts (hot = executed blocks, cold = never-executed
//! blocks), hot parts are Pettis–Hansen ordered, cold parts sink to the end
//! of the image.

use crate::chain::chain_all_with;
use crate::graph::pettis_hansen_order;
use crate::params::LayoutParams;
use codelayout_ir::{BlockId, Layout, Program};
use codelayout_profile::Profile;

/// Builds a layout using chaining + hot/cold splitting + procedure
/// ordering, under the default [`LayoutParams`].
pub fn hot_cold_layout(program: &Program, profile: &Profile) -> Layout {
    hot_cold_layout_with(program, profile, &LayoutParams::default())
}

/// Builds the hot/cold layout under explicit parameters: `chain` shapes
/// the per-procedure orders, `hotcold.hot_threshold` sets the execution
/// count above which a block counts as hot.
pub fn hot_cold_layout_with(program: &Program, profile: &Profile, params: &LayoutParams) -> Layout {
    let orders = chain_all_with(program, profile, &params.chain);
    let nprocs = program.procs.len();
    let threshold = params.hotcold.hot_threshold;

    let mut hot: Vec<Vec<BlockId>> = Vec::with_capacity(nprocs);
    let mut cold: Vec<Vec<BlockId>> = Vec::with_capacity(nprocs);
    for order in &orders {
        let (h, c): (Vec<BlockId>, Vec<BlockId>) = order
            .iter()
            .partition(|&&b| profile.block_count(b) > threshold);
        hot.push(h);
        cold.push(c);
    }

    let w = profile.proc_call_weights(program);
    let proc_order = pettis_hansen_order(nprocs, w.into_iter().map(|((a, b), c)| (a, b, c)));

    let mut out: Vec<BlockId> = Vec::with_capacity(program.blocks.len());
    for &p in &proc_order {
        out.extend(hot[p as usize].iter().copied());
    }
    for &p in &proc_order {
        out.extend(cold[p as usize].iter().copied());
    }
    Layout { order: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{verify_layout, Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    fn program_with_cold_tail() -> Program {
        let mut pb = ProgramBuilder::new("hc");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let hot = f.new_block();
        let cold = f.new_block();
        f.select(e);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        f.select(hot);
        f.halt();
        f.select(cold);
        f.nop();
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn cold_blocks_move_to_image_end() {
        let p = program_with_cold_tail();
        let mut prof = Profile::new(3);
        prof.block_counts = vec![10, 10, 0];
        prof.edge_counts.insert((0, 1), 10);
        let l = hot_cold_layout(&p, &prof);
        verify_layout(&p, &l).unwrap();
        assert_eq!(*l.order.last().unwrap(), BlockId(2));
        assert_eq!(l.order[0], BlockId(0));
    }

    #[test]
    fn fully_cold_program_is_still_complete() {
        let p = program_with_cold_tail();
        let prof = Profile::new(3);
        let l = hot_cold_layout(&p, &prof);
        verify_layout(&p, &l).unwrap();
    }

    #[test]
    fn raised_threshold_reclassifies_lukewarm_blocks() {
        // main: b0 (hot) falls into b1 (lukewarm); leaf: b2 (hot).
        let mut pb = ProgramBuilder::new("lk");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let luke = f.new_block();
        f.select(e);
        f.call(leaf);
        f.jump(luke);
        f.select(luke);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(leaf, g).unwrap();
        let p = pb.finish(main).unwrap();

        let mut prof = Profile::new(3);
        prof.block_counts = vec![100, 5, 100];
        prof.edge_counts.insert((0, 1), 5);
        prof.call_counts.insert((0, 1), 100);

        // Default threshold 0: the lukewarm b1 stays in main's hot part.
        let base = hot_cold_layout(&p, &prof);
        verify_layout(&p, &base).unwrap();
        // Threshold 8: b1 is reclassified cold and sinks behind leaf.
        let params = LayoutParams {
            hotcold: crate::HotColdParams { hot_threshold: 8 },
            ..LayoutParams::default()
        };
        let tuned = hot_cold_layout_with(&p, &prof, &params);
        verify_layout(&p, &tuned).unwrap();
        assert_eq!(*tuned.order.last().unwrap(), BlockId(1));
        assert_ne!(base, tuned, "threshold 8 must move the lukewarm block");
        assert_eq!(
            hot_cold_layout_with(&p, &prof, &LayoutParams::default()),
            base
        );
    }
}
