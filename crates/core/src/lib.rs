//! Profile-driven code layout optimizations — the primary contribution of
//! *"Code Layout Optimizations for Transaction Processing Workloads"*
//! (Ramirez et al., ISCA 2001), as implemented in Compaq's Spike executable
//! optimizer.
//!
//! Three algorithms compose (paper §2):
//!
//! 1. **Basic block chaining** ([`chain_proc`]) — greedy sequentialization
//!    of the hottest intra-procedure control-flow paths;
//! 2. **Fine-grain procedure splitting** ([`split_order`]) — cutting a
//!    chained procedure into independently placeable segments at
//!    unconditional transfers;
//! 3. **Procedure ordering** ([`pettis_hansen_order`]) — Pettis–Hansen
//!    call-graph node merging over procedures or segments.
//!
//! [`LayoutPipeline`] composes them into the six configurations evaluated in
//! the paper's Figures 7 and 15 (`base`, `porder`, `chain`, `chain+split`,
//! `chain+porder`, `all`). Two additional layouts reproduce algorithms the
//! paper compares against or rejects: [`hot_cold_layout`] (the Spike
//! distribution's hot/cold splitting) and [`cfa_layout`] (the conflict-free
//! area / software trace cache variant, which the paper found ineffective
//! for OLTP).
//!
//! Two post-paper successors round out the comparison surface:
//! [`exttsp_layout`] (Newell–Pupyrev's ext-TSP objective with chain merging
//! and score-driven merge-point selection) and [`stitcher_layout`]
//! (Codestitcher's hierarchical inter-procedural collocation by distance
//! class). [`LayoutSeries`] names every series — the paper's six plus the
//! four alternatives — behind one label, and
//! [`LayoutPipeline::build_series`] builds any of them.
//!
//! All optimizations are *pure layout permutations*: they consume an
//! immutable [`codelayout_ir::Program`] plus a
//! [`codelayout_profile::Profile`] and produce a [`codelayout_ir::Layout`],
//! never touching the code itself, so semantics preservation is structural.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfa;
mod chain;
mod exttsp;
mod graph;
mod hotcold;
mod params;
mod pipeline;
mod series;
mod split;
mod stitcher;

pub use cfa::{cfa_layout, cfa_layout_with, CfaReport};
pub use chain::{chain_all, chain_all_with, chain_proc, chain_proc_with};
pub use exttsp::{
    block_bytes, exttsp_layout, exttsp_layout_with, exttsp_proc_order, exttsp_proc_order_with,
    exttsp_score, exttsp_score_with, span_score, span_score_with, BACKWARD_WINDOW, FORWARD_WINDOW,
    SCORE_SCALE,
};
pub use graph::pettis_hansen_order;
pub use hotcold::{hot_cold_layout, hot_cold_layout_with};
pub use params::{
    CfaParams, ChainParams, ExtTspParams, HotColdParams, LayoutParams, ParamKnob, ParamPoint,
    ParamSpace, SplitParams,
};
pub use pipeline::{LayoutPipeline, OptimizationSet, CFA_RESERVED_BYTES};
pub use series::{LayoutSeries, ParseSeriesError};
pub use split::{split_all, split_all_with, split_order, split_order_with, Segment};
pub use stitcher::{stitcher_layout, stitcher_layout_params, stitcher_layout_with, StitchLevels};
