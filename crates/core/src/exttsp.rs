//! ext-TSP basic block reordering (Newell & Pupyrev, *Improved Basic
//! Block Reordering*, PAPERS.md).
//!
//! Where [`crate::chain_proc`] greedily maximizes fall-through *counts*,
//! ext-TSP maximizes a distance-weighted score over three branch classes:
//! a fall-through earns its full edge weight, a short forward jump earns
//! `0.1 * w * (1 - d / 1024)` for distances under 1 KiB, and a short
//! backward jump earns `0.1 * w * (1 - d / 640)` for distances under 640
//! bytes (the paper's weights). The optimizer merges block chains
//! greedily, but instead of only appending it evaluates score-driven
//! merge points — splitting the growing chain and nesting the other chain
//! at the most profitable seam.
//!
//! The scorer ([`exttsp_score`] / [`span_score`]) is the single encoding
//! of the objective: the pass maximizes it, the comparison table reports
//! it, and the property suite checks the pass against the paper trio with
//! it. All arithmetic is integer fixed-point (scale [`SCORE_SCALE`]) so
//! scores are bit-identical across platforms and thread counts.

use crate::chain::chain_proc_with;
use crate::graph::pettis_hansen_order;
use crate::params::{ExtTspParams, LayoutParams};
use codelayout_ir::{BlockId, Layout, ProcId, Program, Terminator, INSTR_BYTES};
use codelayout_profile::Profile;
use std::collections::{BTreeMap, HashMap};

/// Fixed-point scale: a fall-through of weight `w` scores `w * SCORE_SCALE`.
pub const SCORE_SCALE: u64 = 1_000;
/// Forward-jump scoring window in bytes (the paper's 1024). This is the
/// default of [`ExtTspParams::forward_window`].
pub const FORWARD_WINDOW: u64 = 1024;
/// Backward-jump scoring window in bytes (the paper's 640). This is the
/// default of [`ExtTspParams::backward_window`].
pub const BACKWARD_WINDOW: u64 = 640;

/// Layout-independent byte-size estimate of a lowered block: its body
/// instructions plus one slot for the terminator, two for a conditional
/// branch (whose not-taken arm may need a trailing jump). The linker can
/// do better — it erases jumps to the next block — but the estimate must
/// not depend on the layout being scored, or the objective would shift
/// under the optimizer.
pub fn block_bytes(program: &Program, b: BlockId) -> u64 {
    let blk = program.block(b);
    let slots = blk.instrs.len() as u64
        + match blk.term {
            Terminator::Branch { .. } => 2,
            _ => 1,
        };
    slots * INSTR_BYTES
}

/// Score contribution of one edge of weight `w` whose source block ends at
/// byte `src_end` and whose destination starts at byte `dst`, under the
/// objective's parameters.
fn edge_score(ep: &ExtTspParams, w: u64, src_end: u64, dst: u64) -> u64 {
    if w == 0 {
        return 0;
    }
    if dst == src_end {
        w * SCORE_SCALE
    } else if dst > src_end {
        let d = dst - src_end;
        if d < ep.forward_window {
            w * ep.jump_weight * (ep.forward_window - d) / ep.forward_window
        } else {
            0
        }
    } else {
        let d = src_end - dst;
        if d < ep.backward_window {
            w * ep.jump_weight * (ep.backward_window - d) / ep.backward_window
        } else {
            0
        }
    }
}

/// Sums the score of every profiled control-flow edge whose endpoints both
/// have an address in `addr` (`u64::MAX` marks absent blocks).
fn score_at(program: &Program, profile: &Profile, ep: &ExtTspParams, addr: &[u64]) -> u64 {
    let mut total = 0u64;
    for (bi, blk) in program.blocks.iter().enumerate() {
        let src = addr[bi];
        if src == u64::MAX {
            continue;
        }
        let b = BlockId(bi as u32);
        let src_end = src + block_bytes(program, b);
        let mut seen: Vec<BlockId> = Vec::new();
        for t in blk.term.successors() {
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            if addr[t.index()] == u64::MAX {
                continue;
            }
            total += edge_score(ep, profile.edge_count(b, t), src_end, addr[t.index()]);
        }
    }
    total
}

/// The ext-TSP objective of a whole layout under the paper's fixed-point
/// weights (the default [`ExtTspParams`]).
///
/// This is the one scorer: the ext-TSP pass maximizes it, the comparison
/// table reports it, and the property tests compare series with it. The
/// reported score always uses the defaults, even when the pass was tuned,
/// so scores stay comparable across parameterizations.
pub fn exttsp_score(program: &Program, profile: &Profile, layout: &Layout) -> u64 {
    exttsp_score_with(program, profile, &ExtTspParams::default(), layout)
}

/// The ext-TSP objective of a whole layout under explicit weights.
pub fn exttsp_score_with(
    program: &Program,
    profile: &Profile,
    ep: &ExtTspParams,
    layout: &Layout,
) -> u64 {
    let mut addr = vec![u64::MAX; program.blocks.len()];
    let mut cur = 0u64;
    for &b in &layout.order {
        addr[b.index()] = cur;
        cur += block_bytes(program, b);
    }
    score_at(program, profile, ep, &addr)
}

/// The ext-TSP objective of one contiguous span placed in isolation,
/// under the default [`ExtTspParams`].
///
/// Every control-flow edge is intra-procedural, so the whole-layout score
/// of any procedure-contiguous layout is the sum of its per-procedure
/// span scores — which is what lets the pass optimize procedures
/// independently.
pub fn span_score(program: &Program, profile: &Profile, order: &[BlockId]) -> u64 {
    span_score_with(program, profile, &ExtTspParams::default(), order)
}

/// The ext-TSP objective of one contiguous span under explicit weights.
pub fn span_score_with(
    program: &Program,
    profile: &Profile,
    ep: &ExtTspParams,
    order: &[BlockId],
) -> u64 {
    let mut addr = vec![u64::MAX; program.blocks.len()];
    let mut cur = 0u64;
    for &b in order {
        addr[b.index()] = cur;
        cur += block_bytes(program, b);
    }
    score_at(program, profile, ep, &addr)
}

/// One chain of local block indices during merging.
struct Chain {
    blocks: Vec<u32>,
    score: u64,
}

/// The best way to merge a pair of chains, cached per pair.
struct Merge {
    gain: u64,
    arrangement: Vec<u32>,
    score: u64,
}

/// Computes the ext-TSP block order for one procedure.
///
/// The procedure's entry block is always placed first (the image address
/// of a procedure is its entry), unlike [`chain_proc`], which may front a
/// hot predecessor. The merged order competes under [`span_score`] against
/// the greedy chain order (rotated to entry-first when chaining fronted a
/// predecessor), so the pass never scores below the paper's chaining on
/// the same profile.
pub fn exttsp_proc_order(program: &Program, profile: &Profile, proc: ProcId) -> Vec<BlockId> {
    exttsp_proc_order_with(program, profile, proc, &LayoutParams::default())
}

/// Computes the ext-TSP block order for one procedure under explicit
/// parameters: the objective's weights from `params.exttsp`, the
/// competing chain candidate from `params.chain`.
pub fn exttsp_proc_order_with(
    program: &Program,
    profile: &Profile,
    proc: ProcId,
    params: &LayoutParams,
) -> Vec<BlockId> {
    let ep = &params.exttsp;
    let blocks = &program.proc(proc).blocks;
    let entry = program.proc(proc).entry;
    if blocks.len() <= 1 {
        return blocks.clone();
    }

    let n = blocks.len();
    let mut local: HashMap<BlockId, u32> = HashMap::with_capacity(n);
    for (i, &b) in blocks.iter().enumerate() {
        local.insert(b, i as u32);
    }
    let sizes: Vec<u64> = blocks.iter().map(|&b| block_bytes(program, b)).collect();
    let entry_local = local[&entry];

    // Weighted intra-procedure edges in local indices, deduplicated.
    // Self edges contribute a layout-independent constant and are dropped.
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for (i, &b) in blocks.iter().enumerate() {
        let mut seen: Vec<BlockId> = Vec::new();
        for t in program.block(b).term.successors() {
            if t == b || seen.contains(&t) {
                continue;
            }
            seen.push(t);
            if let Some(&j) = local.get(&t) {
                let w = profile.edge_count(b, t);
                if w > 0 {
                    edges.push((i as u32, j, w));
                }
            }
        }
    }

    let merged = merge_chains(n, &sizes, &edges, entry_local, profile, blocks, ep);

    // Candidate selection under the shared scorer; the merged order wins
    // ties so the pass's own structure is preferred.
    let merged_blocks: Vec<BlockId> = merged.iter().map(|&i| blocks[i as usize]).collect();
    let chain = chain_proc_with(program, profile, proc, &params.chain);
    let chain_candidate = if chain[0] == entry {
        chain
    } else {
        // Chaining fronted a hot predecessor of the entry; rotate the
        // pre-entry prefix to the back so the entry leads.
        let at = chain
            .iter()
            .position(|&b| b == entry)
            .expect("entry present");
        let mut rot = chain[at..].to_vec();
        rot.extend_from_slice(&chain[..at]);
        rot
    };
    if span_score_with(program, profile, ep, &chain_candidate)
        > span_score_with(program, profile, ep, &merged_blocks)
    {
        chain_candidate
    } else {
        merged_blocks
    }
}

/// Greedy chain merging with score-driven merge-point selection. Returns
/// a permutation of `0..n` (local indices) with `entry_local` first.
#[allow(clippy::too_many_arguments)]
fn merge_chains(
    n: usize,
    sizes: &[u64],
    edges: &[(u32, u32, u64)],
    entry_local: u32,
    profile: &Profile,
    blocks: &[BlockId],
    ep: &ExtTspParams,
) -> Vec<u32> {
    // One chain per block to start; `chain_of[b]` names the live chain
    // (indexed by its smallest-ever root) holding block `b`.
    let mut chains: Vec<Option<Chain>> = (0..n)
        .map(|i| {
            Some(Chain {
                blocks: vec![i as u32],
                score: 0,
            })
        })
        .collect();
    let mut chain_of: Vec<u32> = (0..n as u32).collect();
    let mut entry_root = entry_local;

    // Undirected inter-chain adjacency (sum of edge weights), kept in
    // ordered maps so every scan below is deterministic.
    let mut adj: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); n];
    for &(f, t, w) in edges {
        if f == t {
            continue;
        }
        *adj[f as usize].entry(t).or_insert(0) += w;
        *adj[t as usize].entry(f).or_insert(0) += w;
    }

    let mut pos_scratch: Vec<u64> = vec![0; n];
    let mut best: BTreeMap<(u32, u32), Merge> = BTreeMap::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (a, nbrs) in adj.iter().enumerate() {
        for &b in nbrs.keys() {
            if (a as u32) < b {
                pairs.push((a as u32, b));
            }
        }
    }
    for &(a, b) in &pairs {
        if let Some(m) = best_merge(
            &chains,
            a,
            b,
            sizes,
            edges,
            &chain_of,
            entry_root,
            entry_local,
            &mut pos_scratch,
            ep,
        ) {
            best.insert((a, b), m);
        }
    }

    // Highest positive gain; ties go to the smallest pair.
    fn pick_best(best: &BTreeMap<(u32, u32), Merge>) -> Option<(u32, u32)> {
        best.iter()
            .filter(|(_, m)| m.gain > 0)
            .max_by(|(ka, ma), (kb, mb)| ma.gain.cmp(&mb.gain).then(kb.cmp(ka)))
            .map(|(&k, _)| k)
    }
    while let Some((a, b)) = pick_best(&best) {
        let m = best.remove(&(a, b)).expect("just found");
        for &x in &m.arrangement {
            chain_of[x as usize] = a;
        }
        chains[a as usize] = Some(Chain {
            blocks: m.arrangement,
            score: m.score,
        });
        chains[b as usize] = None;
        if entry_root == b {
            entry_root = a;
        }

        // Rewire b's adjacency into a and drop stale cached merges.
        let b_adj: Vec<(u32, u64)> = std::mem::take(&mut adj[b as usize]).into_iter().collect();
        adj[a as usize].remove(&b);
        for (nbr, w) in b_adj {
            if nbr == a {
                continue;
            }
            adj[nbr as usize].remove(&b);
            best.remove(&(b.min(nbr), b.max(nbr)));
            *adj[a as usize].entry(nbr).or_insert(0) += w;
            *adj[nbr as usize].entry(a).or_insert(0) = adj[a as usize][&nbr];
        }
        let neighbors: Vec<u32> = adj[a as usize].keys().copied().collect();
        for nbr in neighbors {
            let key = (a.min(nbr), a.max(nbr));
            match best_merge(
                &chains,
                key.0,
                key.1,
                sizes,
                edges,
                &chain_of,
                entry_root,
                entry_local,
                &mut pos_scratch,
                ep,
            ) {
                Some(m) => {
                    best.insert(key, m);
                }
                None => {
                    best.remove(&key);
                }
            }
        }
    }

    // Emit: entry chain first, the rest by decreasing profile weight with
    // a deterministic root tie-break.
    let weight_of = |c: &Chain| -> u64 {
        c.blocks
            .iter()
            .map(|&i| profile.block_count(blocks[i as usize]))
            .sum()
    };
    let mut rest: Vec<(u64, u32, &Chain)> = Vec::new();
    let mut out: Vec<u32> = Vec::with_capacity(n);
    for (root, c) in chains.iter().enumerate() {
        let Some(c) = c else { continue };
        if root as u32 == entry_root {
            out.extend_from_slice(&c.blocks);
        } else {
            rest.push((weight_of(c), root as u32, c));
        }
    }
    rest.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    for (_, _, c) in rest {
        out.extend_from_slice(&c.blocks);
    }
    debug_assert_eq!(out.len(), n);
    debug_assert_eq!(out[0], entry_local);
    out
}

/// The best-scoring way to merge live chains `a` and `b`, or `None` when
/// no arrangement is admissible (the entry must stay at the head of its
/// chain).
#[allow(clippy::too_many_arguments)]
fn best_merge(
    chains: &[Option<Chain>],
    a: u32,
    b: u32,
    sizes: &[u64],
    edges: &[(u32, u32, u64)],
    chain_of: &[u32],
    entry_root: u32,
    entry_local: u32,
    pos_scratch: &mut [u64],
    ep: &ExtTspParams,
) -> Option<Merge> {
    let ca = chains[a as usize].as_ref()?;
    let cb = chains[b as usize].as_ref()?;
    let has_entry = a == entry_root || b == entry_root;

    // Edges with both endpoints inside the merged pair.
    let in_pair = |x: u32| chain_of[x as usize] == a || chain_of[x as usize] == b;
    let pair_edges: Vec<(u32, u32, u64)> = edges
        .iter()
        .copied()
        .filter(|&(f, t, _)| in_pair(f) && in_pair(t))
        .collect();

    let score_arrangement = |order: &[u32], pos: &mut [u64]| -> u64 {
        let mut cur = 0u64;
        for &x in order {
            pos[x as usize] = cur;
            cur += sizes[x as usize];
        }
        let mut total = 0u64;
        for &(f, t, w) in &pair_edges {
            total += edge_score(ep, w, pos[f as usize] + sizes[f as usize], pos[t as usize]);
        }
        total
    };

    let mut best: Option<(u64, Vec<u32>)> = None;
    let mut consider = |order: Vec<u32>, pos: &mut [u64]| {
        if has_entry && order[0] != entry_local {
            return;
        }
        let s = score_arrangement(&order, pos);
        if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
            best = Some((s, order));
        }
    };

    let concat = |x: &[u32], y: &[u32]| {
        let mut v = Vec::with_capacity(x.len() + y.len());
        v.extend_from_slice(x);
        v.extend_from_slice(y);
        v
    };
    consider(concat(&ca.blocks, &cb.blocks), pos_scratch);
    consider(concat(&cb.blocks, &ca.blocks), pos_scratch);
    // Score-driven merge points: nest one chain inside a split of the
    // other, at every admissible seam.
    if ca.blocks.len() as u64 <= ep.split_cap {
        for k in 1..ca.blocks.len() {
            let mut v = Vec::with_capacity(ca.blocks.len() + cb.blocks.len());
            v.extend_from_slice(&ca.blocks[..k]);
            v.extend_from_slice(&cb.blocks);
            v.extend_from_slice(&ca.blocks[k..]);
            consider(v, pos_scratch);
        }
    }
    if cb.blocks.len() as u64 <= ep.split_cap {
        for k in 1..cb.blocks.len() {
            let mut v = Vec::with_capacity(ca.blocks.len() + cb.blocks.len());
            v.extend_from_slice(&cb.blocks[..k]);
            v.extend_from_slice(&ca.blocks);
            v.extend_from_slice(&cb.blocks[k..]);
            consider(v, pos_scratch);
        }
    }

    let (score, arrangement) = best?;
    let gain = score.saturating_sub(ca.score + cb.score);
    Some(Merge {
        gain,
        arrangement,
        score,
    })
}

/// Builds the whole-program ext-TSP layout: per-procedure ext-TSP block
/// orders, procedures kept contiguous and arranged by Pettis–Hansen call
/// ordering (the same procedure placement the paper's `chain+porder`
/// series uses, so series differ only in the intra-procedure objective).
pub fn exttsp_layout(program: &Program, profile: &Profile) -> Layout {
    exttsp_layout_with(program, profile, &LayoutParams::default())
}

/// Builds the whole-program ext-TSP layout under explicit parameters.
pub fn exttsp_layout_with(program: &Program, profile: &Profile, params: &LayoutParams) -> Layout {
    let _span = codelayout_obs::span("exttsp");
    let orders: Vec<Vec<BlockId>> = (0..program.procs.len())
        .map(|p| exttsp_proc_order_with(program, profile, ProcId(p as u32), params))
        .collect();
    let w = profile.proc_call_weights(program);
    let proc_order = pettis_hansen_order(
        program.procs.len(),
        w.into_iter().map(|((a, b), c)| (a, b, c)),
    );
    let order = proc_order
        .into_iter()
        .flat_map(|p| orders[p as usize].iter().copied())
        .collect();
    Layout { order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::chain_proc;
    use codelayout_ir::{verify_layout, Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// The chaining fixture: entry(b0) -> hot(b1)/cold(b2); both join at
    /// b3; b3 loops to b0 or exits to b4.
    fn fig1_program() -> Program {
        let mut pb = ProgramBuilder::new("fig1");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let b0 = f.entry();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let b4 = f.new_block();
        f.select(b0);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), b1, b2);
        f.select(b1);
        f.nop();
        f.jump(b3);
        f.select(b2);
        f.nop();
        f.jump(b3);
        f.select(b3);
        f.branch(Cond::Gt, Reg(2), Operand::Imm(0), b0, b4);
        f.select(b4);
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    fn fig1_profile() -> Profile {
        let mut p = Profile::new(5);
        p.block_counts = vec![100, 90, 10, 100, 50];
        p.edge_counts.insert((0, 1), 90);
        p.edge_counts.insert((0, 2), 10);
        p.edge_counts.insert((1, 3), 90);
        p.edge_counts.insert((2, 3), 10);
        p.edge_counts.insert((3, 0), 50);
        p.edge_counts.insert((3, 4), 50);
        p
    }

    #[test]
    fn fallthrough_outscores_short_jumps() {
        let ep = ExtTspParams::default();
        assert_eq!(edge_score(&ep, 10, 100, 100), 10 * SCORE_SCALE);
        // Forward jump inside the window scores a fraction of 0.1 * w.
        let fwd = edge_score(&ep, 10, 100, 200);
        assert!(fwd > 0 && fwd < 10 * ep.jump_weight);
        // Backward jumps have the tighter window.
        assert_eq!(edge_score(&ep, 10, 100 + BACKWARD_WINDOW, 100), 0);
        assert!(edge_score(&ep, 10, 100 + BACKWARD_WINDOW - 4, 100) > 0);
        // Outside both windows: nothing.
        assert_eq!(edge_score(&ep, 10, 100, 100 + FORWARD_WINDOW), 0);
    }

    #[test]
    fn parameterized_windows_move_the_score() {
        let ep = ExtTspParams {
            forward_window: 64,
            ..ExtTspParams::default()
        };
        // A 100-byte forward jump scores under the default window but not
        // under the shrunk one.
        assert!(edge_score(&ExtTspParams::default(), 10, 100, 200) > 0);
        assert_eq!(edge_score(&ep, 10, 100, 200), 0);
        // Defaults keep the legacy order bit-identical.
        let prog = fig1_program();
        let prof = fig1_profile();
        assert_eq!(
            exttsp_proc_order_with(&prog, &prof, ProcId(0), &LayoutParams::default()),
            exttsp_proc_order(&prog, &prof, ProcId(0))
        );
    }

    #[test]
    fn hot_path_is_sequential_and_entry_leads() {
        let prog = fig1_program();
        let prof = fig1_profile();
        let order = exttsp_proc_order(&prog, &prof, ProcId(0));
        let mut sorted: Vec<u32> = order.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(order[0], BlockId(0), "entry first: {order:?}");
        let pos: Vec<usize> = {
            let mut v = vec![0; 5];
            for (i, b) in order.iter().enumerate() {
                v[b.index()] = i;
            }
            v
        };
        assert_eq!(pos[1], pos[0] + 1, "hot arm falls through: {order:?}");
        assert_eq!(pos[3], pos[1] + 1, "join follows hot arm: {order:?}");
    }

    #[test]
    fn scores_at_least_the_chain_order() {
        let prog = fig1_program();
        let prof = fig1_profile();
        let ours = exttsp_proc_order(&prog, &prof, ProcId(0));
        let chain = chain_proc(&prog, &prof, ProcId(0));
        assert!(
            span_score(&prog, &prof, &ours) >= span_score(&prog, &prof, &chain),
            "ext-TSP {ours:?} scored below chaining {chain:?}"
        );
    }

    #[test]
    fn layout_is_valid_and_score_sums_over_procs() {
        let prog = fig1_program();
        let prof = fig1_profile();
        let layout = exttsp_layout(&prog, &prof);
        verify_layout(&prog, &layout).unwrap();
        assert_eq!(
            exttsp_score(&prog, &prof, &layout),
            span_score(&prog, &prof, &layout.order)
        );
    }

    #[test]
    fn zero_profile_is_still_an_entry_first_permutation() {
        let prog = fig1_program();
        let prof = Profile::new(5);
        let order = exttsp_proc_order(&prog, &prof, ProcId(0));
        let mut sorted: Vec<u32> = order.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(order[0], BlockId(0));
    }
}
