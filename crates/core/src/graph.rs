//! Pettis–Hansen node-merging placement (paper §2, Fig. 2).
//!
//! Nodes (procedures or split segments) are merged greedily along the
//! heaviest remaining edge; each merge concatenates two ordered node lists,
//! choosing among the four orientations by the *original* edge weight at
//! the junction, exactly as the paper describes. The result is a flat
//! placement order.

use std::collections::{BinaryHeap, HashMap};

/// Computes a Pettis–Hansen placement order for `num_nodes` nodes given
/// directed weighted edges (parallel edges are summed; direction is ignored
/// for merging, as in the paper).
///
/// Disconnected groups are emitted hottest-first (by the total weight merged
/// into the group) with never-connected nodes last in id order — cold code
/// naturally sinks to the end of the image.
pub fn pettis_hansen_order<I>(num_nodes: usize, edges: I) -> Vec<u32>
where
    I: IntoIterator<Item = (u32, u32, u64)>,
{
    // 1. Combine into undirected weights.
    let mut undirected: HashMap<(u32, u32), u64> = HashMap::new();
    for (a, b, w) in edges {
        if a == b || w == 0 {
            continue;
        }
        debug_assert!((a as usize) < num_nodes && (b as usize) < num_nodes);
        let key = (a.min(b), a.max(b));
        *undirected.entry(key).or_insert(0) += w;
    }
    let orig = undirected.clone();

    // 2. Group state.
    let mut list: Vec<Option<Vec<u32>>> = (0..num_nodes as u32).map(|i| Some(vec![i])).collect();
    let mut heat: Vec<u64> = vec![0; num_nodes];
    let mut adj: Vec<HashMap<u32, u64>> = vec![HashMap::new(); num_nodes];
    let mut heap: BinaryHeap<(u64, std::cmp::Reverse<u32>, std::cmp::Reverse<u32>)> =
        BinaryHeap::new();
    for (&(a, b), &w) in &undirected {
        adj[a as usize].insert(b, w);
        adj[b as usize].insert(a, w);
        heap.push((w, std::cmp::Reverse(a), std::cmp::Reverse(b)));
    }

    let score = |orig: &HashMap<(u32, u32), u64>, x: u32, y: u32| -> u64 {
        orig.get(&(x.min(y), x.max(y))).copied().unwrap_or(0)
    };

    // 3. Greedy merging with a lazy heap.
    while let Some((w, std::cmp::Reverse(a), std::cmp::Reverse(b))) = heap.pop() {
        // Stale check: both must still be roots and the weight current.
        if list[a as usize].is_none() || list[b as usize].is_none() {
            continue;
        }
        if adj[a as usize].get(&b).copied() != Some(w) {
            continue;
        }

        let la = list[a as usize].take().expect("checked");
        let lb = list[b as usize].take().expect("checked");
        let (ha, ta) = (la[0], *la.last().expect("nonempty"));
        let (hb, tb) = (lb[0], *lb.last().expect("nonempty"));
        // Four junction candidates, preferring earlier on ties.
        let candidates = [
            score(&orig, ta, hb), // A ++ B
            score(&orig, ta, tb), // A ++ rev(B)
            score(&orig, ha, hb), // rev(A) ++ B
            score(&orig, ha, tb), // rev(A) ++ rev(B)
        ];
        let best = candidates
            .iter()
            .enumerate()
            .max_by(|(i, x), (j, y)| x.cmp(y).then(j.cmp(i)))
            .map(|(i, _)| i)
            .expect("four candidates");
        let mut merged = Vec::with_capacity(la.len() + lb.len());
        match best {
            0 => {
                merged.extend(la);
                merged.extend(lb);
            }
            1 => {
                merged.extend(la);
                merged.extend(lb.into_iter().rev());
            }
            2 => {
                merged.extend(la.into_iter().rev());
                merged.extend(lb);
            }
            _ => {
                merged.extend(la.into_iter().rev());
                merged.extend(lb.into_iter().rev());
            }
        }
        list[a as usize] = Some(merged);
        heat[a as usize] = heat[a as usize] + heat[b as usize] + w;

        // Rewire adjacency of b into a.
        let b_adj: Vec<(u32, u64)> = adj[b as usize].drain().collect();
        adj[a as usize].remove(&b);
        for (nbr, wb) in b_adj {
            if nbr == a {
                continue;
            }
            adj[nbr as usize].remove(&b);
            let entry = adj[a as usize].entry(nbr).or_insert(0);
            *entry += wb;
            let w_new = *entry;
            *adj[nbr as usize].entry(a).or_insert(0) = w_new;
            let (x, y) = (a.min(nbr), a.max(nbr));
            heap.push((w_new, std::cmp::Reverse(x), std::cmp::Reverse(y)));
        }
    }

    // 4. Emit groups hottest-first; isolated nodes (heat 0, size 1) go last
    //    in id order.
    let mut groups: Vec<(u64, u32, Vec<u32>)> = list
        .into_iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|l| (heat[i], i as u32, l)))
        .collect();
    groups.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut out = Vec::with_capacity(num_nodes);
    for (_, _, l) in groups {
        out.extend(l);
    }
    debug_assert_eq!(out.len(), num_nodes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &x in order {
            if seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        order.len() == n
    }

    #[test]
    fn heaviest_edge_becomes_adjacent() {
        // A(0)-C(2) weight 10 is by far the heaviest.
        let order = pettis_hansen_order(
            5,
            vec![
                (0, 2, 10),
                (0, 1, 3),
                (1, 3, 8),
                (1, 4, 1),
                (3, 4, 7),
                (2, 4, 1),
            ],
        );
        assert!(is_permutation(&order, 5));
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &x) in order.iter().enumerate() {
                p[x as usize] = i;
            }
            p
        };
        assert_eq!(pos[0].abs_diff(pos[2]), 1, "0 and 2 adjacent: {order:?}");
        assert_eq!(pos[1].abs_diff(pos[3]), 1, "1 and 3 adjacent: {order:?}");
    }

    #[test]
    fn deterministic() {
        let edges = vec![(0, 1, 5), (1, 2, 5), (2, 3, 5), (3, 0, 5), (1, 3, 2)];
        let a = pettis_hansen_order(4, edges.clone());
        let b = pettis_hansen_order(4, edges);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_nodes_sink_to_the_end_in_id_order() {
        let order = pettis_hansen_order(6, vec![(4, 5, 9)]);
        assert!(is_permutation(&order, 6));
        assert!(order[0] == 4 || order[0] == 5);
        assert_eq!(&order[2..], &[0, 1, 2, 3]);
    }

    #[test]
    fn parallel_and_directed_edges_are_summed() {
        // 0->1 (3) and 1->0 (4) combine to 7, beating 0-2 (5).
        let order = pettis_hansen_order(3, vec![(0, 1, 3), (1, 0, 4), (0, 2, 5)]);
        let pos: Vec<usize> = {
            let mut p = vec![0; 3];
            for (i, &x) in order.iter().enumerate() {
                p[x as usize] = i;
            }
            p
        };
        assert_eq!(pos[0].abs_diff(pos[1]), 1);
    }

    #[test]
    fn self_edges_and_zero_weights_ignored() {
        let order = pettis_hansen_order(3, vec![(0, 0, 100), (1, 2, 0)]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_is_identity() {
        let order = pettis_hansen_order(4, Vec::new());
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn orientation_prefers_strong_junction() {
        // Chain weights: 0-1 heavy (10). Then edge (1,2) w=6 and (0,2) w=5.
        // Merging {0,1} with {2}: junction options are tail(1)-head(2)=6 vs
        // head(0)-head(2)=5, so 2 must attach next to 1.
        let order = pettis_hansen_order(3, vec![(0, 1, 10), (1, 2, 6), (0, 2, 5)]);
        let pos: Vec<usize> = {
            let mut p = vec![0; 3];
            for (i, &x) in order.iter().enumerate() {
                p[x as usize] = i;
            }
            p
        };
        assert_eq!(pos[1].abs_diff(pos[2]), 1, "{order:?}");
    }
}
