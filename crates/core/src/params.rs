//! Typed layout-construction parameters and the search space over them.
//!
//! Every layout pass historically baked its thresholds into private
//! constants — the split hot/cold threshold, ext-TSP's `w×1000/100`
//! weights and 1024/640-byte distance windows, Codestitcher's
//! 128 B / 8 KiB / 2 MiB level budgets. [`LayoutParams`] lifts them into
//! one typed, per-pass parameter struct whose [`Default`] reproduces the
//! historical layouts **bit-identically** (pinned by the golden
//! `compare_quick.json` regression test in `codelayout-bench`).
//!
//! [`ParamSpace`] describes the tunable surface as an ordered list of
//! [`ParamKnob`]s, each with a finite ascending value grid containing its
//! default. A [`ParamPoint`] is a coordinate vector into those grids;
//! [`ParamSpace::params`] materializes it into a [`LayoutParams`]. The
//! autotuner (`codelayout-tune`) is generic over this surface: it never
//! names an individual pass, it only samples and perturbs points.
//!
//! Values are uniformly `u64`; boolean knobs use the `{0, 1}` grid. Knob
//! grids are deliberately coarse — the fitness oracle costs a full trace
//! replay per candidate, so a handful of well-spread magnitudes per knob
//! beats a fine lattice under any realistic candidate budget.

use crate::pipeline::CFA_RESERVED_BYTES;
use crate::series::LayoutSeries;
use crate::stitcher::StitchLevels;

/// Parameters of the basic-block chaining pass ([`crate::chain_proc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainParams {
    /// Flow edges lighter than this never chain their endpoints. The
    /// historical behavior (0) chains even never-taken edges, which keeps
    /// the compiler's natural order on cold code; raising it lets the
    /// tie-break ordering regroup cold blocks instead.
    pub min_edge_weight: u64,
}

/// Parameters of the fine-grain splitting pass ([`crate::split_order`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitParams {
    /// When true, an unconditional `Jump` cuts a segment even when its
    /// target is the next block in the order (the fall-through the linker
    /// would erase). The historical behavior (false) keeps such pairs
    /// glued; cutting them gives the segment ordering more freedom at the
    /// cost of an extra jump when the pieces separate.
    pub cut_fallthrough_jumps: bool,
}

/// Parameters of the ext-TSP objective and merge pass
/// ([`crate::exttsp_layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtTspParams {
    /// Short-jump reward per mille of a fall-through (the paper's 0.1
    /// scales to 100 under [`crate::SCORE_SCALE`]).
    pub jump_weight: u64,
    /// Forward-jump scoring window in bytes (the paper's 1024).
    pub forward_window: u64,
    /// Backward-jump scoring window in bytes (the paper's 640).
    pub backward_window: u64,
    /// Chains at most this long are considered for split-point merging;
    /// longer chains only merge by concatenation (BOLT's cost-control
    /// threshold).
    pub split_cap: u64,
}

impl Default for ExtTspParams {
    fn default() -> Self {
        ExtTspParams {
            jump_weight: 100,
            forward_window: 1024,
            backward_window: 640,
            split_cap: 32,
        }
    }
}

/// Parameters of the conflict-free-area pass ([`crate::cfa_layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfaParams {
    /// Bytes of instruction cache reserved for the hottest traces.
    pub reserved_bytes: u64,
}

impl Default for CfaParams {
    fn default() -> Self {
        CfaParams {
            reserved_bytes: CFA_RESERVED_BYTES,
        }
    }
}

/// Parameters of Spike's hot/cold splitting ([`crate::hot_cold_layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotColdParams {
    /// A block is *hot* when its execution count exceeds this threshold.
    /// The historical behavior (0) keeps every executed block hot.
    pub hot_threshold: u64,
}

/// The full parameter set of every layout pass.
///
/// `Default` reproduces the historical hard-coded constants exactly, so
/// `LayoutPipeline::with_params(p, prof, LayoutParams::default())` builds
/// the same bytes as `LayoutPipeline::new(p, prof)` for every series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutParams {
    /// Basic-block chaining knobs.
    pub chain: ChainParams,
    /// Fine-grain splitting knobs.
    pub split: SplitParams,
    /// ext-TSP objective knobs.
    pub exttsp: ExtTspParams,
    /// Codestitcher level budgets.
    pub stitch: StitchLevels,
    /// Conflict-free-area knobs.
    pub cfa: CfaParams,
    /// Hot/cold splitting knobs.
    pub hotcold: HotColdParams,
}

/// One tunable knob: a name, a finite ascending value grid, and accessors
/// into [`LayoutParams`].
pub struct ParamKnob {
    name: &'static str,
    values: &'static [u64],
    get: fn(&LayoutParams) -> u64,
    set: fn(&mut LayoutParams, u64),
}

impl ParamKnob {
    /// Dotted knob name, e.g. `"exttsp.forward_window"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The knob's ascending value grid. Always contains the default.
    pub fn values(&self) -> &'static [u64] {
        self.values
    }

    /// Reads the knob's current value out of a parameter set.
    pub fn get(&self, params: &LayoutParams) -> u64 {
        (self.get)(params)
    }

    /// Writes a value into a parameter set.
    pub fn set(&self, params: &mut LayoutParams, value: u64) {
        (self.set)(params, value)
    }

    /// Index of the default value in [`ParamKnob::values`].
    ///
    /// # Panics
    /// Panics if the grid omits the default — a bug in the knob table.
    pub fn default_index(&self) -> usize {
        let d = self.get(&LayoutParams::default());
        self.values
            .iter()
            .position(|&v| v == d)
            .unwrap_or_else(|| panic!("knob {} grid omits its default {d}", self.name))
    }
}

impl std::fmt::Debug for ParamKnob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamKnob")
            .field("name", &self.name)
            .field("values", &self.values)
            .finish()
    }
}

macro_rules! knob {
    ($name:literal, $values:expr, $($field:ident).+) => {
        ParamKnob {
            name: $name,
            values: $values,
            get: |p| p.$($field).+,
            set: |p, v| p.$($field).+ = v,
        }
    };
}

fn chain_knobs() -> Vec<ParamKnob> {
    vec![knob!(
        "chain.min_edge_weight",
        &[0, 1, 2, 4, 8, 16],
        chain.min_edge_weight
    )]
}

fn split_knobs() -> Vec<ParamKnob> {
    vec![ParamKnob {
        name: "split.cut_fallthrough_jumps",
        values: &[0, 1],
        get: |p| u64::from(p.split.cut_fallthrough_jumps),
        set: |p, v| p.split.cut_fallthrough_jumps = v != 0,
    }]
}

fn exttsp_knobs() -> Vec<ParamKnob> {
    vec![
        knob!(
            "exttsp.jump_weight",
            &[25, 50, 100, 150, 200, 300],
            exttsp.jump_weight
        ),
        knob!(
            "exttsp.forward_window",
            &[256, 512, 1024, 2048, 4096],
            exttsp.forward_window
        ),
        knob!(
            "exttsp.backward_window",
            &[160, 320, 640, 1280, 2560],
            exttsp.backward_window
        ),
        knob!("exttsp.split_cap", &[0, 8, 16, 32, 64], exttsp.split_cap),
    ]
}

fn stitch_knobs() -> Vec<ParamKnob> {
    vec![
        knob!("stitch.line", &[32, 64, 128, 256, 512], stitch.line),
        knob!(
            "stitch.page",
            &[2048, 4096, 8192, 16384, 32768],
            stitch.page
        ),
        knob!(
            "stitch.huge",
            &[262144, 1048576, 2097152, 4194304],
            stitch.huge
        ),
    ]
}

fn cfa_knobs() -> Vec<ParamKnob> {
    vec![knob!(
        "cfa.reserved_bytes",
        &[8192, 16384, 32768, 65536, 131072],
        cfa.reserved_bytes
    )]
}

fn hotcold_knobs() -> Vec<ParamKnob> {
    vec![knob!(
        "hotcold.hot_threshold",
        &[0, 1, 2, 4, 8, 16, 64],
        hotcold.hot_threshold
    )]
}

/// The searchable parameter surface: an ordered list of knobs.
///
/// [`ParamSpace::for_series`] returns only the knobs a series actually
/// consumes, so the tuner never wastes budget perturbing dead
/// coordinates; [`ParamSpace::full`] covers every pass.
#[derive(Debug)]
pub struct ParamSpace {
    knobs: Vec<ParamKnob>,
}

impl ParamSpace {
    /// Every knob of every pass.
    pub fn full() -> Self {
        let mut knobs = chain_knobs();
        knobs.extend(split_knobs());
        knobs.extend(exttsp_knobs());
        knobs.extend(stitch_knobs());
        knobs.extend(cfa_knobs());
        knobs.extend(hotcold_knobs());
        ParamSpace { knobs }
    }

    /// The knobs that influence one layout series. Chaining feeds every
    /// series except `base`/`porder` (ext-TSP keeps it as the competing
    /// candidate), so its knobs appear wherever they can change bytes.
    pub fn for_series(series: LayoutSeries) -> Self {
        let mut knobs: Vec<ParamKnob> = Vec::new();
        match series {
            LayoutSeries::Paper(set) => {
                if set.chain {
                    knobs.extend(chain_knobs());
                }
                if set.split {
                    knobs.extend(split_knobs());
                }
            }
            LayoutSeries::HotCold => {
                knobs.extend(chain_knobs());
                knobs.extend(hotcold_knobs());
            }
            LayoutSeries::Cfa => {
                knobs.extend(chain_knobs());
                knobs.extend(split_knobs());
                knobs.extend(cfa_knobs());
            }
            LayoutSeries::ExtTsp => {
                knobs.extend(chain_knobs());
                knobs.extend(exttsp_knobs());
            }
            LayoutSeries::Stitcher => {
                knobs.extend(chain_knobs());
                knobs.extend(split_knobs());
                knobs.extend(stitch_knobs());
            }
        }
        ParamSpace { knobs }
    }

    /// Number of knobs in the space.
    pub fn len(&self) -> usize {
        self.knobs.len()
    }

    /// True when the space has no knobs (e.g. the `base` series).
    pub fn is_empty(&self) -> bool {
        self.knobs.is_empty()
    }

    /// The knobs, in coordinate order.
    pub fn knobs(&self) -> &[ParamKnob] {
        &self.knobs
    }

    /// The point whose every coordinate is the knob's default value.
    pub fn default_point(&self) -> ParamPoint {
        ParamPoint {
            idx: self
                .knobs
                .iter()
                .map(|k| k.default_index() as u32)
                .collect(),
        }
    }

    /// Materializes a point into a full parameter set (non-member knobs
    /// stay at their defaults).
    ///
    /// # Panics
    /// Panics if the point's arity or any coordinate is out of range for
    /// this space.
    pub fn params(&self, point: &ParamPoint) -> LayoutParams {
        assert_eq!(point.idx.len(), self.knobs.len(), "point/space arity");
        let mut p = LayoutParams::default();
        for (knob, &i) in self.knobs.iter().zip(&point.idx) {
            knob.set(&mut p, knob.values[i as usize]);
        }
        p
    }
}

/// A coordinate vector into a [`ParamSpace`]: one value-grid index per
/// knob. Points order lexicographically, which gives search caches a
/// deterministic key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ParamPoint {
    idx: Vec<u32>,
}

impl ParamPoint {
    /// Builds a point from raw grid indices.
    ///
    /// # Panics
    /// Panics if any index is out of range for its knob's grid.
    pub fn new(space: &ParamSpace, idx: Vec<u32>) -> Self {
        assert_eq!(idx.len(), space.len(), "point/space arity");
        for (knob, &i) in space.knobs.iter().zip(&idx) {
            assert!(
                (i as usize) < knob.values.len(),
                "knob {} index {i} out of range",
                knob.name
            );
        }
        ParamPoint { idx }
    }

    /// The raw grid indices.
    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    /// The point one grid step away along knob `knob` (`delta` = ±1), or
    /// `None` when the step leaves the grid.
    pub fn step(&self, space: &ParamSpace, knob: usize, delta: i64) -> Option<ParamPoint> {
        let cur = self.idx[knob] as i64;
        let next = cur + delta;
        if next < 0 || next as usize >= space.knobs[knob].values.len() {
            return None;
        }
        let mut idx = self.idx.clone();
        idx[knob] = next as u32;
        Some(ParamPoint { idx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptimizationSet;

    #[test]
    fn defaults_match_historical_constants() {
        let p = LayoutParams::default();
        assert_eq!(p.chain.min_edge_weight, 0);
        assert!(!p.split.cut_fallthrough_jumps);
        assert_eq!(p.exttsp.jump_weight, crate::SCORE_SCALE / 10);
        assert_eq!(p.exttsp.forward_window, crate::FORWARD_WINDOW);
        assert_eq!(p.exttsp.backward_window, crate::BACKWARD_WINDOW);
        assert_eq!(p.exttsp.split_cap, 32);
        assert_eq!(p.stitch, StitchLevels::default());
        assert_eq!(p.cfa.reserved_bytes, CFA_RESERVED_BYTES);
        assert_eq!(p.hotcold.hot_threshold, 0);
    }

    #[test]
    fn every_grid_contains_its_default_and_is_ascending() {
        let space = ParamSpace::full();
        assert!(!space.is_empty());
        for knob in space.knobs() {
            let _ = knob.default_index(); // panics if absent
            assert!(
                knob.values().windows(2).all(|w| w[0] < w[1]),
                "knob {} grid not strictly ascending",
                knob.name()
            );
        }
    }

    #[test]
    fn default_point_materializes_to_default_params() {
        for series in LayoutSeries::all() {
            let space = ParamSpace::for_series(series);
            let point = space.default_point();
            assert_eq!(space.params(&point), LayoutParams::default(), "{series}");
        }
    }

    #[test]
    fn knob_roundtrip_get_set() {
        let space = ParamSpace::full();
        let mut p = LayoutParams::default();
        for knob in space.knobs() {
            for &v in knob.values() {
                knob.set(&mut p, v);
                assert_eq!(knob.get(&p), v, "{}", knob.name());
            }
        }
    }

    #[test]
    fn base_series_has_no_knobs() {
        let space = ParamSpace::for_series(LayoutSeries::Paper(OptimizationSet::BASE));
        assert!(space.is_empty());
        assert_eq!(
            space.params(&space.default_point()),
            LayoutParams::default()
        );
    }

    #[test]
    fn step_walks_the_grid_and_stops_at_edges() {
        let space = ParamSpace::for_series(LayoutSeries::ExtTsp);
        let p = space.default_point();
        // Knob 0 is chain.min_edge_weight, whose default sits at the grid
        // floor: stepping down must refuse.
        assert!(p.step(&space, 0, -1).is_none());
        // Knob 1 (jump_weight) defaults mid-grid: walk it to the ceiling.
        let down = p.step(&space, 1, -1).expect("default is not at the floor");
        assert_eq!(down.indices()[1] + 1, p.indices()[1]);
        let mut cur = p.clone();
        let mut steps = 0;
        while let Some(n) = cur.step(&space, 1, 1) {
            cur = n;
            steps += 1;
            assert!(steps < 100, "runaway grid walk");
        }
        assert_eq!(
            cur.indices()[1] as usize,
            space.knobs()[1].values().len() - 1
        );
    }
}
