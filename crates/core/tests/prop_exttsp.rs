//! Property tests for the ext-TSP and Codestitcher passes.
//!
//! The scorer is encoded once ([`codelayout_core::exttsp_score`]) and
//! shared between the ext-TSP pass and this suite, so the score
//! comparison below tests the pass against the very objective it
//! optimizes — not a reimplementation that could drift.

use codelayout_core::{
    exttsp_proc_order, exttsp_score, LayoutPipeline, LayoutSeries, OptimizationSet,
};
use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{verify_layout, verify_layout_placement, Layout, ProcId};
use codelayout_profile::{PixieCollector, Profile};
use codelayout_vm::{Machine, MachineConfig, NullSink, APP_TEXT_BASE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const FUEL: u64 = 2_000_000;

/// Collects a real profile by executing the program.
fn real_profile(program: &codelayout_ir::Program) -> Profile {
    let image = Arc::new(link(program, &Layout::natural(program), APP_TEXT_BASE).unwrap());
    let mut m = Machine::new(image, MachineConfig::default());
    let mut pixie = PixieCollector::user(program.blocks.len());
    let report = m.run_hooked(&mut NullSink, &mut pixie, FUEL);
    assert!(report.faults.is_empty());
    pixie.into_profile()
}

/// A random (not necessarily flow-consistent) profile.
fn random_profile(program: &codelayout_ir::Program, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Profile::new(program.blocks.len());
    for c in &mut p.block_counts {
        *c = rng.gen_range(0..1000);
    }
    for (bi, b) in program.blocks.iter().enumerate() {
        for s in b.term.successors() {
            p.edge_counts
                .insert((bi as u32, s.0), rng.gen_range(0..500));
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every series — the paper's six plus hot/cold, CFA, ext-TSP and
    /// Codestitcher — yields a valid permutation (each block exactly
    /// once) under arbitrary random profiles, and each pass honors its
    /// declared placement convention.
    #[test]
    fn every_series_is_a_valid_permutation(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        let pipe = LayoutPipeline::new(&program, &profile);
        for series in LayoutSeries::all() {
            let layout = pipe.build_series(series);
            verify_layout(&program, &layout)
                .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {series}: {e}"));
            if let Some(split) = series.placement_split() {
                verify_layout_placement(&program, &layout, split)
                    .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {series}: {e}"));
            }
            // Deterministic: a rebuild is byte-identical.
            prop_assert_eq!(&layout, &pipe.build_series(series), "{} not deterministic", series);
        }
    }

    /// The per-procedure ext-TSP order is a permutation of the procedure's
    /// blocks with the entry block first — the pass's hard invariant, kept
    /// even when a non-entry-first arrangement would score higher.
    #[test]
    fn exttsp_proc_orders_are_entry_first_permutations(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        for (pi, proc_) in program.procs.iter().enumerate() {
            let order = exttsp_proc_order(&program, &profile, ProcId(pi as u32));
            prop_assert_eq!(order[0], proc_.entry, "proc {} entry not first", pi);
            let mut a: Vec<u32> = order.iter().map(|b| b.0).collect();
            let mut b: Vec<u32> = proc_.blocks.iter().map(|b| b.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "proc {} not a permutation", pi);
        }
    }

    /// On execution-derived profiles the ext-TSP pass's own objective
    /// score is at least the Pettis–Hansen series' score: chain merging
    /// with score-driven merge points never loses to greedy fall-through
    /// chaining under the objective both are judged by.
    #[test]
    fn exttsp_score_at_least_pettis_hansen(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = real_profile(&program);
        let pipe = LayoutPipeline::new(&program, &profile);
        let exttsp = pipe.build_series(LayoutSeries::ExtTsp);
        let ph = pipe.build(OptimizationSet::CHAIN_PORDER);
        let s_exttsp = exttsp_score(&program, &profile, &exttsp);
        let s_ph = exttsp_score(&program, &profile, &ph);
        prop_assert!(
            s_exttsp >= s_ph,
            "seed {}: exttsp score {} < chain+porder score {}",
            seed, s_exttsp, s_ph
        );
    }

    /// The two new passes preserve semantics under real execution, like
    /// the paper series (`prop_optimizers.rs`).
    #[test]
    fn new_passes_preserve_semantics(seed in 0u64..5_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = real_profile(&program);
        let pipe = LayoutPipeline::new(&program, &profile);
        let observe = |layout: &Layout| {
            let image = Arc::new(link(&program, layout, APP_TEXT_BASE).expect("valid layout"));
            let mut m = Machine::new(image, MachineConfig::default());
            let report = m.run(&mut NullSink, FUEL);
            assert!(report.faults.is_empty(), "{:?}", report.faults);
            (m.emitted(0).to_vec(), m.private_checksum(0), m.shared_checksum())
        };
        let baseline = observe(&Layout::natural(&program));
        for series in [LayoutSeries::ExtTsp, LayoutSeries::Stitcher] {
            let out = observe(&pipe.build_series(series));
            prop_assert_eq!(&baseline, &out, "layout {} diverged", series);
        }
    }
}
