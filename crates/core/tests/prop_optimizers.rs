//! Property tests for the layout optimizers: every pipeline output is a
//! valid permutation, structural invariants hold, and optimized layouts
//! preserve semantics under real execution.

use codelayout_core::{
    cfa_layout, chain_proc, hot_cold_layout, pettis_hansen_order, split_order, LayoutPipeline,
    OptimizationSet,
};
use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{verify_layout, BlockId, Layout, ProcId};
use codelayout_profile::{PixieCollector, Profile};
use codelayout_vm::{Machine, MachineConfig, NullSink, APP_TEXT_BASE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const FUEL: u64 = 2_000_000;

/// Collects a real profile by executing the program.
fn real_profile(program: &codelayout_ir::Program) -> Profile {
    let image = Arc::new(link(program, &Layout::natural(program), APP_TEXT_BASE).unwrap());
    let mut m = Machine::new(image, MachineConfig::default());
    let mut pixie = PixieCollector::user(program.blocks.len());
    let report = m.run_hooked(&mut NullSink, &mut pixie, FUEL);
    assert!(report.faults.is_empty());
    pixie.into_profile()
}

/// A random (not necessarily flow-consistent) profile.
fn random_profile(program: &codelayout_ir::Program, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Profile::new(program.blocks.len());
    for c in &mut p.block_counts {
        *c = rng.gen_range(0..1000);
    }
    for (bi, b) in program.blocks.iter().enumerate() {
        for s in b.term.successors() {
            p.edge_counts
                .insert((bi as u32, s.0), rng.gen_range(0..500));
        }
    }
    p
}

fn observe(program: &codelayout_ir::Program, layout: &Layout) -> (Vec<i64>, u64, u64) {
    let image = Arc::new(link(program, layout, APP_TEXT_BASE).expect("valid layout"));
    let mut m = Machine::new(image, MachineConfig::default());
    let report = m.run(&mut NullSink, FUEL);
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    (
        m.emitted(0).to_vec(),
        m.private_checksum(0),
        m.shared_checksum(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_preset_is_valid_under_any_profile(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        let pipe = LayoutPipeline::new(&program, &profile);
        for (name, set) in OptimizationSet::paper_series() {
            let layout = pipe.build(set);
            verify_layout(&program, &layout)
                .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {name}: {e}"));
        }
        verify_layout(&program, &hot_cold_layout(&program, &profile)).unwrap();
        let (cfa, _) = cfa_layout(&program, &profile, 4096);
        verify_layout(&program, &cfa).unwrap();
    }

    #[test]
    fn optimized_layouts_preserve_semantics(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = real_profile(&program);
        let pipe = LayoutPipeline::new(&program, &profile);
        let baseline = observe(&program, &Layout::natural(&program));
        for (name, set) in OptimizationSet::paper_series() {
            let out = observe(&program, &pipe.build(set));
            prop_assert_eq!(&baseline, &out, "layout {} diverged", name);
        }
        let out = observe(&program, &hot_cold_layout(&program, &profile));
        prop_assert_eq!(&baseline, &out, "hot/cold diverged");
        let (cfa, _) = cfa_layout(&program, &profile, 4096);
        let out = observe(&program, &cfa);
        prop_assert_eq!(&baseline, &out, "cfa diverged");
    }

    #[test]
    fn chain_is_permutation_with_entry_chain_first(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        for (pi, proc_) in program.procs.iter().enumerate() {
            let order = chain_proc(&program, &profile, ProcId(pi as u32));
            let mut a: Vec<u32> = order.iter().map(|b| b.0).collect();
            let mut b: Vec<u32> = proc_.blocks.iter().map(|b| b.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "proc {} not a permutation", pi);
        }
    }

    #[test]
    fn split_concatenation_preserves_order(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        for (pi, _) in program.procs.iter().enumerate() {
            let pid = ProcId(pi as u32);
            let order = chain_proc(&program, &profile, pid);
            let segs = split_order(&program, &profile, pid, &order);
            let flat: Vec<BlockId> = segs.iter().flat_map(|s| s.blocks.clone()).collect();
            prop_assert_eq!(flat, order);
            // Exactly one segment contains the entry.
            prop_assert_eq!(segs.iter().filter(|s| s.is_entry).count(), 1);
        }
    }

    #[test]
    fn pettis_hansen_is_a_permutation(n in 1usize..40, eseed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(eseed);
        let edges: Vec<(u32, u32, u64)> = (0..rng.gen_range(0..80))
            .map(|_| {
                (
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..100),
                )
            })
            .collect();
        let order = pettis_hansen_order(n, edges.clone());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        // Deterministic.
        prop_assert_eq!(order, pettis_hansen_order(n, edges));
    }
}
