//! Random program generation for property-based testing and fuzzing.
//!
//! Generated programs are *structurally unrestricted* (arbitrary DAG-shaped
//! control flow, jump tables, cross-procedure calls, memory traffic,
//! observable `Emit`s) but *guaranteed to terminate*: intra-procedure
//! branches only target later blocks, calls only target higher-numbered
//! procedures, and the single loop is a counted loop in the entry
//! procedure. That makes them ideal for differential testing of layouts:
//! any two valid layouts of the same program must produce bit-identical
//! observable behaviour.

use crate::builder::{ProcBuilder, ProgramBuilder};
use crate::ids::{LocalBlock, ProcId, Reg};
use crate::instr::{BinOp, Cond, MemSpace, Operand};
use crate::program::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape knobs for [`random_program`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of procedures (≥ 1).
    pub procs: usize,
    /// Maximum blocks per procedure (≥ 1).
    pub max_blocks: usize,
    /// Maximum straight-line instructions per block.
    pub max_instrs: usize,
    /// Iterations of the entry procedure's counted outer loop.
    pub loop_iters: u32,
    /// Probability of a call where one is allowed.
    pub call_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            procs: 5,
            max_blocks: 8,
            max_instrs: 5,
            loop_iters: 12,
            call_prob: 0.4,
        }
    }
}

const CTR: Reg = Reg(1);
const ACC: Reg = Reg(2);
const TMP: Reg = Reg(3);
const ADDR: Reg = Reg(4);

/// Generates a random, always-terminating program.
///
/// Register conventions inside generated code: `r1` is the outer loop
/// counter, `r2` an accumulator that is emitted at the end, `r3`/`r4`
/// scratch. All arithmetic feeds the accumulator, so different layouts
/// must reproduce the exact same emitted values.
pub fn random_program(seed: u64, cfg: &GenConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let nprocs = cfg.procs.max(1);
    let mut pb = ProgramBuilder::new(format!("random-{seed:#x}"));
    let ids: Vec<ProcId> = (0..nprocs)
        .map(|i| pb.declare_proc(format!("p{i}")))
        .collect();

    for (pi, &pid) in ids.iter().enumerate() {
        let body = gen_proc(&mut rng, cfg, pi, &ids);
        pb.define_proc(pid, body).expect("generated body is valid");
    }
    pb.finish(ids[0]).expect("generated program verifies")
}

fn gen_proc(rng: &mut StdRng, cfg: &GenConfig, pi: usize, ids: &[ProcId]) -> ProcBuilder {
    let is_entry = pi == 0;
    let n = rng.gen_range(1..=cfg.max_blocks.max(1));
    let mut f = ProcBuilder::new();
    // Entry procs get: an init block (counter setup), then the DAG, then a
    // loop latch branching back to the DAG head, and an exit. Non-entry
    // procs are a pure DAG ending in Return.
    let blocks: Vec<LocalBlock> = if is_entry {
        let init = f.entry();
        let dag: Vec<LocalBlock> = (0..n).map(|_| f.new_block()).collect();
        f.select(init);
        f.imm(CTR, cfg.loop_iters as i64);
        f.jump(dag[0]);
        dag
    } else {
        std::iter::once(f.entry())
            .chain((1..n).map(|_| f.new_block()))
            .collect()
    };
    let latch = is_entry.then(|| f.new_block());
    let exit = is_entry.then(|| f.new_block());

    for (bi, &b) in blocks.iter().enumerate() {
        f.select(b);
        gen_body(rng, cfg, &mut f, pi, ids);
        let last = bi + 1 == blocks.len();
        let next_of = |r: &mut StdRng, lo: usize| blocks[r.gen_range(lo..blocks.len())];
        if last {
            match (latch, exit) {
                (Some(latch), Some(_)) => f.jump(latch),
                _ => f.ret(),
            }
        } else {
            match rng.gen_range(0..4) {
                0 => f.jump(next_of(rng, bi + 1)),
                1 => {
                    let t = next_of(rng, bi + 1);
                    let e = next_of(rng, bi + 1);
                    let cond = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge][rng.gen_range(0..4)];
                    f.bin_imm(BinOp::And, TMP, ACC, rng.gen_range(1..16));
                    f.branch(cond, TMP, Operand::Imm(rng.gen_range(0..8)), t, e);
                }
                2 => {
                    let k = rng.gen_range(1..4);
                    let targets: Vec<LocalBlock> = (0..k).map(|_| next_of(rng, bi + 1)).collect();
                    let default = next_of(rng, bi + 1);
                    f.bin_imm(BinOp::And, TMP, ACC, 7);
                    f.jump_table(TMP, targets, default);
                }
                _ => {
                    // Early return/halt from the middle of the DAG.
                    if is_entry && rng.gen_bool(0.5) {
                        f.jump(next_of(rng, bi + 1));
                    } else if is_entry {
                        f.jump(latch.expect("entry has latch"));
                    } else {
                        f.ret();
                    }
                }
            }
        }
    }

    if let (Some(latch), Some(exit)) = (latch, exit) {
        let loop_head = blocks[0];
        f.select(latch);
        f.bin_imm(BinOp::Sub, CTR, CTR, 1);
        f.branch(Cond::Gt, CTR, Operand::Imm(0), loop_head, exit);
        f.select(exit);
        f.emit(ACC);
        f.halt();
    }
    f
}

fn gen_body(rng: &mut StdRng, cfg: &GenConfig, f: &mut ProcBuilder, pi: usize, ids: &[ProcId]) {
    let k = rng.gen_range(0..=cfg.max_instrs);
    for _ in 0..k {
        match rng.gen_range(0..8) {
            0 => {
                f.imm(TMP, rng.gen_range(-100..100));
                f.bin(BinOp::Add, ACC, ACC, TMP);
            }
            1 => {
                let op = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::Sub, BinOp::Or]
                    [rng.gen_range(0..5)];
                f.bin_imm(op, ACC, ACC, rng.gen_range(1..1000));
            }
            2 => {
                f.bin_imm(BinOp::And, ADDR, ACC, 255);
                f.store(ACC, ADDR, rng.gen_range(0..64), MemSpace::Private);
            }
            3 => {
                f.bin_imm(BinOp::And, ADDR, ACC, 255);
                f.load(TMP, ADDR, rng.gen_range(0..64), MemSpace::Private);
                f.bin(BinOp::Xor, ACC, ACC, TMP);
            }
            4 => {
                f.emit(ACC);
            }
            5 if pi + 1 < ids.len() && rng.gen_bool(cfg.call_prob) => {
                // Calls go strictly "down" the procedure list: termination.
                let callee = ids[rng.gen_range(pi + 1..ids.len())];
                f.call(callee);
            }
            6 => {
                f.atomic_rmw(
                    BinOp::Add,
                    TMP,
                    ADDR,
                    rng.gen_range(0..32),
                    ACC,
                    MemSpace::Shared,
                );
                f.bin(BinOp::Xor, ACC, ACC, TMP);
            }
            _ => {
                f.nop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_program;

    #[test]
    fn generated_programs_verify() {
        for seed in 0..50 {
            let p = random_program(seed, &GenConfig::default());
            verify_program(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!p.blocks.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(random_program(7, &cfg), random_program(7, &cfg));
        assert_ne!(random_program(7, &cfg), random_program(8, &cfg));
    }

    #[test]
    fn single_proc_single_block_edge_case() {
        let cfg = GenConfig {
            procs: 1,
            max_blocks: 1,
            max_instrs: 0,
            loop_iters: 1,
            call_prob: 0.0,
        };
        for seed in 0..10 {
            let p = random_program(seed, &cfg);
            verify_program(&p).unwrap();
        }
    }
}
