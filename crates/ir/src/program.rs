//! Programs, procedures, basic blocks, terminators and layouts.

use crate::ids::{BlockId, ProcId, Reg};
use crate::instr::{Cond, Instr, Operand};
use serde::{Deserialize, Serialize};

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional transfer to a block. Free when the target is laid out
    /// immediately after this block; one branch instruction otherwise.
    Jump(BlockId),
    /// Two-way conditional transfer.
    Branch {
        /// Comparison predicate.
        cond: Cond,
        /// Left comparison operand (register).
        reg: Reg,
        /// Right comparison operand.
        rhs: Operand,
        /// Target when the predicate holds.
        then_: BlockId,
        /// Target when the predicate does not hold.
        else_: BlockId,
    },
    /// Multi-way transfer through a jump table indexed by a register; out of
    /// range values go to `default`. Always one instruction.
    JumpTable {
        /// Index register.
        reg: Reg,
        /// In-range targets.
        targets: Vec<BlockId>,
        /// Out-of-range target.
        default: BlockId,
    },
    /// Return to the caller (or to the user-mode continuation when it ends a
    /// kernel service routine's outermost frame).
    Return,
    /// Stops the executing process.
    Halt,
}

impl Terminator {
    /// Iterates over all successor blocks named by this terminator.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b, rest): (Option<BlockId>, Option<BlockId>, &[BlockId]) = match self {
            Terminator::Jump(t) => (Some(*t), None, &[]),
            Terminator::Branch { then_, else_, .. } => (Some(*then_), Some(*else_), &[]),
            Terminator::JumpTable {
                targets, default, ..
            } => (Some(*default), None, targets.as_slice()),
            Terminator::Return | Terminator::Halt => (None, None, &[]),
        };
        a.into_iter().chain(b).chain(rest.iter().copied())
    }

    /// True for terminators that never fall through and never branch to
    /// another block (`Return`/`Halt`) or that transfer unconditionally
    /// (`Jump`, `JumpTable`). These are the points at which fine-grain
    /// procedure splitting may cut a chain.
    pub fn is_unconditional(&self) -> bool {
        !matches!(self, Terminator::Branch { .. })
    }
}

/// A straight-line run of instructions ending in a terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line body instructions.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// Creates a block from a body and terminator.
    pub fn new(instrs: Vec<Instr>, term: Terminator) -> Self {
        BasicBlock { instrs, term }
    }
}

/// A procedure: an ordered list of blocks from the program arena plus a
/// designated entry block. The list order is the *source layout order*; the
/// entry block need not be first in memory after optimization, but calls
/// always enter at `entry`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Procedure {
    /// Human-readable name (unique within the program).
    pub name: String,
    /// Blocks owned by this procedure, in source layout order.
    pub blocks: Vec<BlockId>,
    /// The block where calls enter.
    pub entry: BlockId,
}

/// A whole executable: a block arena partitioned into procedures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Block arena; `BlockId` indexes into this.
    pub blocks: Vec<BasicBlock>,
    /// Procedures, indexed by `ProcId`.
    pub procs: Vec<Procedure>,
    /// The procedure where each process starts executing.
    pub entry: ProcId,
}

impl Program {
    /// Returns the block for an id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Returns the procedure for an id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn proc(&self, id: ProcId) -> &Procedure {
        &self.procs[id.index()]
    }

    /// Looks up a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProcId(i as u32))
    }

    /// Maps every block to its owning procedure. O(blocks).
    pub fn owner_of_blocks(&self) -> Vec<ProcId> {
        let mut owner = vec![ProcId(u32::MAX); self.blocks.len()];
        for (pi, p) in self.procs.iter().enumerate() {
            for &b in &p.blocks {
                owner[b.index()] = ProcId(pi as u32);
            }
        }
        owner
    }

    /// Computes static size statistics.
    pub fn stats(&self) -> ProgramStats {
        let body_instrs: usize = self.blocks.iter().map(|b| b.instrs.len()).sum();
        ProgramStats {
            procs: self.procs.len(),
            blocks: self.blocks.len(),
            body_instrs,
        }
    }
}

/// Static size statistics for a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramStats {
    /// Number of procedures.
    pub procs: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Total straight-line instructions (terminator encodings are
    /// layout-dependent and therefore excluded).
    pub body_instrs: usize,
}

/// A global code layout: every block of the program exactly once, in final
/// memory order. Produced by the optimizers in `codelayout-core` and
/// consumed by [`crate::link::link`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Blocks in memory order.
    pub order: Vec<BlockId>,
}

impl Layout {
    /// The compiler/linker default: procedures in declaration order, blocks
    /// in source order within each procedure. This is the paper's *baseline*
    /// binary.
    pub fn natural(program: &Program) -> Layout {
        let order = program
            .procs
            .iter()
            .flat_map(|p| p.blocks.iter().copied())
            .collect();
        Layout { order }
    }

    /// Number of blocks in the layout.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the layout contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;

    fn tiny_program() -> Program {
        // proc0: b0 -> b1; proc1: b2
        Program {
            name: "t".into(),
            blocks: vec![
                BasicBlock::new(
                    vec![Instr::Imm {
                        dst: Reg(1),
                        value: 1,
                    }],
                    Terminator::Jump(BlockId(1)),
                ),
                BasicBlock::new(vec![Instr::Call { callee: ProcId(1) }], Terminator::Halt),
                BasicBlock::new(
                    vec![Instr::Bin {
                        op: BinOp::Add,
                        dst: Reg(1),
                        lhs: Reg(1),
                        rhs: Operand::Imm(1),
                    }],
                    Terminator::Return,
                ),
            ],
            procs: vec![
                Procedure {
                    name: "main".into(),
                    blocks: vec![BlockId(0), BlockId(1)],
                    entry: BlockId(0),
                },
                Procedure {
                    name: "inc".into(),
                    blocks: vec![BlockId(2)],
                    entry: BlockId(2),
                },
            ],
            entry: ProcId(0),
        }
    }

    #[test]
    fn successors_enumeration() {
        let t = Terminator::Branch {
            cond: Cond::Eq,
            reg: Reg(0),
            rhs: Operand::Imm(0),
            then_: BlockId(5),
            else_: BlockId(6),
        };
        let s: Vec<_> = t.successors().collect();
        assert_eq!(s, vec![BlockId(5), BlockId(6)]);

        let jt = Terminator::JumpTable {
            reg: Reg(0),
            targets: vec![BlockId(1), BlockId(2)],
            default: BlockId(3),
        };
        let s: Vec<_> = jt.successors().collect();
        assert_eq!(s, vec![BlockId(3), BlockId(1), BlockId(2)]);

        assert_eq!(Terminator::Return.successors().count(), 0);
    }

    #[test]
    fn unconditional_classification() {
        assert!(Terminator::Jump(BlockId(0)).is_unconditional());
        assert!(Terminator::Return.is_unconditional());
        assert!(Terminator::Halt.is_unconditional());
        assert!(!Terminator::Branch {
            cond: Cond::Eq,
            reg: Reg(0),
            rhs: Operand::Imm(0),
            then_: BlockId(0),
            else_: BlockId(1),
        }
        .is_unconditional());
    }

    #[test]
    fn natural_layout_covers_all_blocks_in_order() {
        let p = tiny_program();
        let l = Layout::natural(&p);
        assert_eq!(l.order, vec![BlockId(0), BlockId(1), BlockId(2)]);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
    }

    #[test]
    fn owner_map_and_lookup() {
        let p = tiny_program();
        let owner = p.owner_of_blocks();
        assert_eq!(owner[0], ProcId(0));
        assert_eq!(owner[2], ProcId(1));
        assert_eq!(p.proc_by_name("inc"), Some(ProcId(1)));
        assert_eq!(p.proc_by_name("nope"), None);
        let st = p.stats();
        assert_eq!(st.procs, 2);
        assert_eq!(st.blocks, 3);
        assert_eq!(st.body_instrs, 3);
    }
}
