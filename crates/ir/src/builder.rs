//! Ergonomic builders for constructing programs.
//!
//! [`ProgramBuilder`] owns the growing program; procedures are first
//! *declared* (so bodies can reference forward procedures) and then
//! *defined* from a [`ProcBuilder`], which works with procedure-local block
//! handles that are resolved to arena-global [`BlockId`]s at install time.

use crate::error::IrError;
use crate::ids::{BlockId, LocalBlock, ProcId, Reg};
use crate::instr::{BinOp, Cond, Instr, MemSpace, Operand};
use crate::program::{BasicBlock, Procedure, Program, Terminator};
use crate::verify::verify_program;

/// Local terminator with procedure-local targets.
#[derive(Debug, Clone)]
enum LocalTerm {
    Jump(LocalBlock),
    Branch {
        cond: Cond,
        reg: Reg,
        rhs: Operand,
        then_: LocalBlock,
        else_: LocalBlock,
    },
    JumpTable {
        reg: Reg,
        targets: Vec<LocalBlock>,
        default: LocalBlock,
    },
    Return,
    Halt,
}

#[derive(Debug, Clone, Default)]
struct LocalBlockData {
    instrs: Vec<Instr>,
    term: Option<LocalTerm>,
}

/// Builds a single procedure out of local blocks.
///
/// The first block created (see [`ProcBuilder::entry`]) is the procedure
/// entry. Instructions are appended to the *selected* block; terminator
/// methods seal the selected block.
#[derive(Debug, Clone)]
pub struct ProcBuilder {
    blocks: Vec<LocalBlockData>,
    current: usize,
}

impl Default for ProcBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcBuilder {
    /// Creates an empty procedure builder with one (entry) block selected.
    pub fn new() -> Self {
        ProcBuilder {
            blocks: vec![LocalBlockData::default()],
            current: 0,
        }
    }

    /// Returns the entry block handle (always the first block).
    pub fn entry(&self) -> LocalBlock {
        LocalBlock(0)
    }

    /// Creates a new, unselected block and returns its handle.
    pub fn new_block(&mut self) -> LocalBlock {
        self.blocks.push(LocalBlockData::default());
        LocalBlock((self.blocks.len() - 1) as u32)
    }

    /// Selects the block that subsequent instructions are appended to.
    ///
    /// # Panics
    /// Panics if `b` does not belong to this builder.
    pub fn select(&mut self, b: LocalBlock) -> &mut Self {
        assert!(
            (b.0 as usize) < self.blocks.len(),
            "block {b:?} out of range"
        );
        self.current = b.0 as usize;
        self
    }

    /// Returns the number of blocks created so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn cur(&mut self) -> &mut LocalBlockData {
        &mut self.blocks[self.current]
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        debug_assert!(
            self.cur().term.is_none(),
            "appending to a sealed block {}",
            self.current
        );
        self.cur().instrs.push(i);
        self
    }

    /// Appends `dst = value`.
    pub fn imm(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.push(Instr::Imm { dst, value })
    }

    /// Appends `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// Appends `dst = op(lhs, rhs)` with a register right operand.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Reg) -> &mut Self {
        self.push(Instr::Bin {
            op,
            dst,
            lhs,
            rhs: Operand::Reg(rhs),
        })
    }

    /// Appends `dst = op(lhs, imm)` with an immediate right operand.
    pub fn bin_imm(&mut self, op: BinOp, dst: Reg, lhs: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Bin {
            op,
            dst,
            lhs,
            rhs: Operand::Imm(imm),
        })
    }

    /// Appends a load from an address space.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i32, space: MemSpace) -> &mut Self {
        self.push(Instr::Load {
            dst,
            base,
            offset,
            space,
        })
    }

    /// Appends a store to an address space.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32, space: MemSpace) -> &mut Self {
        self.push(Instr::Store {
            src,
            base,
            offset,
            space,
        })
    }

    /// Appends an atomic read-modify-write: `dst = old mem value;
    /// mem = op(old, src)`.
    pub fn atomic_rmw(
        &mut self,
        op: BinOp,
        dst: Reg,
        base: Reg,
        offset: i32,
        src: Reg,
        space: MemSpace,
    ) -> &mut Self {
        self.push(Instr::AtomicRmw {
            op,
            dst,
            base,
            offset,
            src,
            space,
        })
    }

    /// Appends a procedure call.
    pub fn call(&mut self, callee: ProcId) -> &mut Self {
        self.push(Instr::Call { callee })
    }

    /// Appends a syscall with a service code.
    pub fn syscall(&mut self, code: u16) -> &mut Self {
        self.push(Instr::Syscall { code })
    }

    /// Appends an observable-output instruction.
    pub fn emit(&mut self, src: Reg) -> &mut Self {
        self.push(Instr::Emit { src })
    }

    /// Appends a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Appends `count` filler ALU instructions that mix `dst` with itself,
    /// modelling straight-line computation without changing control flow.
    pub fn work(&mut self, dst: Reg, count: usize) -> &mut Self {
        for k in 0..count {
            let op = match k % 4 {
                0 => BinOp::Add,
                1 => BinOp::Xor,
                2 => BinOp::Mul,
                _ => BinOp::Sub,
            };
            self.push(Instr::Bin {
                op,
                dst,
                lhs: dst,
                rhs: Operand::Imm((k as i64).wrapping_mul(0x9E37_79B9) | 1),
            });
        }
        self
    }

    fn seal(&mut self, t: LocalTerm) {
        let c = self.cur();
        debug_assert!(c.term.is_none(), "block {} already sealed", self.current);
        c.term = Some(t);
    }

    /// Seals the selected block with an unconditional jump.
    pub fn jump(&mut self, target: LocalBlock) {
        self.seal(LocalTerm::Jump(target));
    }

    /// Seals the selected block with a conditional branch.
    pub fn branch(
        &mut self,
        cond: Cond,
        reg: Reg,
        rhs: Operand,
        then_: LocalBlock,
        else_: LocalBlock,
    ) {
        self.seal(LocalTerm::Branch {
            cond,
            reg,
            rhs,
            then_,
            else_,
        });
    }

    /// Seals the selected block with a jump table.
    pub fn jump_table(&mut self, reg: Reg, targets: Vec<LocalBlock>, default: LocalBlock) {
        self.seal(LocalTerm::JumpTable {
            reg,
            targets,
            default,
        });
    }

    /// Seals the selected block with a return.
    pub fn ret(&mut self) {
        self.seal(LocalTerm::Return);
    }

    /// Seals the selected block with a halt.
    pub fn halt(&mut self) {
        self.seal(LocalTerm::Halt);
    }
}

/// Builds a whole [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    procs: Vec<Option<Procedure>>,
    names: Vec<String>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            blocks: Vec::new(),
            procs: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Declares a procedure so its id can be used in call instructions
    /// before the body exists.
    pub fn declare_proc(&mut self, name: impl Into<String>) -> ProcId {
        self.procs.push(None);
        self.names.push(name.into());
        ProcId((self.procs.len() - 1) as u32)
    }

    /// Number of procedures declared so far.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of blocks installed so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Installs a body for a declared procedure, resolving local block
    /// handles to global ids.
    ///
    /// # Errors
    /// Returns an error if `id` is unknown or already defined, if any
    /// builder block lacks a terminator, or if a terminator references an
    /// out-of-range local block.
    pub fn define_proc(&mut self, id: ProcId, body: ProcBuilder) -> Result<(), IrError> {
        let slot = self
            .procs
            .get_mut(id.index())
            .ok_or(IrError::UnknownProc(id))?;
        if slot.is_some() {
            return Err(IrError::ProcDefinition(id, "defined twice"));
        }
        if body.blocks.is_empty() {
            return Err(IrError::EmptyProc(id));
        }
        let base = self.blocks.len() as u32;
        let n = body.blocks.len() as u32;
        let resolve = |l: LocalBlock| -> Result<BlockId, IrError> {
            if l.0 < n {
                Ok(BlockId(base + l.0))
            } else {
                Err(IrError::UnknownBlock(BlockId(base + l.0)))
            }
        };
        let mut ids = Vec::with_capacity(body.blocks.len());
        for (bi, lb) in body.blocks.into_iter().enumerate() {
            let term = match lb.term.ok_or(IrError::MissingTerminator(bi))? {
                LocalTerm::Jump(t) => Terminator::Jump(resolve(t)?),
                LocalTerm::Branch {
                    cond,
                    reg,
                    rhs,
                    then_,
                    else_,
                } => Terminator::Branch {
                    cond,
                    reg,
                    rhs,
                    then_: resolve(then_)?,
                    else_: resolve(else_)?,
                },
                LocalTerm::JumpTable {
                    reg,
                    targets,
                    default,
                } => Terminator::JumpTable {
                    reg,
                    targets: targets.into_iter().map(resolve).collect::<Result<_, _>>()?,
                    default: resolve(default)?,
                },
                LocalTerm::Return => Terminator::Return,
                LocalTerm::Halt => Terminator::Halt,
            };
            let gid = BlockId(base + bi as u32);
            ids.push(gid);
            self.blocks.push(BasicBlock::new(lb.instrs, term));
        }
        self.procs[id.index()] = Some(Procedure {
            name: self.names[id.index()].clone(),
            entry: ids[0],
            blocks: ids,
        });
        Ok(())
    }

    /// Finishes the program with the given entry procedure, validating all
    /// cross references.
    ///
    /// # Errors
    /// Returns an error if any declared procedure lacks a body, the entry is
    /// unknown, or validation (block ownership, call/branch targets) fails.
    pub fn finish(self, entry: ProcId) -> Result<Program, IrError> {
        let mut procs = Vec::with_capacity(self.procs.len());
        for (i, p) in self.procs.into_iter().enumerate() {
            procs.push(p.ok_or(IrError::ProcDefinition(ProcId(i as u32), "never defined"))?);
        }
        let program = Program {
            name: self.name,
            blocks: self.blocks,
            procs,
            entry,
        };
        verify_program(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_proc_program() {
        let mut pb = ProgramBuilder::new("two");
        let main = pb.declare_proc("main");
        let callee = pb.declare_proc("callee");

        let mut f = ProcBuilder::new();
        let e = f.entry();
        let exit = f.new_block();
        f.select(e);
        f.imm(Reg(1), 7).call(callee);
        f.branch(Cond::Gt, Reg(1), Operand::Imm(0), exit, exit);
        f.select(exit);
        f.emit(Reg(1));
        f.halt();
        pb.define_proc(main, f).unwrap();

        let mut g = ProcBuilder::new();
        g.bin_imm(BinOp::Add, Reg(1), Reg(1), 1);
        g.ret();
        pb.define_proc(callee, g).unwrap();

        let p = pb.finish(main).unwrap();
        assert_eq!(p.procs.len(), 2);
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.proc(main).entry, BlockId(0));
        assert_eq!(p.proc(callee).entry, BlockId(2));
    }

    #[test]
    fn undefined_proc_rejected() {
        let mut pb = ProgramBuilder::new("bad");
        let main = pb.declare_proc("main");
        let _ghost = pb.declare_proc("ghost");
        let mut f = ProcBuilder::new();
        f.halt();
        pb.define_proc(main, f).unwrap();
        assert!(matches!(
            pb.finish(main),
            Err(IrError::ProcDefinition(ProcId(1), _))
        ));
    }

    #[test]
    fn double_definition_rejected() {
        let mut pb = ProgramBuilder::new("dd");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        f.halt();
        pb.define_proc(main, f.clone()).unwrap();
        assert!(matches!(
            pb.define_proc(main, f),
            Err(IrError::ProcDefinition(_, _))
        ));
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut pb = ProgramBuilder::new("mt");
        let main = pb.declare_proc("main");
        let f = ProcBuilder::new(); // entry block never sealed
        assert!(matches!(
            pb.define_proc(main, f),
            Err(IrError::MissingTerminator(0))
        ));
    }

    #[test]
    fn bad_local_target_rejected() {
        let mut pb = ProgramBuilder::new("bt");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        f.jump(LocalBlock(9));
        assert!(matches!(
            pb.define_proc(main, f),
            Err(IrError::UnknownBlock(_))
        ));
    }

    #[test]
    fn work_generates_requested_count() {
        let mut f = ProcBuilder::new();
        f.work(Reg(2), 13);
        f.ret();
        assert_eq!(f.blocks[0].instrs.len(), 13);
    }
}
