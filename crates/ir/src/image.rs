//! Lowered executable images.

use crate::ids::{BlockId, ProcId, Reg};
use crate::instr::{BinOp, Cond, MemSpace, Operand};
use serde::{Deserialize, Serialize};

/// Size of every lowered instruction in bytes (fixed-width RISC encoding).
pub const INSTR_BYTES: u64 = 4;

/// A lowered instruction. Control transfers carry resolved instruction
/// indices into the owning [`Image`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LInstr {
    /// `dst = value`
    Imm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op(lhs, rhs)`
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
    },
    /// Word load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Word offset.
        offset: i32,
        /// Address space.
        space: MemSpace,
    },
    /// Word store.
    Store {
        /// Source register.
        src: Reg,
        /// Base register.
        base: Reg,
        /// Word offset.
        offset: i32,
        /// Address space.
        space: MemSpace,
    },
    /// Atomic read-modify-write: `dst = old; mem = op(old, src)`.
    AtomicRmw {
        /// Combine operation.
        op: BinOp,
        /// Receives the old memory value.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Word offset.
        offset: i32,
        /// Right operand register.
        src: Reg,
        /// Address space.
        space: MemSpace,
    },
    /// Procedure call: pushes the return index and jumps to `target`.
    Call {
        /// Callee procedure id (for profiling attribution).
        callee: ProcId,
        /// Entry instruction index of the callee.
        target: u32,
    },
    /// Trap into the kernel.
    Syscall {
        /// Service code.
        code: u16,
    },
    /// Observable output of a register value.
    Emit {
        /// Source register.
        src: Reg,
    },
    /// No operation.
    Nop,
    /// Unconditional branch to an instruction index.
    Br {
        /// Target instruction index.
        target: u32,
    },
    /// Conditional branch: taken to `target`, otherwise falls through.
    BrCond {
        /// Predicate.
        cond: Cond,
        /// Left comparison register.
        reg: Reg,
        /// Right comparison operand.
        rhs: Operand,
        /// Target instruction index when taken.
        target: u32,
    },
    /// Indirect jump through a resolved table.
    JmpTbl {
        /// Index register.
        reg: Reg,
        /// Resolved in-range targets.
        table: Box<[u32]>,
        /// Resolved out-of-range target.
        default: u32,
    },
    /// Return to caller.
    Ret,
    /// Stop the executing process.
    Halt,
}

impl LInstr {
    /// True for instructions that may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            LInstr::Call { .. }
                | LInstr::Br { .. }
                | LInstr::BrCond { .. }
                | LInstr::JmpTbl { .. }
                | LInstr::Ret
                | LInstr::Halt
                | LInstr::Syscall { .. }
        )
    }
}

/// A lowered executable: flat code plus the maps needed for execution,
/// profiling attribution and layout analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Image {
    /// Program name this image was linked from.
    pub name: String,
    /// Base byte address of the text segment.
    pub base: u64,
    /// The code, one entry per [`INSTR_BYTES`] bytes.
    pub code: Vec<LInstr>,
    /// Entry instruction index of each procedure (indexed by `ProcId`).
    pub proc_entry: Vec<u32>,
    /// First instruction index of each block (indexed by `BlockId`).
    pub block_start: Vec<u32>,
    /// Owning block of each instruction (indexed by instruction index).
    pub block_of: Vec<BlockId>,
    /// Owning procedure of each block (indexed by `BlockId`).
    pub owner: Vec<ProcId>,
    /// Entry instruction index of the program entry procedure.
    pub entry: u32,
}

impl Image {
    /// Byte address of an instruction index.
    #[inline]
    pub fn addr(&self, idx: u32) -> u64 {
        self.base + idx as u64 * INSTR_BYTES
    }

    /// Instruction index of a byte address, if it falls in this image.
    #[inline]
    pub fn index_of(&self, addr: u64) -> Option<u32> {
        if addr < self.base {
            return None;
        }
        let idx = (addr - self.base) / INSTR_BYTES;
        if idx < self.code.len() as u64 {
            Some(idx as u32)
        } else {
            None
        }
    }

    /// Total text size in bytes.
    #[inline]
    pub fn text_bytes(&self) -> u64 {
        self.code.len() as u64 * INSTR_BYTES
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the image has no code.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Owning procedure of an instruction index.
    #[inline]
    pub fn proc_of_instr(&self, idx: u32) -> ProcId {
        self.owner[self.block_of[idx as usize].index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_image() -> Image {
        Image {
            name: "d".into(),
            base: 0x1000,
            code: vec![LInstr::Nop, LInstr::Halt],
            proc_entry: vec![0],
            block_start: vec![0],
            block_of: vec![BlockId(0), BlockId(0)],
            owner: vec![ProcId(0)],
            entry: 0,
        }
    }

    #[test]
    fn addressing_round_trip() {
        let img = dummy_image();
        assert_eq!(img.addr(1), 0x1004);
        assert_eq!(img.index_of(0x1004), Some(1));
        assert_eq!(img.index_of(0x0FFF), None);
        assert_eq!(img.index_of(0x1008), None);
        assert_eq!(img.text_bytes(), 8);
        assert_eq!(img.len(), 2);
        assert!(!img.is_empty());
        assert_eq!(img.proc_of_instr(1), ProcId(0));
    }

    #[test]
    fn control_classification() {
        assert!(LInstr::Ret.is_control());
        assert!(LInstr::Br { target: 0 }.is_control());
        assert!(LInstr::Syscall { code: 1 }.is_control());
        assert!(!LInstr::Nop.is_control());
        assert!(!LInstr::Imm {
            dst: Reg(0),
            value: 3
        }
        .is_control());
    }
}
