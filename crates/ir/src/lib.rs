//! Program intermediate representation for the `codelayout` toolkit.
//!
//! This crate models executables the way a link-time optimizer such as
//! Compaq's *Spike* saw them: a program is a set of **procedures**, each an
//! ordered list of **basic blocks** ending in an explicit **terminator**.
//! Blocks live in a single program-wide arena and are referenced by
//! [`BlockId`], so the layout optimizations in `codelayout-core` are pure
//! permutations/partitions of id lists and provably never rewrite code.
//!
//! A [`Program`] plus a [`Layout`] (a global block order) is *lowered* by the
//! [`link`] module into a flat [`Image`] of fixed-width (4-byte) instructions.
//! Lowering materializes fall-throughs exactly like a real linker:
//!
//! * `Jump t` emits nothing when `t` is the next block in the layout
//!   (unless the block body is empty — a block always occupies at least
//!   one instruction so execution attribution stays unambiguous),
//!   otherwise one unconditional branch;
//! * `Branch {then, else}` emits one conditional branch when either arm is
//!   adjacent (inverting the condition when `then` falls through), otherwise
//!   a conditional plus an unconditional branch;
//! * `Return`, `Halt`, and table jumps always emit one instruction.
//!
//! Because of these rules, better layouts genuinely shrink the executed
//! footprint and bias conditional branches not-taken — the two effects the
//! paper attributes its instruction-cache gains to.
//!
//! # Example
//!
//! ```
//! use codelayout_ir::{ProgramBuilder, ProcBuilder, Reg, Cond, Operand};
//!
//! # fn main() -> Result<(), codelayout_ir::IrError> {
//! let mut pb = ProgramBuilder::new("demo");
//! let main = pb.declare_proc("main");
//! let mut f = ProcBuilder::new();
//! let entry = f.entry();
//! let done = f.new_block();
//! f.select(entry);
//! f.imm(Reg(1), 41).bin_imm(codelayout_ir::BinOp::Add, Reg(1), Reg(1), 1);
//! f.branch(Cond::Eq, Reg(1), Operand::Imm(42), done, done);
//! f.select(done);
//! f.emit(Reg(1));
//! f.halt();
//! pb.define_proc(main, f)?;
//! let program = pb.finish(main)?;
//! let image = codelayout_ir::link::link(&program, &codelayout_ir::Layout::natural(&program), 0x1_0000)?;
//! assert!(image.code.len() >= 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod ids;
mod image;
mod instr;
pub mod link;
mod program;
pub mod testgen;
mod verify;

pub use builder::{ProcBuilder, ProgramBuilder};
pub use error::IrError;
pub use ids::{BlockId, LocalBlock, ProcId, Reg, NUM_REGS};
pub use image::{Image, LInstr, INSTR_BYTES};
pub use instr::{BinOp, Cond, Instr, MemSpace, Operand};
pub use program::{BasicBlock, Layout, Procedure, Program, ProgramStats, Terminator};
pub use verify::{verify_layout, verify_layout_placement};
