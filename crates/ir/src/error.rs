//! Error type for IR construction, validation and linking.

use crate::ids::{BlockId, ProcId};
use std::fmt;

/// Errors produced when building, validating or linking programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A terminator or call referenced a block that does not exist.
    UnknownBlock(BlockId),
    /// A call referenced a procedure that does not exist.
    UnknownProc(ProcId),
    /// A procedure was defined twice or never defined.
    ProcDefinition(ProcId, &'static str),
    /// A procedure has no blocks.
    EmptyProc(ProcId),
    /// A block was left without a terminator in the builder.
    MissingTerminator(usize),
    /// A block appears in zero or in more than one procedure.
    BlockOwnership(BlockId),
    /// A layout does not contain every program block exactly once.
    BadLayout(String),
    /// A procedure's entry block is not in its block list.
    EntryNotOwned(ProcId),
    /// The image would exceed the addressable text segment.
    TextOverflow(usize),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownBlock(b) => write!(f, "reference to unknown block {b}"),
            IrError::UnknownProc(p) => write!(f, "reference to unknown procedure {p}"),
            IrError::ProcDefinition(p, what) => write!(f, "procedure {p} {what}"),
            IrError::EmptyProc(p) => write!(f, "procedure {p} has no blocks"),
            IrError::MissingTerminator(b) => {
                write!(f, "builder block {b} was never given a terminator")
            }
            IrError::BlockOwnership(b) => {
                write!(f, "block {b} is not owned by exactly one procedure")
            }
            IrError::BadLayout(msg) => write!(f, "invalid layout: {msg}"),
            IrError::EntryNotOwned(p) => {
                write!(f, "entry block of procedure {p} is not in its block list")
            }
            IrError::TextOverflow(n) => write!(f, "text segment of {n} instructions is too large"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(IrError::UnknownBlock(BlockId(1)).to_string().contains("b1"));
        assert!(IrError::BadLayout("dup".into()).to_string().contains("dup"));
        let e: Box<dyn std::error::Error> = Box::new(IrError::EmptyProc(ProcId(0)));
        assert!(!e.to_string().is_empty());
    }
}
