//! Structural validation of programs and layouts.

use crate::error::IrError;
use crate::ids::{BlockId, ProcId};
use crate::program::{Layout, Program};

/// Validates a program's cross references:
///
/// * every block is owned by exactly one procedure;
/// * every procedure is non-empty and owns its entry block;
/// * every terminator target and call target exists;
/// * the program entry procedure exists.
///
/// # Errors
/// Returns the first violated invariant.
pub fn verify_program(program: &Program) -> Result<(), IrError> {
    let nblocks = program.blocks.len();
    let nprocs = program.procs.len();

    if program.entry.index() >= nprocs {
        return Err(IrError::UnknownProc(program.entry));
    }

    let mut owned = vec![false; nblocks];
    for (pi, p) in program.procs.iter().enumerate() {
        let pid = ProcId(pi as u32);
        if p.blocks.is_empty() {
            return Err(IrError::EmptyProc(pid));
        }
        for &b in &p.blocks {
            let i = b.index();
            if i >= nblocks {
                return Err(IrError::UnknownBlock(b));
            }
            if owned[i] {
                return Err(IrError::BlockOwnership(b));
            }
            owned[i] = true;
        }
        if !p.blocks.contains(&p.entry) {
            return Err(IrError::EntryNotOwned(pid));
        }
    }
    if let Some(i) = owned.iter().position(|&o| !o) {
        return Err(IrError::BlockOwnership(BlockId(i as u32)));
    }

    for (bi, b) in program.blocks.iter().enumerate() {
        for t in b.term.successors() {
            if t.index() >= nblocks {
                return Err(IrError::UnknownBlock(t));
            }
        }
        // Calls inside the body.
        for ins in &b.instrs {
            if let crate::instr::Instr::Call { callee } = ins {
                if callee.index() >= nprocs {
                    return Err(IrError::UnknownProc(*callee));
                }
            }
        }
        let _ = bi;
    }
    Ok(())
}

/// Validates that a layout is a permutation of all program blocks.
///
/// # Errors
/// Returns [`IrError::BadLayout`] on missing, duplicated or unknown blocks.
pub fn verify_layout(program: &Program, layout: &Layout) -> Result<(), IrError> {
    let n = program.blocks.len();
    if layout.order.len() != n {
        return Err(IrError::BadLayout(format!(
            "layout has {} blocks, program has {}",
            layout.order.len(),
            n
        )));
    }
    let mut seen = vec![false; n];
    for &b in &layout.order {
        let i = b.index();
        if i >= n {
            return Err(IrError::BadLayout(format!("unknown block {b}")));
        }
        if seen[i] {
            return Err(IrError::BadLayout(format!("duplicated block {b}")));
        }
        seen[i] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::program::{BasicBlock, Procedure, Terminator};
    use crate::Reg;

    fn prog_one_block(term: Terminator) -> Program {
        Program {
            name: "v".into(),
            blocks: vec![BasicBlock::new(
                vec![Instr::Imm {
                    dst: Reg(0),
                    value: 0,
                }],
                term,
            )],
            procs: vec![Procedure {
                name: "main".into(),
                blocks: vec![BlockId(0)],
                entry: BlockId(0),
            }],
            entry: ProcId(0),
        }
    }

    #[test]
    fn good_program_passes() {
        assert!(verify_program(&prog_one_block(Terminator::Halt)).is_ok());
    }

    #[test]
    fn dangling_jump_fails() {
        let p = prog_one_block(Terminator::Jump(BlockId(5)));
        assert_eq!(verify_program(&p), Err(IrError::UnknownBlock(BlockId(5))));
    }

    #[test]
    fn dangling_call_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.blocks[0].instrs.push(Instr::Call { callee: ProcId(9) });
        assert_eq!(verify_program(&p), Err(IrError::UnknownProc(ProcId(9))));
    }

    #[test]
    fn orphan_block_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.blocks.push(BasicBlock::new(vec![], Terminator::Halt));
        assert_eq!(verify_program(&p), Err(IrError::BlockOwnership(BlockId(1))));
    }

    #[test]
    fn doubly_owned_block_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.procs.push(Procedure {
            name: "dup".into(),
            blocks: vec![BlockId(0)],
            entry: BlockId(0),
        });
        assert_eq!(verify_program(&p), Err(IrError::BlockOwnership(BlockId(0))));
    }

    #[test]
    fn layout_permutation_checks() {
        let p = prog_one_block(Terminator::Halt);
        assert!(verify_layout(&p, &Layout::natural(&p)).is_ok());
        assert!(verify_layout(&p, &Layout { order: vec![] }).is_err());
        assert!(verify_layout(
            &p,
            &Layout {
                order: vec![BlockId(7)]
            }
        )
        .is_err());
        let mut p2 = p.clone();
        p2.blocks.push(BasicBlock::new(vec![], Terminator::Halt));
        p2.procs[0].blocks.push(BlockId(1));
        assert!(verify_layout(
            &p2,
            &Layout {
                order: vec![BlockId(0), BlockId(0)]
            }
        )
        .is_err());
    }
}
