//! Structural validation of programs and layouts.

use crate::error::IrError;
use crate::ids::{BlockId, ProcId};
use crate::program::{Layout, Program};

/// Validates a program's cross references:
///
/// * every block is owned by exactly one procedure;
/// * every procedure is non-empty and owns its entry block;
/// * every terminator target and call target exists;
/// * the program entry procedure exists.
///
/// # Errors
/// Returns the first violated invariant.
pub fn verify_program(program: &Program) -> Result<(), IrError> {
    let nblocks = program.blocks.len();
    let nprocs = program.procs.len();

    if program.entry.index() >= nprocs {
        return Err(IrError::UnknownProc(program.entry));
    }

    let mut owned = vec![false; nblocks];
    for (pi, p) in program.procs.iter().enumerate() {
        let pid = ProcId(pi as u32);
        if p.blocks.is_empty() {
            return Err(IrError::EmptyProc(pid));
        }
        for &b in &p.blocks {
            let i = b.index();
            if i >= nblocks {
                return Err(IrError::UnknownBlock(b));
            }
            if owned[i] {
                return Err(IrError::BlockOwnership(b));
            }
            owned[i] = true;
        }
        if !p.blocks.contains(&p.entry) {
            return Err(IrError::EntryNotOwned(pid));
        }
    }
    if let Some(i) = owned.iter().position(|&o| !o) {
        return Err(IrError::BlockOwnership(BlockId(i as u32)));
    }

    for b in &program.blocks {
        for t in b.term.successors() {
            if t.index() >= nblocks {
                return Err(IrError::UnknownBlock(t));
            }
        }
        // Calls inside the body.
        for ins in &b.instrs {
            if let crate::instr::Instr::Call { callee } = ins {
                if callee.index() >= nprocs {
                    return Err(IrError::UnknownProc(*callee));
                }
            }
        }
    }
    Ok(())
}

/// Validates that a layout is a permutation of all program blocks, each of
/// which is owned by a procedure.
///
/// Any permutation is *semantically* linkable — the linker materializes
/// whatever branches the order requires — so this check is deliberately
/// order-agnostic; positional conventions of the optimization pipeline are
/// checked separately by [`verify_layout_placement`].
///
/// # Errors
/// Returns [`IrError::BadLayout`] on missing, duplicated, unknown or
/// unowned blocks.
pub fn verify_layout(program: &Program, layout: &Layout) -> Result<(), IrError> {
    let n = program.blocks.len();
    if layout.order.len() != n {
        return Err(IrError::BadLayout(format!(
            "layout has {} blocks, program has {}",
            layout.order.len(),
            n
        )));
    }
    let owner = program.owner_of_blocks();
    let mut seen = vec![false; n];
    for &b in &layout.order {
        let i = b.index();
        if i >= n {
            return Err(IrError::BadLayout(format!("unknown block {b}")));
        }
        if seen[i] {
            return Err(IrError::BadLayout(format!("duplicated block {b}")));
        }
        if owner[i] == ProcId(u32::MAX) {
            return Err(IrError::BadLayout(format!(
                "block {b} is not owned by any procedure"
            )));
        }
        seen[i] = true;
    }
    Ok(())
}

/// Validates the placement conventions the layout pipeline guarantees, on
/// top of [`verify_layout`]'s permutation check.
///
/// Without fine-grain splitting (`split == false`) every procedure is an
/// indivisible placement unit: its blocks must form exactly one contiguous
/// run in the layout, so no procedure interleaves another, and the run
/// containing the entry block is necessarily the procedure's first (the
/// entry block itself may sit mid-run: chaining legitimately places a hot
/// predecessor in front of it).
///
/// With splitting (`split == true`) a procedure's segments may land
/// anywhere, so contiguity is not required; instead, each run of
/// consecutive same-procedure blocks must end at a legal segment boundary.
/// The fine-grain splitter cuts only after unconditional transfers, leaving
/// at most one trailing segment per procedure that ends in a conditional
/// branch — so a procedure whose placed runs end in *two or more*
/// conditional branches cannot have come from the splitter.
///
/// # Errors
/// Returns [`IrError::BadLayout`] describing the violated convention.
pub fn verify_layout_placement(
    program: &Program,
    layout: &Layout,
    split: bool,
) -> Result<(), IrError> {
    verify_layout(program, layout)?;
    let owner = program.owner_of_blocks();
    let nprocs = program.procs.len();

    // Maximal runs of same-procedure blocks, in layout order.
    let mut runs_of: Vec<u32> = vec![0; nprocs];
    let mut cond_tails: Vec<u32> = vec![0; nprocs];
    let mut i = 0;
    while i < layout.order.len() {
        let p = owner[layout.order[i].index()];
        let mut last = layout.order[i];
        let mut j = i + 1;
        while j < layout.order.len() && owner[layout.order[j].index()] == p {
            last = layout.order[j];
            j += 1;
        }
        runs_of[p.index()] += 1;
        if !program.block(last).term.is_unconditional() {
            cond_tails[p.index()] += 1;
        }
        i = j;
    }

    for (pi, proc) in program.procs.iter().enumerate() {
        let pid = ProcId(pi as u32);
        if !split && runs_of[pi] > 1 {
            return Err(IrError::BadLayout(format!(
                "procedure {pid} (`{}`) is split into {} runs although splitting is disabled",
                proc.name, runs_of[pi]
            )));
        }
        if split && cond_tails[pi] > 1 {
            return Err(IrError::BadLayout(format!(
                "procedure {pid} (`{}`) has {} placed runs ending in a conditional branch; \
                 the fine-grain splitter cuts only at unconditional transfers, leaving at \
                 most one",
                proc.name, cond_tails[pi]
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::program::{BasicBlock, Procedure, Terminator};
    use crate::Reg;

    fn prog_one_block(term: Terminator) -> Program {
        Program {
            name: "v".into(),
            blocks: vec![BasicBlock::new(
                vec![Instr::Imm {
                    dst: Reg(0),
                    value: 0,
                }],
                term,
            )],
            procs: vec![Procedure {
                name: "main".into(),
                blocks: vec![BlockId(0)],
                entry: BlockId(0),
            }],
            entry: ProcId(0),
        }
    }

    #[test]
    fn good_program_passes() {
        assert!(verify_program(&prog_one_block(Terminator::Halt)).is_ok());
    }

    #[test]
    fn dangling_jump_fails() {
        let p = prog_one_block(Terminator::Jump(BlockId(5)));
        assert_eq!(verify_program(&p), Err(IrError::UnknownBlock(BlockId(5))));
    }

    #[test]
    fn dangling_call_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.blocks[0].instrs.push(Instr::Call { callee: ProcId(9) });
        assert_eq!(verify_program(&p), Err(IrError::UnknownProc(ProcId(9))));
    }

    #[test]
    fn orphan_block_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.blocks.push(BasicBlock::new(vec![], Terminator::Halt));
        assert_eq!(verify_program(&p), Err(IrError::BlockOwnership(BlockId(1))));
    }

    #[test]
    fn doubly_owned_block_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.procs.push(Procedure {
            name: "dup".into(),
            blocks: vec![BlockId(0)],
            entry: BlockId(0),
        });
        assert_eq!(verify_program(&p), Err(IrError::BlockOwnership(BlockId(0))));
    }

    #[test]
    fn layout_permutation_checks() {
        let p = prog_one_block(Terminator::Halt);
        assert!(verify_layout(&p, &Layout::natural(&p)).is_ok());
        assert!(verify_layout(&p, &Layout { order: vec![] }).is_err());
        assert!(verify_layout(
            &p,
            &Layout {
                order: vec![BlockId(7)]
            }
        )
        .is_err());
        let mut p2 = p.clone();
        p2.blocks.push(BasicBlock::new(vec![], Terminator::Halt));
        p2.procs[0].blocks.push(BlockId(1));
        assert!(verify_layout(
            &p2,
            &Layout {
                order: vec![BlockId(0), BlockId(0)]
            }
        )
        .is_err());
    }

    #[test]
    fn layout_with_unowned_block_fails() {
        let mut p = prog_one_block(Terminator::Halt);
        p.blocks.push(BasicBlock::new(vec![], Terminator::Halt));
        // Block 1 exists but no procedure owns it.
        let l = Layout {
            order: vec![BlockId(0), BlockId(1)],
        };
        let err = verify_layout(&p, &l).unwrap_err();
        assert!(matches!(err, IrError::BadLayout(ref m) if m.contains("not owned")));
    }

    /// Two procedures of two blocks each: p0 = {b0 -> b1}, p1 = {b2 -> b3}.
    fn prog_two_procs() -> Program {
        Program {
            name: "v".into(),
            blocks: vec![
                BasicBlock::new(vec![], Terminator::Jump(BlockId(1))),
                BasicBlock::new(vec![], Terminator::Halt),
                BasicBlock::new(vec![], Terminator::Jump(BlockId(3))),
                BasicBlock::new(vec![], Terminator::Return),
            ],
            procs: vec![
                Procedure {
                    name: "main".into(),
                    blocks: vec![BlockId(0), BlockId(1)],
                    entry: BlockId(0),
                },
                Procedure {
                    name: "f".into(),
                    blocks: vec![BlockId(2), BlockId(3)],
                    entry: BlockId(2),
                },
            ],
            entry: ProcId(0),
        }
    }

    #[test]
    fn placement_requires_contiguous_procs_without_splitting() {
        let p = prog_two_procs();
        assert!(verify_layout_placement(&p, &Layout::natural(&p), false).is_ok());
        // Reordering whole procedures is fine.
        let swapped = Layout {
            order: vec![BlockId(2), BlockId(3), BlockId(0), BlockId(1)],
        };
        assert!(verify_layout_placement(&p, &swapped, false).is_ok());
        // Interleaving the two procedures is not.
        let interleaved = Layout {
            order: vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)],
        };
        let err = verify_layout_placement(&p, &interleaved, false).unwrap_err();
        assert!(matches!(err, IrError::BadLayout(ref m) if m.contains("split into 2 runs")));
        // ...unless splitting is enabled (both stray runs end unconditionally).
        assert!(verify_layout_placement(&p, &interleaved, true).is_ok());
    }

    #[test]
    fn placement_rejects_multiple_conditional_run_tails_under_splitting() {
        let mut p = prog_two_procs();
        // Make both of p0's blocks end in conditional branches (legal CFG:
        // both arms in-range), so any layout separating them leaves two
        // runs of p0 ending conditionally.
        let cond = |t: u32, e: u32| Terminator::Branch {
            cond: crate::instr::Cond::Eq,
            reg: Reg(0),
            rhs: crate::instr::Operand::Imm(0),
            then_: BlockId(t),
            else_: BlockId(e),
        };
        p.blocks[0].term = cond(1, 1);
        p.blocks[1].term = cond(0, 0);
        let interleaved = Layout {
            order: vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)],
        };
        let err = verify_layout_placement(&p, &interleaved, true).unwrap_err();
        assert!(
            matches!(err, IrError::BadLayout(ref m) if m.contains("conditional branch")),
            "unexpected error: {err:?}"
        );
        // Contiguous placement keeps a single (trailing) conditional run.
        assert!(verify_layout_placement(&p, &Layout::natural(&p), true).is_ok());
    }
}
