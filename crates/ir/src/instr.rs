//! Straight-line instructions of the virtual ISA.
//!
//! Control transfers (branches, returns) are *not* instructions; they are
//! [`crate::Terminator`]s on basic blocks, and are materialized into concrete
//! branch instructions only at link time, where their encoding depends on the
//! chosen layout.

use crate::ids::{ProcId, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Arithmetic/logical operations. All arithmetic is two's-complement
/// wrapping; division and remainder by zero yield zero so every instruction
/// is total and layouts can be compared for bit-exact architectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (`/`), with `x / 0 == 0`.
    Div,
    /// Remainder (`%`), with `x % 0 == 0`.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift by `rhs & 63`.
    Shl,
    /// Logical right shift by `rhs & 63`.
    Shr,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl BinOp {
    /// Applies the operation to two `i64` operands.
    #[inline]
    pub fn apply(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            BinOp::Shr => ((lhs as u64).wrapping_shr((rhs & 63) as u32)) as i64,
            BinOp::Min => lhs.min(rhs),
            BinOp::Max => lhs.max(rhs),
        }
    }
}

/// Branch comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// `lhs < rhs` (signed)
    Lt,
    /// `lhs <= rhs` (signed)
    Le,
    /// `lhs > rhs` (signed)
    Gt,
    /// `lhs >= rhs` (signed)
    Ge,
}

impl Cond {
    /// Evaluates the predicate.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }

    /// Returns the logically negated predicate, used when the linker inverts
    /// a conditional branch so the hot arm falls through.
    #[inline]
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// The second operand of ALU and branch instructions: a register or an
/// immediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

/// Address space selector for memory instructions.
///
/// Each simulated process has a `Private` data region; the `Shared` region
/// models the database SGA (buffer pool, lock tables, log buffer) that all
/// server processes attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Per-process data region.
    Private,
    /// System-wide shared region.
    Shared,
}

/// A straight-line (non-control-transfer) instruction.
///
/// Every instruction occupies [`crate::INSTR_BYTES`] bytes in the lowered
/// image, like a fixed-width RISC encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = value`
    Imm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op(lhs, rhs)`
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = mem[space][(base + offset) mod size]` (word addressed).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
        /// Address space.
        space: MemSpace,
    },
    /// `mem[space][(base + offset) mod size] = src` (word addressed).
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
        /// Address space.
        space: MemSpace,
    },
    /// Calls a procedure; execution resumes at the following instruction.
    Call {
        /// Callee procedure.
        callee: ProcId,
    },
    /// Traps into the kernel with a service code. The VM maps codes to
    /// kernel procedures; in user-only runs a syscall is a no-op with a
    /// fixed return convention.
    Syscall {
        /// Service code.
        code: u16,
    },
    /// Atomic read-modify-write on memory: `dst = old; mem = op(old, src)`
    /// in a single indivisible step. This is the primitive the OLTP engine
    /// builds shared counters and spinlocks from, so multi-CPU interleaving
    /// cannot lose updates.
    AtomicRmw {
        /// Operation combining the old memory value with `src`.
        op: BinOp,
        /// Receives the *old* memory value.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
        /// Right operand of the combine.
        src: Reg,
        /// Address space.
        space: MemSpace,
    },
    /// Appends the register value to the process's observable output
    /// channel. Used to check that layouts preserve semantics.
    Emit {
        /// Source register.
        src: Reg,
    },
    /// Does nothing (padding / alignment filler).
    Nop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm { dst, value } => write!(f, "imm {dst}, {value}"),
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Bin { op, dst, lhs, rhs } => write!(f, "{op:?} {dst}, {lhs}, {rhs:?}"),
            Instr::Load {
                dst,
                base,
                offset,
                space,
            } => write!(f, "ld.{space:?} {dst}, {offset}({base})"),
            Instr::Store {
                src,
                base,
                offset,
                space,
            } => write!(f, "st.{space:?} {src}, {offset}({base})"),
            Instr::AtomicRmw {
                op,
                dst,
                base,
                offset,
                src,
                space,
            } => write!(f, "amo.{op:?}.{space:?} {dst}, {offset}({base}), {src}"),
            Instr::Call { callee } => write!(f, "call {callee}"),
            Instr::Syscall { code } => write!(f, "syscall {code}"),
            Instr::Emit { src } => write!(f, "emit {src}"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_wrapping_and_total() {
        assert_eq!(BinOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Div.apply(10, 0), 0);
        assert_eq!(BinOp::Rem.apply(10, 0), 0);
        assert_eq!(BinOp::Div.apply(i64::MIN, -1), i64::MIN.wrapping_div(-1));
        assert_eq!(BinOp::Shl.apply(1, 65), 2); // shift modulo 64
        assert_eq!(BinOp::Shr.apply(-1, 1), i64::MAX); // logical shift
        assert_eq!(BinOp::Min.apply(-3, 4), -3);
        assert_eq!(BinOp::Max.apply(-3, 4), 4);
    }

    #[test]
    fn cond_eval_and_invert() {
        let cases = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
        for c in cases {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5)] {
                assert_eq!(c.eval(a, b), !c.invert().eval(a, b), "{c:?} {a} {b}");
            }
        }
        assert!(Cond::Le.eval(3, 3));
        assert!(!Cond::Lt.eval(3, 3));
    }

    #[test]
    fn display_is_nonempty() {
        let i = Instr::Bin {
            op: BinOp::Add,
            dst: Reg(1),
            lhs: Reg(2),
            rhs: Operand::Imm(3),
        };
        assert!(!i.to_string().is_empty());
    }
}
