//! Identifier newtypes used throughout the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a procedure within a [`crate::Program`].
///
/// Procedure ids are dense indices into `Program::procs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

/// Identifies a basic block in the program-wide block arena.
///
/// Block ids are dense indices into `Program::blocks` and are stable across
/// all layout transformations: chaining, splitting and procedure ordering
/// only rearrange *lists of* `BlockId`, never the blocks themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// A block handle local to a [`crate::ProcBuilder`], resolved to a global
/// [`BlockId`] when the procedure is installed into a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalBlock(pub u32);

/// A virtual general-purpose register (`r0`–`r31`), each holding an `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// Number of architectural registers in the virtual ISA.
pub const NUM_REGS: usize = 32;

impl ProcId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Reg {
    /// Returns the register number as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(3).to_string(), "p3");
        assert_eq!(BlockId(7).to_string(), "b7");
        assert_eq!(Reg(31).to_string(), "r31");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ProcId(9).index(), 9);
        assert_eq!(BlockId(1234).index(), 1234);
        assert_eq!(Reg(4).index(), 4);
    }
}
