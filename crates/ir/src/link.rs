//! The linker: lowers a [`Program`] under a [`Layout`] into an [`Image`].
//!
//! Lowering follows the fall-through materialization rules documented at the
//! crate root. These rules are what make layout quality *measurable*: a good
//! layout spends fewer instructions on unconditional branches (smaller, more
//! sequential code) and biases conditional branches not-taken.

use crate::error::IrError;
use crate::ids::BlockId;
use crate::image::{Image, LInstr};
use crate::instr::Instr;
use crate::program::{Layout, Program, Terminator};
use crate::verify::verify_layout;

/// Hard cap on image size (instructions) so indices fit comfortably in `u32`.
const MAX_TEXT_INSTRS: usize = 1 << 28;

/// Statistics about a lowering, useful for layout-quality analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Unconditional branch instructions materialized.
    pub uncond_branches: usize,
    /// Unconditional transfers resolved as free fall-throughs.
    pub fallthroughs: usize,
    /// Conditional branches whose condition was inverted so the hot arm
    /// falls through.
    pub inverted_branches: usize,
    /// Conditional branches that needed an extra unconditional branch
    /// because neither arm was adjacent.
    pub split_cond_branches: usize,
    /// Total lowered instructions.
    pub instrs: usize,
}

/// Lowers `program` under `layout`, placing the text at byte address `base`.
///
/// # Errors
/// Returns an error if the layout is not a permutation of the program's
/// blocks or if the image would exceed the addressable text segment.
pub fn link(program: &Program, layout: &Layout, base: u64) -> Result<Image, IrError> {
    Ok(link_with_stats(program, layout, base)?.0)
}

/// Like [`link`], additionally returning lowering statistics.
///
/// # Errors
/// Same conditions as [`link`].
pub fn link_with_stats(
    program: &Program,
    layout: &Layout,
    base: u64,
) -> Result<(Image, LinkStats), IrError> {
    let _span = codelayout_obs::span("link");
    verify_layout(program, layout)?;

    let nblocks = program.blocks.len();
    let order = &layout.order;

    // Pass 1: sizes and start indices.
    let mut block_start = vec![0u32; nblocks];
    let mut total: usize = 0;
    for (pos, &b) in order.iter().enumerate() {
        let next = order.get(pos + 1).copied();
        let blk = program.block(b);
        let term_size = term_size(&blk.term, next, blk.instrs.len());
        if total > MAX_TEXT_INSTRS {
            return Err(IrError::TextOverflow(total));
        }
        block_start[b.index()] = total as u32;
        total += blk.instrs.len() + term_size;
    }
    if total > MAX_TEXT_INSTRS {
        return Err(IrError::TextOverflow(total));
    }

    let proc_entry: Vec<u32> = program
        .procs
        .iter()
        .map(|p| block_start[p.entry.index()])
        .collect();

    // Pass 2: emit.
    let mut code: Vec<LInstr> = Vec::with_capacity(total);
    let mut block_of: Vec<BlockId> = Vec::with_capacity(total);
    let mut stats = LinkStats::default();

    for (pos, &b) in order.iter().enumerate() {
        let next = order.get(pos + 1).copied();
        let blk = program.block(b);
        for ins in &blk.instrs {
            code.push(lower_instr(ins, &proc_entry));
            block_of.push(b);
        }
        let tgt = |t: BlockId| block_start[t.index()];
        match &blk.term {
            Terminator::Jump(t) => {
                if next == Some(*t) && !blk.instrs.is_empty() {
                    stats.fallthroughs += 1;
                } else {
                    // Either the target is not adjacent, or the block body
                    // is empty: an empty block must still occupy one
                    // instruction so that it remains observable (zero-size
                    // blocks would make execution attribution ambiguous).
                    stats.uncond_branches += 1;
                    code.push(LInstr::Br { target: tgt(*t) });
                    block_of.push(b);
                }
            }
            Terminator::Branch {
                cond,
                reg,
                rhs,
                then_,
                else_,
            } => {
                if next == Some(*else_) {
                    code.push(LInstr::BrCond {
                        cond: *cond,
                        reg: *reg,
                        rhs: *rhs,
                        target: tgt(*then_),
                    });
                    block_of.push(b);
                } else if next == Some(*then_) {
                    stats.inverted_branches += 1;
                    code.push(LInstr::BrCond {
                        cond: cond.invert(),
                        reg: *reg,
                        rhs: *rhs,
                        target: tgt(*else_),
                    });
                    block_of.push(b);
                } else {
                    stats.split_cond_branches += 1;
                    stats.uncond_branches += 1;
                    code.push(LInstr::BrCond {
                        cond: *cond,
                        reg: *reg,
                        rhs: *rhs,
                        target: tgt(*then_),
                    });
                    block_of.push(b);
                    code.push(LInstr::Br {
                        target: tgt(*else_),
                    });
                    block_of.push(b);
                }
            }
            Terminator::JumpTable {
                reg,
                targets,
                default,
            } => {
                code.push(LInstr::JmpTbl {
                    reg: *reg,
                    table: targets.iter().map(|t| tgt(*t)).collect(),
                    default: tgt(*default),
                });
                block_of.push(b);
            }
            Terminator::Return => {
                code.push(LInstr::Ret);
                block_of.push(b);
            }
            Terminator::Halt => {
                code.push(LInstr::Halt);
                block_of.push(b);
            }
        }
    }
    debug_assert_eq!(code.len(), total);
    stats.instrs = total;

    // Debug-build self-check: every lowered control transfer must land
    // exactly on a block start (the deeper semantic proof lives in
    // `codelayout-analysis`, which cannot be used here without a cycle).
    #[cfg(debug_assertions)]
    {
        let is_start = {
            let mut s = vec![false; total + 1];
            for &st in &block_start {
                s[st as usize] = true;
            }
            s
        };
        for (i, ins) in code.iter().enumerate() {
            let targets: &[u32] = match ins {
                LInstr::Br { target } | LInstr::BrCond { target, .. } => {
                    core::slice::from_ref(target)
                }
                LInstr::Call { target, .. } => core::slice::from_ref(target),
                LInstr::JmpTbl { table, default, .. } => {
                    debug_assert!(
                        is_start[*default as usize],
                        "jump-table default at instr {i} targets mid-block {default}"
                    );
                    table
                }
                _ => &[],
            };
            for &t in targets {
                debug_assert!(
                    is_start[t as usize],
                    "transfer at instr {i} targets mid-block {t}"
                );
            }
        }
    }

    let m = codelayout_obs::metrics();
    m.add("link.images", 1);
    m.add("link.instrs", stats.instrs as u64);
    m.add("link.uncond_branches", stats.uncond_branches as u64);
    m.add("link.fallthroughs", stats.fallthroughs as u64);
    m.add("link.inverted_branches", stats.inverted_branches as u64);
    m.add("link.split_cond_branches", stats.split_cond_branches as u64);

    let owner = program.owner_of_blocks();
    let entry = proc_entry[program.entry.index()];
    Ok((
        Image {
            name: program.name.clone(),
            base,
            code,
            proc_entry,
            block_start,
            block_of,
            owner,
            entry,
        },
        stats,
    ))
}

fn term_size(term: &Terminator, next: Option<BlockId>, body_len: usize) -> usize {
    match term {
        Terminator::Jump(t) => usize::from(next != Some(*t) || body_len == 0),
        Terminator::Branch { then_, else_, .. } => {
            if next == Some(*else_) || next == Some(*then_) {
                1
            } else {
                2
            }
        }
        Terminator::JumpTable { .. } | Terminator::Return | Terminator::Halt => 1,
    }
}

fn lower_instr(ins: &Instr, proc_entry: &[u32]) -> LInstr {
    match *ins {
        Instr::Imm { dst, value } => LInstr::Imm { dst, value },
        Instr::Mov { dst, src } => LInstr::Mov { dst, src },
        Instr::Bin { op, dst, lhs, rhs } => LInstr::Bin { op, dst, lhs, rhs },
        Instr::Load {
            dst,
            base,
            offset,
            space,
        } => LInstr::Load {
            dst,
            base,
            offset,
            space,
        },
        Instr::Store {
            src,
            base,
            offset,
            space,
        } => LInstr::Store {
            src,
            base,
            offset,
            space,
        },
        Instr::AtomicRmw {
            op,
            dst,
            base,
            offset,
            src,
            space,
        } => LInstr::AtomicRmw {
            op,
            dst,
            base,
            offset,
            src,
            space,
        },
        Instr::Call { callee } => LInstr::Call {
            callee,
            target: proc_entry[callee.index()],
        },
        Instr::Syscall { code } => LInstr::Syscall { code },
        Instr::Emit { src } => LInstr::Emit { src },
        Instr::Nop => LInstr::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcId, Reg};
    use crate::instr::{Cond, Operand};
    use crate::program::{BasicBlock, Procedure};

    /// proc0 = [b0: branch -> b1/b2, b1: jump b3, b2: jump b3, b3: halt]
    fn diamond() -> Program {
        let blocks = vec![
            BasicBlock::new(
                vec![Instr::Imm {
                    dst: Reg(1),
                    value: 0,
                }],
                Terminator::Branch {
                    cond: Cond::Eq,
                    reg: Reg(1),
                    rhs: Operand::Imm(0),
                    then_: BlockId(1),
                    else_: BlockId(2),
                },
            ),
            BasicBlock::new(vec![Instr::Nop], Terminator::Jump(BlockId(3))),
            BasicBlock::new(vec![Instr::Nop, Instr::Nop], Terminator::Jump(BlockId(3))),
            BasicBlock::new(vec![], Terminator::Halt),
        ];
        Program {
            name: "diamond".into(),
            blocks,
            procs: vec![Procedure {
                name: "main".into(),
                blocks: vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)],
                entry: BlockId(0),
            }],
            entry: ProcId(0),
        }
    }

    #[test]
    fn natural_layout_lowering() {
        let p = diamond();
        let (img, st) = link_with_stats(&p, &Layout::natural(&p), 0).unwrap();
        // b0: imm + brcond(then=b1? no: else adjacency). next of b0 is b1 =>
        // then_ adjacent => inverted branch to b2. 2 instrs.
        // b1: nop + br b3 (b2 is next) = 2
        // b2: nop nop + fallthrough = 2
        // b3: halt = 1
        assert_eq!(img.len(), 7);
        assert_eq!(st.inverted_branches, 1);
        assert_eq!(st.uncond_branches, 1);
        assert_eq!(st.fallthroughs, 1);
        assert_eq!(st.split_cond_branches, 0);
        assert_eq!(img.block_start[0], 0);
        assert_eq!(img.block_start[1], 2);
        assert_eq!(img.block_start[2], 4);
        assert_eq!(img.block_start[3], 6);
        // Inverted: cond Eq becomes Ne targeting b2's start (4).
        match &img.code[1] {
            LInstr::BrCond { cond, target, .. } => {
                assert_eq!(*cond, Cond::Ne);
                assert_eq!(*target, 4);
            }
            other => panic!("expected BrCond, got {other:?}"),
        }
    }

    #[test]
    fn else_adjacent_keeps_condition() {
        let p = diamond();
        let layout = Layout {
            order: vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)],
        };
        let (img, st) = link_with_stats(&p, &layout, 0).unwrap();
        match &img.code[1] {
            LInstr::BrCond { cond, target, .. } => {
                assert_eq!(*cond, Cond::Eq);
                assert_eq!(*target, img.block_start[1]);
            }
            other => panic!("expected BrCond, got {other:?}"),
        }
        // b2 then b1: b2 jumps to b3 which is not adjacent (b1 is) -> br.
        // b1 jumps to b3, adjacent -> fallthrough.
        assert_eq!(st.uncond_branches, 1);
        assert_eq!(st.fallthroughs, 1);
    }

    #[test]
    fn neither_arm_adjacent_costs_two() {
        let p = diamond();
        let layout = Layout {
            order: vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)],
        };
        let (img, st) = link_with_stats(&p, &layout, 0).unwrap();
        assert_eq!(st.split_cond_branches, 1);
        // b0 = imm, brcond, br  => b3 starts at 3.
        assert_eq!(img.block_start[3], 3);
        match (&img.code[1], &img.code[2]) {
            (LInstr::BrCond { target: t1, .. }, LInstr::Br { target: t2 }) => {
                assert_eq!(*t1, img.block_start[1]);
                assert_eq!(*t2, img.block_start[2]);
            }
            other => panic!("unexpected encoding {other:?}"),
        }
    }

    #[test]
    fn call_targets_resolve_to_proc_entries() {
        let mut p = diamond();
        // Add a second proc and a call to it from b0.
        p.blocks.push(BasicBlock::new(vec![], Terminator::Return));
        p.procs.push(Procedure {
            name: "leaf".into(),
            blocks: vec![BlockId(4)],
            entry: BlockId(4),
        });
        p.blocks[0].instrs.push(Instr::Call { callee: ProcId(1) });
        let img = link(&p, &Layout::natural(&p), 0x40).unwrap();
        let call = img
            .code
            .iter()
            .find_map(|i| match i {
                LInstr::Call { target, .. } => Some(*target),
                _ => None,
            })
            .expect("call present");
        assert_eq!(call, img.proc_entry[1]);
        assert_eq!(img.addr(0), 0x40);
    }

    #[test]
    fn bad_layout_rejected() {
        let p = diamond();
        let err = link(
            &p,
            &Layout {
                order: vec![BlockId(0)],
            },
            0,
        );
        assert!(matches!(err, Err(IrError::BadLayout(_))));
    }

    #[test]
    fn block_of_attribution_covers_every_instr() {
        let p = diamond();
        let img = link(&p, &Layout::natural(&p), 0).unwrap();
        assert_eq!(img.block_of.len(), img.len());
        assert_eq!(img.block_of[0], BlockId(0));
        assert_eq!(img.block_of[6], BlockId(3));
        assert_eq!(img.proc_of_instr(6), ProcId(0));
    }

    #[test]
    fn jump_table_lowering_resolves_targets() {
        let blocks = vec![
            BasicBlock::new(
                vec![],
                Terminator::JumpTable {
                    reg: Reg(1),
                    targets: vec![BlockId(1), BlockId(2)],
                    default: BlockId(2),
                },
            ),
            BasicBlock::new(vec![Instr::Nop], Terminator::Halt),
            BasicBlock::new(vec![], Terminator::Halt),
        ];
        let p = Program {
            name: "jt".into(),
            blocks,
            procs: vec![Procedure {
                name: "main".into(),
                blocks: vec![BlockId(0), BlockId(1), BlockId(2)],
                entry: BlockId(0),
            }],
            entry: ProcId(0),
        };
        let img = link(&p, &Layout::natural(&p), 0).unwrap();
        match &img.code[0] {
            LInstr::JmpTbl { table, default, .. } => {
                assert_eq!(&**table, &[1, 3]);
                assert_eq!(*default, 3);
            }
            other => panic!("expected JmpTbl, got {other:?}"),
        }
    }
}
