//! Property tests for lowering: structural invariants of linked images
//! under random programs and random layouts.

use codelayout_ir::link::{link, link_with_stats};
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{BlockId, Layout, Terminator, INSTR_BYTES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shuffled(program: &codelayout_ir::Program, seed: u64) -> Layout {
    let mut order = Layout::natural(program).order;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    Layout { order }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn image_structure_invariants(seed in 0u64..10_000, shuffle in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let layout = shuffled(&program, shuffle);
        let (img, stats) = link_with_stats(&program, &layout, 0x40_0000).unwrap();

        // Every instruction is attributed to a block, every block is owned.
        prop_assert_eq!(img.block_of.len(), img.len());
        prop_assert_eq!(img.owner.len(), program.blocks.len());
        prop_assert_eq!(stats.instrs, img.len());
        prop_assert_eq!(img.text_bytes(), img.len() as u64 * INSTR_BYTES);

        // Block starts follow layout order and every block occupies at
        // least one instruction (zero-size blocks are forbidden).
        for w in layout.order.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(
                img.block_start[a.index()] < img.block_start[b.index()],
                "{a} at {} !< {b} at {}",
                img.block_start[a.index()],
                img.block_start[b.index()]
            );
        }

        // block_of is consistent with block_start: the instruction at each
        // block's start belongs to that block.
        for &b in &layout.order {
            let s = img.block_start[b.index()];
            prop_assert_eq!(img.block_of[s as usize], b);
        }

        // Proc entries point at the entry block's start.
        for (pi, p) in program.procs.iter().enumerate() {
            prop_assert_eq!(img.proc_entry[pi], img.block_start[p.entry.index()]);
        }

        // Address round trip.
        let idx = (img.len() / 2) as u32;
        prop_assert_eq!(img.index_of(img.addr(idx)), Some(idx));
    }

    #[test]
    fn body_instruction_count_is_layout_invariant(seed in 0u64..10_000, shuffle in 0u64..1_000) {
        // Lowered size = body instrs + terminator encodings; the body part
        // never changes with layout, so any two layouts differ only by the
        // number of materialized branches.
        let program = random_program(seed, &GenConfig::default());
        let body: usize = program.blocks.iter().map(|b| b.instrs.len()).sum();
        let nat = link(&program, &Layout::natural(&program), 0).unwrap();
        let shf = link(&program, &shuffled(&program, shuffle), 0).unwrap();
        let nblocks = program.blocks.len();
        for img in [&nat, &shf] {
            // Lower bound: bodies are always emitted and every block
            // occupies at least one instruction. Upper bound: a terminator
            // lowers to at most two instructions.
            prop_assert!(img.len() >= nblocks.max(body));
            prop_assert!(img.len() <= body + 2 * nblocks);
        }
    }

    #[test]
    fn natural_layout_minimizes_split_cond_branches(seed in 0u64..10_000) {
        // In the natural layout, a Branch block's else arm is frequently
        // adjacent; the stats must classify each conditional exactly once.
        let program = random_program(seed, &GenConfig::default());
        let (_, stats) = link_with_stats(&program, &Layout::natural(&program), 0).unwrap();
        let conds = program
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        prop_assert!(stats.split_cond_branches <= conds);
        prop_assert!(stats.inverted_branches <= conds);
    }

    #[test]
    fn reversal_round_trips(seed in 0u64..10_000) {
        // Linking the same layout twice is deterministic.
        let program = random_program(seed, &GenConfig::default());
        let mut rev = Layout::natural(&program);
        rev.order.reverse();
        let a = link(&program, &rev, 0x1000).unwrap();
        let b = link(&program, &rev, 0x1000).unwrap();
        prop_assert_eq!(a.code, b.code);
        prop_assert_eq!(a.block_start, b.block_start);
    }

    #[test]
    fn every_branch_target_is_a_block_start(seed in 0u64..10_000, shuffle in 0u64..1_000) {
        use codelayout_ir::LInstr;
        let program = random_program(seed, &GenConfig::default());
        let img = link(&program, &shuffled(&program, shuffle), 0).unwrap();
        let starts: std::collections::HashSet<u32> = program
            .blocks
            .iter()
            .enumerate()
            .map(|(i, _)| img.block_start[BlockId(i as u32).index()])
            .collect();
        for ins in &img.code {
            match ins {
                LInstr::Br { target } | LInstr::BrCond { target, .. } => {
                    prop_assert!(starts.contains(target), "branch to non-start {target}");
                }
                LInstr::JmpTbl { table, default, .. } => {
                    prop_assert!(starts.contains(default));
                    for t in table.iter() {
                        prop_assert!(starts.contains(t));
                    }
                }
                LInstr::Call { target, .. } => {
                    prop_assert!(starts.contains(target));
                }
                _ => {}
            }
        }
    }
}
