//! [`SweepSpec`]: the one way to name a cache-grid sweep.
//!
//! Every sweep in the workspace — the serial [`SweepSink`], the
//! parallel direct engine and the stack-distance engine — is described
//! by the same value: a grid of cache geometries (sizes × line sizes ×
//! associativities), a simulated CPU count and a stream filter. Before
//! this type existed each call site assembled its own `Vec<CacheConfig>`
//! and passed it positionally; the grid axes the paper sweeps
//! (Figures 4–7) were duplicated across the bench crate, the figure
//! binaries and the tests. [`SweepSpec`] replaces all of that:
//!
//! ```
//! use codelayout_memsim::{StreamFilter, SweepSpec, LINES_B, SIZES_KB};
//!
//! let spec = SweepSpec::grid()
//!     .sizes_kb(&SIZES_KB)
//!     .lines_b(&LINES_B)
//!     .ways(1)
//!     .cpus(4)
//!     .filter(StreamFilter::UserOnly);
//! assert_eq!(spec.configs().len(), 25);
//! ```
//!
//! Configurations enumerate in **size-major, line-size-middle,
//! ways-minor** order; golden figure JSONs depend on that order, so it
//! is part of the API contract.
//!
//! [`SweepSink`]: crate::SweepSink

use crate::config::{CacheConfig, StreamFilter};

/// Cache sizes (KB) of the paper's sweeps (Figures 4–7).
pub const SIZES_KB: [u64; 5] = [32, 64, 128, 256, 512];
/// Line sizes (bytes) of the paper's Figure 4 grid.
pub const LINES_B: [u32; 5] = [16, 32, 64, 128, 256];

/// A declarative sweep description: the cross product of cache sizes ×
/// line sizes × associativities, simulated for `cpus` CPUs over one
/// filtered stream. Built fluently from [`SweepSpec::grid`]; consumed
/// by [`SweepSink::from_spec`] and [`ParallelSweep::run`].
///
/// [`SweepSink::from_spec`]: crate::SweepSink::from_spec
/// [`ParallelSweep::run`]: crate::ParallelSweep::run
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    sizes_b: Vec<u64>,
    lines_b: Vec<u32>,
    ways: Vec<u32>,
    num_cpus: usize,
    filter: StreamFilter,
}

impl SweepSpec {
    /// Starts an empty grid: no sizes or line sizes yet, direct mapped,
    /// one CPU, combined stream.
    pub fn grid() -> Self {
        SweepSpec {
            sizes_b: Vec::new(),
            lines_b: Vec::new(),
            ways: vec![1],
            num_cpus: 1,
            filter: StreamFilter::All,
        }
    }

    /// The paper's Figure 4 grid ([`SIZES_KB`] × [`LINES_B`]) at one
    /// associativity — the 25-cell sweep behind Figures 4, 5 and the
    /// equivalence tests.
    pub fn paper_grid(ways: u32) -> Self {
        SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .lines_b(&LINES_B)
            .ways(ways)
    }

    /// Replaces the size axis (values in KB).
    pub fn sizes_kb(mut self, kb: &[u64]) -> Self {
        self.sizes_b = kb.iter().map(|&k| k * 1024).collect();
        self
    }

    /// Replaces the size axis with one size in KB.
    pub fn size_kb(self, kb: u64) -> Self {
        self.sizes_kb(&[kb])
    }

    /// Replaces the size axis (values in bytes; for sub-KB test caches).
    pub fn sizes_bytes(mut self, bytes: &[u64]) -> Self {
        self.sizes_b = bytes.to_vec();
        self
    }

    /// Replaces the line-size axis (values in bytes).
    pub fn lines_b(mut self, lines: &[u32]) -> Self {
        self.lines_b = lines.to_vec();
        self
    }

    /// Replaces the line-size axis with one line size in bytes.
    pub fn line_b(self, line: u32) -> Self {
        self.lines_b(&[line])
    }

    /// Sets one associativity for the whole grid.
    pub fn ways(mut self, ways: u32) -> Self {
        self.ways = vec![ways];
        self
    }

    /// Replaces the associativity axis with several values.
    pub fn ways_each(mut self, ways: &[u32]) -> Self {
        self.ways = ways.to_vec();
        self
    }

    /// Sets the simulated CPU count (each CPU gets private caches).
    ///
    /// # Panics
    /// Panics if `cpus` is zero.
    pub fn cpus(mut self, cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        self.num_cpus = cpus;
        self
    }

    /// Sets which part of the instruction stream the sweep observes.
    pub fn filter(mut self, filter: StreamFilter) -> Self {
        self.filter = filter;
        self
    }

    /// The simulated CPU count.
    #[inline]
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// The stream filter.
    #[inline]
    pub fn stream(&self) -> StreamFilter {
        self.filter
    }

    /// Materializes the grid in size-major → line-size → ways order
    /// (the order every figure JSON and golden file depends on). Each
    /// geometry is validated by [`CacheConfig::new`].
    ///
    /// # Panics
    /// Panics if any axis is still empty, or if a cell's geometry is
    /// invalid.
    pub fn configs(&self) -> Vec<CacheConfig> {
        assert!(!self.sizes_b.is_empty(), "SweepSpec: no cache sizes set");
        assert!(!self.lines_b.is_empty(), "SweepSpec: no line sizes set");
        assert!(!self.ways.is_empty(), "SweepSpec: no associativity set");
        let mut v = Vec::with_capacity(self.sizes_b.len() * self.lines_b.len() * self.ways.len());
        for &s in &self.sizes_b {
            for &l in &self.lines_b {
                for &w in &self.ways {
                    v.push(CacheConfig::new(s, l, w));
                }
            }
        }
        v
    }

    /// Number of (configuration, CPU) pairs a direct-simulation engine
    /// instantiates for this spec.
    pub fn shard_count(&self) -> usize {
        self.sizes_b.len() * self.lines_b.len() * self.ways.len() * self.num_cpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_shape_and_order() {
        let g = SweepSpec::paper_grid(1).configs();
        assert_eq!(g.len(), 25);
        assert!(g.iter().all(|c| c.ways == 1));
        // Size-major, line-minor: first five cells are 32KB at each line.
        assert_eq!(g[0], CacheConfig::new(32 * 1024, 16, 1));
        assert_eq!(g[4], CacheConfig::new(32 * 1024, 256, 1));
        assert_eq!(g[5], CacheConfig::new(64 * 1024, 16, 1));
        assert_eq!(g[24], CacheConfig::new(512 * 1024, 256, 1));
    }

    #[test]
    fn ways_axis_is_innermost() {
        let g = SweepSpec::grid()
            .sizes_kb(&[32, 64])
            .line_b(64)
            .ways_each(&[1, 2])
            .configs();
        assert_eq!(g.len(), 4);
        assert_eq!((g[0].size_bytes, g[0].ways), (32 * 1024, 1));
        assert_eq!((g[1].size_bytes, g[1].ways), (32 * 1024, 2));
        assert_eq!((g[2].size_bytes, g[2].ways), (64 * 1024, 1));
    }

    #[test]
    fn defaults_and_accessors() {
        let spec = SweepSpec::grid()
            .sizes_bytes(&[256])
            .line_b(64)
            .cpus(3)
            .filter(StreamFilter::KernelOnly);
        assert_eq!(spec.num_cpus(), 3);
        assert_eq!(spec.stream(), StreamFilter::KernelOnly);
        assert_eq!(spec.configs(), vec![CacheConfig::new(256, 64, 1)]);
        assert_eq!(spec.shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "no cache sizes")]
    fn empty_axis_rejected() {
        let _ = SweepSpec::grid().line_b(64).configs();
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = SweepSpec::grid().cpus(0);
    }
}
