//! Spatial/temporal locality metrics: word use, word reuse, line lifetimes
//! (paper Figures 9, 10, 11 and the unused-fetch claim).

use crate::config::{CacheConfig, StreamFilter};
use codelayout_vm::{FetchRecord, TraceSink};
use serde::{Deserialize, Serialize};

/// Instruction word size in bytes (Alpha-like fixed width).
const WORD_BYTES: u64 = 4;
/// Maximum words per line we track (256-byte line).
const MAX_WORDS: usize = 64;
/// Word-reuse histogram buckets: 0..=15 uses (saturating), as in Fig. 10.
pub const REUSE_BUCKETS: usize = 16;
/// Lifetime histogram buckets: log2(cache accesses) 0..=40 (Fig. 11 shows
/// 15..30).
pub const LIFETIME_BUCKETS: usize = 41;

/// Aggregated locality statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityStats {
    /// `unique_words[u]` = line replacements that had used exactly `u`
    /// distinct words (index 0 unused; lines are filled on demand so at
    /// least one word is always used). Fig. 9.
    pub unique_words: Vec<u64>,
    /// `word_reuse[k]` = words fetched into the cache that were used `k`
    /// times before replacement (k saturates at 15). Fig. 10.
    pub word_reuse: [u64; REUSE_BUCKETS],
    /// `lifetime_log2[b]` = line replacements whose residency lasted
    /// `2^b..2^(b+1)` cache accesses. Fig. 11. Always `LIFETIME_BUCKETS`
    /// long.
    pub lifetime_log2: Vec<u64>,
    /// Total line replacements recorded.
    pub replacements: u64,
    /// Total words fetched (replacements × words/line).
    pub words_fetched: u64,
    /// Words fetched but never used before replacement.
    pub words_unused: u64,
}

impl LocalityStats {
    fn new(words_per_line: usize) -> Self {
        LocalityStats {
            unique_words: vec![0; words_per_line + 1],
            word_reuse: [0; REUSE_BUCKETS],
            lifetime_log2: vec![0; LIFETIME_BUCKETS],
            replacements: 0,
            words_fetched: 0,
            words_unused: 0,
        }
    }

    /// Fraction of fetched words never used, in [0, 1] (the paper reports
    /// 46% for the baseline and 21% for the optimized binary).
    pub fn unused_fraction(&self) -> f64 {
        if self.words_fetched == 0 {
            0.0
        } else {
            self.words_unused as f64 / self.words_fetched as f64
        }
    }

    /// Average number of unique words used per replaced line.
    pub fn avg_unique_words(&self) -> f64 {
        if self.replacements == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .unique_words
            .iter()
            .enumerate()
            .map(|(u, &c)| u as u64 * c)
            .sum();
        sum as f64 / self.replacements as f64
    }

    /// Mean line lifetime in cache accesses, using bucket midpoints.
    pub fn mean_lifetime_accesses(&self) -> f64 {
        if self.replacements == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .lifetime_log2
            .iter()
            .enumerate()
            .map(|(b, &c)| c as f64 * 1.5 * (1u64 << b) as f64)
            .sum();
        sum / self.replacements as f64
    }
}

/// An instruction cache that additionally tracks, per resident line, which
/// words were used and how often, and how long the line stayed resident.
///
/// This is the instrument behind the paper's Figures 9–11; it is slower
/// than [`crate::ICacheSim`] and meant for single-configuration runs.
#[derive(Debug, Clone)]
pub struct LocalityCache {
    cfg: CacheConfig,
    filter: StreamFilter,
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    words_per_line: usize,
    tags: Vec<u64>,
    /// Per stored line: use count per word.
    word_counts: Vec<[u16; MAX_WORDS]>,
    /// Per stored line: fill time (in cache accesses).
    fill_time: Vec<u64>,
    clock: u64,
    stats: LocalityStats,
    misses: u64,
}

impl LocalityCache {
    /// Creates the collector for one cache configuration and stream filter.
    ///
    /// # Panics
    /// Panics if the line has more than 64 words (256 bytes).
    pub fn new(cfg: CacheConfig, filter: StreamFilter) -> Self {
        let words_per_line = (cfg.line_bytes as u64 / WORD_BYTES) as usize;
        assert!(words_per_line <= MAX_WORDS, "line too large");
        let lines = cfg.lines() as usize;
        LocalityCache {
            cfg,
            filter,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg.sets() - 1,
            ways: cfg.ways as usize,
            words_per_line,
            tags: vec![u64::MAX; lines],
            word_counts: vec![[0; MAX_WORDS]; lines],
            fill_time: vec![0; lines],
            clock: 0,
            stats: LocalityStats::new(words_per_line),
            misses: 0,
        }
    }

    /// The configuration being measured.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Processes one instruction fetch.
    pub fn access(&mut self, addr: u64) {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let word = ((addr & ((self.cfg.line_bytes as u64) - 1)) / WORD_BYTES) as usize;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;

        for i in 0..self.ways {
            if self.tags[base + i] == line {
                self.word_counts[base + i][word] =
                    self.word_counts[base + i][word].saturating_add(1);
                // Move to front (LRU).
                self.tags[base..base + i + 1].rotate_right(1);
                self.word_counts[base..base + i + 1].rotate_right(1);
                self.fill_time[base..base + i + 1].rotate_right(1);
                return;
            }
        }

        // Miss: retire the LRU way's statistics, install the new line.
        self.misses += 1;
        let lru = base + self.ways - 1;
        if self.tags[lru] != u64::MAX {
            self.retire(lru);
        }
        self.tags[lru] = line;
        self.word_counts[lru] = [0; MAX_WORDS];
        self.word_counts[lru][word] = 1;
        self.fill_time[lru] = self.clock;
        self.tags[base..base + self.ways].rotate_right(1);
        self.word_counts[base..base + self.ways].rotate_right(1);
        self.fill_time[base..base + self.ways].rotate_right(1);
    }

    fn retire(&mut self, slot: usize) {
        let counts = &self.word_counts[slot];
        let mut unique = 0usize;
        for &c in counts.iter().take(self.words_per_line) {
            if c > 0 {
                unique += 1;
            }
            let bucket = (c as usize).min(REUSE_BUCKETS - 1);
            self.stats.word_reuse[bucket] += 1;
        }
        self.stats.unique_words[unique] += 1;
        self.stats.words_fetched += self.words_per_line as u64;
        self.stats.words_unused += (self.words_per_line - unique) as u64;
        let life = (self.clock - self.fill_time[slot]).max(1);
        let bucket = (63 - life.leading_zeros()) as usize;
        self.stats.lifetime_log2[bucket.min(LIFETIME_BUCKETS - 1)] += 1;
        self.stats.replacements += 1;
    }

    /// Retires every resident line into the statistics and returns them.
    /// Call once at the end of the simulation.
    pub fn finish(mut self) -> LocalityStats {
        for slot in 0..self.tags.len() {
            if self.tags[slot] != u64::MAX {
                self.retire(slot);
                self.tags[slot] = u64::MAX;
            }
        }
        self.stats
    }
}

impl TraceSink for LocalityCache {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        if self.filter.accepts(rec.kernel) {
            self.access(rec.addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(256, 128, 2) // 1 set, 2 ways, 32 words per line
    }

    #[test]
    fn full_line_use_recorded() {
        let mut c = LocalityCache::new(cfg(), StreamFilter::All);
        // Touch all 32 words of line 0.
        for w in 0..32u64 {
            c.access(w * 4);
        }
        let st = c.finish();
        assert_eq!(st.replacements, 1);
        assert_eq!(st.unique_words[32], 1);
        assert_eq!(st.words_unused, 0);
        assert!((st.unused_fraction() - 0.0).abs() < 1e-12);
        assert!((st.avg_unique_words() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn single_word_use_has_31_unused() {
        let mut c = LocalityCache::new(cfg(), StreamFilter::All);
        c.access(0);
        let st = c.finish();
        assert_eq!(st.unique_words[1], 1);
        assert_eq!(st.words_unused, 31);
        assert_eq!(st.word_reuse[0], 31);
        assert_eq!(st.word_reuse[1], 1);
    }

    #[test]
    fn eviction_retires_stats() {
        let mut c = LocalityCache::new(cfg(), StreamFilter::All);
        c.access(0); // line 0
        c.access(128); // line 1
        c.access(256); // line 2, evicts line 0 (LRU)
        assert_eq!(c.misses(), 3);
        let st = c.finish();
        assert_eq!(st.replacements, 3);
    }

    #[test]
    fn reuse_saturates_at_bucket_15() {
        let mut c = LocalityCache::new(cfg(), StreamFilter::All);
        for _ in 0..100 {
            c.access(0);
        }
        let st = c.finish();
        assert_eq!(st.word_reuse[15], 1);
    }

    #[test]
    fn kernel_filter_skips_kernel_records() {
        let mut c = LocalityCache::new(cfg(), StreamFilter::UserOnly);
        c.fetch(FetchRecord {
            addr: 0,
            cpu: 0,
            pid: 0,
            kernel: true,
        });
        assert_eq!(c.misses(), 0);
        c.fetch(FetchRecord {
            addr: 0,
            cpu: 0,
            pid: 0,
            kernel: false,
        });
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lifetime_buckets_monotone_clock() {
        let mut c = LocalityCache::new(cfg(), StreamFilter::All);
        // Fill line 0, touch it across many accesses, then evict.
        c.access(0);
        for i in 0..200u64 {
            c.access(128 * (1 + (i % 2))); // lines 1,2 thrash the other way
        }
        let st = c.finish();
        assert!(st.replacements >= 3);
        assert!(st.mean_lifetime_accesses() > 0.0);
    }
}
