//! Set-associative LRU cache with owner tracking and interference stats.

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Classifies an access for miss attribution and line ownership. For an
/// instruction cache this is application vs kernel; for a unified L2 the
/// same machinery distinguishes instruction vs data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// Application instruction (or L2: instruction fetch).
    User,
    /// Kernel instruction (or L2: data access).
    Kernel,
}

impl AccessClass {
    #[inline]
    fn idx(self) -> usize {
        match self {
            AccessClass::User => 0,
            AccessClass::Kernel => 1,
        }
    }

    /// Maps a trace record's kernel flag.
    #[inline]
    pub fn from_kernel_flag(kernel: bool) -> Self {
        if kernel {
            AccessClass::Kernel
        } else {
            AccessClass::User
        }
    }
}

/// Running statistics of an [`ICacheSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// Misses by accessing class (`[user, kernel]`).
    pub misses_by_class: [u64; 2],
    /// Displaced-line matrix: `displaced[missing class][victim]` where
    /// victim is `0` = invalid (cold fill), `1` = user-owned line,
    /// `2` = kernel-owned line. This is the paper's Figure 13 data.
    pub displaced: [[u64; 3]; 2],
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses of one class.
    pub fn misses_of(&self, class: AccessClass) -> u64 {
        self.misses_by_class[class.idx()]
    }

    /// Adds another cache's counters into this one. Pure `u64` addition,
    /// so merging is associative and commutative — the serial sweep and
    /// the parallel sweep produce bit-identical aggregates regardless of
    /// merge order.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        for k in 0..2 {
            self.misses_by_class[k] += other.misses_by_class[k];
            for v in 0..3 {
                self.displaced[k][v] += other.displaced[k][v];
            }
        }
    }
}

const INVALID: u64 = u64::MAX;

/// A set-associative LRU cache simulator.
///
/// Lines within a set are kept most-recently-used first, so a hit is a
/// short scan plus a rotate and direct-mapped caches reduce to a single
/// compare.
///
/// ```
/// use codelayout_memsim::{CacheConfig, ICacheSim, AccessClass};
///
/// let mut c = ICacheSim::new(CacheConfig::new(1024, 64, 2));
/// assert!(!c.access(0x0, AccessClass::User));  // cold miss
/// assert!(c.access(0x4, AccessClass::User));   // same line: hit
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ICacheSim {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    /// `sets × ways` line ids, MRU-first within each set.
    tags: Vec<u64>,
    /// Owner class of each stored line: 0 invalid, 1 user, 2 kernel.
    owner: Vec<u8>,
    stats: CacheStats,
}

impl ICacheSim {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        ICacheSim {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            ways,
            tags: vec![INVALID; (sets as usize) * ways],
            owner: vec![0; (sets as usize) * ways],
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses a byte address; returns `true` on hit. On a miss the LRU
    /// line of the set is replaced and the interference matrix updated.
    #[inline]
    pub fn access(&mut self, addr: u64, class: AccessClass) -> bool {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let slice = &mut self.tags[base..base + self.ways];

        // MRU-first scan.
        if slice[0] == line {
            return true;
        }
        for i in 1..self.ways {
            if slice[i] == line {
                // Move to front.
                slice[..=i].rotate_right(1);
                self.owner[base..base + i + 1].rotate_right(1);
                return true;
            }
        }

        // Miss: evict LRU (last slot).
        self.stats.misses += 1;
        self.stats.misses_by_class[class.idx()] += 1;
        let victim_owner = self.owner[base + self.ways - 1];
        self.stats.displaced[class.idx()][victim_owner as usize] += 1;
        slice[self.ways - 1] = line;
        self.owner[base + self.ways - 1] = 1 + class.idx() as u8;
        slice.rotate_right(1);
        self.owner[base..base + self.ways].rotate_right(1);
        false
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: AccessClass = AccessClass::User;
    const K: AccessClass = AccessClass::Kernel;

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets of 64B lines, direct mapped: addresses 0 and 128 conflict.
        let mut c = ICacheSim::new(CacheConfig::new(128, 64, 1));
        assert!(!c.access(0, U));
        assert!(!c.access(128, U)); // evicts line 0
        assert!(!c.access(0, U)); // conflict miss
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().accesses, 3);
        // 64 and 0 share a line.
        assert!(c.access(63, U));
    }

    #[test]
    fn lru_within_set() {
        // One set, 2 ways, 64B lines.
        let mut c = ICacheSim::new(CacheConfig::new(128, 64, 2));
        assert!(!c.access(0, U)); // A
        assert!(!c.access(128, U)); // B; set = A,B (MRU=B)
        assert!(c.access(0, U)); // A hit; MRU=A
        assert!(!c.access(256, U)); // C evicts B
        assert!(c.access(0, U)); // A still resident
        assert!(!c.access(128, U)); // B was evicted
    }

    #[test]
    fn interference_matrix_records_victim_owner() {
        let mut c = ICacheSim::new(CacheConfig::new(64, 64, 1));
        c.access(0, U); // cold fill: victim invalid
        c.access(64, K); // kernel displaces user line
        c.access(0, U); // user displaces kernel line
        let s = c.stats();
        assert_eq!(s.displaced[0][0], 1); // user miss on invalid
        assert_eq!(s.displaced[1][1], 1); // kernel miss displacing user
        assert_eq!(s.displaced[0][2], 1); // user miss displacing kernel
        assert_eq!(s.misses_of(U), 2);
        assert_eq!(s.misses_of(K), 1);
    }

    #[test]
    fn lru_inclusion_more_ways_never_more_misses() {
        // With the same number of sets, adding ways can only remove misses
        // (LRU stack property per set). Check on a pseudo-random stream.
        let mut x: u64 = 0x1234_5678;
        let mut addrs = Vec::new();
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            addrs.push((x >> 16) & 0xFFFF); // 64KB range
        }
        let sets_fixed = |ways: u32| CacheConfig::new(64 * 8 * ways as u64, 8, ways);
        let mut prev = u64::MAX;
        for ways in [1u32, 2, 4, 8] {
            let mut c = ICacheSim::new(sets_fixed(ways));
            for &a in &addrs {
                c.access(a, U);
            }
            assert!(
                c.stats().misses <= prev,
                "ways={ways}: {} > {prev}",
                c.stats().misses
            );
            prev = c.stats().misses;
        }
    }

    #[test]
    fn fully_assoc_matches_reference_lru() {
        // Cross-check against a naive Vec-based LRU model.
        let cfg = CacheConfig::new(512, 64, 8); // 1 set, 8 ways
        let mut c = ICacheSim::new(cfg);
        let mut reference: Vec<u64> = Vec::new();
        let mut ref_misses = 0u64;
        let mut x: u64 = 99;
        for _ in 0..5_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let addr = (x >> 8) & 0x3FF;
            let line = addr >> 6;
            let hit = c.access(addr, U);
            let ref_hit = if let Some(pos) = reference.iter().position(|&l| l == line) {
                reference.remove(pos);
                reference.insert(0, line);
                true
            } else {
                ref_misses += 1;
                reference.insert(0, line);
                reference.truncate(8);
                false
            };
            assert_eq!(hit, ref_hit);
        }
        assert_eq!(c.stats().misses, ref_misses);
    }

    #[test]
    fn valid_lines_counts_fills() {
        let mut c = ICacheSim::new(CacheConfig::new(256, 64, 2));
        assert_eq!(c.valid_lines(), 0);
        c.access(0, U);
        c.access(64, U);
        assert_eq!(c.valid_lines(), 2);
    }

    #[test]
    fn miss_rate_and_class_mapping() {
        let mut c = ICacheSim::new(CacheConfig::new(128, 64, 2));
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0, AccessClass::from_kernel_flag(true));
        assert_eq!(c.stats().misses_of(K), 1);
        assert!((c.stats().miss_rate() - 1.0).abs() < 1e-12);
    }
}
