//! Cache geometry and stream filtering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of one cache: total size, line size and associativity.
///
/// The number of sets (`size / (line × ways)`) must be a power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a config, validating the geometry.
    ///
    /// # Panics
    /// Panics if the line size is not a power of two, the size is not a
    /// multiple of `line × ways`, or the resulting set count is not a power
    /// of two.
    pub fn new(size_bytes: u64, line_bytes: u32, ways: u32) -> Self {
        let c = CacheConfig {
            size_bytes,
            line_bytes,
            ways,
        };
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1, "associativity must be at least 1");
        assert_eq!(
            size_bytes % (line_bytes as u64 * ways as u64),
            0,
            "size must be a multiple of line*ways"
        );
        assert!(c.sets().is_power_of_two(), "set count must be 2^k");
        c
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.ways as u64)
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.sets() * self.ways as u64
    }

    /// Human-readable label such as `64KB/128B/2-way`.
    pub fn label(&self) -> String {
        format!(
            "{}KB/{}B/{}-way",
            self.size_bytes / 1024,
            self.line_bytes,
            self.ways
        )
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Which part of the combined instruction stream a collector observes.
/// The paper studies the application stream in isolation (§4) and the
/// combined stream (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamFilter {
    /// Application (user-mode) instructions only.
    UserOnly,
    /// Kernel instructions only.
    KernelOnly,
    /// The combined stream.
    All,
}

impl StreamFilter {
    /// True when a record with the given kernel flag passes the filter.
    #[inline]
    pub fn accepts(self, kernel: bool) -> bool {
        match self {
            StreamFilter::UserOnly => !kernel,
            StreamFilter::KernelOnly => kernel,
            StreamFilter::All => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::new(64 * 1024, 128, 2);
        assert_eq!(c.sets(), 256);
        assert_eq!(c.lines(), 512);
        assert_eq!(c.label(), "64KB/128B/2-way");
        // 1.5MB 6-way with 64B lines has power-of-two sets (4096).
        let l2 = CacheConfig::new(1536 * 1024, 64, 6);
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    #[should_panic(expected = "set count")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(96 * 1024, 128, 2);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn non_pow2_line_rejected() {
        let _ = CacheConfig::new(64 * 1024, 96, 2);
    }

    #[test]
    fn filter_semantics() {
        assert!(StreamFilter::UserOnly.accepts(false));
        assert!(!StreamFilter::UserOnly.accepts(true));
        assert!(StreamFilter::KernelOnly.accepts(true));
        assert!(!StreamFilter::KernelOnly.accepts(false));
        assert!(StreamFilter::All.accepts(true) && StreamFilter::All.accepts(false));
    }
}
