//! Sequential run-length profiling (paper Figure 8).
//!
//! Counts runs of consecutively-addressed instruction fetches per process:
//! a run ends at any control break (taken branch, call, return, or transfer
//! to another segment). Context switches do not break a process's run
//! bookkeeping because runs are tracked per process id.

use crate::config::StreamFilter;
use codelayout_vm::{FetchRecord, TraceSink};
use serde::{Deserialize, Serialize};

/// Instruction size in bytes.
const INSTR_BYTES: u64 = 4;
/// Histogram covers run lengths 1..=MAX_LEN (last bucket collects longer
/// runs); the paper's Figure 8(b) plots 1..=33.
pub const MAX_LEN: usize = 64;

/// Aggregated run-length statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceStats {
    /// `histogram[len]` = number of runs of exactly `len` sequential
    /// instructions (index 0 unused; `MAX_LEN` collects all longer runs).
    pub histogram: Vec<u64>,
    /// Total runs observed.
    pub runs: u64,
    /// Total instructions in those runs.
    pub instructions: u64,
}

impl SequenceStats {
    /// Mean run length in instructions (paper: 7.3 baseline → 10+
    /// optimized).
    pub fn average_length(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.instructions as f64 / self.runs as f64
        }
    }

    /// Fraction of runs of exactly `len` instructions.
    pub fn fraction_of_length(&self, len: usize) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.histogram[len.min(MAX_LEN)] as f64 / self.runs as f64
        }
    }
}

/// Streams fetch records and produces a [`SequenceStats`].
#[derive(Debug, Clone)]
pub struct SequenceProfiler {
    filter: StreamFilter,
    /// Per (pid) last fetch address and current run length.
    last_addr: Vec<u64>,
    run_len: Vec<u64>,
    histogram: Vec<u64>,
    runs: u64,
    instructions: u64,
}

impl SequenceProfiler {
    /// Creates a profiler for up to 256 processes.
    pub fn new(filter: StreamFilter) -> Self {
        SequenceProfiler {
            filter,
            last_addr: vec![u64::MAX; 256],
            run_len: vec![0; 256],
            histogram: vec![0; MAX_LEN + 1],
            runs: 0,
            instructions: 0,
        }
    }

    fn close_run(&mut self, pid: usize) {
        let len = self.run_len[pid];
        if len > 0 {
            self.histogram[(len as usize).min(MAX_LEN)] += 1;
            self.runs += 1;
            self.instructions += len;
            self.run_len[pid] = 0;
        }
    }

    /// Closes all open runs and returns the statistics.
    pub fn finish(mut self) -> SequenceStats {
        for pid in 0..256 {
            self.close_run(pid);
        }
        SequenceStats {
            histogram: self.histogram,
            runs: self.runs,
            instructions: self.instructions,
        }
    }
}

impl TraceSink for SequenceProfiler {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        if !self.filter.accepts(rec.kernel) {
            return;
        }
        let pid = rec.pid as usize;
        if self.run_len[pid] > 0 && rec.addr == self.last_addr[pid] + INSTR_BYTES {
            self.run_len[pid] += 1;
        } else {
            self.close_run(pid);
            self.run_len[pid] = 1;
        }
        self.last_addr[pid] = rec.addr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64, pid: u8, kernel: bool) -> FetchRecord {
        FetchRecord {
            addr,
            cpu: 0,
            pid,
            kernel,
        }
    }

    #[test]
    fn straight_line_is_one_run() {
        let mut s = SequenceProfiler::new(StreamFilter::All);
        for i in 0..10u64 {
            s.fetch(rec(i * 4, 0, false));
        }
        let st = s.finish();
        assert_eq!(st.runs, 1);
        assert_eq!(st.histogram[10], 1);
        assert!((st.average_length() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn branch_breaks_run() {
        let mut s = SequenceProfiler::new(StreamFilter::All);
        s.fetch(rec(0, 0, false));
        s.fetch(rec(4, 0, false));
        s.fetch(rec(100, 0, false)); // taken branch
        s.fetch(rec(104, 0, false));
        let st = s.finish();
        assert_eq!(st.runs, 2);
        assert_eq!(st.histogram[2], 2);
        assert!((st.fraction_of_length(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runs_are_per_process() {
        let mut s = SequenceProfiler::new(StreamFilter::All);
        // Interleaved but each process sequential.
        s.fetch(rec(0, 0, false));
        s.fetch(rec(400, 1, false));
        s.fetch(rec(4, 0, false));
        s.fetch(rec(404, 1, false));
        let st = s.finish();
        assert_eq!(st.runs, 2);
        assert_eq!(st.histogram[2], 2);
    }

    #[test]
    fn long_runs_collect_in_last_bucket() {
        let mut s = SequenceProfiler::new(StreamFilter::All);
        for i in 0..200u64 {
            s.fetch(rec(i * 4, 0, false));
        }
        let st = s.finish();
        assert_eq!(st.histogram[MAX_LEN], 1);
        assert_eq!(st.instructions, 200);
    }

    #[test]
    fn filter_applies() {
        let mut s = SequenceProfiler::new(StreamFilter::UserOnly);
        s.fetch(rec(0, 0, true));
        let st = s.finish();
        assert_eq!(st.runs, 0);
        assert_eq!(st.average_length(), 0.0);
    }
}
