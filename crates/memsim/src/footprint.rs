//! Footprint measurement: unique cache lines / instructions touched.
//!
//! Backs the paper's packing claim (§4.1): the optimized binary touches a
//! 37% smaller footprint in 128-byte cache lines (315 KB vs 500 KB).

use crate::config::StreamFilter;
use codelayout_vm::{FetchRecord, TraceSink};
use std::collections::HashSet;

/// Counts unique cache lines and unique instruction words touched by the
/// (filtered) instruction stream.
#[derive(Debug, Clone)]
pub struct FootprintCounter {
    filter: StreamFilter,
    line_shift: u32,
    lines: HashSet<u64>,
    words: HashSet<u64>,
}

impl FootprintCounter {
    /// Creates a counter for a given line size (bytes, power of two).
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: u32, filter: StreamFilter) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        FootprintCounter {
            filter,
            line_shift: line_bytes.trailing_zeros(),
            lines: HashSet::new(),
            words: HashSet::new(),
        }
    }

    /// Unique cache lines touched.
    pub fn unique_lines(&self) -> usize {
        self.lines.len()
    }

    /// Footprint in bytes at line granularity.
    pub fn line_footprint_bytes(&self) -> u64 {
        (self.lines.len() as u64) << self.line_shift
    }

    /// Unique instructions executed (static live code).
    pub fn unique_instructions(&self) -> usize {
        self.words.len()
    }

    /// Footprint in bytes at instruction granularity.
    pub fn instr_footprint_bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }
}

impl TraceSink for FootprintCounter {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        if self.filter.accepts(rec.kernel) {
            self.lines.insert(rec.addr >> self.line_shift);
            self.words.insert(rec.addr >> 2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64, kernel: bool) -> FetchRecord {
        FetchRecord {
            addr,
            cpu: 0,
            pid: 0,
            kernel,
        }
    }

    #[test]
    fn counts_unique_lines_and_words() {
        let mut f = FootprintCounter::new(128, StreamFilter::All);
        f.fetch(rec(0, false));
        f.fetch(rec(4, false));
        f.fetch(rec(4, false)); // repeat
        f.fetch(rec(128, false));
        assert_eq!(f.unique_lines(), 2);
        assert_eq!(f.unique_instructions(), 3);
        assert_eq!(f.line_footprint_bytes(), 256);
        assert_eq!(f.instr_footprint_bytes(), 12);
    }

    #[test]
    fn filter_excludes_kernel() {
        let mut f = FootprintCounter::new(64, StreamFilter::UserOnly);
        f.fetch(rec(0, true));
        assert_eq!(f.unique_lines(), 0);
        f.fetch(rec(0, false));
        assert_eq!(f.unique_lines(), 1);
    }
}
