//! Memory-system simulators and locality metric collectors.
//!
//! The paper reduced full-system SimOS runs to instruction traces fed to
//! simple cache simulators; this crate is that second half of the
//! methodology. Everything here consumes the [`codelayout_vm::TraceSink`]
//! event stream:
//!
//! * [`ICacheSim`] — set-associative LRU cache with per-line owner tracking
//!   (application vs kernel) and a displaced-line interference matrix
//!   (paper Figures 4–7, 12, 13);
//! * [`SweepSpec`] — the one way to name a sweep grid (sizes × line sizes ×
//!   ways × CPUs × stream filter), consumed by every sweep engine;
//! * [`SweepSink`] — fans one trace out to a grid of cache configurations ×
//!   CPUs in a single pass (Figures 4, 5, 6);
//! * [`StackDistanceSim`] — single-pass Mattson stack-distance profiler:
//!   exact per-configuration statistics for every size × associativity at
//!   one line size, bit-identical to [`ICacheSim`];
//! * [`ParallelSweep`] — replays a recorded [`codelayout_vm::FrozenTrace`]
//!   through [`SweepSpec`] jobs on scoped worker threads, with a choice of
//!   [`SweepEngine`] (stack-distance by default, direct as the oracle),
//!   bit-identical to the serial sweep (the record-once/replay-in-parallel
//!   path the harness uses);
//! * [`LocalityCache`] — per-line word-use bitmaps, word reuse counters and
//!   line lifetimes (Figures 9, 10, 11, and the unused-fetch claim);
//! * [`SequenceProfiler`] — sequential run-length histogram (Figure 8);
//! * [`Itlb`] — fully-associative LRU instruction TLB (Figure 14);
//! * [`MemoryHierarchy`] — per-CPU L1I/L1D + iTLB in front of a shared
//!   unified L2 (Figure 14 and the timing model's inputs);
//! * [`FootprintCounter`] — unique lines/instructions touched (the 500 KB →
//!   315 KB packing claim).
//!
//! All simulators are deterministic and allocation-stable; the sweep sink is
//! the hot path and is written to run tens of millions of accesses per
//! second.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod footprint;
mod hierarchy;
mod icache;
mod itlb;
mod locality;
mod parallel;
mod sequence;
mod spec;
mod stack;
mod sweep;

pub use codelayout_obs::{run_env, RunEnv, SweepEngine};
pub use config::{CacheConfig, StreamFilter};
pub use footprint::FootprintCounter;
pub use hierarchy::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use icache::{AccessClass, CacheStats, ICacheSim};
pub use itlb::Itlb;
pub use locality::{LocalityCache, LocalityStats};
pub use parallel::ParallelSweep;
pub use sequence::{SequenceProfiler, SequenceStats};
pub use spec::{SweepSpec, LINES_B, SIZES_KB};
pub use stack::StackDistanceSim;
pub use sweep::{SweepCell, SweepSink};
