//! Fully-associative LRU instruction TLB (paper Figure 14; the base SimOS
//! configuration is 64 entries with 8 KB pages).

use serde::{Deserialize, Serialize};

/// A fully-associative, LRU-replaced TLB over instruction pages.
///
/// A consecutive-same-page fast path keeps the cost negligible on
/// straight-line code.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Itlb {
    page_shift: u32,
    capacity: usize,
    /// MRU-first page numbers.
    entries: Vec<u64>,
    last_page: u64,
    accesses: u64,
    misses: u64,
}

impl Itlb {
    /// Creates a TLB with `entries` slots and `page_bytes` pages.
    ///
    /// # Panics
    /// Panics if `page_bytes` is not a power of two or `entries` is zero.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two(), "page size must be 2^k");
        assert!(entries > 0, "TLB needs at least one entry");
        Itlb {
            page_shift: page_bytes.trailing_zeros(),
            capacity: entries,
            entries: Vec::with_capacity(entries),
            last_page: u64::MAX,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translates one instruction address; returns `true` on TLB hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr >> self.page_shift;
        if page == self.last_page {
            return true;
        }
        self.last_page = page;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            if pos != 0 {
                self.entries[..=pos].rotate_right(1);
            }
            true
        } else {
            self.misses += 1;
            if self.entries.len() == self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, page);
            false
        }
    }

    /// Total translations requested.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Itlb::new(4, 8192);
        assert!(!t.access(0));
        assert!(t.access(4));
        assert!(t.access(8191));
        assert!(!t.access(8192));
        assert_eq!(t.misses(), 2);
        assert_eq!(t.accesses(), 4);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Itlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 hit (MRU)
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0)); // page 0 retained
        assert!(!t.access(4096)); // page 1 gone
        assert_eq!(t.misses(), 4);
    }

    #[test]
    fn fast_path_does_not_touch_lru_state() {
        let mut t = Itlb::new(2, 4096);
        t.access(0);
        t.access(4096);
        // Many same-page accesses must not disturb counts.
        for _ in 0..100 {
            t.access(4100);
        }
        assert_eq!(t.misses(), 2);
        assert_eq!(t.accesses(), 102);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn bad_page_size_panics() {
        let _ = Itlb::new(4, 1000);
    }
}
