//! Full memory hierarchy: per-CPU L1I/L1D + iTLB in front of a shared
//! unified L2 (the paper's base SimOS-Alpha configuration, §3.3 and
//! Figure 14).

use crate::config::CacheConfig;
use crate::icache::{AccessClass, ICacheSim};
use crate::itlb::Itlb;
use codelayout_vm::{DataRecord, FetchRecord, TraceSink};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of CPUs (each gets its own L1I, L1D and iTLB).
    pub num_cpus: usize,
    /// Per-CPU instruction cache.
    pub l1i: CacheConfig,
    /// Per-CPU data cache.
    pub l1d: CacheConfig,
    /// Shared unified second-level cache.
    pub l2: CacheConfig,
    /// iTLB entries (fully associative).
    pub itlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl HierarchyConfig {
    /// The paper's base SimOS-Alpha system: 64 KB 2-way L1s with 64-byte
    /// lines, 1.5 MB 6-way unified L2, 64-entry iTLB, 8 KB pages.
    pub fn simos_base(num_cpus: usize) -> Self {
        HierarchyConfig {
            num_cpus,
            l1i: CacheConfig::new(64 * 1024, 64, 2),
            l1d: CacheConfig::new(64 * 1024, 64, 2),
            l2: CacheConfig::new(1536 * 1024, 64, 6),
            itlb_entries: 64,
            page_bytes: 8192,
        }
    }
}

/// Counters produced by a [`MemoryHierarchy`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Instruction fetches observed.
    pub fetches: u64,
    /// Data accesses observed.
    pub data_accesses: u64,
    /// L1 instruction cache misses (summed over CPUs).
    pub l1i_misses: u64,
    /// L1 data cache misses (summed over CPUs).
    pub l1d_misses: u64,
    /// Instruction TLB misses (summed over CPUs).
    pub itlb_misses: u64,
    /// L2 misses on instruction refills (paper Fig. 14 "L2 instr. misses").
    pub l2_instr_misses: u64,
    /// L2 misses on data refills (paper Fig. 14 "L2 data misses").
    pub l2_data_misses: u64,
}

impl HierarchyStats {
    /// Total L2 misses.
    pub fn l2_misses(&self) -> u64 {
        self.l2_instr_misses + self.l2_data_misses
    }
}

/// The hierarchy simulator. Implements [`TraceSink`] so it can be attached
/// directly to a [`codelayout_vm::Machine`] run.
///
/// The L1 caches and iTLB are indexed with virtual addresses; the unified
/// L2 is indexed with *simulated physical* addresses obtained by hashing
/// the virtual page number (a deterministic stand-in for the OS's page
/// allocation). Without this, large same-alignment virtual regions (text
/// vs shared data) alias pathologically in a direct-mapped L2 — an
/// artifact no physically-indexed machine exhibits.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: Vec<ICacheSim>,
    l1d: Vec<ICacheSim>,
    itlb: Vec<Itlb>,
    l2: ICacheSim,
    page_shift: u32,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1i: (0..cfg.num_cpus).map(|_| ICacheSim::new(cfg.l1i)).collect(),
            l1d: (0..cfg.num_cpus).map(|_| ICacheSim::new(cfg.l1d)).collect(),
            itlb: (0..cfg.num_cpus)
                .map(|_| Itlb::new(cfg.itlb_entries, cfg.page_bytes))
                .collect(),
            l2: ICacheSim::new(cfg.l2),
            page_shift: cfg.page_bytes.trailing_zeros(),
            stats: HierarchyStats::default(),
            cfg,
        }
    }

    /// Virtual-to-simulated-physical translation for L2 indexing: the page
    /// number is mixed with SplitMix64 (deterministic, collision-scattering
    /// like real page allocation); the page offset is preserved.
    #[inline]
    fn phys(&self, addr: u64) -> u64 {
        let page = addr >> self.page_shift;
        let off = addr & ((1 << self.page_shift) - 1);
        let mut z = page.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z << self.page_shift) | off
    }

    /// The configuration simulated.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }
}

impl TraceSink for MemoryHierarchy {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        self.stats.fetches += 1;
        let cpu = (rec.cpu as usize) % self.cfg.num_cpus;
        if !self.itlb[cpu].access(rec.addr) {
            self.stats.itlb_misses += 1;
        }
        let class = AccessClass::from_kernel_flag(rec.kernel);
        if !self.l1i[cpu].access(rec.addr, class) {
            self.stats.l1i_misses += 1;
            // Unified L2: instruction refills use the `User` class so the
            // displaced matrix reads as instruction-vs-data interference.
            if !self.l2.access(self.phys(rec.addr), AccessClass::User) {
                self.stats.l2_instr_misses += 1;
            }
        }
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        self.stats.data_accesses += 1;
        let cpu = (rec.cpu as usize) % self.cfg.num_cpus;
        let class = AccessClass::from_kernel_flag(rec.kernel);
        if !self.l1d[cpu].access(rec.addr, class) {
            self.stats.l1d_misses += 1;
            if !self.l2.access(self.phys(rec.addr), AccessClass::Kernel) {
                self.stats.l2_data_misses += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HierarchyConfig {
        HierarchyConfig {
            num_cpus: 1,
            l1i: CacheConfig::new(128, 64, 1),
            l1d: CacheConfig::new(128, 64, 1),
            l2: CacheConfig::new(512, 64, 2),
            itlb_entries: 2,
            page_bytes: 4096,
        }
    }

    fn f(addr: u64) -> FetchRecord {
        FetchRecord {
            addr,
            cpu: 0,
            pid: 0,
            kernel: false,
        }
    }

    fn d(addr: u64) -> DataRecord {
        DataRecord {
            addr,
            cpu: 0,
            pid: 0,
            kernel: false,
            write: false,
        }
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = MemoryHierarchy::new(small());
        h.fetch(f(0)); // L1 miss, L2 miss
        h.fetch(f(0)); // L1 hit: L2 untouched
        let s = *h.stats();
        assert_eq!(s.fetches, 2);
        assert_eq!(s.l1i_misses, 1);
        assert_eq!(s.l2_instr_misses, 1);
        assert_eq!(s.l2_misses(), 1);
    }

    #[test]
    fn l2_absorbs_l1_conflicts() {
        let mut h = MemoryHierarchy::new(small());
        // 0 and 128 conflict in the 2-set L1 but coexist in the 2-way L2.
        h.fetch(f(0));
        h.fetch(f(128));
        h.fetch(f(0));
        h.fetch(f(128));
        let s = *h.stats();
        assert_eq!(s.l1i_misses, 4);
        assert_eq!(s.l2_instr_misses, 2, "L2 hits after first touch");
    }

    #[test]
    fn data_path_counts_separately() {
        let mut h = MemoryHierarchy::new(small());
        h.data(d(0));
        h.data(d(0));
        h.fetch(f(4096));
        let s = *h.stats();
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.l1d_misses, 1);
        assert_eq!(s.l2_data_misses, 1);
        assert_eq!(s.l2_instr_misses, 1);
        assert_eq!(s.itlb_misses, 1);
    }

    #[test]
    fn simos_base_config_is_the_papers() {
        let c = HierarchyConfig::simos_base(4);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l1i.ways, 2);
        assert_eq!(c.l2.size_bytes, 1536 * 1024);
        assert_eq!(c.l2.ways, 6);
        assert_eq!(c.itlb_entries, 64);
        assert_eq!(c.num_cpus, 4);
    }
}
