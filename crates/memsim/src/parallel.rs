//! Parallel replay of a frozen trace across sweep grids.
//!
//! A [`SweepSink`] feeds every (configuration, CPU) simulator from a
//! live machine run in one pass. That is optimal when the workload
//! executes once, but the experiment harness sweeps *several* grids per
//! layout (direct-mapped user grid, 4-way user/kernel/combined grids),
//! and the simulators dominate wall-clock time. [`ParallelSweep`] takes
//! the other half of the record-once/replay-many design: given a
//! [`FrozenTrace`], it shards every (job, configuration, CPU) simulator
//! across scoped worker threads. Each worker owns its [`ICacheSim`]s
//! outright and replays the shared trace with no locks or atomics on
//! the hot path; per-CPU statistics are merged into per-configuration
//! cells only at join time.
//!
//! Results are **bit-identical** to the serial [`SweepSink`] for any
//! thread count: a given (configuration, CPU) simulator consumes the
//! identical filtered subsequence of the trace wherever it runs, and
//! [`CacheStats::merge`] is commutative `u64` addition.
//!
//! [`SweepSink`]: crate::SweepSink

use crate::config::{CacheConfig, StreamFilter};
use crate::icache::{AccessClass, CacheStats, ICacheSim};
use crate::sweep::SweepCell;
use codelayout_vm::{FetchRecord, FrozenTrace, TraceSink};

/// One sweep to run over a trace: a grid of cache configurations,
/// simulated per CPU, over one filtered stream.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Cache configurations to simulate.
    pub configs: Vec<CacheConfig>,
    /// Number of simulated CPUs (each gets a private cache per config).
    pub num_cpus: usize,
    /// Which fetches this sweep observes.
    pub filter: StreamFilter,
}

impl SweepJob {
    /// Creates a job.
    ///
    /// # Panics
    /// Panics if `num_cpus` is zero.
    pub fn new(configs: Vec<CacheConfig>, num_cpus: usize, filter: StreamFilter) -> Self {
        assert!(num_cpus > 0, "need at least one CPU");
        SweepJob {
            configs,
            num_cpus,
            filter,
        }
    }

    fn shard_count(&self) -> usize {
        self.configs.len() * self.num_cpus
    }
}

/// One (job, configuration, CPU) simulator, owned by a single worker.
struct Shard {
    job: usize,
    config_idx: usize,
    cpu: usize,
    sim: ICacheSim,
}

/// A worker's slice of the grid; a [`TraceSink`] over the replayed
/// stream. The per-job filter and CPU decimation are re-applied here,
/// exactly as [`crate::SweepSink::fetch`] applies them live.
struct ShardWorker<'a> {
    jobs: &'a [SweepJob],
    shards: Vec<Shard>,
}

impl TraceSink for ShardWorker<'_> {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        let class = AccessClass::from_kernel_flag(rec.kernel);
        for shard in &mut self.shards {
            let job = &self.jobs[shard.job];
            if !job.filter.accepts(rec.kernel) {
                continue;
            }
            if (rec.cpu as usize) % job.num_cpus != shard.cpu {
                continue;
            }
            shard.sim.access(rec.addr, class);
        }
    }
}

/// Replays a [`FrozenTrace`] through one or more [`SweepJob`]s on a
/// pool of scoped threads.
///
/// ```
/// use codelayout_memsim::{ParallelSweep, StreamFilter, SweepJob, SweepSink};
/// use codelayout_vm::{FetchRecord, TraceBuffer, TraceSink};
///
/// let mut buf = TraceBuffer::new();
/// for i in 0..1000u64 {
///     buf.fetch(FetchRecord { addr: i % 96 * 64, cpu: (i % 2) as u8, pid: 0, kernel: false });
/// }
/// let trace = buf.freeze();
///
/// let grid = SweepSink::fig4_grid(1);
/// let job = SweepJob::new(grid.clone(), 2, StreamFilter::All);
/// let parallel = ParallelSweep::new(4).run(&trace, &[job]);
///
/// // Bit-identical to the serial sweep.
/// let mut serial = SweepSink::new(grid, 2, StreamFilter::All);
/// trace.replay(&mut serial);
/// assert_eq!(parallel[0], serial.results());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSweep {
    threads: usize,
}

/// Environment variable overriding the worker-thread count used by
/// [`ParallelSweep::from_env`].
pub const THREADS_ENV: &str = "CODELAYOUT_THREADS";

impl ParallelSweep {
    /// A sweep runner using up to `threads` workers (clamped to ≥ 1; a
    /// run never spawns more workers than it has shards).
    pub fn new(threads: usize) -> Self {
        ParallelSweep {
            threads: threads.max(1),
        }
    }

    /// Thread count from the `CODELAYOUT_THREADS` environment variable,
    /// falling back to the host's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ParallelSweep::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Replays `trace` through every job, returning one result vector
    /// per job (same order; cells in each job's config order, summed
    /// over CPUs — the exact shape [`crate::SweepSink::results`]
    /// returns).
    pub fn run(&self, trace: &FrozenTrace, jobs: &[SweepJob]) -> Vec<Vec<SweepCell>> {
        let _sweep_span = codelayout_obs::span("sweep");
        // Round-robin the shards over workers so each worker carries a
        // similar mix of small and large configurations.
        let total: usize = jobs.iter().map(SweepJob::shard_count).sum();
        let num_workers = self.threads.min(total.max(1));
        let mut workers: Vec<ShardWorker> = (0..num_workers)
            .map(|_| ShardWorker {
                jobs,
                shards: Vec::new(),
            })
            .collect();
        let mut next = 0usize;
        for (job, j) in jobs.iter().enumerate() {
            for (config_idx, &config) in j.configs.iter().enumerate() {
                for cpu in 0..j.num_cpus {
                    workers[next % num_workers].shards.push(Shard {
                        job,
                        config_idx,
                        cpu,
                        sim: ICacheSim::new(config),
                    });
                    next += 1;
                }
            }
        }

        let m = codelayout_obs::metrics();
        m.add("sweep.runs", 1);
        m.add("sweep.jobs", jobs.len() as u64);
        m.add("sweep.shards", total as u64);
        m.gauge_set("sweep.workers", num_workers as f64);

        // Workers time themselves into a private lock-free shard
        // (queue wait = spawn-to-start latency, plus replay duration)
        // which is merged into the global registry at join time; the
        // per-event replay path stays untouched.
        let enqueue_ns = codelayout_obs::now_ns();
        let finished: Vec<Shard> = std::thread::scope(|s| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|mut w| {
                    let trace = trace.clone();
                    s.spawn(move || {
                        let _worker_span = codelayout_obs::span("sweep_worker");
                        let start_ns = codelayout_obs::now_ns();
                        trace.replay(&mut w);
                        let mut shard = codelayout_obs::MetricsShard::new();
                        shard.observe(
                            "sweep.queue_wait_us",
                            start_ns.saturating_sub(enqueue_ns) / 1_000,
                        );
                        shard.observe(
                            "sweep.worker_us",
                            codelayout_obs::now_ns().saturating_sub(start_ns) / 1_000,
                        );
                        shard.add("sweep.events_replayed", trace.len() as u64);
                        (w.shards, shard)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    let (shards, metrics_shard) = h.join().expect("sweep worker panicked");
                    m.merge_shard(&metrics_shard);
                    shards
                })
                .collect()
        });

        let mut results: Vec<Vec<SweepCell>> = jobs
            .iter()
            .map(|j| {
                j.configs
                    .iter()
                    .map(|&config| SweepCell {
                        config,
                        stats: CacheStats::default(),
                    })
                    .collect()
            })
            .collect();
        for shard in finished {
            results[shard.job][shard.config_idx]
                .stats
                .merge(shard.sim.stats());
        }
        results
    }

    /// Convenience for a single job: replays and returns its cells.
    pub fn run_one(
        &self,
        trace: &FrozenTrace,
        configs: Vec<CacheConfig>,
        num_cpus: usize,
        filter: StreamFilter,
    ) -> Vec<SweepCell> {
        self.run(trace, &[SweepJob::new(configs, num_cpus, filter)])
            .pop()
            .expect("one job in, one result out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepSink;
    use codelayout_vm::TraceBuffer;

    /// A small mixed user/kernel multi-CPU trace.
    fn test_trace() -> FrozenTrace {
        let mut buf = TraceBuffer::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let kernel = x.is_multiple_of(5);
            let base = if kernel { 0x8000_0000 } else { 0x40_0000 };
            buf.fetch(FetchRecord {
                addr: (base + x % (64 * 1024)) & !3,
                cpu: (i % 3) as u8,
                pid: (i % 7) as u8,
                kernel,
            });
        }
        buf.freeze()
    }

    fn serial(trace: &FrozenTrace, job: &SweepJob) -> Vec<SweepCell> {
        let mut sink = SweepSink::new(job.configs.clone(), job.num_cpus, job.filter);
        trace.replay(&mut sink);
        sink.results()
    }

    #[test]
    fn matches_serial_for_any_thread_count() {
        let trace = test_trace();
        let job = SweepJob::new(SweepSink::fig4_grid(2), 3, StreamFilter::All);
        let expected = serial(&trace, &job);
        for threads in [1, 2, 5, 64] {
            let got = ParallelSweep::new(threads).run(&trace, std::slice::from_ref(&job));
            assert_eq!(got[0], expected, "threads = {threads}");
        }
    }

    #[test]
    fn multi_job_results_keep_job_order_and_filters() {
        let trace = test_trace();
        let jobs = vec![
            SweepJob::new(SweepSink::fig4_grid(1), 2, StreamFilter::UserOnly),
            SweepJob::new(SweepSink::fig4_grid(4), 1, StreamFilter::KernelOnly),
            SweepJob::new(vec![CacheConfig::new(1024, 64, 2)], 3, StreamFilter::All),
        ];
        let got = ParallelSweep::new(7).run(&trace, &jobs);
        assert_eq!(got.len(), 3);
        for (j, job) in jobs.iter().enumerate() {
            assert_eq!(got[j], serial(&trace, job), "job {j}");
        }
        // Filters actually differ: user + kernel accesses = combined.
        let user: u64 = got[0][0].stats.accesses;
        let kernel: u64 = got[1][0].stats.accesses;
        let all: u64 = got[2][0].stats.accesses;
        assert!(user > 0 && kernel > 0);
        assert_eq!(user + kernel, all);
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let trace = test_trace();
        let job = SweepJob::new(vec![CacheConfig::new(512, 64, 1)], 1, StreamFilter::All);
        let got = ParallelSweep::new(1000).run(&trace, std::slice::from_ref(&job));
        assert_eq!(got[0], serial(&trace, &job));
    }

    #[test]
    fn empty_trace_and_empty_jobs() {
        let empty = TraceBuffer::new().freeze();
        let job = SweepJob::new(SweepSink::fig4_grid(1), 2, StreamFilter::All);
        let got = ParallelSweep::new(4).run(&empty, &[job]);
        assert_eq!(got[0].len(), 25);
        assert!(got[0].iter().all(|c| c.stats.accesses == 0));
        let none = ParallelSweep::new(4).run(&test_trace(), &[]);
        assert!(none.is_empty());
    }

    #[test]
    fn run_one_unwraps_single_job() {
        let trace = test_trace();
        let cells =
            ParallelSweep::new(2).run_one(&trace, SweepSink::fig4_grid(1), 2, StreamFilter::All);
        let job = SweepJob::new(SweepSink::fig4_grid(1), 2, StreamFilter::All);
        assert_eq!(cells, serial(&trace, &job));
    }
}
