//! Parallel replay of a frozen trace across sweep grids.
//!
//! A [`SweepSink`] feeds every (configuration, CPU) simulator from a
//! live machine run in one pass. That is optimal when the workload
//! executes once, but the experiment harness sweeps *several* grids per
//! layout (direct-mapped user grid, 4-way user/kernel/combined grids),
//! and the simulators dominate wall-clock time. [`ParallelSweep`] takes
//! the other half of the record-once/replay-many design: given a
//! [`FrozenTrace`] and a list of [`SweepSpec`] jobs, it shards the
//! simulation across scoped worker threads. Each worker owns its
//! simulators outright and replays the shared trace with no locks or
//! atomics on the hot path; per-CPU statistics are merged into
//! per-configuration cells only at join time.
//!
//! Two engines implement the same contract ([`SweepEngine`], default
//! taken from `CODELAYOUT_SWEEP_ENGINE`):
//!
//! * **Stack** — one [`StackDistanceSim`] per (job, line size, CPU).
//!   A single pass over the shard's stream yields exact misses for
//!   every size × associativity at that line size (Mattson inclusion),
//!   so per-record cost is O(line sizes), not O(configurations). Two
//!   replay-loop specializations stack on top: routing is a
//!   precomputed (kernel flag, CPU) → profiler-list table instead of a
//!   per-record walk over jobs and filters, and consecutive records
//!   that repeat the previous one — same line at the *smallest* line
//!   size in the grid (hence the same line at every larger one), same
//!   CPU, same kernel flag — collapse to one counter increment,
//!   flushed in bulk with [`StackDistanceSim::repeat_last`] when the
//!   run breaks. Instruction streams are mostly sequential (the very
//!   property the paper's optimizations maximize), so such runs cover
//!   most of the trace.
//! * **Direct** — one [`ICacheSim`] per (job, configuration, CPU); the
//!   straightforward oracle the stack engine is proven against. Its
//!   replay loop is kept deliberately plain — no batching, no routing
//!   table — so a divergence between the engines always indicts
//!   exactly one of them.
//!
//! Results are **bit-identical** across engines and thread counts: a
//! given shard consumes the identical filtered subsequence of the trace
//! wherever it runs, the stack profiler reproduces [`ICacheSim`]'s
//! statistics exactly, and [`CacheStats::merge`] is commutative `u64`
//! addition.
//!
//! [`SweepSink`]: crate::SweepSink

use crate::config::StreamFilter;
use crate::icache::{AccessClass, CacheStats, ICacheSim};
use crate::spec::SweepSpec;
use crate::stack::StackDistanceSim;
use crate::sweep::SweepCell;
use codelayout_obs::SweepEngine;
use codelayout_vm::{FetchRecord, FrozenTrace, TraceSink};

/// One direct-engine unit: a (configuration, CPU) simulator.
struct DirectShard {
    config_idx: usize,
    cpu: usize,
    sim: ICacheSim,
}

/// A direct worker's shards for one job, with the job's filter and CPU
/// count hoisted so the per-record stream checks run once per job — not
/// once per shard, as the old per-config loop did.
struct DirectJob {
    job: usize,
    filter: StreamFilter,
    num_cpus: usize,
    shards: Vec<DirectShard>,
}

/// A direct-engine worker: the plain oracle replay loop. Filtering and
/// CPU decimation match [`crate::SweepSink::fetch`] exactly.
struct DirectWorker {
    jobs: Vec<DirectJob>,
}

impl TraceSink for DirectWorker {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        let class = AccessClass::from_kernel_flag(rec.kernel);
        let rec_cpu = rec.cpu as usize;
        for dj in &mut self.jobs {
            if !dj.filter.accepts(rec.kernel) {
                continue;
            }
            // Traces from an N-CPU machine replayed into an N-CPU spec
            // (the harness invariant) never take the modulo; the branch
            // predicts perfectly and skips a hardware division per job
            // per record.
            let cpu = if rec_cpu < dj.num_cpus {
                rec_cpu
            } else {
                rec_cpu % dj.num_cpus
            };
            for shard in &mut dj.shards {
                if shard.cpu == cpu {
                    shard.sim.access(rec.addr, class);
                }
            }
        }
    }
}

impl DirectWorker {
    fn push(&mut self, job: usize, spec: &SweepSpec, shard: DirectShard) {
        if self.jobs.last().is_none_or(|dj| dj.job != job) {
            self.jobs.push(DirectJob {
                job,
                filter: spec.stream(),
                num_cpus: spec.num_cpus(),
                shards: Vec::new(),
            });
        }
        self.jobs
            .last_mut()
            .expect("job pushed above")
            .shards
            .push(shard);
    }
}

/// One stack-engine unit: a (job, line size, CPU) profiler covering
/// every configuration of that line size in its job, plus the routing
/// inputs its worker bakes into the dispatch table.
struct StackShard {
    job: usize,
    cpu: usize,
    filter: StreamFilter,
    num_cpus: usize,
    prof: StackDistanceSim,
}

/// Routing-table width: one entry per (kernel flag, `u8` CPU id).
const ROUTES: usize = 2 * 256;

/// A stack-engine worker. [`StackWorker::seal`] precomputes, for every
/// possible (kernel flag, record CPU) pair, the list of profilers that
/// accept such a record — the per-record work is then one table lookup
/// and one profiler access per list entry, with same-line runs batched
/// down to a single counter increment (see the module docs).
struct StackWorker {
    shards: Vec<StackShard>,
    /// `routes[kernel << 8 | cpu]` = indices into `shards`.
    routes: Vec<Vec<u32>>,
    /// Right-shift turning an address into a line at the smallest line
    /// size any shard profiles: equal keys ⇒ equal lines everywhere.
    batch_shift: u32,
    /// `(line << 9) | (cpu << 1) | kernel` of the previous record;
    /// `u64::MAX` (unreachable: trace addresses fit 45 bits) initially.
    last_key: u64,
    /// Route index of the in-progress run.
    last_route: usize,
    /// Repeat records accumulated since the run's first record.
    pending: u64,
}

impl TraceSink for StackWorker {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        let key =
            ((rec.addr >> self.batch_shift) << 9) | ((rec.cpu as u64) << 1) | rec.kernel as u64;
        if key == self.last_key {
            self.pending += 1;
            return;
        }
        self.flush_repeats();
        self.last_key = key;
        self.last_route = (rec.kernel as usize) << 8 | rec.cpu as usize;
        let class = AccessClass::from_kernel_flag(rec.kernel);
        let shards = &mut self.shards;
        for &i in &self.routes[self.last_route] {
            shards[i as usize].prof.access(rec.addr, class);
        }
    }
}

impl StackWorker {
    /// Builds the dispatch table; must run after the last shard is
    /// pushed and before replay.
    fn seal(&mut self) {
        self.routes = (0..ROUTES)
            .map(|r| {
                let (kernel, rec_cpu) = (r >> 8 != 0, r & 0xFF);
                self.shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.filter.accepts(kernel) && rec_cpu % s.num_cpus == s.cpu)
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
    }

    /// Delivers a batched run of repeat records to the profilers the
    /// run's first record routed to. Must run once more after replay.
    fn flush_repeats(&mut self) {
        let n = std::mem::take(&mut self.pending);
        if n == 0 {
            return;
        }
        let shards = &mut self.shards;
        for &i in &self.routes[self.last_route] {
            shards[i as usize].prof.repeat_last(n);
        }
    }
}

/// Replays a [`FrozenTrace`] through one or more [`SweepSpec`] jobs on
/// a pool of scoped threads.
///
/// ```
/// use codelayout_memsim::{ParallelSweep, StreamFilter, SweepEngine, SweepSink, SweepSpec};
/// use codelayout_vm::{FetchRecord, TraceBuffer, TraceSink};
///
/// let mut buf = TraceBuffer::new();
/// for i in 0..1000u64 {
///     buf.fetch(FetchRecord { addr: i % 96 * 64, cpu: (i % 2) as u8, pid: 0, kernel: false });
/// }
/// let trace = buf.freeze();
///
/// let spec = SweepSpec::paper_grid(1).cpus(2);
/// let stack = ParallelSweep::new(4).run(&trace, std::slice::from_ref(&spec));
/// let direct = ParallelSweep::new(4)
///     .with_engine(SweepEngine::Direct)
///     .run(&trace, std::slice::from_ref(&spec));
/// assert_eq!(stack, direct);
///
/// // Both are bit-identical to the live serial sweep.
/// let mut serial = SweepSink::from_spec(&spec);
/// trace.replay(&mut serial);
/// assert_eq!(stack[0], serial.results());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSweep {
    threads: usize,
    engine: SweepEngine,
}

impl ParallelSweep {
    /// A sweep runner using up to `threads` workers (clamped to ≥ 1; a
    /// run never spawns more workers than it has shards) and the
    /// default stack-distance engine.
    pub fn new(threads: usize) -> Self {
        ParallelSweep {
            threads: threads.max(1),
            engine: SweepEngine::default(),
        }
    }

    /// Thread count and engine from the process environment
    /// (`CODELAYOUT_THREADS`, `CODELAYOUT_SWEEP_ENGINE` — see
    /// [`codelayout_obs::RunEnv`]).
    pub fn from_env() -> Self {
        let env = codelayout_obs::run_env();
        ParallelSweep::new(env.sweep_threads()).with_engine(env.sweep_engine)
    }

    /// Selects the replay engine.
    pub fn with_engine(mut self, engine: SweepEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured replay engine.
    pub fn engine(&self) -> SweepEngine {
        self.engine
    }

    /// Replays `trace` through every job, returning one result vector
    /// per job (same order; cells in each job's config order, summed
    /// over CPUs — the exact shape [`crate::SweepSink::results`]
    /// returns).
    pub fn run(&self, trace: &FrozenTrace, jobs: &[SweepSpec]) -> Vec<Vec<SweepCell>> {
        let _sweep_span = codelayout_obs::span("sweep");
        let grids: Vec<Vec<crate::CacheConfig>> = jobs.iter().map(SweepSpec::configs).collect();
        let mut results: Vec<Vec<SweepCell>> = grids
            .iter()
            .map(|grid| {
                grid.iter()
                    .map(|&config| SweepCell {
                        config,
                        stats: CacheStats::default(),
                    })
                    .collect()
            })
            .collect();
        match self.engine {
            SweepEngine::Direct => self.run_direct(trace, jobs, &grids, &mut results),
            SweepEngine::Stack => self.run_stack(trace, jobs, &grids, &mut results),
        }
        results
    }

    fn run_direct(
        &self,
        trace: &FrozenTrace,
        jobs: &[SweepSpec],
        grids: &[Vec<crate::CacheConfig>],
        results: &mut [Vec<SweepCell>],
    ) {
        // Enumerate shards per job, then round-robin them over workers
        // so each worker carries a similar mix of small and large
        // simulations. Workers keep their shards grouped by job so the
        // per-record filter and CPU checks are per job, not per shard.
        let total: usize = grids
            .iter()
            .zip(jobs)
            .map(|(g, j)| g.len() * j.num_cpus())
            .sum();
        let num_workers = self.record_pool(jobs.len(), total);
        let mut workers: Vec<DirectWorker> = (0..num_workers)
            .map(|_| DirectWorker { jobs: Vec::new() })
            .collect();
        let mut next = 0usize;
        for (job, (spec, grid)) in jobs.iter().zip(grids).enumerate() {
            for (config_idx, &config) in grid.iter().enumerate() {
                for cpu in 0..spec.num_cpus() {
                    workers[next % num_workers].push(
                        job,
                        spec,
                        DirectShard {
                            config_idx,
                            cpu,
                            sim: ICacheSim::new(config),
                        },
                    );
                    next += 1;
                }
            }
        }

        for worker in replay_pool(trace, workers, |_| {}) {
            for dj in worker.jobs {
                let cells = &mut results[dj.job];
                for shard in dj.shards {
                    cells[shard.config_idx].stats.merge(shard.sim.stats());
                }
            }
        }
    }

    fn run_stack(
        &self,
        trace: &FrozenTrace,
        jobs: &[SweepSpec],
        grids: &[Vec<crate::CacheConfig>],
        results: &mut [Vec<SweepCell>],
    ) {
        let mut shards: Vec<StackShard> = Vec::new();
        for (job, (spec, grid)) in jobs.iter().zip(grids).enumerate() {
            let mut lines: Vec<u32> = grid.iter().map(|c| c.line_bytes).collect();
            lines.sort_unstable();
            lines.dedup();
            for line in lines {
                let group: Vec<(usize, crate::CacheConfig)> = grid
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.line_bytes == line)
                    .map(|(i, &c)| (i, c))
                    .collect();
                for cpu in 0..spec.num_cpus() {
                    shards.push(StackShard {
                        job,
                        cpu,
                        filter: spec.stream(),
                        num_cpus: spec.num_cpus(),
                        prof: StackDistanceSim::new(line, group.iter().copied()),
                    });
                }
            }
        }
        let batch_shift = shards
            .iter()
            .map(|s| s.prof.line_bytes().trailing_zeros())
            .min()
            .unwrap_or(0);
        let num_workers = self.record_pool(jobs.len(), shards.len());
        let mut workers: Vec<StackWorker> = (0..num_workers)
            .map(|_| StackWorker {
                shards: Vec::new(),
                routes: Vec::new(),
                batch_shift,
                last_key: u64::MAX,
                last_route: 0,
                pending: 0,
            })
            .collect();
        for (i, shard) in shards.into_iter().enumerate() {
            workers[i % num_workers].shards.push(shard);
        }
        for worker in &mut workers {
            worker.seal();
        }

        for worker in replay_pool(trace, workers, StackWorker::flush_repeats) {
            for shard in worker.shards {
                let cells = &mut results[shard.job];
                for (config_idx, stats) in shard.prof.results() {
                    cells[config_idx].stats.merge(&stats);
                }
            }
        }
    }

    /// Clamps the pool size to the shard count and records the run's
    /// shape in the metrics registry.
    fn record_pool(&self, jobs: usize, shards: usize) -> usize {
        let num_workers = self.threads.min(shards.max(1));
        let m = codelayout_obs::metrics();
        m.add("sweep.runs", 1);
        m.add("sweep.jobs", jobs as u64);
        m.add("sweep.shards", shards as u64);
        m.gauge_set("sweep.workers", num_workers as f64);
        num_workers
    }

    /// Convenience for a single job: replays and returns its cells.
    pub fn run_one(&self, trace: &FrozenTrace, spec: &SweepSpec) -> Vec<SweepCell> {
        self.run(trace, std::slice::from_ref(spec))
            .pop()
            .expect("one job in, one result out")
    }
}

/// Replays `trace` into every worker on its own scoped thread, calling
/// `finish` on each worker after its last record, and hands the workers
/// back for result collection.
///
/// Workers time themselves into a private lock-free shard (queue wait =
/// spawn-to-start latency, plus replay duration) which is merged into
/// the global registry at join time; the per-event replay path stays
/// untouched.
fn replay_pool<W, F>(trace: &FrozenTrace, workers: Vec<W>, finish: F) -> Vec<W>
where
    W: TraceSink + Send,
    F: Fn(&mut W) + Sync,
{
    let m = codelayout_obs::metrics();
    let enqueue_ns = codelayout_obs::now_ns();
    let finish = &finish;
    std::thread::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut w| {
                let trace = trace.clone();
                s.spawn(move || {
                    let _worker_span = codelayout_obs::span("sweep_worker");
                    let start_ns = codelayout_obs::now_ns();
                    trace.replay(&mut w);
                    finish(&mut w);
                    let mut shard = codelayout_obs::MetricsShard::new();
                    shard.observe(
                        "sweep.queue_wait_us",
                        start_ns.saturating_sub(enqueue_ns) / 1_000,
                    );
                    shard.observe(
                        "sweep.worker_us",
                        codelayout_obs::now_ns().saturating_sub(start_ns) / 1_000,
                    );
                    shard.add("sweep.events_replayed", trace.len() as u64);
                    (w, shard)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (w, metrics_shard) = h.join().expect("sweep worker panicked");
                m.merge_shard(&metrics_shard);
                w
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::sweep::SweepSink;
    use codelayout_vm::TraceBuffer;

    /// A small mixed user/kernel multi-CPU trace.
    fn test_trace() -> FrozenTrace {
        let mut buf = TraceBuffer::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let kernel = x.is_multiple_of(5);
            let base = if kernel { 0x8000_0000 } else { 0x40_0000 };
            buf.fetch(FetchRecord {
                addr: (base + x % (64 * 1024)) & !3,
                cpu: (i % 3) as u8,
                pid: (i % 7) as u8,
                kernel,
            });
        }
        buf.freeze()
    }

    fn serial(trace: &FrozenTrace, spec: &SweepSpec) -> Vec<SweepCell> {
        let mut sink = SweepSink::from_spec(spec);
        trace.replay(&mut sink);
        sink.results()
    }

    fn both_engines(threads: usize) -> [ParallelSweep; 2] {
        [
            ParallelSweep::new(threads).with_engine(SweepEngine::Direct),
            ParallelSweep::new(threads).with_engine(SweepEngine::Stack),
        ]
    }

    #[test]
    fn matches_serial_for_any_thread_count_and_engine() {
        let trace = test_trace();
        let spec = SweepSpec::paper_grid(2).cpus(3);
        let expected = serial(&trace, &spec);
        for threads in [1, 2, 5, 64] {
            for sweep in both_engines(threads) {
                let got = sweep.run(&trace, std::slice::from_ref(&spec));
                assert_eq!(
                    got[0],
                    expected,
                    "threads = {threads}, engine = {}",
                    sweep.engine().label()
                );
            }
        }
    }

    #[test]
    fn multi_job_results_keep_job_order_and_filters() {
        let trace = test_trace();
        let jobs = vec![
            SweepSpec::paper_grid(1)
                .cpus(2)
                .filter(StreamFilter::UserOnly),
            SweepSpec::paper_grid(4)
                .cpus(1)
                .filter(StreamFilter::KernelOnly),
            SweepSpec::grid().size_kb(1).line_b(64).ways(2).cpus(3),
        ];
        for sweep in both_engines(7) {
            let got = sweep.run(&trace, &jobs);
            assert_eq!(got.len(), 3);
            for (j, job) in jobs.iter().enumerate() {
                assert_eq!(got[j], serial(&trace, job), "job {j}");
            }
            // Filters actually differ: user + kernel accesses = combined.
            let user: u64 = got[0][0].stats.accesses;
            let kernel: u64 = got[1][0].stats.accesses;
            let all: u64 = got[2][0].stats.accesses;
            assert!(user > 0 && kernel > 0);
            assert_eq!(user + kernel, all);
        }
    }

    #[test]
    fn sequential_run_batching_matches_record_at_a_time() {
        // Long same-line runs with CPU switches and kernel excursions
        // mid-run: the batched fast path must flush across every kind
        // of run break.
        let mut buf = TraceBuffer::new();
        for i in 0..4_000u64 {
            let cpu = (i / 977) % 2;
            let kernel = i % 271 < 13;
            buf.fetch(FetchRecord {
                addr: (if kernel { 0x8000_0000 } else { 0x40_0000 }) + i / 7 * 4,
                cpu: cpu as u8,
                pid: 0,
                kernel,
            });
        }
        let trace = buf.freeze();
        let jobs = vec![
            SweepSpec::grid()
                .size_kb(1)
                .lines_b(&[16, 64])
                .ways_each(&[1, 2])
                .cpus(2),
            SweepSpec::grid()
                .size_kb(2)
                .line_b(32)
                .cpus(2)
                .filter(StreamFilter::KernelOnly),
        ];
        for threads in [1, 3] {
            let got = ParallelSweep::new(threads).run(&trace, &jobs);
            for (j, job) in jobs.iter().enumerate() {
                assert_eq!(got[j], serial(&trace, job), "threads {threads}, job {j}");
            }
        }
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let trace = test_trace();
        let spec = SweepSpec::grid().size_kb(512).line_b(64);
        for sweep in both_engines(1000) {
            let got = sweep.run(&trace, std::slice::from_ref(&spec));
            assert_eq!(got[0], serial(&trace, &spec));
        }
    }

    #[test]
    fn empty_trace_and_empty_jobs() {
        let empty = TraceBuffer::new().freeze();
        let spec = SweepSpec::paper_grid(1).cpus(2);
        let got = ParallelSweep::new(4).run(&empty, std::slice::from_ref(&spec));
        assert_eq!(got[0].len(), 25);
        assert!(got[0].iter().all(|c| c.stats.accesses == 0));
        let none = ParallelSweep::new(4).run(&test_trace(), &[]);
        assert!(none.is_empty());
    }

    #[test]
    fn run_one_unwraps_single_job() {
        let trace = test_trace();
        let spec = SweepSpec::paper_grid(1).cpus(2);
        let cells = ParallelSweep::new(2).run_one(&trace, &spec);
        assert_eq!(cells, serial(&trace, &spec));
    }

    #[test]
    fn engine_selection_defaults_to_stack() {
        assert_eq!(ParallelSweep::new(2).engine(), SweepEngine::Stack);
        assert_eq!(
            ParallelSweep::new(2)
                .with_engine(SweepEngine::Direct)
                .engine(),
            SweepEngine::Direct
        );
        let cells_config_order: Vec<CacheConfig> = ParallelSweep::new(1)
            .run_one(&test_trace(), &SweepSpec::paper_grid(1))
            .into_iter()
            .map(|c| c.config)
            .collect();
        assert_eq!(cells_config_order, SweepSpec::paper_grid(1).configs());
    }
}
