//! One-pass fan-out over a grid of cache configurations × CPUs.
//!
//! The paper's Figures 4–7 and 12 sweep cache size, line size and
//! associativity; re-executing the workload per configuration would be
//! wasteful, so a [`SweepSink`] instantiates one [`ICacheSim`] per
//! (configuration, CPU) and feeds them all from a single trace. It is
//! the *live* collector (attached to a running machine) and the direct
//! per-configuration oracle that the single-pass stack-distance engine
//! ([`crate::StackDistanceSim`]) is proven against; grids come from a
//! [`SweepSpec`].

use crate::config::{CacheConfig, StreamFilter};
use crate::icache::{AccessClass, CacheStats, ICacheSim};
use crate::spec::SweepSpec;
use codelayout_vm::{FetchRecord, TraceSink};

/// Aggregated result of one configuration across CPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// The configuration measured.
    pub config: CacheConfig,
    /// Statistics summed over CPUs.
    pub stats: CacheStats,
}

/// A [`TraceSink`] fanning fetches out to many cache configurations, each
/// simulated per CPU (every simulated CPU has its own L1 I-cache, as on the
/// paper's 4-processor Alpha systems).
#[derive(Debug, Clone)]
pub struct SweepSink {
    filter: StreamFilter,
    num_cpus: usize,
    /// `sims[config][cpu]`
    sims: Vec<Vec<ICacheSim>>,
    configs: Vec<CacheConfig>,
}

impl SweepSink {
    /// Creates the sweep a [`SweepSpec`] describes: one simulator per
    /// (configuration, CPU) over the spec's filtered stream.
    pub fn from_spec(spec: &SweepSpec) -> Self {
        let configs = spec.configs();
        let num_cpus = spec.num_cpus();
        let sims = configs
            .iter()
            .map(|&c| (0..num_cpus).map(|_| ICacheSim::new(c)).collect())
            .collect();
        SweepSink {
            filter: spec.stream(),
            num_cpus,
            sims,
            configs,
        }
    }

    /// Results per configuration, summed over CPUs.
    pub fn results(&self) -> Vec<SweepCell> {
        self.configs
            .iter()
            .enumerate()
            .map(|(i, &config)| {
                let mut stats = CacheStats::default();
                for sim in &self.sims[i] {
                    stats.merge(sim.stats());
                }
                SweepCell { config, stats }
            })
            .collect()
    }

    /// Total misses for one configuration, if present in the sweep.
    pub fn misses_for(&self, config: CacheConfig) -> Option<u64> {
        self.configs
            .iter()
            .position(|&c| c == config)
            .map(|i| self.sims[i].iter().map(|s| s.stats().misses).sum())
    }
}

impl TraceSink for SweepSink {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        if !self.filter.accepts(rec.kernel) {
            return;
        }
        let cpu = (rec.cpu as usize) % self.num_cpus;
        let class = AccessClass::from_kernel_flag(rec.kernel);
        for sims in &mut self.sims {
            sims[cpu].access(rec.addr, class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64, cpu: u8) -> FetchRecord {
        FetchRecord {
            addr,
            cpu,
            pid: cpu,
            kernel: false,
        }
    }

    #[test]
    fn paper_grid_has_25_cells() {
        let sink = SweepSink::from_spec(&SweepSpec::paper_grid(1));
        assert_eq!(sink.results().len(), 25);
        assert!(sink.results().iter().all(|c| c.config.ways == 1));
    }

    #[test]
    fn per_cpu_caches_are_independent() {
        let cfg = CacheConfig::new(128, 64, 1);
        let spec = SweepSpec::grid().sizes_bytes(&[128]).line_b(64).cpus(2);
        let mut s = SweepSink::from_spec(&spec);
        // Same address on both CPUs: each CPU cold-misses once.
        s.fetch(rec(0, 0));
        s.fetch(rec(0, 1));
        s.fetch(rec(0, 0));
        let r = s.results();
        assert_eq!(r[0].stats.misses, 2);
        assert_eq!(r[0].stats.accesses, 3);
        assert_eq!(s.misses_for(cfg), Some(2));
        assert_eq!(s.misses_for(CacheConfig::new(256, 64, 1)), None);
    }

    #[test]
    fn all_configs_see_every_record() {
        let spec = SweepSpec::grid()
            .sizes_bytes(&[128, 256])
            .line_b(64)
            .ways_each(&[1, 2]);
        let mut s = SweepSink::from_spec(&spec);
        for i in 0..10 {
            s.fetch(rec(i * 64, 0));
        }
        let r = s.results();
        assert_eq!(r.len(), 4);
        for cell in r {
            assert_eq!(cell.stats.accesses, 10);
        }
    }

    #[test]
    fn bigger_cache_fewer_or_equal_misses_on_loops() {
        // A loop over 8 lines: fits in 512B cache, thrashes a 128B one.
        let spec = SweepSpec::grid().sizes_bytes(&[128, 512]).line_b(64);
        let mut s = SweepSink::from_spec(&spec);
        for _ in 0..10 {
            for i in 0..8u64 {
                s.fetch(rec(i * 64, 0));
            }
        }
        let r = s.results();
        assert!(r[1].stats.misses <= r[0].stats.misses);
        assert_eq!(r[1].stats.misses, 8); // fits entirely
    }
}
