//! Single-pass stack-distance profiling (Mattson et al., 1970).
//!
//! The direct sweep engine pays one [`ICacheSim`] access per
//! (configuration, CPU) per fetched instruction — O(configs × trace).
//! LRU caches obey the *inclusion property*: at a fixed line size and
//! set count, the lines resident in a `W`-way LRU set are exactly the
//! `W` most-recently-used lines mapping to that set, for **every** `W`
//! at once. One recency ordering per set therefore answers the
//! hit/miss question for every associativity, and one profiler per
//! *distinct set count* (a "level") covers every cache size in the
//! grid — the sweep becomes O(levels × trace) per line size instead of
//! O(configs × trace).
//!
//! [`StackDistanceSim`] keeps, per level, a per-set recency list
//! truncated to the level's largest associativity `W_max` (positions
//! `≥ W_max` are resident in no configuration, so the tail of the full
//! Mattson stack is never materialized — this is what keeps the cost
//! *bounded* per access instead of O(reuse distance)). An access that
//! finds its line at position `p` hits every configuration with
//! `W > p`; each configuration with `W ≤ p` misses, and the entry at
//! position `W − 1` is **precisely the line LRU would evict**, which
//! is how the profiler reproduces the paper's displaced-line
//! interference matrix (Figure 13) bit-for-bit: per-threshold owner
//! bytes travel with each slot and record which class last *filled*
//! the line in that configuration, exactly as [`ICacheSim`] tags its
//! ways (owner `0` = invalid way, so cold fills land in the matrix's
//! "invalid victim" column with no special casing). Every statistic in
//! [`CacheStats`] — accesses, misses, per-class misses, the displaced
//! matrix — is produced exactly; nothing falls back to direct
//! simulation (the differential proptests in
//! `tests/prop_stack_equiv.rs` are the proof).
//!
//! Cost per access: the MRU fast path (sequential straight-line fetch,
//! the common case for instruction streams) is one compare for the
//! whole grid — the shared work the direct engine repeats per
//! configuration. Otherwise each level scans at most `W_max` slots of
//! one set, the same bound as a single direct simulator of the level's
//! largest configuration.

use crate::config::CacheConfig;
use crate::icache::{AccessClass, CacheStats};

/// Empty-slot marker; line addresses are fetch addresses shifted right
/// by the line size, so `u64::MAX` can never be a real line.
const INVALID: u64 = u64::MAX;

/// Per-configuration state: geometry, caller-side tag and running
/// statistics (owners live in the level's slot array).
#[derive(Debug, Clone)]
struct CfgSlot {
    config: CacheConfig,
    /// Caller-side index of this configuration (position in the job's
    /// config list), so shard results merge into the right cell.
    tag: usize,
    stats: CacheStats,
}

/// All configurations sharing one set count, simulated as one per-set
/// recency list of `wmax` slots: the `W`-way member's content is the
/// list's first `W` entries (LRU inclusion within a set).
#[derive(Debug, Clone)]
struct SetLevel {
    set_mask: u64,
    /// Largest associativity at this level; the per-set list length.
    wmax: usize,
    /// `(ways, cfg index)` sorted ascending by ways; duplicates allowed.
    thresholds: Vec<(u32, u32)>,
    /// `sets × wmax` lines, MRU-first within each set.
    lines: Vec<u64>,
    /// `sets × wmax × thresholds.len()` owner bytes, slot-major: the
    /// class that last filled each slot's line *in each configuration*
    /// (fill times differ per configuration, so one byte per way as in
    /// [`ICacheSim`] is not enough). 0 invalid, 1 user, 2 kernel.
    owners: Vec<u8>,
}

/// A stack-distance profiler for every configuration of one line size,
/// fed by one (CPU, filter) shard of the trace. Produces [`CacheStats`]
/// bit-identical to running an [`ICacheSim`] per configuration over the
/// same stream.
///
/// ```
/// use codelayout_memsim::{AccessClass, CacheConfig, ICacheSim, StackDistanceSim};
///
/// let grid = vec![CacheConfig::new(256, 64, 1), CacheConfig::new(512, 64, 2)];
/// let mut stack = StackDistanceSim::new(64, grid.iter().copied().enumerate());
/// let mut direct: Vec<ICacheSim> = grid.iter().map(|&c| ICacheSim::new(c)).collect();
/// let mut x = 7u64;
/// for _ in 0..10_000 {
///     x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
///     let (addr, class) = (x >> 52 << 3, AccessClass::from_kernel_flag(x & 1 == 0));
///     stack.access(addr, class);
///     for sim in &mut direct {
///         sim.access(addr, class);
///     }
/// }
/// for (i, stats) in stack.results() {
///     assert_eq!(stats, *direct[i].stats());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StackDistanceSim {
    line_shift: u32,
    cfgs: Vec<CfgSlot>,
    levels: Vec<SetLevel>,
    /// Last accessed line: a repeat sits at position 0 of its set in
    /// every level, i.e. a pure hit for the whole grid.
    last_line: u64,
    accesses: u64,
}

impl StackDistanceSim {
    /// Builds a profiler for `line_bytes` serving every `(tag, config)`
    /// in `grid`; tags are echoed by [`StackDistanceSim::results`] so a
    /// caller can route shard results back to its own config list.
    ///
    /// # Panics
    /// Panics if a config's line size differs from `line_bytes`, or its
    /// associativity exceeds 255.
    pub fn new(line_bytes: u32, grid: impl IntoIterator<Item = (usize, CacheConfig)>) -> Self {
        let mut cfgs: Vec<CfgSlot> = Vec::new();
        let mut levels: Vec<SetLevel> = Vec::new();
        for (tag, config) in grid {
            assert_eq!(
                config.line_bytes, line_bytes,
                "config {config} in a {line_bytes}-byte-line profiler"
            );
            assert!(config.ways <= 255, "associativity above 255 unsupported");
            let sets = config.sets();
            let cfg_idx = cfgs.len() as u32;
            match levels.iter_mut().find(|l| l.set_mask == sets - 1) {
                Some(level) => level.thresholds.push((config.ways, cfg_idx)),
                None => levels.push(SetLevel {
                    set_mask: sets - 1,
                    wmax: 0,
                    thresholds: vec![(config.ways, cfg_idx)],
                    lines: Vec::new(),
                    owners: Vec::new(),
                }),
            }
            cfgs.push(CfgSlot {
                config,
                tag,
                stats: CacheStats::default(),
            });
        }
        levels.sort_by_key(|l| l.set_mask);
        for level in &mut levels {
            level.thresholds.sort_by_key(|&(w, _)| w);
            level.wmax = level.thresholds.last().map_or(0, |&(w, _)| w) as usize;
            let sets = level.set_mask as usize + 1;
            level.lines = vec![INVALID; sets * level.wmax];
            level.owners = vec![0; sets * level.wmax * level.thresholds.len()];
        }
        StackDistanceSim {
            line_shift: line_bytes.trailing_zeros(),
            cfgs,
            levels,
            last_line: INVALID,
            accesses: 0,
        }
    }

    /// The line size this profiler serves.
    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// Processes one fetch. The caller applies stream filtering and CPU
    /// decimation first, exactly as it would before an
    /// [`crate::ICacheSim::access`].
    ///
    /// Split so the MRU fast path — one compare covering every
    /// configuration, taken for most of any sequential fetch stream —
    /// inlines into the replay loop while the level walk stays out of
    /// line.
    #[inline]
    pub fn access(&mut self, addr: u64, class: AccessClass) {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        if line != self.last_line {
            self.access_line(line, class);
        }
    }

    /// The per-level walk for a line that is not the profiler-wide MRU.
    #[inline(never)]
    fn access_line(&mut self, line: u64, class: AccessClass) {
        self.last_line = line;
        let class_idx = usize::from(class == AccessClass::Kernel);
        let fill = 1 + class_idx as u8;
        let cfgs = &mut self.cfgs;
        for level in &mut self.levels {
            let nt = level.thresholds.len();
            let set = (line & level.set_mask) as usize;
            let base = set * level.wmax;
            let slots = &mut level.lines[base..base + level.wmax];
            let obase = base * nt;
            let owners = &mut level.owners[obase..obase + level.wmax * nt];
            match slots.iter().position(|&e| e == line) {
                Some(0) => {} // front of its set: hits everywhere
                Some(p) => {
                    // Hits every configuration with more than `p` ways;
                    // misses the rest, displacing each one's entry at
                    // position `W − 1` (its LRU way).
                    for (t, &(w, cfg)) in level.thresholds.iter().enumerate() {
                        let w = w as usize;
                        if w > p {
                            break;
                        }
                        let c = &mut cfgs[cfg as usize];
                        c.stats.misses += 1;
                        c.stats.misses_by_class[class_idx] += 1;
                        c.stats.displaced[class_idx][owners[(w - 1) * nt + t] as usize] += 1;
                        owners[p * nt + t] = fill;
                    }
                    slots[..=p].rotate_right(1);
                    owners[..(p + 1) * nt].rotate_right(nt);
                }
                None => {
                    // Misses everywhere. Victim owners are read before
                    // the shift; an empty way's owner byte is 0, so a
                    // cold fill records an invalid victim by itself.
                    for (t, &(w, cfg)) in level.thresholds.iter().enumerate() {
                        let c = &mut cfgs[cfg as usize];
                        c.stats.misses += 1;
                        c.stats.misses_by_class[class_idx] += 1;
                        c.stats.displaced[class_idx][owners[(w as usize - 1) * nt + t] as usize] +=
                            1;
                    }
                    slots.copy_within(..level.wmax - 1, 1);
                    slots[0] = line;
                    owners.copy_within(..(level.wmax - 1) * nt, nt);
                    owners[..nt].fill(fill);
                }
            }
        }
    }

    /// Records `n` further fetches of the most recently accessed line,
    /// with the same class: pure MRU hits for every configuration, so
    /// only the shared access count moves. Exactly equivalent to — and
    /// the replay loop's batched form of — calling
    /// [`StackDistanceSim::access`] `n` more times with the previous
    /// arguments. Caller contract: at least one `access` has been made.
    #[inline]
    pub fn repeat_last(&mut self, n: u64) {
        debug_assert_ne!(self.last_line, INVALID, "repeat_last before any access");
        self.accesses += n;
    }

    /// Final statistics as `(tag, stats)` pairs in construction order.
    /// Accesses are identical across configurations of one profiler
    /// (they share filter and CPU), so the shared count is stamped here.
    pub fn results(&self) -> impl Iterator<Item = (usize, CacheStats)> + '_ {
        self.cfgs.iter().map(|c| {
            let mut stats = c.stats;
            stats.accesses = self.accesses;
            (c.tag, stats)
        })
    }

    /// Configurations served, as `(tag, config)` pairs.
    pub fn configs(&self) -> impl Iterator<Item = (usize, CacheConfig)> + '_ {
        self.cfgs.iter().map(|c| (c.tag, c.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icache::ICacheSim;

    const U: AccessClass = AccessClass::User;
    const K: AccessClass = AccessClass::Kernel;

    fn lcg_stream(n: usize, seed: u64, span: u64) -> Vec<(u64, AccessClass)> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = ((x >> 24) % span) & !3;
                let class = AccessClass::from_kernel_flag(x & 7 == 0);
                (addr, class)
            })
            .collect()
    }

    fn assert_matches_direct(grid: &[CacheConfig], stream: &[(u64, AccessClass)]) {
        let line = grid[0].line_bytes;
        let mut stack = StackDistanceSim::new(line, grid.iter().copied().enumerate());
        let mut direct: Vec<ICacheSim> = grid.iter().map(|&c| ICacheSim::new(c)).collect();
        for &(addr, class) in stream {
            stack.access(addr, class);
            for sim in &mut direct {
                sim.access(addr, class);
            }
        }
        for (tag, stats) in stack.results() {
            assert_eq!(stats, *direct[tag].stats(), "config {} diverged", grid[tag]);
        }
    }

    #[test]
    fn matches_direct_mapped_grid() {
        let grid: Vec<CacheConfig> = [256u64, 512, 1024, 4096]
            .iter()
            .map(|&s| CacheConfig::new(s, 64, 1))
            .collect();
        assert_matches_direct(&grid, &lcg_stream(30_000, 42, 16 * 1024));
    }

    #[test]
    fn matches_associative_grid_with_duplicates() {
        let grid = vec![
            CacheConfig::new(512, 64, 1),
            CacheConfig::new(512, 64, 2),
            CacheConfig::new(512, 64, 8), // fully associative (1 set)
            CacheConfig::new(512, 64, 2), // duplicate config, same stats
            CacheConfig::new(2048, 64, 4),
        ];
        assert_matches_direct(&grid, &lcg_stream(30_000, 7, 8 * 1024));
    }

    #[test]
    fn matches_mixed_ways_sharing_one_set_count() {
        // 1-, 2- and 4-way members of the same 8-set level: the truncated
        // list serves all three off one recency order per set.
        let grid = vec![
            CacheConfig::new(512, 64, 1),
            CacheConfig::new(1024, 64, 2),
            CacheConfig::new(2048, 64, 4),
        ];
        assert_matches_direct(&grid, &lcg_stream(30_000, 11, 8 * 1024));
    }

    #[test]
    fn displaced_matrix_matches_on_adversarial_interleave() {
        // Alternating user/kernel over a small conflict-heavy footprint
        // exercises every cell of the interference matrix.
        let grid = vec![CacheConfig::new(256, 64, 1), CacheConfig::new(512, 64, 2)];
        let mut stream = Vec::new();
        for i in 0..5_000u64 {
            let addr = (i * 64 * 3) % 4096;
            let class = if i % 3 == 0 { K } else { U };
            stream.push((addr, class));
        }
        assert_matches_direct(&grid, &stream);
    }

    #[test]
    fn mattson_inclusion_misses_monotone_in_size() {
        // At fixed ways and line size, a larger cache can never miss
        // more: the inclusion property the whole engine rests on.
        let grid: Vec<CacheConfig> = [1u64, 2, 4, 8, 16, 32]
            .iter()
            .map(|&kb| CacheConfig::new(kb * 1024, 64, 2))
            .collect();
        let mut stack = StackDistanceSim::new(64, grid.iter().copied().enumerate());
        for (addr, class) in lcg_stream(50_000, 3, 64 * 1024) {
            stack.access(addr, class);
        }
        let misses: Vec<u64> = stack.results().map(|(_, s)| s.misses).collect();
        for w in misses.windows(2) {
            assert!(w[1] <= w[0], "misses must not grow with size: {misses:?}");
        }
    }

    #[test]
    fn mru_fast_path_is_a_pure_hit() {
        let grid = [CacheConfig::new(256, 64, 1)];
        let mut stack = StackDistanceSim::new(64, grid.iter().copied().enumerate());
        stack.access(0, U);
        for _ in 0..100 {
            stack.access(32, U); // same line, MRU
        }
        let (_, stats) = stack.results().next().unwrap();
        assert_eq!(stats.accesses, 101);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    #[should_panic(expected = "byte-line profiler")]
    fn mismatched_line_size_rejected() {
        let _ = StackDistanceSim::new(64, [(0, CacheConfig::new(256, 128, 1))]);
    }
}
