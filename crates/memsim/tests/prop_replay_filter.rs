//! Property tests for replayed sweeps: stream filtering commutes with
//! recording, and parallel replay agrees with the live serial sink on
//! arbitrary random traces (the OLTP-driven equivalence test lives at
//! the workspace root; this one explores the input space more broadly).

use codelayout_memsim::{ParallelSweep, StreamFilter, SweepSink, SweepSpec};
use codelayout_vm::{FetchRecord, TraceBuffer, TraceSink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_stream(seed: u64, len: usize, cpus: u8) -> Vec<FetchRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut pc: u64 = 0x40_0000;
    for _ in 0..len {
        let kernel = rng.gen_bool(0.25);
        if rng.gen_bool(0.15) {
            pc = rng.gen_range(0u64..1 << 18) & !3;
        } else {
            pc += 4;
        }
        let addr = if kernel { 0x8000_0000 + pc } else { pc };
        out.push(FetchRecord {
            addr,
            cpu: rng.gen_range(0u64..cpus.max(1) as u64) as u8,
            pid: rng.gen_range(0u64..8) as u8,
            kernel,
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filtering_commutes_with_recording(
        seed in 0u64..10_000,
        cpus in 1u64..4,
        threads in 1usize..8,
    ) {
        // Filtering at replay time (the recorded trace keeps kernel and
        // user fetches; each job filters) must equal filtering live.
        let stream = random_stream(seed, 8_000, cpus as u8);
        let mut buf = TraceBuffer::fetch_only();
        for &r in &stream {
            buf.fetch(r);
        }
        let trace = buf.freeze();

        for filter in [StreamFilter::UserOnly, StreamFilter::KernelOnly, StreamFilter::All] {
            let spec = SweepSpec::paper_grid(2).cpus(cpus as usize).filter(filter);
            let mut live = SweepSink::from_spec(&spec);
            for &r in &stream {
                live.fetch(r);
            }
            let replayed = ParallelSweep::new(threads).run(&trace, std::slice::from_ref(&spec));
            prop_assert_eq!(
                &replayed[0],
                &live.results(),
                "filter {:?}, {} cpus, {} threads",
                filter,
                cpus,
                threads
            );
        }
    }

    #[test]
    fn user_plus_kernel_misses_partition_combined_accesses(
        seed in 0u64..10_000,
        threads in 1usize..6,
    ) {
        let stream = random_stream(seed, 6_000, 2);
        let mut buf = TraceBuffer::fetch_only();
        for &r in &stream {
            buf.fetch(r);
        }
        let trace = buf.freeze();
        let grid = SweepSpec::paper_grid(1).cpus(2);
        let jobs = vec![
            grid.clone().filter(StreamFilter::UserOnly),
            grid.clone().filter(StreamFilter::KernelOnly),
            grid,
        ];
        let res = ParallelSweep::new(threads).run(&trace, &jobs);
        // Misses don't partition in general (the combined cache suffers
        // cross-stream interference), but accesses must split exactly.
        for ((user, kernel), all) in res[0].iter().zip(&res[1]).zip(&res[2]) {
            prop_assert_eq!(
                user.stats.accesses + kernel.stats.accesses,
                all.stats.accesses
            );
        }
    }
}
