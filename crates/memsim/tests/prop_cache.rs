//! Property tests for the cache simulators: agreement with a naive
//! reference LRU model, the LRU inclusion property, and collector
//! bookkeeping identities.

use codelayout_memsim::{
    AccessClass, CacheConfig, ICacheSim, Itlb, LocalityCache, SequenceProfiler, StreamFilter,
};
use codelayout_vm::{FetchRecord, TraceSink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive set-associative LRU model: per set, a Vec ordered MRU-first.
struct RefCache {
    line_shift: u32,
    sets: u64,
    ways: usize,
    state: Vec<Vec<u64>>,
    misses: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            line_shift: cfg.line_bytes.trailing_zeros(),
            sets: cfg.sets(),
            ways: cfg.ways as usize,
            state: vec![Vec::new(); cfg.sets() as usize],
            misses: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let s = &mut self.state[set];
        if let Some(pos) = s.iter().position(|&l| l == line) {
            s.remove(pos);
            s.insert(0, line);
            true
        } else {
            self.misses += 1;
            s.insert(0, line);
            s.truncate(self.ways);
            false
        }
    }
}

fn random_trace(seed: u64, len: usize, space: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut pc: u64 = 0;
    for _ in 0..len {
        // Mix sequential runs with jumps, like an instruction stream.
        if rng.gen_bool(0.8) {
            pc = (pc + 4) % space;
        } else {
            pc = rng.gen_range(0..space / 4) * 4;
        }
        out.push(pc);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn icache_matches_reference_lru(
        seed in 0u64..10_000,
        sets_log in 0u32..6,
        ways in 1u32..8,
        line_log in 4u32..8,
    ) {
        let line = 1u32 << line_log;
        let size = (1u64 << sets_log) * line as u64 * ways as u64;
        let cfg = CacheConfig::new(size, line, ways);
        let mut sim = ICacheSim::new(cfg);
        let mut reference = RefCache::new(cfg);
        for addr in random_trace(seed, 4_000, 1 << 16) {
            let h1 = sim.access(addr, AccessClass::User);
            let h2 = reference.access(addr);
            prop_assert_eq!(h1, h2, "divergence at {:#x}", addr);
        }
        prop_assert_eq!(sim.stats().misses, reference.misses);
        prop_assert_eq!(sim.stats().accesses, 4_000);
    }

    #[test]
    fn lru_inclusion_property(seed in 0u64..10_000, sets_log in 0u32..5) {
        // Fixed set count, growing ways: misses never increase.
        let trace = random_trace(seed, 6_000, 1 << 15);
        let mut prev = u64::MAX;
        for ways in [1u32, 2, 4, 8] {
            let size = (1u64 << sets_log) * 64 * ways as u64;
            let mut sim = ICacheSim::new(CacheConfig::new(size, 64, ways));
            for &a in &trace {
                sim.access(a, AccessClass::User);
            }
            prop_assert!(sim.stats().misses <= prev);
            prev = sim.stats().misses;
        }
    }

    #[test]
    fn displaced_matrix_accounts_every_miss(seed in 0u64..10_000) {
        let mut sim = ICacheSim::new(CacheConfig::new(1024, 64, 2));
        let mut rng = StdRng::seed_from_u64(seed);
        for addr in random_trace(seed, 3_000, 1 << 14) {
            let class = if rng.gen_bool(0.3) {
                AccessClass::Kernel
            } else {
                AccessClass::User
            };
            sim.access(addr, class);
        }
        let s = sim.stats();
        let total: u64 = s.displaced.iter().flatten().sum();
        prop_assert_eq!(total, s.misses);
        prop_assert_eq!(s.misses_by_class[0] + s.misses_by_class[1], s.misses);
    }

    #[test]
    fn locality_cache_bookkeeping_identities(seed in 0u64..10_000) {
        let cfg = CacheConfig::new(2048, 128, 2);
        let mut c = LocalityCache::new(cfg, StreamFilter::All);
        let trace = random_trace(seed, 5_000, 1 << 13);
        for &a in &trace {
            c.access(a);
        }
        let misses = c.misses();
        let st = c.finish();
        // After finish(), every fill has been retired exactly once.
        prop_assert_eq!(st.replacements, misses);
        prop_assert_eq!(st.words_fetched, st.replacements * 32);
        let unique_total: u64 = st.unique_words.iter().sum();
        prop_assert_eq!(unique_total, st.replacements);
        let reuse_total: u64 = st.word_reuse.iter().sum();
        prop_assert_eq!(reuse_total, st.words_fetched);
        let life_total: u64 = st.lifetime_log2.iter().sum();
        prop_assert_eq!(life_total, st.replacements);
        // Unused fraction is consistent with the reuse histogram.
        prop_assert_eq!(st.word_reuse[0], st.words_unused);
    }

    #[test]
    fn sequence_profiler_partition_identity(seed in 0u64..10_000) {
        let mut s = SequenceProfiler::new(StreamFilter::All);
        let trace = random_trace(seed, 5_000, 1 << 13);
        for &a in &trace {
            s.fetch(FetchRecord { addr: a, cpu: 0, pid: 0, kernel: false });
        }
        let st = s.finish();
        prop_assert_eq!(st.instructions, 5_000);
        let hist_runs: u64 = st.histogram.iter().sum();
        prop_assert_eq!(hist_runs, st.runs);
        prop_assert!(st.average_length() >= 1.0);
    }

    #[test]
    fn itlb_miss_count_bounded_by_unique_pages(seed in 0u64..10_000, entries in 1usize..64) {
        let mut t = Itlb::new(entries, 8192);
        let trace = random_trace(seed, 3_000, 1 << 20);
        let mut pages = std::collections::HashSet::new();
        for &a in &trace {
            t.access(a);
            pages.insert(a >> 13);
        }
        // At least one miss per distinct page; with a big enough TLB,
        // exactly one.
        prop_assert!(t.misses() >= pages.len() as u64);
        if entries >= pages.len() {
            prop_assert_eq!(t.misses(), pages.len() as u64);
        }
    }
}
