//! Differential property tests for the stack-distance sweep engine:
//! on arbitrary random traces, the single-pass Mattson profiler must
//! produce **bit-identical** `CacheStats` — misses, per-class misses
//! and the Figure 13 displaced-line matrix — to the direct per-config
//! `ICacheSim` sweep, across the paper's Figure 4 grid (25 geometries,
//! direct-mapped and 2-way) and Figure 6 grid (sizes at 128 B / 4-way),
//! for 1, 2 and 7 worker threads, and every stream filter.

use codelayout_memsim::{ParallelSweep, StreamFilter, SweepEngine, SweepSpec, LINES_B, SIZES_KB};
use codelayout_vm::{FetchRecord, FrozenTrace, TraceBuffer, TraceSink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bursty mixed user/kernel stream: mostly sequential fetch with
/// random jumps, the shape the layout pipeline produces.
fn random_trace(seed: u64, len: usize, cpus: u8) -> FrozenTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = TraceBuffer::fetch_only();
    let mut pc: u64 = 0x40_0000;
    for _ in 0..len {
        let kernel = rng.gen_bool(0.25);
        if rng.gen_bool(0.15) {
            pc = rng.gen_range(0u64..1 << 18) & !3;
        } else {
            pc += 4;
        }
        let addr = if kernel { 0x8000_0000 + pc } else { pc };
        buf.fetch(FetchRecord {
            addr,
            cpu: rng.gen_range(0u64..cpus.max(1) as u64) as u8,
            pid: rng.gen_range(0u64..8) as u8,
            kernel,
        });
    }
    buf.freeze()
}

/// The grids under test: the Figure 4 grid at two associativities and
/// the Figure 6/7/12 size sweep at 128 B / 4-way.
fn grids_under_test(cpus: usize, filter: StreamFilter) -> Vec<SweepSpec> {
    vec![
        SweepSpec::paper_grid(1).cpus(cpus).filter(filter),
        SweepSpec::paper_grid(2).cpus(cpus).filter(filter),
        SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .line_b(128)
            .ways(4)
            .cpus(cpus)
            .filter(filter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stack_engine_is_bit_identical_to_direct(
        seed in 0u64..10_000,
        cpus in 1usize..4,
        filter_idx in 0usize..3,
    ) {
        let filter = [StreamFilter::UserOnly, StreamFilter::KernelOnly, StreamFilter::All]
            [filter_idx];
        let trace = random_trace(seed, 8_000, cpus as u8);
        let jobs = grids_under_test(cpus, filter);
        let oracle = ParallelSweep::new(1)
            .with_engine(SweepEngine::Direct)
            .run(&trace, &jobs);
        for threads in [1usize, 2, 7] {
            let stack = ParallelSweep::new(threads)
                .with_engine(SweepEngine::Stack)
                .run(&trace, &jobs);
            prop_assert_eq!(
                &stack,
                &oracle,
                "stack engine diverged: seed {}, {} cpus, {:?}, {} threads",
                seed,
                cpus,
                filter,
                threads
            );
        }
    }

    #[test]
    fn mattson_inclusion_misses_monotone_in_size(
        seed in 0u64..10_000,
        ways_idx in 0usize..3,
        line_idx in 0usize..5,
    ) {
        // The inclusion property itself, end to end: at fixed ways and
        // line size, growing the cache never adds misses.
        let ways = [1u32, 2, 4][ways_idx];
        let line = LINES_B[line_idx];
        let trace = random_trace(seed, 8_000, 2);
        let spec = SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .line_b(line)
            .ways(ways)
            .cpus(2);
        let cells = ParallelSweep::new(2).run_one(&trace, &spec);
        for pair in cells.windows(2) {
            prop_assert!(
                pair[1].stats.misses <= pair[0].stats.misses,
                "misses grew with size at {}B/{}-way: {} -> {}",
                line,
                ways,
                pair[0].stats.misses,
                pair[1].stats.misses
            );
        }
    }
}
