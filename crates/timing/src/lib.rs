//! In-order processor timing model.
//!
//! The paper reports end-to-end results as *non-idle execution cycles*
//! (§3.3) on a 1 GHz single-issue pipelined model with 12 ns L2 hits and
//! 80 ns local memory, and on two hardware platforms (21264-like and
//! 21164-like front-ends, Figure 15). This crate turns
//! [`codelayout_memsim::HierarchyStats`] plus an instruction count into a
//! cycle breakdown: one cycle per instruction plus stall cycles per miss
//! level. Relative times between layouts are the quantity of interest;
//! absolute cycle counts are model artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use codelayout_memsim::{CacheConfig, HierarchyConfig, HierarchyStats};
use serde::{Deserialize, Serialize};

/// Stall latencies (in CPU cycles) of one machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Human-readable machine name.
    pub name: String,
    /// Cycles for an L1 miss that hits in L2 (the paper's 12 ns at 1 GHz).
    pub l2_hit_cycles: u64,
    /// Cycles for an L2 miss served from local memory (80 ns at 1 GHz).
    pub memory_cycles: u64,
    /// Cycles for an iTLB miss (software fill on Alpha).
    pub itlb_miss_cycles: u64,
}

impl TimingModel {
    /// The paper's simulated 1 GHz next-generation Alpha (21364-like).
    pub fn simos_1ghz() -> Self {
        TimingModel {
            name: "21364-like 1GHz (SimOS)".into(),
            l2_hit_cycles: 12,
            memory_cycles: 80,
            itlb_miss_cycles: 40,
        }
    }

    /// A 21264-like machine (64 KB 2-way L1s). Same relative latencies.
    pub fn alpha_21264() -> Self {
        TimingModel {
            name: "21264-like (64KB, 2-way)".into(),
            l2_hit_cycles: 14,
            memory_cycles: 90,
            itlb_miss_cycles: 40,
        }
    }

    /// A 21164-like machine (8 KB direct-mapped L1I).
    pub fn alpha_21164() -> Self {
        TimingModel {
            name: "21164-like (8KB, 1-way)".into(),
            l2_hit_cycles: 10,
            memory_cycles: 60,
            itlb_miss_cycles: 30,
        }
    }

    /// Hierarchy configuration matching [`TimingModel::alpha_21264`].
    pub fn hierarchy_21264(num_cpus: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_cpus,
            l1i: CacheConfig::new(64 * 1024, 64, 2),
            l1d: CacheConfig::new(64 * 1024, 64, 2),
            l2: CacheConfig::new(2 * 1024 * 1024, 64, 1),
            itlb_entries: 128,
            page_bytes: 8192,
        }
    }

    /// Hierarchy configuration matching [`TimingModel::alpha_21164`]:
    /// small 8 KB direct-mapped primary caches and a 2 MB direct-mapped
    /// board cache, with the 48-entry iTLB the paper measured.
    pub fn hierarchy_21164(num_cpus: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_cpus,
            l1i: CacheConfig::new(8 * 1024, 32, 1),
            l1d: CacheConfig::new(8 * 1024, 32, 1),
            l2: CacheConfig::new(2 * 1024 * 1024, 64, 1),
            itlb_entries: 48,
            page_bytes: 8192,
        }
    }

    /// Computes the cycle breakdown for a run.
    pub fn evaluate(&self, instructions: u64, h: &HierarchyStats) -> CycleBreakdown {
        let l1i_l2hit = h.l1i_misses - h.l2_instr_misses;
        let l1d_l2hit = h.l1d_misses - h.l2_data_misses;
        CycleBreakdown {
            busy: instructions,
            istall: l1i_l2hit * self.l2_hit_cycles + h.l2_instr_misses * self.memory_cycles,
            dstall: l1d_l2hit * self.l2_hit_cycles + h.l2_data_misses * self.memory_cycles,
            itlb_stall: h.itlb_misses * self.itlb_miss_cycles,
        }
    }
}

/// Non-idle cycles split by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// One cycle per retired instruction.
    pub busy: u64,
    /// Instruction-fetch stall cycles.
    pub istall: u64,
    /// Data stall cycles.
    pub dstall: u64,
    /// iTLB fill stall cycles.
    pub itlb_stall: u64,
}

impl CycleBreakdown {
    /// Total non-idle cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.istall + self.dstall + self.itlb_stall
    }

    /// This breakdown's total relative to a baseline total (1.0 = equal;
    /// lower is faster). This is the y-axis of the paper's Figure 15.
    pub fn relative_to(&self, baseline: &CycleBreakdown) -> f64 {
        if baseline.total() == 0 {
            return 1.0;
        }
        self.total() as f64 / baseline.total() as f64
    }

    /// Speedup of this breakdown over `other` (the paper reports 1.33×).
    pub fn speedup_over(&self, other: &CycleBreakdown) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        other.total() as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> HierarchyStats {
        HierarchyStats {
            fetches: 1_000_000,
            data_accesses: 300_000,
            l1i_misses: 10_000,
            l1d_misses: 5_000,
            itlb_misses: 100,
            l2_instr_misses: 1_000,
            l2_data_misses: 2_000,
        }
    }

    #[test]
    fn breakdown_adds_up() {
        let m = TimingModel::simos_1ghz();
        let b = m.evaluate(1_000_000, &stats());
        assert_eq!(b.busy, 1_000_000);
        // 9000 L2 hits * 12 + 1000 memory * 80
        assert_eq!(b.istall, 9_000 * 12 + 1_000 * 80);
        // 3000 * 12 + 2000 * 80
        assert_eq!(b.dstall, 3_000 * 12 + 2_000 * 80);
        assert_eq!(b.itlb_stall, 100 * 40);
        assert_eq!(b.total(), b.busy + b.istall + b.dstall + b.itlb_stall);
    }

    #[test]
    fn relative_and_speedup() {
        let m = TimingModel::simos_1ghz();
        let base = m.evaluate(1_000_000, &stats());
        let better = m.evaluate(
            1_000_000,
            &HierarchyStats {
                l1i_misses: 3_000,
                l2_instr_misses: 300,
                ..stats()
            },
        );
        assert!(better.relative_to(&base) < 1.0);
        assert!(better.speedup_over(&base) > 1.0);
        let r = better.relative_to(&base) * better.speedup_over(&base);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        let z = CycleBreakdown::default();
        assert_eq!(z.total(), 0);
        assert_eq!(z.relative_to(&z), 1.0);
        assert_eq!(z.speedup_over(&z), 1.0);
    }

    #[test]
    fn machine_presets_differ() {
        assert_ne!(TimingModel::alpha_21264(), TimingModel::alpha_21164());
        let h64 = TimingModel::hierarchy_21264(1);
        let h8 = TimingModel::hierarchy_21164(1);
        assert!(h64.l1i.size_bytes > h8.l1i.size_bytes);
        assert_eq!(h8.itlb_entries, 48);
    }
}
