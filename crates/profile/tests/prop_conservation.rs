//! Property tests for profiles: exact profiles conserve flow, and edge
//! estimation from block counts conserves outgoing mass.

use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::Layout;
use codelayout_profile::{estimate_edges_from_blocks, PixieCollector, SampledCollector};
use codelayout_vm::{Machine, MachineConfig, NullSink, PairHook, APP_TEXT_BASE};
use proptest::prelude::*;
use std::sync::Arc;

const FUEL: u64 = 2_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_profiles_conserve_flow(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let image = Arc::new(
            link(&program, &Layout::natural(&program), APP_TEXT_BASE).unwrap(),
        );
        let mut m = Machine::new(image, MachineConfig::default());
        let mut pixie = PixieCollector::user(program.blocks.len());
        let report = m.run_hooked(&mut NullSink, &mut pixie, FUEL);
        prop_assert!(report.faults.is_empty());
        let profile = pixie.into_profile();
        // One process entered the program entry once without an edge.
        let violations = profile.flow_violations(&program, 1);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
    }

    #[test]
    fn estimated_edges_conserve_outgoing_mass(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let image = Arc::new(
            link(&program, &Layout::natural(&program), APP_TEXT_BASE).unwrap(),
        );
        let mut m = Machine::new(image, MachineConfig::default());
        let mut pixie = PixieCollector::user(program.blocks.len());
        m.run_hooked(&mut NullSink, &mut pixie, FUEL);
        let exact = pixie.into_profile();

        let est = estimate_edges_from_blocks(&program, &exact.block_counts);
        // For every block with successors and a nonzero count, estimated
        // outgoing edges sum exactly to the block count.
        for (bi, b) in program.blocks.iter().enumerate() {
            let c = exact.block_counts[bi];
            let nsucc = b.term.successors().count();
            if c == 0 || nsucc == 0 {
                continue;
            }
            let out: u64 = est
                .edge_counts
                .iter()
                .filter(|((f, _), _)| *f == bi as u32)
                .map(|(_, v)| *v)
                .sum();
            // Both the proportional and the even split distribute their
            // rounding remainder, so the sum is exact.
            prop_assert_eq!(out, c, "block {} outgoing mass: {} of {}", bi, out, c);
        }
        // Estimated call counts equal exact call counts (calls are
        // unconditional per block execution).
        prop_assert_eq!(&est.call_counts, &exact.call_counts);
    }

    #[test]
    fn sampled_block_estimates_track_exact_counts(seed in 0u64..5_000) {
        let program = random_program(seed, &GenConfig {
            loop_iters: 200,
            ..GenConfig::default()
        });
        let image = Arc::new(
            link(&program, &Layout::natural(&program), APP_TEXT_BASE).unwrap(),
        );
        let mut m = Machine::new(image, MachineConfig::default());
        let mut hook = PairHook(
            PixieCollector::user(program.blocks.len()),
            SampledCollector::user(program.blocks.len(), 16),
        );
        let report = m.run_hooked(&mut NullSink, &mut hook, 20_000_000);
        prop_assert!(report.faults.is_empty());
        let exact = hook.0.into_profile();
        let sizes: Vec<usize> = program.blocks.iter().map(|b| b.instrs.len() + 1).collect();
        let est = hook.1.estimated_block_counts(&sizes);

        // Hot blocks (≥ 64 samples worth of executions) estimated within 3x.
        for (bi, (&e, &x)) in est.iter().zip(&exact.block_counts).enumerate() {
            if x >= 1_000 {
                prop_assert!(
                    e as f64 >= x as f64 / 3.0 && e as f64 <= x as f64 * 3.0,
                    "block {}: est {} vs exact {}",
                    bi, e, x
                );
            }
        }
    }
}
