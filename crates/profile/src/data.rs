//! The [`Profile`] data structure.

use codelayout_ir::{BlockId, ProcId, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io;

/// Errors when loading or validating profiles.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProfileError {
    /// The profile does not match the program (block count mismatch).
    Mismatch(String),
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Format(serde_json::Error),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Mismatch(m) => write!(f, "profile does not match program: {m}"),
            ProfileError::Io(e) => write!(f, "profile i/o error: {e}"),
            ProfileError::Format(e) => write!(f, "profile format error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            ProfileError::Format(e) => Some(e),
            ProfileError::Mismatch(_) => None,
        }
    }
}

impl From<io::Error> for ProfileError {
    fn from(e: io::Error) -> Self {
        ProfileError::Io(e)
    }
}

impl From<serde_json::Error> for ProfileError {
    fn from(e: serde_json::Error) -> Self {
        ProfileError::Format(e)
    }
}

/// Execution counts for one program: per-block counts, flow-edge counts and
/// call counts. All the layout optimizations consume this structure.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Execution count of each block, indexed by [`BlockId`].
    pub block_counts: Vec<u64>,
    /// Flow-edge traversal counts keyed by `(from, to)` block ids. Edges are
    /// terminator transitions only; calls and returns are not flow edges.
    pub edge_counts: HashMap<(u32, u32), u64>,
    /// Call counts keyed by `(calling block, callee procedure)`.
    pub call_counts: HashMap<(u32, u32), u64>,
}

impl Profile {
    /// Creates an all-zero profile sized for `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> Self {
        Profile {
            block_counts: vec![0; num_blocks],
            edge_counts: HashMap::new(),
            call_counts: HashMap::new(),
        }
    }

    /// Execution count of a block (0 when out of range).
    #[inline]
    pub fn block_count(&self, b: BlockId) -> u64 {
        self.block_counts.get(b.index()).copied().unwrap_or(0)
    }

    /// Traversal count of a flow edge.
    #[inline]
    pub fn edge_count(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(from.0, to.0)).copied().unwrap_or(0)
    }

    /// Call count from a block into a procedure.
    #[inline]
    pub fn call_count(&self, from: BlockId, callee: ProcId) -> u64 {
        self.call_counts
            .get(&(from.0, callee.0))
            .copied()
            .unwrap_or(0)
    }

    /// Total dynamic block entries.
    pub fn total_block_entries(&self) -> u64 {
        self.block_counts.iter().sum()
    }

    /// Total calls into a procedure, summed over all call sites.
    pub fn calls_into(&self, callee: ProcId) -> u64 {
        self.call_counts
            .iter()
            .filter(|((_, c), _)| *c == callee.0)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Merges another profile of the same shape into this one.
    ///
    /// # Errors
    /// Returns [`ProfileError::Mismatch`] if block vectors differ in length.
    pub fn merge(&mut self, other: &Profile) -> Result<(), ProfileError> {
        if self.block_counts.len() != other.block_counts.len() {
            return Err(ProfileError::Mismatch(format!(
                "{} vs {} blocks",
                self.block_counts.len(),
                other.block_counts.len()
            )));
        }
        for (a, b) in self.block_counts.iter_mut().zip(&other.block_counts) {
            *a += b;
        }
        for (k, v) in &other.edge_counts {
            *self.edge_counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.call_counts {
            *self.call_counts.entry(*k).or_insert(0) += v;
        }
        Ok(())
    }

    /// Checks flow conservation against a program: for every block, its
    /// entry count must equal incoming flow edges plus incoming calls (for
    /// procedure entry blocks), allowing `slack` for blocks that were
    /// executing when collection started/stopped (process entry points).
    ///
    /// Returns the list of violating blocks with `(expected, actual)`.
    pub fn flow_violations(&self, program: &Program, slack: u64) -> Vec<(BlockId, u64, u64)> {
        let n = program.blocks.len();
        let mut incoming = vec![0u64; n];
        for (&(_, to), &c) in &self.edge_counts {
            if (to as usize) < n {
                incoming[to as usize] += c;
            }
        }
        for (&(_, callee), &c) in &self.call_counts {
            let entry = program.proc(ProcId(callee)).entry;
            incoming[entry.index()] += c;
        }
        // The program entry block is additionally entered once per process
        // without any edge or call; `slack` is the process count.
        let prog_entry = program.proc(program.entry).entry;
        incoming[prog_entry.index()] += slack;

        let mut out = Vec::new();
        for (i, &actual) in self.block_counts.iter().enumerate() {
            let expected = incoming[i];
            if actual != expected {
                out.push((BlockId(i as u32), expected, actual));
            }
        }
        out
    }

    /// Aggregated call-graph weights at procedure granularity:
    /// `(caller proc, callee proc) -> calls`, derived with the block-owner
    /// map of `program`.
    pub fn proc_call_weights(&self, program: &Program) -> HashMap<(u32, u32), u64> {
        let owner = program.owner_of_blocks();
        let mut w: HashMap<(u32, u32), u64> = HashMap::new();
        for (&(from_block, callee), &c) in &self.call_counts {
            let caller = owner[from_block as usize];
            *w.entry((caller.0, callee)).or_insert(0) += c;
        }
        w
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    /// Returns an error if the writer fails.
    pub fn save<W: io::Write>(&self, mut w: W) -> Result<(), ProfileError> {
        // HashMap keys must be strings in JSON; use a stable on-disk form.
        let disk = DiskProfile::from(self);
        serde_json::to_writer(&mut w, &disk.to_value())?;
        Ok(())
    }

    /// Deserializes from JSON produced by [`Profile::save`].
    ///
    /// # Errors
    /// Returns an error if the reader fails or the JSON is malformed.
    pub fn load<R: io::Read>(r: R) -> Result<Self, ProfileError> {
        let value = serde_json::from_reader(r)?;
        let disk = DiskProfile::from_value(&value)?;
        Ok(disk.into())
    }
}

/// On-disk representation with vector-encoded maps (JSON-friendly and
/// deterministic when sorted). Converted to and from `serde_json`
/// values explicitly so the wire format is spelled out in one place.
struct DiskProfile {
    block_counts: Vec<u64>,
    edges: Vec<(u32, u32, u64)>,
    calls: Vec<(u32, u32, u64)>,
}

impl DiskProfile {
    fn to_value(&self) -> serde_json::Value {
        let triples = |ts: &[(u32, u32, u64)]| {
            serde_json::Value::Array(
                ts.iter()
                    .map(|&(a, b, c)| serde_json::json!([a, b, c]))
                    .collect(),
            )
        };
        serde_json::json!({
            "block_counts": self.block_counts.clone(),
            "edges": triples(&self.edges),
            "calls": triples(&self.calls),
        })
    }

    fn from_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let bad = |what: &str| serde_json::Error::new(format!("profile JSON: {what}"));
        let arr = |key: &str| {
            v.get(key)
                .as_array()
                .ok_or_else(|| bad(&format!("`{key}` must be an array")))
        };
        let block_counts = arr("block_counts")?
            .iter()
            .map(|x| x.as_u64().ok_or_else(|| bad("block count must be a u64")))
            .collect::<Result<Vec<u64>, _>>()?;
        let triples = |key: &str| {
            arr(key)?
                .iter()
                .map(|e| {
                    let t = e
                        .as_array()
                        .filter(|t| t.len() == 3)
                        .ok_or_else(|| bad(&format!("`{key}` entries must be [u32, u32, u64]")))?;
                    let small = |i: usize| {
                        t[i].as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .ok_or_else(|| bad(&format!("`{key}` id out of u32 range")))
                    };
                    let c = t[2]
                        .as_u64()
                        .ok_or_else(|| bad(&format!("`{key}` count must be a u64")))?;
                    Ok((small(0)?, small(1)?, c))
                })
                .collect::<Result<Vec<(u32, u32, u64)>, serde_json::Error>>()
        };
        Ok(DiskProfile {
            block_counts,
            edges: triples("edges")?,
            calls: triples("calls")?,
        })
    }
}

impl From<&Profile> for DiskProfile {
    fn from(p: &Profile) -> Self {
        let mut edges: Vec<_> = p
            .edge_counts
            .iter()
            .map(|(&(a, b), &c)| (a, b, c))
            .collect();
        edges.sort_unstable();
        let mut calls: Vec<_> = p
            .call_counts
            .iter()
            .map(|(&(a, b), &c)| (a, b, c))
            .collect();
        calls.sort_unstable();
        DiskProfile {
            block_counts: p.block_counts.clone(),
            edges,
            calls,
        }
    }
}

impl From<DiskProfile> for Profile {
    fn from(d: DiskProfile) -> Self {
        Profile {
            block_counts: d.block_counts,
            edge_counts: d.edges.into_iter().map(|(a, b, c)| ((a, b), c)).collect(),
            call_counts: d.calls.into_iter().map(|(a, b, c)| ((a, b), c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_default_to_zero() {
        let p = Profile::new(3);
        assert_eq!(p.block_count(BlockId(0)), 0);
        assert_eq!(p.block_count(BlockId(99)), 0);
        assert_eq!(p.edge_count(BlockId(0), BlockId(1)), 0);
        assert_eq!(p.call_count(BlockId(0), ProcId(0)), 0);
        assert_eq!(p.total_block_entries(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Profile::new(2);
        a.block_counts[0] = 5;
        a.edge_counts.insert((0, 1), 2);
        let mut b = Profile::new(2);
        b.block_counts[0] = 3;
        b.block_counts[1] = 1;
        b.edge_counts.insert((0, 1), 4);
        b.call_counts.insert((1, 0), 9);
        a.merge(&b).unwrap();
        assert_eq!(a.block_counts, vec![8, 1]);
        assert_eq!(a.edge_counts[&(0, 1)], 6);
        assert_eq!(a.call_counts[&(1, 0)], 9);
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let mut a = Profile::new(2);
        let b = Profile::new(3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let mut p = Profile::new(4);
        p.block_counts = vec![1, 2, 3, 4];
        p.edge_counts.insert((0, 1), 10);
        p.edge_counts.insert((1, 2), 20);
        p.call_counts.insert((2, 0), 30);
        let mut buf = Vec::new();
        p.save(&mut buf).unwrap();
        let q = Profile::load(&buf[..]).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn calls_into_sums_over_sites() {
        let mut p = Profile::new(4);
        p.call_counts.insert((0, 7), 3);
        p.call_counts.insert((1, 7), 4);
        p.call_counts.insert((2, 8), 5);
        assert_eq!(p.calls_into(ProcId(7)), 7);
        assert_eq!(p.calls_into(ProcId(8)), 5);
        assert_eq!(p.calls_into(ProcId(9)), 0);
    }
}
