//! Flow-edge estimation from block counts.
//!
//! When profiles come from PC sampling (DCPI) only block counts are known.
//! Spike then estimates control-flow edge weights from the block counts;
//! this module implements that estimation: the outgoing count of a block is
//! split across its successors proportionally to the successors' own
//! execution counts.

use crate::data::Profile;
use codelayout_ir::{BlockId, Program, Terminator};

/// Builds a full [`Profile`] from per-block counts by estimating edge
/// weights. Call counts are estimated per call site as the containing
/// block's count (each execution of a block executes each of its call
/// instructions once).
pub fn estimate_edges_from_blocks(program: &Program, block_counts: &[u64]) -> Profile {
    let mut p = Profile::new(program.blocks.len());
    p.block_counts = block_counts.to_vec();

    for (bi, block) in program.blocks.iter().enumerate() {
        let from = BlockId(bi as u32);
        let c = block_counts.get(bi).copied().unwrap_or(0);
        if c == 0 {
            continue;
        }
        // Calls: every execution of the block runs its calls once.
        for ins in &block.instrs {
            if let codelayout_ir::Instr::Call { callee } = ins {
                *p.call_counts.entry((from.0, callee.0)).or_insert(0) += c;
            }
        }
        // Edges: split proportionally to successor counts.
        let succs: Vec<BlockId> = dedup_successors(&block.term);
        if succs.is_empty() {
            continue;
        }
        let weights: Vec<u64> = succs
            .iter()
            .map(|s| block_counts.get(s.index()).copied().unwrap_or(0))
            .collect();
        let total: u64 = weights.iter().sum();
        if total == 0 {
            // No information: split evenly, handing the remainder one
            // token each to the first `c % len` successors so the
            // outgoing estimates still sum exactly to the block count.
            let len = succs.len() as u64;
            let share = c / len;
            let rem = (c % len) as usize;
            for (i, s) in succs.iter().enumerate() {
                let w = share + u64::from(i < rem);
                if w > 0 {
                    *p.edge_counts.entry((from.0, s.0)).or_insert(0) += w;
                }
            }
            continue;
        }
        let mut assigned = 0u64;
        for (i, s) in succs.iter().enumerate() {
            let w = if i + 1 == succs.len() {
                c - assigned // give the remainder to the last successor
            } else {
                let w = (c as u128 * weights[i] as u128 / total as u128) as u64;
                assigned += w;
                w
            };
            if w > 0 {
                *p.edge_counts.entry((from.0, s.0)).or_insert(0) += w;
            }
        }
    }
    p
}

fn dedup_successors(term: &Terminator) -> Vec<BlockId> {
    let mut out = Vec::new();
    for s in term.successors() {
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    fn branchy_program() -> Program {
        let mut pb = ProgramBuilder::new("e");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let hot = f.new_block();
        let cold = f.new_block();
        let done = f.new_block();
        f.select(e);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        f.select(hot);
        f.call(leaf);
        f.jump(done);
        f.select(cold);
        f.jump(done);
        f.select(done);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(leaf, g).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn proportional_split_and_conservation() {
        let p = branchy_program();
        // entry=0, hot=1, cold=2, done=3, leaf entry=4.
        let counts = vec![100, 90, 10, 100, 90];
        let prof = estimate_edges_from_blocks(&p, &counts);
        assert_eq!(prof.edge_counts[&(0, 1)], 90);
        assert_eq!(prof.edge_counts[&(0, 2)], 10);
        // Outgoing edges of block 0 sum to its count (remainder rule).
        let out: u64 = prof
            .edge_counts
            .iter()
            .filter(|((f, _), _)| *f == 0)
            .map(|(_, c)| *c)
            .sum();
        assert_eq!(out, 100);
        // Calls estimated from block counts.
        assert_eq!(prof.call_counts[&(1, 1)], 90);
    }

    #[test]
    fn zero_information_splits_evenly() {
        let p = branchy_program();
        let counts = vec![100, 0, 0, 0, 0];
        let prof = estimate_edges_from_blocks(&p, &counts);
        assert_eq!(prof.edge_counts[&(0, 1)], 50);
        assert_eq!(prof.edge_counts[&(0, 2)], 50);
    }

    #[test]
    fn zero_information_split_distributes_the_remainder() {
        let p = branchy_program();
        // 101 across two successors must not drop the odd token: the
        // first successor gets the extra one and the outgoing edges sum
        // exactly to the block's count.
        let counts = vec![101, 0, 0, 0, 0];
        let prof = estimate_edges_from_blocks(&p, &counts);
        assert_eq!(prof.edge_counts[&(0, 1)], 51);
        assert_eq!(prof.edge_counts[&(0, 2)], 50);
        let out: u64 = prof
            .edge_counts
            .iter()
            .filter(|((f, _), _)| *f == 0)
            .map(|(_, c)| *c)
            .sum();
        assert_eq!(out, 101);
    }

    #[test]
    fn zero_blocks_produce_no_edges() {
        let p = branchy_program();
        let counts = vec![0; 5];
        let prof = estimate_edges_from_blocks(&p, &counts);
        assert!(prof.edge_counts.is_empty());
        assert!(prof.call_counts.is_empty());
    }
}
