//! Profile collectors: exact (Pixie-style) and sampled (DCPI-style).

use crate::data::Profile;
use codelayout_ir::{BlockId, ProcId};
use codelayout_vm::ExecHook;

/// Which instruction stream a collector observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stream {
    User,
    Kernel,
}

/// Exact instrumentation collector, the equivalent of running a *pixified*
/// binary: counts every block entry, flow-edge traversal and call.
///
/// One collector observes one stream (user or kernel); attach two to profile
/// both images in a single run.
#[derive(Debug, Clone)]
pub struct PixieCollector {
    stream: Stream,
    profile: Profile,
}

impl PixieCollector {
    /// Collects the application (user-mode) stream for a program with
    /// `num_blocks` blocks.
    pub fn user(num_blocks: usize) -> Self {
        PixieCollector {
            stream: Stream::User,
            profile: Profile::new(num_blocks),
        }
    }

    /// Collects the kernel stream for a kernel program with `num_blocks`
    /// blocks.
    pub fn kernel(num_blocks: usize) -> Self {
        PixieCollector {
            stream: Stream::Kernel,
            profile: Profile::new(num_blocks),
        }
    }

    /// Consumes the collector, returning the profile.
    pub fn into_profile(self) -> Profile {
        self.profile
    }

    /// Borrow the profile collected so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    #[inline]
    fn wants(&self, kernel: bool) -> bool {
        matches!(
            (self.stream, kernel),
            (Stream::User, false) | (Stream::Kernel, true)
        )
    }
}

impl ExecHook for PixieCollector {
    #[inline]
    fn block(&mut self, kernel: bool, block: BlockId) {
        if self.wants(kernel) {
            self.profile.block_counts[block.index()] += 1;
        }
    }

    #[inline]
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        if self.wants(kernel) {
            *self.profile.edge_counts.entry((from.0, to.0)).or_insert(0) += 1;
        }
    }

    #[inline]
    fn call(&mut self, kernel: bool, from_block: BlockId, callee: ProcId) {
        if self.wants(kernel) {
            *self
                .profile
                .call_counts
                .entry((from_block.0, callee.0))
                .or_insert(0) += 1;
        }
    }
}

/// Sampling collector modelled after DCPI: every `period` retired
/// instructions the current block receives one sample. Produces block
/// counts only; edge weights must be estimated (see
/// [`crate::estimate_edges_from_blocks`]).
#[derive(Debug, Clone)]
pub struct SampledCollector {
    stream: Stream,
    period: u64,
    countdown: u64,
    samples: Vec<u64>,
}

impl SampledCollector {
    /// Samples the user stream every `period` instructions.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn user(num_blocks: usize, period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        SampledCollector {
            stream: Stream::User,
            period,
            countdown: period,
            samples: vec![0; num_blocks],
        }
    }

    /// Samples the kernel stream every `period` instructions.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn kernel(num_blocks: usize, period: u64) -> Self {
        SampledCollector {
            stream: Stream::Kernel,
            ..Self::user(num_blocks, period)
        }
    }

    /// Raw per-block sample counts.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Converts samples into estimated block *execution* counts by scaling
    /// with the sampling period and dividing by block size (a block of `k`
    /// instructions receives `k` times the samples per execution).
    ///
    /// `block_sizes[i]` must be the instruction count of block `i`
    /// (including one slot for its terminator, matching the lowered form
    /// closely enough for estimation).
    pub fn estimated_block_counts(&self, block_sizes: &[usize]) -> Vec<u64> {
        self.samples
            .iter()
            .zip(block_sizes)
            .map(|(&s, &sz)| s * self.period / (sz.max(1) as u64))
            .collect()
    }
}

impl ExecHook for SampledCollector {
    #[inline]
    fn tick(&mut self, kernel: bool, block: BlockId) {
        let wants = matches!(
            (self.stream, kernel),
            (Stream::User, false) | (Stream::Kernel, true)
        );
        if !wants {
            return;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            self.samples[block.index()] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixie_filters_by_stream() {
        let mut c = PixieCollector::user(2);
        c.block(false, BlockId(0));
        c.block(true, BlockId(1));
        c.edge(false, BlockId(0), BlockId(1));
        c.edge(true, BlockId(0), BlockId(1));
        c.call(false, BlockId(0), ProcId(0));
        let p = c.into_profile();
        assert_eq!(p.block_counts, vec![1, 0]);
        assert_eq!(p.edge_counts[&(0, 1)], 1);
        assert_eq!(p.call_counts[&(0, 0)], 1);
    }

    #[test]
    fn kernel_collector_takes_kernel_events() {
        let mut c = PixieCollector::kernel(1);
        c.block(true, BlockId(0));
        c.block(false, BlockId(0));
        assert_eq!(c.profile().block_counts, vec![1]);
    }

    #[test]
    fn sampler_takes_every_period_th() {
        let mut s = SampledCollector::user(2, 3);
        for _ in 0..9 {
            s.tick(false, BlockId(1));
        }
        assert_eq!(s.samples(), &[0, 3]);
        // Estimation: block of size 1, period 3 -> 9 estimated executions.
        assert_eq!(s.estimated_block_counts(&[1, 1]), vec![0, 9]);
        // A block of 3 instructions is sampled 3x as often per execution.
        assert_eq!(s.estimated_block_counts(&[1, 3]), vec![0, 3]);
    }

    #[test]
    fn sampler_ignores_other_stream() {
        let mut s = SampledCollector::kernel(1, 1);
        s.tick(false, BlockId(0));
        assert_eq!(s.samples(), &[0]);
        s.tick(true, BlockId(0));
        assert_eq!(s.samples(), &[1]);
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_period_panics() {
        let _ = SampledCollector::user(1, 0);
    }
}
