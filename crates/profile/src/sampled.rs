//! Sampled **edge** profiling for continuous (serving-loop) use.
//!
//! The offline collectors in [`crate::PixieCollector`] and
//! [`crate::SampledCollector`] answer the paper's question: profile once,
//! lay out once. A serving loop needs something different — a profiler
//! cheap enough to leave attached forever, whose output can be *aged* so
//! the live picture tracks workload drift. This module provides the three
//! pieces:
//!
//! * [`EdgeSampler`] — an [`ExecHook`] that samples every Nth control
//!   transfer (flow edge or call) into a mergeable [`SampleShard`];
//! * [`DecayedEdgeCounts`] — an exponentially decayed accumulator of
//!   shards, in exact integer arithmetic so accumulation is deterministic
//!   regardless of worker count or merge order;
//! * [`profile_from_edge_samples`] — reconstructs a full [`Profile`] from
//!   the decayed edge counts, scaling by the sampling period and deriving
//!   block counts from edge flow.
//!
//! It also hosts the block-sample estimation path the
//! `ablation_sampled` binary uses ([`block_sizes`] +
//! [`profile_from_block_samples`]), so the ablation and the serving loop
//! share one tested implementation.

use crate::collect::{SampledCollector, Stream};
use crate::data::Profile;
use crate::estimate::estimate_edges_from_blocks;
use codelayout_ir::{BlockId, ProcId, Program};
use codelayout_vm::ExecHook;
use std::collections::BTreeMap;

/// A mergeable bag of sampled control-transfer counts.
///
/// One shard per worker: workers sample lock-free into their own shard and
/// the epoch boundary merges them. `BTreeMap` keeps iteration (and thus
/// every downstream computation) deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleShard {
    /// Sampled flow-edge hits, keyed by `(from_block, to_block)`.
    pub edges: BTreeMap<(u32, u32), u64>,
    /// Sampled call hits, keyed by `(from_block, callee_proc)`.
    pub calls: BTreeMap<(u32, u32), u64>,
    /// Control transfers observed (sampled or not) — the denominator of
    /// the effective sampling rate.
    pub events: u64,
    /// Samples actually taken (edge + call hits).
    pub samples: u64,
}

impl SampleShard {
    /// An empty shard.
    pub fn new() -> Self {
        SampleShard::default()
    }

    /// True when no event has been observed.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Folds another worker's shard into this one. Order-independent:
    /// merging is plain addition on disjoint-or-equal keys.
    pub fn merge(&mut self, other: &SampleShard) {
        for (&k, &v) in &other.edges {
            *self.edges.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.calls {
            *self.calls.entry(k).or_insert(0) += v;
        }
        self.events += other.events;
        self.samples += other.samples;
    }
}

/// Low-overhead sampling profiler: every `period`-th control transfer
/// (flow edge or call) on the observed stream records one sample into the
/// worker's [`SampleShard`].
///
/// Unlike [`SampledCollector`] (which samples retired *instructions* and
/// therefore needs per-tick bookkeeping), this hook only runs on block
/// terminators — the hot path of a measured run never sees it.
#[derive(Debug, Clone)]
pub struct EdgeSampler {
    stream: Stream,
    period: u64,
    countdown: u64,
    /// `period - countdown` at the last [`EdgeSampler::take_shard`]:
    /// event totals are derived from the countdown on demand rather
    /// than counted per event, keeping the hot path to one decrement.
    taken_consumed: u64,
    shard: SampleShard,
}

impl EdgeSampler {
    /// Samples the user stream every `period` control transfers.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn user(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        EdgeSampler {
            stream: Stream::User,
            period,
            countdown: period,
            taken_consumed: 0,
            shard: SampleShard::new(),
        }
    }

    /// Samples the kernel stream every `period` control transfers.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn kernel(period: u64) -> Self {
        EdgeSampler {
            stream: Stream::Kernel,
            ..Self::user(period)
        }
    }

    /// The configured sampling period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Events consumed from the current countdown cycle.
    #[inline]
    fn consumed(&self) -> u64 {
        self.period - self.countdown
    }

    /// Control transfers observed on the sampled stream since the last
    /// [`EdgeSampler::take_shard`], derived from the countdown state.
    pub fn pending_events(&self) -> u64 {
        self.shard.samples * self.period + self.consumed() - self.taken_consumed
    }

    /// A copy of the shard accumulated so far, with the event total
    /// materialized.
    pub fn shard(&self) -> SampleShard {
        let mut shard = self.shard.clone();
        shard.events = self.pending_events();
        shard
    }

    /// Takes the accumulated shard, leaving the sampler empty (the
    /// countdown keeps running so sampling stays periodic across epochs).
    pub fn take_shard(&mut self) -> SampleShard {
        let events = self.pending_events();
        self.taken_consumed = self.consumed();
        let mut shard = std::mem::take(&mut self.shard);
        shard.events = events;
        shard
    }

    #[inline]
    fn wants(&self, kernel: bool) -> bool {
        matches!(
            (self.stream, kernel),
            (Stream::User, false) | (Stream::Kernel, true)
        )
    }

    /// One-in-`period` sample of a flow edge. `#[cold]` keeps the
    /// countdown reset and map insert out of the inlined hot path, so
    /// the per-transfer cost is a decrement and a predicted branch.
    #[cold]
    fn sample_edge(&mut self, from: BlockId, to: BlockId) {
        self.countdown = self.period;
        self.shard.samples += 1;
        *self.shard.edges.entry((from.0, to.0)).or_insert(0) += 1;
    }

    /// One-in-`period` sample of a call edge; see [`Self::sample_edge`].
    #[cold]
    fn sample_call(&mut self, from_block: BlockId, callee: ProcId) {
        self.countdown = self.period;
        self.shard.samples += 1;
        *self
            .shard
            .calls
            .entry((from_block.0, callee.0))
            .or_insert(0) += 1;
    }
}

impl ExecHook for EdgeSampler {
    #[inline]
    fn edge(&mut self, kernel: bool, from: BlockId, to: BlockId) {
        if self.wants(kernel) {
            self.countdown -= 1;
            if self.countdown == 0 {
                self.sample_edge(from, to);
            }
        }
    }

    #[inline]
    fn call(&mut self, kernel: bool, from_block: BlockId, callee: ProcId) {
        if self.wants(kernel) {
            self.countdown -= 1;
            if self.countdown == 0 {
                self.sample_call(from_block, callee);
            }
        }
    }
}

/// Exponentially decayed accumulation of [`SampleShard`]s across epochs.
///
/// Each epoch boundary first decays every retained count by `num/den`
/// (integer floor, zeros dropped), then absorbs the epoch's fresh shard.
/// Integer arithmetic keeps the result bit-identical across runs; the
/// floor means counts below `den/num` evaporate, which is exactly the
/// staleness behaviour we want from old phases.
#[derive(Debug, Clone)]
pub struct DecayedEdgeCounts {
    /// Decayed flow-edge sample counts.
    pub edges: BTreeMap<(u32, u32), u64>,
    /// Decayed call sample counts.
    pub calls: BTreeMap<(u32, u32), u64>,
    num: u64,
    den: u64,
}

impl DecayedEdgeCounts {
    /// Creates an accumulator with decay factor `num/den` per epoch.
    ///
    /// # Panics
    /// Panics unless `0 < num <= den`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(num > 0 && den >= num, "decay factor must be in (0, 1]");
        DecayedEdgeCounts {
            edges: BTreeMap::new(),
            calls: BTreeMap::new(),
            num,
            den,
        }
    }

    /// Ages every retained count by one epoch.
    pub fn decay(&mut self) {
        let (num, den) = (self.num as u128, self.den as u128);
        let age = |m: &mut BTreeMap<(u32, u32), u64>| {
            m.retain(|_, c| {
                *c = (*c as u128 * num / den) as u64;
                *c > 0
            });
        };
        age(&mut self.edges);
        age(&mut self.calls);
    }

    /// Adds a fresh epoch shard (call [`DecayedEdgeCounts::decay`] first
    /// to age history).
    pub fn absorb(&mut self, shard: &SampleShard) {
        for (&k, &v) in &shard.edges {
            *self.edges.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &shard.calls {
            *self.calls.entry(k).or_insert(0) += v;
        }
    }

    /// Total retained edge weight.
    pub fn total_edge_weight(&self) -> u64 {
        self.edges.values().sum()
    }
}

/// L1 distance between two edge-count *distributions*, in milli-units
/// (0 = identical, 2000 = disjoint support).
///
/// Both maps are normalized by their own totals, so absolute sample
/// volume cancels; the arithmetic is exact integer throughout
/// (`|a·B − b·A|` summed over the key union, scaled by `1000 / (A·B)`),
/// so the score is deterministic. Returns 0 when either side is empty
/// (no evidence of drift).
pub fn edge_l1_milli(
    live: &BTreeMap<(u32, u32), u64>,
    reference: &BTreeMap<(u32, u32), u64>,
) -> u64 {
    let a_total: u64 = live.values().sum();
    let b_total: u64 = reference.values().sum();
    if a_total == 0 || b_total == 0 {
        return 0;
    }
    let (big_a, big_b) = (a_total as u128, b_total as u128);
    let mut num: u128 = 0;
    for (k, &a) in live {
        let b = reference.get(k).copied().unwrap_or(0);
        num += (a as u128 * big_b).abs_diff(b as u128 * big_a);
    }
    for (k, &b) in reference {
        if !live.contains_key(k) {
            num += b as u128 * big_a;
        }
    }
    (num * 1000 / (big_a * big_b)) as u64
}

/// Reconstructs a full [`Profile`] from decayed edge samples.
///
/// Edge and call counts are the retained samples scaled by the sampling
/// period. Block counts are derived from flow: a block's count is the
/// larger of its scaled inflow and outflow (inflow includes calls into
/// its procedure's entry block), which keeps the estimate conservative on
/// blocks whose incoming edges were never sampled.
pub fn profile_from_edge_samples(
    program: &Program,
    counts: &DecayedEdgeCounts,
    period: u64,
) -> Profile {
    let n = program.blocks.len();
    let mut p = Profile::new(n);
    let mut inflow = vec![0u64; n];
    let mut outflow = vec![0u64; n];

    for (&(from, to), &c) in &counts.edges {
        let scaled = c.saturating_mul(period);
        if scaled == 0 {
            continue;
        }
        *p.edge_counts.entry((from, to)).or_insert(0) += scaled;
        if let Some(o) = outflow.get_mut(from as usize) {
            *o += scaled;
        }
        if let Some(i) = inflow.get_mut(to as usize) {
            *i += scaled;
        }
    }
    for (&(from, callee), &c) in &counts.calls {
        let scaled = c.saturating_mul(period);
        if scaled == 0 {
            continue;
        }
        *p.call_counts.entry((from, callee)).or_insert(0) += scaled;
        if let Some(proc) = program.procs.get(callee as usize) {
            if let Some(i) = inflow.get_mut(proc.entry.index()) {
                *i += scaled;
            }
        }
    }
    for (i, count) in p.block_counts.iter_mut().enumerate() {
        *count = inflow[i].max(outflow[i]);
    }
    p
}

/// Per-block instruction sizes for sample-rate normalization: the body
/// plus one slot for the terminator, matching the lowered form closely
/// enough for estimation.
pub fn block_sizes(program: &Program) -> Vec<usize> {
    program.blocks.iter().map(|b| b.instrs.len() + 1).collect()
}

/// The DCPI path end to end: converts a [`SampledCollector`]'s block
/// samples into a full profile by normalizing for block size, scaling by
/// the period, and estimating edge weights from the block counts (as
/// Spike does when given sampled profiles).
pub fn profile_from_block_samples(program: &Program, sampler: &SampledCollector) -> Profile {
    let counts = sampler.estimated_block_counts(&block_sizes(program));
    estimate_edges_from_blocks(program, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(edges: &[((u32, u32), u64)]) -> BTreeMap<(u32, u32), u64> {
        edges.iter().copied().collect()
    }

    #[test]
    fn sampler_takes_every_period_th_transfer() {
        let mut s = EdgeSampler::user(3);
        for _ in 0..6 {
            s.edge(false, BlockId(0), BlockId(1));
        }
        assert_eq!(s.shard().events, 6);
        assert_eq!(s.shard().samples, 2);
        assert_eq!(s.shard().edges[&(0, 1)], 2);
    }

    #[test]
    fn sampler_counts_calls_and_edges_on_one_countdown() {
        let mut s = EdgeSampler::user(2);
        s.edge(false, BlockId(0), BlockId(1)); // countdown 2 -> 1
        s.call(false, BlockId(1), ProcId(7)); // countdown 1 -> sample
        assert_eq!(s.shard().samples, 1);
        assert!(s.shard().edges.is_empty());
        assert_eq!(s.shard().calls[&(1, 7)], 1);
    }

    #[test]
    fn sampler_filters_by_stream() {
        let mut s = EdgeSampler::user(1);
        s.edge(true, BlockId(0), BlockId(1));
        assert!(s.shard().is_empty());
        let mut k = EdgeSampler::kernel(1);
        k.edge(true, BlockId(0), BlockId(1));
        assert_eq!(k.shard().edges[&(0, 1)], 1);
    }

    #[test]
    fn take_shard_preserves_the_countdown() {
        let mut s = EdgeSampler::user(3);
        s.edge(false, BlockId(0), BlockId(1));
        let first = s.take_shard();
        assert_eq!(first.events, 1);
        assert!(s.shard().is_empty());
        // Two more events complete the original period of 3.
        s.edge(false, BlockId(0), BlockId(1));
        s.edge(false, BlockId(0), BlockId(1));
        assert_eq!(s.shard().samples, 1);
    }

    #[test]
    fn shard_merge_is_addition() {
        let mut a = SampleShard::new();
        a.edges.insert((0, 1), 2);
        a.events = 10;
        a.samples = 2;
        let mut b = SampleShard::new();
        b.edges.insert((0, 1), 1);
        b.edges.insert((1, 2), 5);
        b.calls.insert((2, 0), 3);
        b.events = 20;
        b.samples = 9;
        a.merge(&b);
        assert_eq!(a.edges[&(0, 1)], 3);
        assert_eq!(a.edges[&(1, 2)], 5);
        assert_eq!(a.calls[&(2, 0)], 3);
        assert_eq!(a.events, 30);
        assert_eq!(a.samples, 11);
    }

    #[test]
    fn decay_halves_and_drops_zeros() {
        let mut d = DecayedEdgeCounts::new(1, 2);
        let mut s = SampleShard::new();
        s.edges.insert((0, 1), 8);
        s.edges.insert((1, 2), 1);
        d.absorb(&s);
        d.decay();
        assert_eq!(d.edges.get(&(0, 1)), Some(&4));
        assert_eq!(d.edges.get(&(1, 2)), None); // 1/2 floors to 0
        d.decay();
        d.decay();
        assert_eq!(d.edges.get(&(0, 1)), Some(&1));
        d.decay();
        assert!(d.edges.is_empty());
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_factor_above_one_panics() {
        let _ = DecayedEdgeCounts::new(3, 2);
    }

    #[test]
    fn l1_identical_distributions_score_zero() {
        let a = shard(&[((0, 1), 10), ((1, 2), 30)]);
        let b = shard(&[((0, 1), 1), ((1, 2), 3)]); // same shape, 10x volume
        assert_eq!(edge_l1_milli(&a, &b), 0);
    }

    #[test]
    fn l1_disjoint_distributions_score_two_thousand() {
        let a = shard(&[((0, 1), 5)]);
        let b = shard(&[((7, 8), 11)]);
        assert_eq!(edge_l1_milli(&a, &b), 2000);
    }

    #[test]
    fn l1_partial_overlap_is_exact() {
        // a = {x: 3/4, y: 1/4}, b = {x: 1/4, y: 3/4}:
        // L1 = |3/4-1/4| + |1/4-3/4| = 1.0 exactly.
        let a = shard(&[((0, 1), 3), ((1, 2), 1)]);
        let b = shard(&[((0, 1), 1), ((1, 2), 3)]);
        assert_eq!(edge_l1_milli(&a, &b), 1000);
        // Symmetric.
        assert_eq!(edge_l1_milli(&b, &a), 1000);
    }

    #[test]
    fn l1_empty_side_scores_zero() {
        let a = shard(&[((0, 1), 5)]);
        assert_eq!(edge_l1_milli(&a, &BTreeMap::new()), 0);
        assert_eq!(edge_l1_milli(&BTreeMap::new(), &a), 0);
    }

    fn branchy_program() -> Program {
        use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};
        let mut pb = ProgramBuilder::new("s");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let hot = f.new_block();
        let cold = f.new_block();
        let done = f.new_block();
        f.select(e);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        f.select(hot);
        f.call(leaf);
        f.jump(done);
        f.select(cold);
        f.jump(done);
        f.select(done);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(leaf, g).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn profile_reconstruction_scales_by_period_and_flows_blocks() {
        // Blocks: main entry=0, hot=1, cold=2, done=3; leaf entry=4.
        let program = branchy_program();
        let mut d = DecayedEdgeCounts::new(1, 1);
        let mut s = SampleShard::new();
        s.edges.insert((0, 1), 9);
        s.edges.insert((0, 2), 1);
        s.edges.insert((1, 3), 9);
        s.edges.insert((2, 3), 1);
        s.calls.insert((1, 1), 9); // callee ProcId(1) = leaf, entry block 4
        d.absorb(&s);
        let p = profile_from_edge_samples(&program, &d, 64);
        assert_eq!(p.edge_count(BlockId(0), BlockId(1)), 9 * 64);
        assert_eq!(p.call_counts[&(1, 1)], 9 * 64);
        // Block 0: outflow (9+1)*64, no inflow.
        assert_eq!(p.block_counts[0], 10 * 64);
        // Block 3: inflow (9+1)*64, no outflow.
        assert_eq!(p.block_counts[3], 10 * 64);
        // Leaf entry: inflow from calls only.
        assert_eq!(p.block_counts[4], 9 * 64);
    }

    #[test]
    fn block_sizes_count_the_terminator() {
        let program = branchy_program();
        let sizes = block_sizes(&program);
        assert_eq!(sizes.len(), program.blocks.len());
        // main entry holds only its branch terminator.
        assert_eq!(sizes[0], 1);
        // leaf entry: nop + ret.
        assert_eq!(sizes[4], 2);
    }
}
