//! Profile data and collectors for the `codelayout` toolkit.
//!
//! The paper's layout algorithms are profile-driven: Spike consumed basic
//! block execution counts collected either by **Pixie** (exact
//! instrumentation) or **DCPI** (hardware PC sampling). This crate provides
//! both acquisition modes as [`codelayout_vm::ExecHook`] implementations:
//!
//! * [`PixieCollector`] — exact block, flow-edge and call counts;
//! * [`SampledCollector`] — periodic PC samples giving approximate block
//!   counts, with flow edges estimated from block counts (as Spike does
//!   when given sampled profiles);
//! * [`EdgeSampler`] (module [`sampled`]) — a continuous control-transfer
//!   sampler for the serving loop, with exponentially decayed
//!   accumulation, drift scoring ([`edge_l1_milli`]) and profile
//!   reconstruction ([`profile_from_edge_samples`]).
//!
//! The resulting [`Profile`] is the single input of every optimization in
//! `codelayout-core`.
//!
//! # Example
//!
//! ```
//! use codelayout_ir::{ProcBuilder, ProgramBuilder, Reg, Layout};
//! use codelayout_vm::{Machine, MachineConfig, NullSink};
//! use codelayout_profile::PixieCollector;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new("p");
//! let main = pb.declare_proc("main");
//! let mut f = ProcBuilder::new();
//! f.imm(Reg(1), 1);
//! f.halt();
//! pb.define_proc(main, f)?;
//! let program = pb.finish(main)?;
//! let image = codelayout_ir::link::link(&program, &Layout::natural(&program), 0x40_0000)?;
//!
//! let mut m = Machine::new(image.into(), MachineConfig::default());
//! let mut pixie = PixieCollector::user(program.blocks.len());
//! m.run_hooked(&mut NullSink, &mut pixie, 1_000);
//! let profile = pixie.into_profile();
//! assert_eq!(profile.block_count(codelayout_ir::BlockId(0)), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collect;
mod data;
mod estimate;
pub mod sampled;

pub use collect::{PixieCollector, SampledCollector};
pub use data::{Profile, ProfileError};
pub use estimate::estimate_edges_from_blocks;
pub use sampled::{
    edge_l1_milli, profile_from_block_samples, profile_from_edge_samples, DecayedEdgeCounts,
    EdgeSampler, SampleShard,
};
