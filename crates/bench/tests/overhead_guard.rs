//! Observability overhead guard.
//!
//! The design claim behind the sharded metrics layer is that the replay
//! hot loop carries **zero** per-event instrumentation: workers time
//! themselves into a private shard outside the loop and merge once at
//! join. This test holds the implementation to that claim two ways:
//!
//! 1. **Bit-identical results** — a sweep replayed with observability
//!    enabled produces exactly the same cells as one replayed with it
//!    disabled.
//! 2. **<5% throughput cost** — interleaved best-of-N wall times for
//!    the two modes differ by less than 5%. Best-of-N with interleaved
//!    ordering cancels warm-up and scheduler noise; since the per-event
//!    path is identical code, the real difference is ~0%.
//!
//! This file holds exactly one test: it toggles the process-global
//! enabled flag, so it must not share a process with tests that expect
//! observability to stay on.

use codelayout_memsim::{ParallelSweep, StreamFilter, SweepSpec};
use codelayout_vm::{FetchRecord, FrozenTrace, TraceBuffer, TraceSink};
use std::time::Instant;

/// A mixed user/kernel multi-CPU trace big enough that a sweep over it
/// takes a few milliseconds even in debug builds.
fn test_trace(events: u64) -> FrozenTrace {
    let mut buf = TraceBuffer::new();
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..events {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let kernel = x.is_multiple_of(5);
        let base = if kernel { 0x8000_0000 } else { 0x40_0000 };
        buf.fetch(FetchRecord {
            addr: (base + x % (256 * 1024)) & !3,
            cpu: (i % 4) as u8,
            pid: (i % 8) as u8,
            kernel,
        });
    }
    buf.freeze()
}

#[test]
fn instrumented_replay_is_bit_identical_and_within_5pct() {
    let trace = test_trace(400_000);
    let jobs = vec![
        SweepSpec::paper_grid(1)
            .cpus(4)
            .filter(StreamFilter::UserOnly),
        SweepSpec::grid().size_kb(128).line_b(128).ways(4).cpus(4),
    ];
    let sweeper = ParallelSweep::new(2);

    // Result equality first (and once more per timed round below).
    codelayout_obs::set_enabled(true);
    let with_obs = sweeper.run(&trace, &jobs);
    codelayout_obs::set_enabled(false);
    let without_obs = sweeper.run(&trace, &jobs);
    assert_eq!(with_obs, without_obs, "observability changed sweep results");

    // Interleaved best-of-N timing: alternate modes so drift in machine
    // load hits both equally; take each mode's best time.
    const ROUNDS: usize = 5;
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for _ in 0..ROUNDS {
        codelayout_obs::set_enabled(true);
        let t = Instant::now();
        let r = sweeper.run(&trace, &jobs);
        best_on = best_on.min(t.elapsed().as_secs_f64());
        assert_eq!(r, with_obs);

        codelayout_obs::set_enabled(false);
        let t = Instant::now();
        let r = sweeper.run(&trace, &jobs);
        best_off = best_off.min(t.elapsed().as_secs_f64());
        assert_eq!(r, with_obs);
    }
    codelayout_obs::set_enabled(true);

    let events_per_sec_on = 1.0 / best_on;
    let events_per_sec_off = 1.0 / best_off;
    let cost = (events_per_sec_off - events_per_sec_on) / events_per_sec_off;
    assert!(
        cost < 0.05,
        "instrumented replay lost {:.1}% throughput (best {:.4}s vs {:.4}s uninstrumented)",
        cost * 100.0,
        best_on,
        best_off
    );
}
