//! Golden-figure regression test: the cross-algorithm comparison table
//! (paper trio vs ext-TSP vs Codestitcher) on the fixed-seed `quick`
//! scenario must match the checked-in snapshot bit-for-bit.
//!
//! Everything in the table is deterministic — seeded workload,
//! deterministic VM, thread-count-independent sweeps, integer
//! fixed-point ext-TSP scores, BTreeMap-ordered lint summaries — so any
//! diff is a real behavior change in a layout pass, the simulator, or
//! the lint battery. The series list is pinned to the default
//! comparison set here so a caller's `CODELAYOUT_LAYOUT_SERIES` cannot
//! change the snapshot.
//!
//! # Updating the snapshot
//!
//! When a change intentionally moves these numbers, regenerate with
//!
//! ```text
//! CODELAYOUT_UPDATE_GOLDEN=1 cargo test -p codelayout-bench --test golden_compare
//! ```
//!
//! then review the diff of `tests/golden/compare_quick.json` in the same
//! commit and explain the shift in the commit message.

use codelayout_bench::{figures, Harness};
use codelayout_core::LayoutSeries;
use codelayout_oltp::Scenario;
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/compare_quick.json"
);
const UPDATE_ENV: &str = codelayout_obs::env::UPDATE_GOLDEN_ENV;

#[test]
fn compare_quick_matches_golden_snapshot() {
    let mut h = Harness::with_label(&Scenario::quick(), "quick");
    let got = figures::compare_with(&mut h, &LayoutSeries::comparison());

    if codelayout_bench::run_env().update_golden {
        let mut text = serde_json::to_string_pretty(&got).expect("serialize snapshot");
        text.push('\n');
        std::fs::write(GOLDEN_PATH, text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }

    let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN_PATH}: {e}\n\
             regenerate with {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_compare"
        )
    });
    let want: Value = serde_json::from_str(&raw).expect("parse golden snapshot");
    assert_eq!(
        got, want,
        "comparison-table quick-scenario snapshot diverged from \
         tests/golden/compare_quick.json.\n\
         If this change is intentional, regenerate the snapshot with\n\
         {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_compare\n\
         and review the JSON diff in the same commit."
    );
}
