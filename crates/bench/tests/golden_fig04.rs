//! Golden-figure regression test: the Figure 4 direct-mapped miss grid
//! for the `base` and `all` layouts on the fixed-seed `quick` scenario
//! must match the checked-in snapshot bit-for-bit.
//!
//! The whole pipeline under this figure is deterministic (seeded
//! workload, deterministic VM, replayed sweeps that are thread-count
//! independent), so any diff here is a real behavior change — either a
//! bug, or an intentional change to the simulator/optimizer that
//! shifts miss counts.
//!
//! # Updating the snapshot
//!
//! When a change intentionally moves these numbers, regenerate with
//!
//! ```text
//! CODELAYOUT_UPDATE_GOLDEN=1 cargo test -p codelayout-bench --test golden_fig04
//! ```
//!
//! then review the diff of `tests/golden/fig04_quick.json` in the same
//! commit and explain the shift in the commit message.

use codelayout_bench::Harness;
use codelayout_oltp::Scenario;
use serde_json::{json, Value};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig04_quick.json");
const UPDATE_ENV: &str = codelayout_obs::env::UPDATE_GOLDEN_ENV;

/// Runs the quick scenario and extracts the Fig. 4 grid (user-stream,
/// direct-mapped size × line sweep) for both fully-instrumented layouts.
fn measure_fig04_quick() -> Value {
    let mut h = Harness::new(&Scenario::quick());
    let mut layouts = serde_json::Map::new();
    for name in ["base", "all"] {
        let cells: Vec<Value> = h
            .run(name)
            .dm_grid_user
            .iter()
            .map(|c| {
                json!({
                    "size_kb": c.config.size_bytes / 1024,
                    "line": c.config.line_bytes,
                    "accesses": c.stats.accesses,
                    "misses": c.stats.misses,
                })
            })
            .collect();
        layouts.insert(name.to_string(), Value::Array(cells));
    }
    json!({
        "figure": "fig04",
        "scenario": "quick",
        "layouts": layouts,
    })
}

#[test]
fn fig04_quick_matches_golden_snapshot() {
    let got = measure_fig04_quick();

    if codelayout_bench::run_env().update_golden {
        let mut text = serde_json::to_string_pretty(&got).expect("serialize snapshot");
        text.push('\n');
        std::fs::write(GOLDEN_PATH, text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }

    let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN_PATH}: {e}\n\
             regenerate with {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_fig04"
        )
    });
    let want: Value = serde_json::from_str(&raw).expect("parse golden snapshot");
    assert_eq!(
        got, want,
        "Fig. 4 quick-scenario grid diverged from tests/golden/fig04_quick.json.\n\
         If this change is intentional, regenerate the snapshot with\n\
         {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_fig04\n\
         and review the JSON diff in the same commit."
    );
}
