//! Golden run-manifest schema test: a miniature instrumented run (study
//! build + Figure 4 + a short serving-loop run + a small-budget
//! autotuner run + result save) on the fixed-seed `quick` scenario must
//! produce a manifest whose *shape* — section layout (including the
//! `serve` and `tune` sections), phase-tree structure, metric names,
//! output file names — matches the checked-in snapshot exactly.
//!
//! Volatile values (wall times, git revision, host parallelism, metric
//! values, output digests) are masked with
//! [`codelayout_obs::manifest::mask_volatile`] before comparison, so
//! the snapshot pins the schema without pinning wall-clock noise. The
//! test also enforces the phase-coverage acceptance bar: the spans
//! under the root must account for at least 95% of the run's wall time.
//!
//! # Updating the snapshot
//!
//! ```text
//! CODELAYOUT_UPDATE_GOLDEN=1 cargo test -p codelayout-bench --test golden_manifest
//! ```
//!
//! then review the diff of `tests/golden/manifest_quick.json` in the
//! same commit.
//!
//! This file holds exactly one test: it snapshots the *global* tracer
//! and metrics registry, so it must not share a process with tests that
//! record their own spans.

use codelayout_bench::{figures, Harness};
use codelayout_obs::manifest::{mask_volatile, validate_manifest};
use codelayout_oltp::{MixPhase, Scenario};
use codelayout_serve::ServeConfig;
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/manifest_quick.json"
);
const UPDATE_ENV: &str = codelayout_obs::env::UPDATE_GOLDEN_ENV;

#[test]
fn manifest_quick_schema_matches_golden_snapshot() {
    // The harness writes results/ relative to the working directory;
    // keep test artifacts out of the source tree.
    let scratch = std::env::temp_dir().join(format!("codelayout-golden-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    std::env::set_current_dir(&scratch).expect("enter scratch dir");

    let root = codelayout_obs::span("golden_run");
    let mut h = Harness::with_label(&Scenario::quick(), "quick");
    let fig = figures::fig04(&mut h);
    h.save_json("fig04", &fig);

    // A short serving-loop run (two phases, two epochs each) so the
    // snapshot pins the manifest's `serve` section schema too.
    let serve_span = codelayout_obs::span("fig_serve");
    let base = Scenario::quick();
    let mut serve_cfg = ServeConfig::drift_demo(&base);
    serve_cfg.phases = vec![MixPhase::new(2, 0), MixPhase::new(2, 3)];
    let mut hs = Harness::with_label(&serve_cfg.serve_scenario(&base), "quick");
    figures::fig_serve(&mut hs, &serve_cfg);
    for (key, value) in hs.extra_sections() {
        h.section(key, value.clone());
    }
    serve_span.finish();

    // A small-budget autotuner run so the snapshot pins the manifest's
    // `tune` section schema too (only `wall_ms` is volatile there).
    let tune_span = codelayout_obs::span("fig_tune");
    let mut tune_cfg = codelayout_tune::TuneConfig::for_scenario(&Scenario::quick());
    tune_cfg.candidates = 12;
    figures::fig_tune(&mut h, &tune_cfg);
    tune_span.finish();
    root.finish();

    let path = h.write_manifest("golden_run").expect("write manifest");
    let raw = std::fs::read_to_string(&path).expect("read manifest back");
    let manifest: Value = serde_json::from_str(&raw).expect("manifest parses");
    validate_manifest(&manifest).expect("manifest validates against the schema");

    // Acceptance bar: the phase tree accounts for ≥95% of the wall time.
    let coverage = manifest
        .get("phase_coverage_pct")
        .as_f64()
        .expect("coverage present");
    assert!(
        coverage >= 95.0,
        "phase coverage {coverage:.2}% < 95% — untracked wall time in the run"
    );

    let got = mask_volatile(&manifest);

    if codelayout_bench::run_env().update_golden {
        let mut text = serde_json::to_string_pretty(&got).expect("serialize snapshot");
        text.push('\n');
        std::fs::write(GOLDEN_PATH, text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }

    let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN_PATH}: {e}\n\
             regenerate with {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_manifest"
        )
    });
    let want: Value = serde_json::from_str(&raw).expect("parse golden snapshot");
    assert_eq!(
        got, want,
        "masked run manifest diverged from tests/golden/manifest_quick.json.\n\
         If this schema change is intentional, regenerate the snapshot with\n\
         {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_manifest\n\
         and review the JSON diff in the same commit."
    );
}
