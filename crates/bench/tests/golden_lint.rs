//! Golden lint-report regression test: the `layout_lint` JSON document
//! for the fixed-seed `quick` scenario must match the checked-in
//! snapshot bit-for-bit.
//!
//! Everything feeding this report is deterministic (seeded workload,
//! deterministic VM and profile, deterministic lint ordering), so any
//! diff here is a real change to either the layout pipeline or the lint
//! definitions — both of which deserve a reviewed snapshot update.
//!
//! # Updating the snapshot
//!
//! ```text
//! CODELAYOUT_UPDATE_GOLDEN=1 cargo test -p codelayout-bench --test golden_lint
//! ```
//!
//! then review the diff of `tests/golden/lint_quick.json` in the same
//! commit and explain the shift in the commit message.

use codelayout_bench::lint::{cells_to_json, lint_study};
use codelayout_oltp::{build_study, Scenario};
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint_quick.json");
const UPDATE_ENV: &str = codelayout_obs::env::UPDATE_GOLDEN_ENV;

#[test]
fn lint_quick_matches_golden_snapshot() {
    let study = build_study(&Scenario::quick());
    let got = cells_to_json("quick", &lint_study(&study));

    if codelayout_bench::run_env().update_golden {
        let mut text = serde_json::to_string_pretty(&got).expect("serialize snapshot");
        text.push('\n');
        std::fs::write(GOLDEN_PATH, text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }

    let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN_PATH}: {e}\n\
             regenerate with {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_lint"
        )
    });
    let want: Value = serde_json::from_str(&raw).expect("parse golden snapshot");
    assert_eq!(
        got, want,
        "quick-scenario lint report diverged from tests/golden/lint_quick.json.\n\
         If this change is intentional, regenerate the snapshot with\n\
         {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_lint\n\
         and review the diff."
    );
}
