//! Translation validation must accept every `paper_series` layout of
//! every bundled scenario's application *and* kernel program — the
//! acceptance gate for the whole layout pipeline.

use codelayout_bench::lint::lint_study;
use codelayout_oltp::{build_study, Scenario};

#[test]
fn every_paper_layout_on_every_bundled_scenario_validates() {
    let scenarios = [
        ("quick", Scenario::quick()),
        ("sim", Scenario::paper_sim()),
        ("hw", Scenario::paper_hw()),
    ];
    for (name, sc) in scenarios {
        let study = build_study(&sc);
        for cell in lint_study(&study) {
            assert!(
                cell.translation.is_some(),
                "{name}: `{}` {} image failed translation validation",
                cell.layout,
                cell.target
            );
            assert!(
                !cell.report.has_deny(),
                "{name}: `{}` {} has deny-level findings:\n{}",
                cell.layout,
                cell.target,
                cell.report.render_text()
            );
        }
    }
}
