//! Golden-figure regression test: the static-vs-measured profile study
//! (`fig_static`) on the fixed-seed `quick` scenario must match the
//! checked-in snapshot bit-for-bit.
//!
//! Everything in the figure is deterministic — seeded workload,
//! deterministic VM, thread-count- and engine-independent sweeps,
//! integer fixed-point static frequency propagation, integer ext-TSP
//! scores — so any diff is a real behavior change in the static
//! estimator, a layout pass, or the simulator. The figure itself
//! asserts the subsystem's headline claim (the static-profile `all`
//! layout beats base), so this test also keeps that claim under CI.
//!
//! # Updating the snapshot
//!
//! When a change intentionally moves these numbers, regenerate with
//!
//! ```text
//! CODELAYOUT_UPDATE_GOLDEN=1 cargo test -p codelayout-bench --test golden_static
//! ```
//!
//! then review the diff of `tests/golden/static_quick.json` in the same
//! commit and explain the shift in the commit message.

use codelayout_bench::{figures, Harness};
use codelayout_oltp::Scenario;
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/static_quick.json"
);
const UPDATE_ENV: &str = codelayout_obs::env::UPDATE_GOLDEN_ENV;

#[test]
fn static_quick_matches_golden_snapshot() {
    let mut h = Harness::with_label(&Scenario::quick(), "quick");
    let got = figures::fig_static(&mut h);

    if codelayout_bench::run_env().update_golden {
        let mut text = serde_json::to_string_pretty(&got).expect("serialize snapshot");
        text.push('\n');
        std::fs::write(GOLDEN_PATH, text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }

    let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN_PATH}: {e}\n\
             regenerate with {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_static"
        )
    });
    let want: Value = serde_json::from_str(&raw).expect("parse golden snapshot");
    assert_eq!(
        got, want,
        "static-profile quick-scenario snapshot diverged from \
         tests/golden/static_quick.json.\n\
         If this change is intentional, regenerate the snapshot with\n\
         {UPDATE_ENV}=1 cargo test -p codelayout-bench --test golden_static\n\
         and review the JSON diff in the same commit."
    );
}
