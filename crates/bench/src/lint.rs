//! Shared driver for the `layout_lint` binary and the golden lint test.
//!
//! Both consumers need the identical matrix — every
//! [`LayoutSeries::lint_matrix`] layout (the paper's six sets plus the
//! ext-TSP and Codestitcher passes) of the scenario's application *and*
//! kernel program, validated and linted — so the matrix runner and its
//! JSON rendering live here rather than in the binary.

use codelayout_analysis::{
    analyze_layout, validate_translation, LintConfig, LintReport, Severity, TranslationReport,
};
use codelayout_core::{LayoutPipeline, LayoutSeries};
use codelayout_ir::link::link;
use codelayout_oltp::Study;
use codelayout_vm::{APP_TEXT_BASE, KERNEL_TEXT_BASE};
use serde_json::{json, Value};

/// Lint outcome for one (layout, program) cell of the matrix.
#[derive(Debug)]
pub struct LintCell {
    /// Layout-series label (`base` … `all`, `exttsp`, `stitcher`).
    pub layout: &'static str,
    /// Which program was laid out: `app` or `kernel`.
    pub target: &'static str,
    /// Translation-validation statistics; `None` when validation failed,
    /// in which case `report` carries the `L000` deny describing why.
    pub translation: Option<TranslationReport>,
    /// Layout-quality diagnostics.
    pub report: LintReport,
}

/// Runs the full [`LayoutSeries::lint_matrix`] × {app, kernel} lint
/// matrix on a prepared study. Each series is linted under its own
/// optimization claims ([`LayoutSeries::lint_set`]).
pub fn lint_study(study: &Study) -> Vec<LintCell> {
    let mut cells = Vec::new();
    for series in LayoutSeries::lint_matrix() {
        cells.extend(lint_series_cells(study, series));
    }
    cells
}

/// Runs validation + lints for one series' app and kernel layouts — the
/// two cells [`lint_study`] produces per series, reused by the
/// comparison table for series outside the lint matrix.
pub fn lint_series_cells(study: &Study, series: LayoutSeries) -> Vec<LintCell> {
    let targets: [(
        &'static str,
        &codelayout_ir::Program,
        &codelayout_profile::Profile,
        u64,
    ); 2] = [
        ("app", &study.app.program, &study.profile, APP_TEXT_BASE),
        (
            "kernel",
            &study.kernel.program,
            &study.kernel_profile,
            KERNEL_TEXT_BASE,
        ),
    ];
    let mut cells = Vec::new();
    for &(target, program, profile, base) in &targets {
        let layout = LayoutPipeline::new(program, profile).build_series(series);
        let image = link(program, &layout, base).expect("pipeline layouts link");
        let translation = validate_translation(program, &layout, &image).ok();
        let report = analyze_layout(
            program,
            profile,
            &layout,
            &image,
            &LintConfig::new(series.lint_set()),
        );
        cells.push(LintCell {
            layout: series.label(),
            target,
            translation,
            report,
        });
    }
    cells
}

/// Total findings at `sev` across the matrix.
pub fn count(cells: &[LintCell], sev: Severity) -> usize {
    cells.iter().map(|c| c.report.count(sev)).sum()
}

/// Whether any cell carries a deny-level finding.
pub fn has_deny(cells: &[LintCell]) -> bool {
    cells.iter().any(|c| c.report.has_deny())
}

/// The matrix summary that flows into the run manifest: severity totals
/// plus per-code (`L000`…) finding counts. Truncated findings (dropped
/// past the per-code cap) are counted too, so the totals reflect what
/// the analysis *found*, not what it chose to print.
pub fn summary_json(cells: &[LintCell]) -> Value {
    let mut by_code: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for c in cells {
        for d in &c.report.diagnostics {
            *by_code.entry(d.code).or_insert(0) += 1;
        }
        for &(code, dropped) in &c.report.truncated {
            *by_code.entry(code).or_insert(0) += dropped as u64;
        }
    }
    let mut codes = serde_json::Map::new();
    for (code, n) in by_code {
        codes.insert(code.to_string(), serde_json::Value::from(n));
    }
    json!({
        "deny": count(cells, Severity::Deny) as u64,
        "warn": count(cells, Severity::Warn) as u64,
        "info": count(cells, Severity::Info) as u64,
        "codes": serde_json::Value::Object(codes),
    })
}

/// Renders the matrix as the stable JSON document consumed by CI and the
/// golden test.
pub fn cells_to_json(scenario: &str, cells: &[LintCell]) -> Value {
    let rendered: Vec<Value> = cells
        .iter()
        .map(|c| {
            let translation = match &c.translation {
                Some(t) => json!({
                    "blocks": t.blocks,
                    "body_instrs": t.body_instrs,
                    "edges": t.edges,
                    "calls": t.calls,
                    "fallthroughs": t.fallthroughs,
                    "inverted_branches": t.inverted_branches,
                    "split_branches": t.split_branches,
                    "reachable_blocks": t.reachable_blocks,
                }),
                None => Value::Null,
            };
            json!({
                "layout": c.layout,
                "target": c.target,
                "translation": translation,
                "lints": c.report.to_json(),
            })
        })
        .collect();
    json!({
        "tool": "layout_lint",
        "scenario": scenario,
        "cells": rendered,
        "summary": {
            "deny": count(cells, Severity::Deny),
            "warn": count(cells, Severity::Warn),
            "info": count(cells, Severity::Info),
        },
    })
}

/// Renders the matrix as a human-readable report.
pub fn render_cells_text(scenario: &str, cells: &[LintCell]) -> String {
    let mut out = String::new();
    out.push_str(&format!("layout_lint: scenario `{scenario}`\n"));
    for c in cells {
        out.push_str(&format!("\n== {} / {} ==\n", c.layout, c.target));
        match &c.translation {
            Some(t) => out.push_str(&format!(
                "translation ok: {} blocks, {} edges, {} calls, \
                 {} fallthroughs, {} inverted, {} split\n",
                t.blocks, t.edges, t.calls, t.fallthroughs, t.inverted_branches, t.split_branches,
            )),
            None => out.push_str("translation FAILED (see L000 below)\n"),
        }
        out.push_str(&c.report.render_text());
    }
    out.push_str(&format!(
        "\ntotal: {} deny, {} warn, {} info\n",
        count(cells, Severity::Deny),
        count(cells, Severity::Warn),
        count(cells, Severity::Info),
    ));
    out
}
