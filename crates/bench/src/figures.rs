//! Per-figure experiment logic. Each function prints the figure's series
//! as a table and returns a JSON record (saved by the caller).

use crate::{pct, print_table, run_env, Harness, LINES_B, SIZES_KB};
use codelayout_core::{exttsp_score, LayoutSeries};
use codelayout_memsim::SweepCell;
use codelayout_serve::{run_serve, ServeConfig};
use codelayout_timing::TimingModel;
use codelayout_tune::{run_tune, TuneConfig};
use serde_json::{json, Value};

/// Paper layout labels in presentation order.
pub const LAYOUTS: [&str; 6] = [
    "base",
    "porder",
    "chain",
    "chain+split",
    "chain+porder",
    "all",
];

fn misses_by_size(cells: &[SweepCell]) -> Vec<(u64, u64)> {
    SIZES_KB
        .iter()
        .map(|&k| {
            let c = cells
                .iter()
                .find(|c| c.config.size_bytes == k * 1024 && c.config.line_bytes == 128)
                .expect("size present in sweep");
            (k, c.stats.misses)
        })
        .collect()
}

/// Figure 3: cumulative execution profile of the unoptimized binary.
pub fn fig03(h: &mut Harness) -> Value {
    let program = &h.study.app.program;
    let profile = &h.study.profile;
    // Per-instruction execution counts (body + 1 terminator slot per block).
    let mut counts: Vec<u64> = Vec::new();
    for (bi, block) in program.blocks.iter().enumerate() {
        let c = profile.block_counts[bi];
        if c > 0 {
            for _ in 0..=block.instrs.len() {
                counts.push(c);
            }
        }
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u128 = counts.iter().map(|&c| c as u128).sum();
    let live_bytes = counts.len() as u64 * 4;

    let marks = [50u32, 60, 70, 80, 90, 95, 99, 100];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut cum: u128 = 0;
    let mut next = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        cum += c as u128;
        while next < marks.len() && cum * 100 >= total * marks[next] as u128 {
            let bytes = (i as u64 + 1) * 4;
            rows.push(vec![
                format!("{}%", marks[next]),
                format!("{} KB", bytes / 1024),
            ]);
            series.push(json!({"pct": marks[next], "bytes": bytes}));
            next += 1;
        }
    }
    print_table(
        "Fig 3: fraction of dynamic instructions vs live footprint (base binary)",
        &["captured", "footprint"],
        &rows,
    );
    println!(
        "total live footprint: {} KB (paper: ~260 KB, 60% at ~50 KB, 99% at ~200 KB)",
        live_bytes / 1024
    );
    json!({
        "figure": "fig03",
        "paper": {"total_kb": 260, "kb_at_60pct": 50, "kb_at_99pct": 200},
        "measured": {"total_bytes": live_bytes, "curve": series},
    })
}

/// Figure 4: application I-cache misses across size × line grids,
/// direct-mapped, for the base (a) and optimized (b) binaries.
pub fn fig04(h: &mut Harness) -> Value {
    let mut out = serde_json::Map::new();
    for name in ["base", "all"] {
        let grid = h.run(name).dm_grid_user.clone();
        let mut rows = Vec::new();
        for &size in &SIZES_KB {
            let mut row = vec![format!("{size}KB")];
            for &line in &LINES_B {
                let cell = grid
                    .iter()
                    .find(|c| c.config.size_bytes == size * 1024 && c.config.line_bytes == line)
                    .expect("cell");
                row.push(cell.stats.misses.to_string());
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Fig 4({}) app-only I-cache misses, direct-mapped ({name})",
                if name == "base" { "a" } else { "b" }
            ),
            &["size", "16B", "32B", "64B", "128B", "256B"],
            &rows,
        );
        let cells: Vec<Value> = grid
            .iter()
            .map(|c| {
                json!({"size_kb": c.config.size_bytes / 1024, "line": c.config.line_bytes,
                       "misses": c.stats.misses})
            })
            .collect();
        out.insert(name.to_string(), Value::Array(cells));
    }
    json!({
        "figure": "fig04",
        "paper": "miss counts fall with size and line size; 128B line near-optimal",
        "measured": out,
    })
}

/// Figure 5: optimized/base miss ratio per line size per cache size.
pub fn fig05(h: &mut Harness) -> Value {
    let base = h.run("base").dm_grid_user.clone();
    let opt = h.run("all").dm_grid_user.clone();
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &size in &SIZES_KB {
        let mut row = vec![format!("{size}KB")];
        for &line in &LINES_B {
            let b = base
                .iter()
                .find(|c| c.config.size_bytes == size * 1024 && c.config.line_bytes == line)
                .expect("cell");
            let o = opt
                .iter()
                .find(|c| c.config.size_bytes == size * 1024 && c.config.line_bytes == line)
                .expect("cell");
            let ratio = if b.stats.misses == 0 {
                100.0
            } else {
                100.0 * o.stats.misses as f64 / b.stats.misses as f64
            };
            row.push(format!("{ratio:.0}%"));
            series.push(json!({"size_kb": size, "line": line, "relative_pct": ratio}));
        }
        rows.push(row);
    }
    print_table(
        "Fig 5: relative misses optimized/base (paper: 35-45% at 64-128KB/128B)",
        &["size", "16B", "32B", "64B", "128B", "256B"],
        &rows,
    );
    json!({
        "figure": "fig05",
        "paper": "relative misses fall to 35-45% at 64-128KB; larger lines help more",
        "measured": series,
    })
}

/// Figure 6: associativity impact (1-way vs 4-way, 128 B lines).
pub fn fig06(h: &mut Harness) -> Value {
    let mut series = Vec::new();
    let mut rows = Vec::new();
    let grab = |h: &mut Harness, name: &str, ways: u32, size: u64| -> u64 {
        let d = h.run(name);
        let cells = if ways == 1 {
            &d.dm_grid_user
        } else {
            &d.sizes_4w_user
        };
        cells
            .iter()
            .find(|c| {
                c.config.size_bytes == size * 1024
                    && c.config.line_bytes == 128
                    && c.config.ways == ways
            })
            .map(|c| c.stats.misses)
            .expect("cell")
    };
    for &size in &SIZES_KB {
        let b1 = grab(h, "base", 1, size);
        let b4 = grab(h, "base", 4, size);
        let o1 = grab(h, "all", 1, size);
        let o4 = grab(h, "all", 4, size);
        rows.push(vec![
            format!("{size}KB"),
            b1.to_string(),
            b4.to_string(),
            o1.to_string(),
            o4.to_string(),
        ]);
        series.push(json!({"size_kb": size, "base_1w": b1, "base_4w": b4,
                           "opt_1w": o1, "opt_4w": o4}));
    }
    print_table(
        "Fig 6: associativity impact, 128B lines (paper: small vs layout gains)",
        &["size", "base 1-way", "base 4-way", "opt 1-way", "opt 4-way"],
        &rows,
    );
    json!({
        "figure": "fig06",
        "paper": "associativity gains are small at 32-128KB compared to layout gains",
        "measured": series,
    })
}

/// Figure 7: optimization combinations × cache sizes (128 B, 4-way).
pub fn fig07(h: &mut Harness) -> Value {
    let mut rows = Vec::new();
    let mut series = serde_json::Map::new();
    for name in LAYOUTS {
        let by_size = misses_by_size(&h.run(name).sizes_4w_user);
        let mut row = vec![name.to_string()];
        row.extend(by_size.iter().map(|(_, m)| m.to_string()));
        rows.push(row);
        series.insert(
            name.to_string(),
            Value::Array(
                by_size
                    .iter()
                    .map(|(k, m)| json!({"size_kb": k, "misses": m}))
                    .collect(),
            ),
        );
    }
    print_table(
        "Fig 7: app-only misses by optimization combination (128B/4-way)",
        &["layout", "32KB", "64KB", "128KB", "256KB", "512KB"],
        &rows,
    );
    json!({
        "figure": "fig07",
        "paper": "porder alone ~no gain; chain largest single gain; chain+split ~= chain; \
                  porder after splitting gives the best results",
        "measured": series,
    })
}

/// Figure 8: sequential run lengths (average + histogram).
pub fn fig08(h: &mut Harness) -> Value {
    // Average dynamic basic block size from the profile.
    let program = &h.study.app.program;
    let profile = &h.study.profile;
    let mut instrs: u128 = 0;
    let mut entries: u128 = 0;
    for (bi, b) in program.blocks.iter().enumerate() {
        let c = profile.block_counts[bi] as u128;
        instrs += c * (b.instrs.len() as u128 + 1);
        entries += c;
    }
    let avg_bb = if entries == 0 {
        0.0
    } else {
        instrs as f64 / entries as f64
    };

    let base = h.run("base").seq_user.clone().expect("full run");
    let opt = h.run("all").seq_user.clone().expect("full run");
    let mut rows = vec![
        vec![
            "avg basic block".into(),
            format!("{avg_bb:.2}"),
            String::new(),
        ],
        vec![
            "avg run length".into(),
            format!("{:.2}", base.average_length()),
            format!("{:.2}", opt.average_length()),
        ],
    ];
    for len in 1..=33usize {
        rows.push(vec![
            format!("len {len}"),
            format!("{:.1}%", 100.0 * base.fraction_of_length(len)),
            format!("{:.1}%", 100.0 * opt.fraction_of_length(len)),
        ]);
    }
    print_table(
        "Fig 8: sequentially executed instructions (paper: 7.3 -> 10+; 1-seqs 21% -> 15%)",
        &["metric", "base", "optimized"],
        &rows,
    );
    json!({
        "figure": "fig08",
        "paper": {"avg_base": 7.3, "avg_opt": 10.0, "one_seq_base_pct": 21, "one_seq_opt_pct": 15},
        "measured": {
            "avg_basic_block": avg_bb,
            "avg_base": base.average_length(),
            "avg_opt": opt.average_length(),
            "hist_base": base.histogram,
            "hist_opt": opt.histogram,
        },
    })
}

/// Figure 9: unique words used per 128 B line before replacement.
pub fn fig09(h: &mut Harness) -> Value {
    let base = h.run("base").locality.clone().expect("full run");
    let opt = h.run("all").locality.clone().expect("full run");
    let mut rows = Vec::new();
    for u in 1..=32usize {
        rows.push(vec![
            format!("{u} words"),
            pct(base.unique_words[u], base.replacements),
            pct(opt.unique_words[u], opt.replacements),
        ]);
    }
    rows.push(vec![
        "average".into(),
        format!("{:.1}", base.avg_unique_words()),
        format!("{:.1}", opt.avg_unique_words()),
    ]);
    print_table(
        "Fig 9: unique words used before replacement (paper: opt has >60% full-line use)",
        &["words", "base", "optimized"],
        &rows,
    );
    json!({
        "figure": "fig09",
        "paper": "optimized binary uses all 32 words of >60% of replaced lines",
        "measured": {
            "base": base.unique_words, "opt": opt.unique_words,
            "base_replacements": base.replacements, "opt_replacements": opt.replacements,
        },
    })
}

/// Figure 10: times a word is used before replacement.
pub fn fig10(h: &mut Harness) -> Value {
    let base = h.run("base").locality.clone().expect("full run");
    let opt = h.run("all").locality.clone().expect("full run");
    let mut rows = Vec::new();
    for k in 0..16usize {
        rows.push(vec![
            format!("{k}x"),
            pct(base.word_reuse[k], base.words_fetched),
            pct(opt.word_reuse[k], opt.words_fetched),
        ]);
    }
    print_table(
        "Fig 10: word reuse before replacement (paper: unused 46% base -> 21% opt)",
        &["uses", "base", "optimized"],
        &rows,
    );
    json!({
        "figure": "fig10",
        "paper": {"unused_base_pct": 46, "unused_opt_pct": 21},
        "measured": {
            "unused_base_pct": 100.0 * base.unused_fraction(),
            "unused_opt_pct": 100.0 * opt.unused_fraction(),
            "base": base.word_reuse, "opt": opt.word_reuse,
        },
    })
}

/// Figure 11: cache line lifetimes (log2 cache cycles).
pub fn fig11(h: &mut Harness) -> Value {
    let base = h.run("base").locality.clone().expect("full run");
    let opt = h.run("all").locality.clone().expect("full run");
    let mut rows = Vec::new();
    for b in 8..=30usize {
        let fb = base.lifetime_log2[b];
        let fo = opt.lifetime_log2[b];
        if fb == 0 && fo == 0 {
            continue;
        }
        rows.push(vec![
            format!("2^{b}"),
            pct(fb, base.replacements),
            pct(fo, opt.replacements),
        ]);
    }
    rows.push(vec![
        "mean (accesses)".into(),
        format!("{:.0}", base.mean_lifetime_accesses()),
        format!("{:.0}", opt.mean_lifetime_accesses()),
    ]);
    print_table(
        "Fig 11: line lifetime in cache accesses (paper: mean lifetime >2x with opt)",
        &["lifetime", "base", "optimized"],
        &rows,
    );
    json!({
        "figure": "fig11",
        "paper": "average line lifetime increases by more than 2x",
        "measured": {
            "mean_base": base.mean_lifetime_accesses(),
            "mean_opt": opt.mean_lifetime_accesses(),
            "hist_base": base.lifetime_log2, "hist_opt": opt.lifetime_log2,
        },
    })
}

/// Figure 12: combined application + kernel misses vs cache size.
pub fn fig12(h: &mut Harness) -> Value {
    let mut out = serde_json::Map::new();
    for name in ["base", "all"] {
        let d = h.run(name);
        let all = misses_by_size(&d.sizes_4w_all);
        let app = misses_by_size(&d.sizes_4w_user);
        let kernel = misses_by_size(&d.sizes_4w_kernel);
        let rows: Vec<Vec<String>> = (0..SIZES_KB.len())
            .map(|i| {
                vec![
                    format!("{}KB", SIZES_KB[i]),
                    all[i].1.to_string(),
                    app[i].1.to_string(),
                    kernel[i].1.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig 12({}) combined-stream misses ({name}, 128B/4-way)",
                if name == "base" { "a" } else { "b" }
            ),
            &[
                "size",
                "all (combined)",
                "app (isolated)",
                "kernel (isolated)",
            ],
            &rows,
        );
        out.insert(
            name.to_string(),
            json!({
                "all": all.iter().map(|(k, m)| json!({"size_kb": k, "misses": m})).collect::<Vec<_>>(),
                "app": app.iter().map(|(k, m)| json!({"size_kb": k, "misses": m})).collect::<Vec<_>>(),
                "kernel": kernel.iter().map(|(k, m)| json!({"size_kb": k, "misses": m})).collect::<Vec<_>>(),
            }),
        );
    }
    json!({
        "figure": "fig12",
        "paper": "interference raises combined misses above the isolated sum-of-parts; \
                  effect more pronounced for the optimized binary",
        "measured": out,
    })
}

/// Figure 13: interference matrix at 128 KB (who displaces whom).
pub fn fig13(h: &mut Harness) -> Value {
    let mut out = serde_json::Map::new();
    for name in ["base", "all"] {
        let d = h.run(name);
        let cell = d
            .sizes_4w_all
            .iter()
            .find(|c| c.config.size_bytes == 128 * 1024)
            .expect("128KB cell");
        let s = &cell.stats;
        // displaced[missing][victim]: victim 0=invalid, 1=app, 2=kernel.
        let rows = vec![
            vec![
                "app miss".into(),
                s.displaced[0][1].to_string(),
                s.displaced[0][2].to_string(),
                s.displaced[0][0].to_string(),
            ],
            vec![
                "kernel miss".into(),
                s.displaced[1][1].to_string(),
                s.displaced[1][2].to_string(),
                s.displaced[1][0].to_string(),
            ],
        ];
        print_table(
            &format!("Fig 13 interference at 128KB/128B/4-way ({name})"),
            &[
                "missing",
                "displaced app line",
                "displaced kernel line",
                "cold fill",
            ],
            &rows,
        );
        out.insert(name.to_string(), json!({"displaced": s.displaced}));
    }
    json!({
        "figure": "fig13",
        "paper": "app misses mostly displace app lines (self-interference); kernel misses \
                  mostly displace app lines; optimization shrinks app self-interference",
        "measured": out,
    })
}

/// Figure 14: iTLB and L2 behaviour (base SimOS hierarchy).
pub fn fig14(h: &mut Harness) -> Value {
    let base = h.run("base").hier_simos.expect("full run");
    let opt = h.run("all").hier_simos.expect("full run");
    let rows = vec![
        vec![
            "iTLB misses".into(),
            base.itlb_misses.to_string(),
            opt.itlb_misses.to_string(),
        ],
        vec![
            "L2 instr misses".into(),
            base.l2_instr_misses.to_string(),
            opt.l2_instr_misses.to_string(),
        ],
        vec![
            "L2 data misses".into(),
            base.l2_data_misses.to_string(),
            opt.l2_data_misses.to_string(),
        ],
    ];
    print_table(
        "Fig 14: iTLB and L2 misses (paper: both improve with layout opt)",
        &["metric", "base", "optimized"],
        &rows,
    );
    json!({
        "figure": "fig14",
        "paper": "iTLB misses drop (page-granularity packing); L2 instruction misses drop; \
                  L2 data misses drop slightly (less line interference)",
        "measured": {
            "base": {"itlb": base.itlb_misses, "l2i": base.l2_instr_misses, "l2d": base.l2_data_misses},
            "opt": {"itlb": opt.itlb_misses, "l2i": opt.l2_instr_misses, "l2d": opt.l2_data_misses},
        },
    })
}

/// Figure 15: relative execution time per optimization combination on the
/// 21264-like and 21164-like machines. Run this on a 1-CPU scenario
/// (`Scenario::paper_hw`) to match the paper's single-processor runs.
pub fn fig15(h: &mut Harness) -> Value {
    let m264 = TimingModel::alpha_21264();
    let m164 = TimingModel::alpha_21164();
    let mut cycles264 = Vec::new();
    let mut cycles164 = Vec::new();
    for name in LAYOUTS {
        let d = h.run(name);
        let instrs = d.user_fetches + d.kernel_fetches;
        cycles264.push(m264.evaluate(instrs, &d.hier_21264).total());
        cycles164.push(m164.evaluate(instrs, &d.hier_21164).total());
    }
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (i, name) in LAYOUTS.iter().enumerate() {
        let r264 = 100.0 * cycles264[i] as f64 / cycles264[0] as f64;
        let r164 = 100.0 * cycles164[i] as f64 / cycles164[0] as f64;
        rows.push(vec![
            name.to_string(),
            format!("{r264:.1}%"),
            format!("{r164:.1}%"),
        ]);
        series.push(json!({"layout": name, "rel_21264_pct": r264, "rel_21164_pct": r164}));
    }
    let speedup264 = cycles264[0] as f64 / cycles264[5] as f64;
    let speedup164 = cycles164[0] as f64 / cycles164[5] as f64;
    print_table(
        "Fig 15: relative non-idle execution time (paper: 'all' ~ 75%, 1.33x speedup)",
        &[
            "layout",
            "21264-like (64KB 2-way)",
            "21164-like (8KB 1-way)",
        ],
        &rows,
    );
    println!("speedup of 'all': {speedup264:.2}x (21264-like), {speedup164:.2}x (21164-like)");
    json!({
        "figure": "fig15",
        "paper": {"speedup": 1.33, "consistent_across_generations": true},
        "measured": {"series": series, "speedup_21264": speedup264, "speedup_21164": speedup164},
    })
}

/// The layout series compared by [`compare`]: the
/// `CODELAYOUT_LAYOUT_SERIES` selection, defaulting to
/// [`LayoutSeries::comparison`] (base, all, hotcold, exttsp, stitcher).
///
/// # Panics
/// Panics on a label [`LayoutSeries::parse`] does not accept — a
/// misspelled series must fail the run, not silently shrink the table.
pub fn compare_series() -> Vec<LayoutSeries> {
    match &run_env().layout_series {
        Some(labels) => labels
            .iter()
            .map(|l| {
                LayoutSeries::parse(l).unwrap_or_else(|e| panic!("CODELAYOUT_LAYOUT_SERIES: {e}"))
            })
            .collect(),
        None => LayoutSeries::comparison().to_vec(),
    }
}

/// Cross-algorithm comparison table: the paper trio vs the ext-TSP and
/// Codestitcher passes, per series — I-cache misses (128 B / 4-way),
/// the shared ext-TSP objective score of the application layout, text
/// size, and the `L000`–`L006` lint summary over {app, kernel}.
///
/// The table also enforces the evaluation's headline ordering claim:
/// the ext-TSP pass must score at least every paper series on the
/// objective both are judged by (the scorer is encoded once in
/// `codelayout_core::exttsp_score` and shared with the pass and its
/// property tests).
pub fn compare(h: &mut Harness) -> Value {
    compare_with(h, &compare_series())
}

/// [`compare`] over an explicit series list (the golden test pins the
/// default list so a caller's `CODELAYOUT_LAYOUT_SERIES` cannot change
/// the snapshot).
pub fn compare_with(h: &mut Harness, series_list: &[LayoutSeries]) -> Value {
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut scores: Vec<(LayoutSeries, u64)> = Vec::new();
    for &series in series_list {
        let label = series.label();
        let (misses, user_fetches, text_bytes) = {
            let d = h.run(label);
            (
                misses_by_size(&d.sizes_4w_user),
                d.user_fetches,
                d.text_bytes,
            )
        };
        let layout = h.study.layout_series(series);
        let score = exttsp_score(&h.study.app.program, h.study.active_profile(), &layout);
        scores.push((series, score));
        let lints = crate::lint::lint_series_cells(&h.study, series);
        let (deny, warn, info) = (
            crate::lint::count(&lints, codelayout_analysis::Severity::Deny),
            crate::lint::count(&lints, codelayout_analysis::Severity::Warn),
            crate::lint::count(&lints, codelayout_analysis::Severity::Info),
        );
        let lint_summary = crate::lint::summary_json(&lints);
        let m64 = misses[1].1;
        let m128 = misses[2].1;
        rows.push(vec![
            label.to_string(),
            m64.to_string(),
            m128.to_string(),
            pct(m128, user_fetches),
            score.to_string(),
            format!("{} KB", text_bytes / 1024),
            format!("{deny}/{warn}/{info}"),
        ]);
        entries.push(json!({
            "series": label,
            "text_bytes": text_bytes,
            "user_fetches": user_fetches,
            "misses": misses
                .iter()
                .map(|(k, m)| json!({"size_kb": k, "misses": m}))
                .collect::<Vec<_>>(),
            "exttsp_score": score,
            "lints": lint_summary,
        }));
    }
    print_table(
        "Layout-series comparison (128B/4-way; lints = deny/warn/info over app+kernel)",
        &[
            "series",
            "misses 64KB",
            "misses 128KB",
            "miss rate 128KB",
            "ext-TSP score",
            "text",
            "lints",
        ],
        &rows,
    );
    if let Some(&(_, s_exttsp)) = scores.iter().find(|(s, _)| *s == LayoutSeries::ExtTsp) {
        for &(series, s) in &scores {
            if matches!(series, LayoutSeries::Paper(_)) {
                assert!(
                    s_exttsp >= s,
                    "ext-TSP score {s_exttsp} below `{series}` score {s}: \
                     the pass lost on its own objective"
                );
            }
        }
    }
    json!({
        "figure": "compare",
        "paper": "ext-TSP (Newell–Pupyrev) and Codestitcher (Lavaee et al.) vs the 2001 trio; \
                  ext-TSP must dominate the paper series on the shared objective score",
        "measured": entries,
    })
}

/// Static-profile study: every lint-matrix layout series built twice —
/// once from the measured execution profile and once from the purely
/// static Ball–Larus-style estimate
/// ([`codelayout_analysis::estimate_static_profile`]) — and both
/// measured on the identical workload. Per series: I-cache misses
/// (128 B / 4-way, 64 KB and 128 KB), miss rates, the retained fraction
/// of the measured layout's miss *reduction* over base, and the ext-TSP
/// objective score of both layouts under the *measured* profile (the
/// evaluation yardstick, regardless of which profile built the layout).
///
/// `base` ignores the profile entirely, so its static column reuses the
/// measured run. The figure enforces the subsystem's headline claim:
/// the static-profile `all` layout must beat the `base` layout's
/// 128 KB miss count on the scenario.
pub fn fig_static(h: &mut Harness) -> Value {
    let env_src = run_env().profile_source;
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut base_m128 = 0u64;
    let mut static_all_m128 = u64::MAX;
    for series in codelayout_core::LayoutSeries::lint_matrix() {
        let label = series.label();
        // Plain labels honor the environment knob, so whichever source
        // the env selects shares its measurement cache with the other
        // figures; the opposite source is pinned with an explicit
        // prefix.
        let (m_name, s_name) = match env_src {
            codelayout_obs::ProfileSource::Measured => {
                (label.to_string(), format!("static:{label}"))
            }
            codelayout_obs::ProfileSource::Static => {
                (format!("measured:{label}"), label.to_string())
            }
        };
        let is_base = series == LayoutSeries::Paper(codelayout_core::OptimizationSet::BASE);
        let s_name = if is_base { m_name.clone() } else { s_name };
        let (m_misses, user_fetches) = {
            let d = h.run(&m_name);
            (misses_by_size(&d.sizes_4w_user), d.user_fetches)
        };
        let s_misses = misses_by_size(&h.run(&s_name).sizes_4w_user);
        let score_of = |source| {
            let layout = h.study.layout_series_with(series, source);
            exttsp_score(&h.study.app.program, &h.study.profile, &layout)
        };
        let m_score = score_of(codelayout_obs::ProfileSource::Measured);
        let s_score = if is_base {
            m_score
        } else {
            score_of(codelayout_obs::ProfileSource::Static)
        };
        let (m64, m128) = (m_misses[1].1, m_misses[2].1);
        let (s64, s128) = (s_misses[1].1, s_misses[2].1);
        if is_base {
            base_m128 = m128;
        }
        if label == "all" {
            static_all_m128 = s128;
        }
        // Fraction of the measured layout's 128 KB miss reduction the
        // static layout retains (100% = matches measured; >100% = beats
        // it; blank for base and for series that don't improve on base).
        let retained = if base_m128 > m128 {
            format!(
                "{:.0}%",
                100.0 * (base_m128 as f64 - s128 as f64) / (base_m128 as f64 - m128 as f64)
            )
        } else {
            "-".into()
        };
        rows.push(vec![
            label.to_string(),
            m128.to_string(),
            pct(m128, user_fetches),
            s128.to_string(),
            pct(s128, user_fetches),
            retained,
            m_score.to_string(),
            s_score.to_string(),
        ]);
        entries.push(json!({
            "series": label,
            "user_fetches": user_fetches,
            "measured": {
                "misses_64kb": m64,
                "misses_128kb": m128,
                "exttsp_score": m_score,
            },
            "static": {
                "misses_64kb": s64,
                "misses_128kb": s128,
                "exttsp_score": s_score,
            },
        }));
    }
    print_table(
        "Static vs measured profiles (128B/4-way; scores under the measured profile)",
        &[
            "series",
            "m128 meas",
            "rate",
            "m128 static",
            "rate",
            "retained",
            "score meas",
            "score static",
        ],
        &rows,
    );
    assert!(
        static_all_m128 < base_m128,
        "static-profile `all` layout ({static_all_m128} misses at 128KB) failed to beat \
         the base layout ({base_m128} misses)"
    );
    json!({
        "figure": "fig_static",
        "paper": "profile-free variant of the 2001 study: Ball–Larus-style static branch \
                  estimates feed the same chain/split/porder pipeline; the static `all` \
                  layout must still beat the base layout",
        "measured": entries,
    })
}

/// In-text numeric claims (§4–5): packing, unused fetch fraction, miss
/// reduction bands, kernel-layout gain.
pub fn claims(h: &mut Harness) -> Value {
    let reduction = |b: u64, o: u64| 100.0 * (1.0 - o as f64 / b as f64);

    let (base_fp, base_instr_fp, base_seq, base_unused);
    let (opt_fp, opt_instr_fp, opt_seq, opt_unused);
    {
        let d = h.run("base");
        base_fp = d.footprint_line_bytes.expect("full");
        base_instr_fp = d.footprint_instr_bytes.expect("full");
        base_seq = d.seq_user.as_ref().expect("full").average_length();
        base_unused = d.locality.as_ref().expect("full").unused_fraction();
    }
    {
        let d = h.run("all");
        opt_fp = d.footprint_line_bytes.expect("full");
        opt_instr_fp = d.footprint_instr_bytes.expect("full");
        opt_seq = d.seq_user.as_ref().expect("full").average_length();
        opt_unused = d.locality.as_ref().expect("full").unused_fraction();
    }

    let app_base = misses_by_size(&h.run("base").sizes_4w_user);
    let app_opt = misses_by_size(&h.run("all").sizes_4w_user);
    let comb_base = misses_by_size(&h.run("base").sizes_4w_all);
    let comb_opt = misses_by_size(&h.run("all").sizes_4w_all);
    let app_red_64 = reduction(app_base[1].1, app_opt[1].1);
    let app_red_128 = reduction(app_base[2].1, app_opt[2].1);
    let comb_red_64 = reduction(comb_base[1].1, comb_opt[1].1);
    let comb_red_128 = reduction(comb_base[2].1, comb_opt[2].1);

    // Kernel layout optimization: optimized kernel under the base app.
    let kopt = h.study.kernel_image(codelayout_core::OptimizationSet::ALL);
    let mut sink = codelayout_memsim::MemoryHierarchy::new(TimingModel::hierarchy_21264(
        h.study.scenario.num_cpus,
    ));
    let base_img = h.study.image(codelayout_core::OptimizationSet::BASE);
    let out = h.study.run_measured(&base_img, &kopt, &mut sink);
    out.assert_correct();
    let model = TimingModel::alpha_21264();
    let kopt_cycles = model
        .evaluate(out.report.instructions, sink.stats())
        .total();
    let dbase = h.run("base");
    let base_cycles = model
        .evaluate(dbase.user_fetches + dbase.kernel_fetches, &dbase.hier_21264)
        .total();
    let kernel_gain = 100.0 * (1.0 - kopt_cycles as f64 / base_cycles as f64);

    let rows = vec![
        vec![
            "128B-line footprint".into(),
            format!("{} -> {} KB", base_fp / 1024, opt_fp / 1024),
            "500 -> 315 KB (-37%)".into(),
        ],
        vec![
            "live instruction bytes".into(),
            format!("{} -> {} KB", base_instr_fp / 1024, opt_instr_fp / 1024),
            "~260 KB live".into(),
        ],
        vec![
            "unused fetched words".into(),
            format!("{:.0}% -> {:.0}%", base_unused * 100.0, opt_unused * 100.0),
            "46% -> 21%".into(),
        ],
        vec![
            "avg run length".into(),
            format!("{base_seq:.1} -> {opt_seq:.1}"),
            "7.3 -> 10+".into(),
        ],
        vec![
            "app miss reduction 64/128KB".into(),
            format!("{app_red_64:.0}% / {app_red_128:.0}%"),
            "55-65%".into(),
        ],
        vec![
            "combined miss reduction 64/128KB".into(),
            format!("{comb_red_64:.0}% / {comb_red_128:.0}%"),
            "45-60%".into(),
        ],
        vec![
            "kernel-layout-only gain".into(),
            format!("{kernel_gain:.1}%"),
            "~3.5%".into(),
        ],
    ];
    print_table("In-text claims", &["claim", "measured", "paper"], &rows);
    json!({
        "figure": "claims",
        "measured": {
            "footprint_base_kb": base_fp / 1024,
            "footprint_opt_kb": opt_fp / 1024,
            "instr_fp_base_kb": base_instr_fp / 1024,
            "instr_fp_opt_kb": opt_instr_fp / 1024,
            "unused_base_pct": base_unused * 100.0,
            "unused_opt_pct": opt_unused * 100.0,
            "seq_base": base_seq,
            "seq_opt": opt_seq,
            "app_reduction_64_pct": app_red_64,
            "app_reduction_128_pct": app_red_128,
            "combined_reduction_64_pct": comb_red_64,
            "combined_reduction_128_pct": comb_red_128,
            "kernel_opt_gain_pct": kernel_gain,
        },
        "paper": {
            "footprint": "500 -> 315 KB", "unused": "46% -> 21%", "seq": "7.3 -> 10+",
            "app_reduction": "55-65%", "combined_reduction": "45-60%", "kernel_gain": "3.5%",
        },
    })
}

/// The serving loop, observed end to end: runs the continuous-profiling
/// loop (`codelayout-serve`) on the phase-shift stream the harness was
/// built for, prints the epoch ledger, registers the manifest's `serve`
/// section, and returns the deterministic report as the figure JSON.
///
/// The harness must have been built on [`ServeConfig::serve_scenario`]
/// for `cfg` — [`run_serve`] checks the capacity invariant and panics
/// otherwise. Every re-layout the loop requests must pass translation
/// validation; a validation miss is a correctness bug, so this figure
/// asserts it rather than reporting it.
pub fn fig_serve(h: &mut Harness, cfg: &ServeConfig) -> Value {
    let report = run_serve(&h.study, cfg);
    assert!(
        report.all_swaps_validated(),
        "a serving-loop re-layout failed translation validation"
    );

    let mut rows = Vec::new();
    for e in &report.epochs {
        rows.push(vec![
            e.epoch.to_string(),
            e.rotation.to_string(),
            e.samples.to_string(),
            e.drift_milli.to_string(),
            if e.relayout { "yes" } else { "" }.to_string(),
            if e.swapped { "yes" } else { "" }.to_string(),
            e.misses.to_string(),
            e.fetches.to_string(),
        ]);
    }
    print_table(
        "Serving loop: sampled drift detection and validated live re-layout",
        &[
            "epoch", "rot", "samples", "drift", "relayout", "swapped", "misses", "fetches",
        ],
        &rows,
    );
    let r = &report.recovery;
    println!(
        "recovery: stale {} vs serve {} vs oracle {} misses over {} fetches -> {} milli of the gap",
        r.stale_misses, r.serve_misses, r.oracle_misses, r.window_fetches, r.recovery_milli
    );
    println!(
        "swaps: {} of {} re-layout requests deployed ({} -> {})",
        report.swaps, report.relayouts, report.base_image_digest, report.final_image_digest
    );

    // The manifest section carries the deterministic report plus the
    // section's single wall-clock leaf (total swap latency, masked by
    // `mask_volatile` in golden comparisons).
    let mut section = report.deterministic_json();
    if let Value::Object(map) = &mut section {
        let total_swap_ns: u64 = report.epochs.iter().map(|e| e.swap_wall_ns).sum();
        map.insert("swap_wall_ns".to_string(), json!(total_swap_ns));
    }
    h.section("serve", section);

    report.deterministic_json()
}

/// Search-based layout autotuning: run the budgeted parameter search
/// ([`run_tune`]), then re-measure each family's best point on the full
/// workload (`tuned:<series>` harness runs) next to the fixed comparison
/// series, and print the base vs fixed vs tuned table.
///
/// Two hard guarantees, asserted rather than reported:
///
/// * every candidate the search **accepted** passed translation
///   validation (invalid candidates score `u64::MAX` and cannot win);
/// * at least one tuned layout achieves **strictly fewer** misses than
///   every fixed comparison series at some cache-size cell of the
///   128 B / 4-way tuning grid ([`codelayout_tune::TUNE_SIZES_KB`]),
///   with every series scored by the same deterministic window replay —
///   otherwise the autotuner earned nothing and the figure must fail
///   loudly.
///
/// The manifest gains a `tune` section: the deterministic report plus
/// one wall-clock leaf (`wall_ms`, masked by `mask_volatile` in golden
/// comparisons). The returned figure JSON is fully deterministic.
pub fn fig_tune(h: &mut Harness, cfg: &TuneConfig) -> Value {
    let report = run_tune(&h.study, cfg);
    assert!(
        report.trajectory.iter().all(|c| c.validated || !c.accepted),
        "an accepted tune candidate failed translation validation"
    );

    // Full-workload measurements: the fixed comparison series, then each
    // family's tuned best under its registered parameters.
    let fixed: Vec<LayoutSeries> = LayoutSeries::comparison().to_vec();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for &series in &fixed {
        let label = series.label();
        let (misses, user_fetches) = {
            let d = h.run(label);
            (misses_by_size(&d.sizes_4w_user), d.user_fetches)
        };
        let layout = h.study.layout_series(series);
        let score = exttsp_score(&h.study.app.program, h.study.active_profile(), &layout);
        rows.push(vec![
            label.to_string(),
            "fixed".to_string(),
            misses[1].1.to_string(),
            misses[2].1.to_string(),
            pct(misses[2].1, user_fetches),
            score.to_string(),
            String::new(),
        ]);
        entries.push(json!({
            "series": label,
            "kind": "fixed",
            "misses": misses.iter().map(|(k, m)| json!({"size_kb": k, "misses": m})).collect::<Vec<_>>(),
            "user_fetches": user_fetches,
            "exttsp_score": score,
        }));
    }

    for f in &report.families {
        let label = f.series.label();
        h.set_tuned(label, f.best_params);
        let name = format!("tuned:{label}");
        let (misses, user_fetches) = {
            let d = h.run(&name);
            (misses_by_size(&d.sizes_4w_user), d.user_fetches)
        };
        let layout = h.study.layout_series_params(f.series, &f.best_params);
        let score = exttsp_score(&h.study.app.program, h.study.active_profile(), &layout);
        let space = codelayout_core::ParamSpace::for_series(f.series);
        rows.push(vec![
            name.clone(),
            "tuned".to_string(),
            misses[1].1.to_string(),
            misses[2].1.to_string(),
            pct(misses[2].1, user_fetches),
            score.to_string(),
            f.evaluated.to_string(),
        ]);
        entries.push(json!({
            "series": label,
            "kind": "tuned",
            "misses": misses.iter().map(|(k, m)| json!({"size_kb": k, "misses": m})).collect::<Vec<_>>(),
            "user_fetches": user_fetches,
            "exttsp_score": score,
            "params": codelayout_tune::params_json(&space, &f.best_params),
            "candidates": f.evaluated,
        }));
    }
    print_table(
        "Autotuned vs fixed layout series (128B/4-way user grid)",
        &[
            "series",
            "kind",
            "misses 64KB",
            "misses 128KB",
            "miss rate 128KB",
            "ext-TSP score",
            "candidates",
        ],
        &rows,
    );
    println!(
        "tune: {} candidates over {} families in {} ms (window {} events{})",
        report.trajectory.len(),
        report.families.len(),
        report.wall_ms,
        report.window_events,
        if report.budget_hit {
            ", wall budget hit"
        } else {
            ""
        }
    );

    // The headline claim: some tuned layout strictly beats every fixed
    // series at some cache size, on the tuning grid where both sides are
    // scored by the same deterministic window replay. (The full-workload
    // table above reports the paper's 32–512 KB sizes, where a quick-
    // scenario footprint sees only compulsory misses; the tuning grid
    // extends down to where layout actually moves the miss count.)
    let mut wins = Vec::new();
    for f in &report.families {
        for (i, &size_kb) in codelayout_tune::TUNE_SIZES_KB.iter().enumerate() {
            let m = f.best_cells[i];
            if report.fixed.iter().all(|fx| m < fx.cells[i]) {
                wins.push(json!({
                    "series": f.series.label(),
                    "size_kb": size_kb,
                    "misses": m,
                    "best_fixed": report.fixed.iter().map(|fx| fx.cells[i]).min(),
                }));
            }
        }
    }
    assert!(
        !wins.is_empty(),
        "no tuned layout beat every fixed series at any tuning-grid cache size: \
         the search found nothing beyond the defaults"
    );

    let mut section = report.deterministic_json();
    if let Value::Object(map) = &mut section {
        map.insert("wall_ms".to_string(), json!(report.wall_ms));
    }
    h.section("tune", section);

    json!({
        "figure": "fig_tune",
        "paper": "search-based autotuning over the parameterized layout passes; \
                  some tuned series must strictly beat every fixed series at a cache size",
        "tune": report.deterministic_json(),
        "measured": entries,
        "wins": wins,
    })
}
