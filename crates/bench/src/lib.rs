//! Experiment harness reproducing the paper's evaluation.
//!
//! Every figure of the paper has a binary in `src/bin/` (`fig03` …
//! `fig15`, plus `claims` for the in-text numeric claims and several
//! `ablation_*` binaries for design-choice studies). `run_all` executes
//! the whole evaluation in one process, sharing workload runs between
//! figures, and writes `results/figNN.json` files plus human-readable
//! tables.
//!
//! The harness runs each code layout **once**, with a composite trace sink
//! that does two things in the same pass:
//!
//! * feeds the *streaming* collectors that want the live event stream —
//!   the sequence profiler (Fig. 8), the locality cache (Figs. 9–11),
//!   footprint counters (packing claims), and three full memory
//!   hierarchies (Fig. 14 and the Fig. 15 timing models);
//! * records the instruction fetch stream into a compact
//!   [`codelayout_vm::TraceBuffer`] (8 bytes per instruction).
//!
//! The cache-grid sweeps — the direct-mapped line-size grid (Fig. 4/5)
//! and the 128-byte 4-way size sweeps for user/kernel/combined streams
//! (Figs. 6, 7, 12, 13) — then *replay* the frozen trace through a
//! [`ParallelSweep`]. Every grid is named by a
//! [`codelayout_memsim::SweepSpec`]; the replay engine is the
//! single-pass stack-distance profiler by default (one Mattson stack
//! per line size answers every size × associativity at once), with the
//! direct per-configuration simulator kept as the equivalence oracle —
//! both selected by `CODELAYOUT_SWEEP_ENGINE` and bit-identical by
//! construction. The worker count honors `CODELAYOUT_THREADS`. The
//! first fully-instrumented layout also replays the identical jobs on
//! the *other* engine at the same thread count, asserting equality and
//! timing both, so `run_all` can report the measured engine speedup
//! (see [`Harness::sweep_timing`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod lint;

use codelayout_core::{LayoutParams, LayoutSeries};
use codelayout_ir::Image;
use codelayout_memsim::{
    CacheConfig, FootprintCounter, HierarchyStats, LocalityCache, LocalityStats, MemoryHierarchy,
    ParallelSweep, SequenceProfiler, SequenceStats, StreamFilter, SweepCell, SweepEngine,
    SweepSpec,
};
use codelayout_oltp::{build_study, RunOutcome, Scenario, Study};
use codelayout_timing::TimingModel;
use codelayout_vm::{DataRecord, FetchRecord, TraceBuffer, TraceSink, VmEngine};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

pub use codelayout_memsim::{run_env, RunEnv, LINES_B, SIZES_KB};
pub use codelayout_obs::ScenarioSel;

/// The locality-metrics configuration used by Figures 9–11 (and 13):
/// 128 KB, 128-byte lines, 4-way.
pub fn locality_config() -> CacheConfig {
    CacheConfig::new(128 * 1024, 128, 4)
}

/// Everything measured for one code layout.
#[derive(Debug, Clone)]
pub struct LayoutData {
    /// Layout label (paper's x-axis names).
    pub label: String,
    /// Text size of the linked image in bytes.
    pub text_bytes: u64,
    /// Direct-mapped size × line grid, application stream only (full runs
    /// only).
    pub dm_grid_user: Vec<SweepCell>,
    /// 128 B / 4-way across sizes, application stream.
    pub sizes_4w_user: Vec<SweepCell>,
    /// 128 B / 4-way across sizes, combined stream (full runs only).
    pub sizes_4w_all: Vec<SweepCell>,
    /// 128 B / 4-way across sizes, kernel stream (full runs only).
    pub sizes_4w_kernel: Vec<SweepCell>,
    /// Sequential run lengths, application stream (full runs only).
    pub seq_user: Option<SequenceStats>,
    /// Word-use / reuse / lifetime metrics at [`locality_config`]
    /// (full runs only).
    pub locality: Option<LocalityStats>,
    /// Unique 128 B lines touched by the application stream, in bytes.
    pub footprint_line_bytes: Option<u64>,
    /// Unique application instructions executed, in bytes.
    pub footprint_instr_bytes: Option<u64>,
    /// Paper base SimOS hierarchy counters (full runs only).
    pub hier_simos: Option<HierarchyStats>,
    /// 21264-like hierarchy counters.
    pub hier_21264: HierarchyStats,
    /// 21164-like hierarchy counters.
    pub hier_21164: HierarchyStats,
    /// Application instructions fetched during measurement.
    pub user_fetches: u64,
    /// Kernel instructions fetched during measurement.
    pub kernel_fetches: u64,
    /// The run outcome (instruction counts, invariants).
    pub outcome: RunOutcome,
}

/// The 128 B / 4-way size-sweep spec shared by several figures
/// (Figures 6, 7, 12, 13).
fn sizes_4w_spec(num_cpus: usize, filter: StreamFilter) -> SweepSpec {
    SweepSpec::grid()
        .sizes_kb(&SIZES_KB)
        .line_b(128)
        .ways(4)
        .cpus(num_cpus)
        .filter(filter)
}

/// Composite sink for the live pass: streaming collectors that need the
/// raw event stream, plus a compact fetch-trace recording. The cache
/// grids are *not* simulated here — they replay the recorded trace in
/// parallel afterwards (see [`Harness`]).
struct CompositeSink {
    full: bool,
    trace: TraceBuffer,
    seq_user: SequenceProfiler,
    locality: LocalityCache,
    fp: FootprintCounter,
    hier_simos: MemoryHierarchy,
    hier_21264: MemoryHierarchy,
    hier_21164: MemoryHierarchy,
    user_fetches: u64,
    kernel_fetches: u64,
}

impl CompositeSink {
    fn new(num_cpus: usize, full: bool) -> Self {
        CompositeSink {
            full,
            trace: TraceBuffer::fetch_only(),
            seq_user: SequenceProfiler::new(StreamFilter::UserOnly),
            locality: LocalityCache::new(locality_config(), StreamFilter::UserOnly),
            fp: FootprintCounter::new(128, StreamFilter::UserOnly),
            hier_simos: MemoryHierarchy::new(codelayout_memsim::HierarchyConfig::simos_base(
                num_cpus,
            )),
            hier_21264: MemoryHierarchy::new(TimingModel::hierarchy_21264(num_cpus)),
            hier_21164: MemoryHierarchy::new(TimingModel::hierarchy_21164(num_cpus)),
            user_fetches: 0,
            kernel_fetches: 0,
        }
    }
}

impl TraceSink for CompositeSink {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        if rec.kernel {
            self.kernel_fetches += 1;
        } else {
            self.user_fetches += 1;
        }
        self.trace.fetch(rec);
        self.hier_21264.fetch(rec);
        self.hier_21164.fetch(rec);
        if self.full {
            self.seq_user.fetch(rec);
            self.locality.fetch(rec);
            self.fp.fetch(rec);
            self.hier_simos.fetch(rec);
        }
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        self.hier_21264.data(rec);
        self.hier_21164.data(rec);
        if self.full {
            self.hier_simos.data(rec);
        }
    }

    fn fetch_run(&mut self, first: FetchRecord, n: u64) {
        // Batch the counters and the trace append; the cache hierarchies
        // are inherently per-access and see the expanded stream.
        if first.kernel {
            self.kernel_fetches += n;
        } else {
            self.user_fetches += n;
        }
        self.trace.fetch_run(first, n);
        let mut rec = first;
        for _ in 0..n {
            self.hier_21264.fetch(rec);
            self.hier_21164.fetch(rec);
            if self.full {
                self.seq_user.fetch(rec);
                self.locality.fetch(rec);
                self.fp.fetch(rec);
                self.hier_simos.fetch(rec);
            }
            rec.addr += codelayout_ir::INSTR_BYTES;
        }
    }
}

/// Wall-clock measurement of one layout's grid sweeps: the
/// stack-distance engine vs the direct per-configuration engine
/// replaying the identical jobs at the same thread count (and asserted
/// bit-identical).
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Worker threads both replays used.
    pub threads: usize,
    /// Fetch events replayed per sweep pass.
    pub events: u64,
    /// (configuration, CPU) simulators the direct engine instantiates.
    pub shards: usize,
    /// Wall-clock seconds of the stack-distance replay.
    pub stack_secs: f64,
    /// Wall-clock seconds of the direct replay.
    pub direct_secs: f64,
}

impl SweepTiming {
    /// Measured engine speedup (direct time / stack time).
    pub fn speedup(&self) -> f64 {
        if self.stack_secs > 0.0 {
            self.direct_secs / self.stack_secs
        } else {
            1.0
        }
    }
}

/// Wall-clock measurement of one layout's measured run on both VM
/// execution tiers: the block-compiled engine vs the interpreter
/// oracle executing the identical workload (asserted to produce a
/// bit-identical instruction trace and outcome).
#[derive(Debug, Clone, Copy)]
pub struct VmTiming {
    /// Instructions the measured phase executed (identical on both tiers).
    pub instructions: u64,
    /// Wall-clock seconds of the measured phase on the interpreter.
    pub interp_secs: f64,
    /// Wall-clock seconds of the measured phase on the block engine.
    pub block_secs: f64,
    /// Compiled code-cache footprint of the block run: `(runs, bytes)`.
    pub cache: (usize, usize),
}

impl VmTiming {
    /// Measured execution-tier speedup (interpreter time / block time).
    pub fn speedup(&self) -> f64 {
        if self.block_secs > 0.0 {
            self.interp_secs / self.block_secs
        } else {
            1.0
        }
    }

    /// Instruction throughput of the block engine, instructions/second.
    pub fn block_ips(&self) -> f64 {
        self.instructions as f64 / self.block_secs.max(1e-9)
    }

    /// Instruction throughput of the interpreter, instructions/second.
    pub fn interp_ips(&self) -> f64 {
        self.instructions as f64 / self.interp_secs.max(1e-9)
    }
}

/// Builds and caches per-layout measurements for one scenario.
pub struct Harness {
    /// The prepared study (workload + profile).
    pub study: Study,
    runs: HashMap<String, LayoutData>,
    out_dir: PathBuf,
    scenario_label: String,
    sweeper: ParallelSweep,
    sweep_timing: Option<SweepTiming>,
    vm_timing: Option<VmTiming>,
    output_digests: Vec<(String, String)>,
    extra_sections: Vec<(String, serde_json::Value)>,
    /// Tuned layout parameters by series label, registered with
    /// [`Harness::set_tuned`] and addressed by the `tuned:<series>` run
    /// names.
    tuned: HashMap<String, LayoutParams>,
    /// Largest fetch-event count seen so far; pre-sizes the next
    /// layout's trace buffer so growth reallocs don't land inside the
    /// timed measured run.
    expected_events: usize,
}

impl Harness {
    /// Builds the study for a scenario. The results directory defaults to
    /// `results/` under the current directory (created on demand). The
    /// sweep worker count honors `CODELAYOUT_THREADS`, defaulting to the
    /// host's available parallelism. The scenario label (used for the run
    /// manifest's `results/<scenario>/` directory) defaults to the
    /// `CODELAYOUT_SCENARIO` selection; use [`Harness::with_label`] when
    /// the scenario was chosen some other way.
    pub fn new(scenario: &Scenario) -> Self {
        Self::with_label(scenario, scenario_label_from_env())
    }

    /// Like [`Harness::new`] with an explicit scenario label.
    pub fn with_label(scenario: &Scenario, label: &str) -> Self {
        Harness {
            study: build_study(scenario),
            runs: HashMap::new(),
            out_dir: PathBuf::from("results"),
            scenario_label: label.to_string(),
            sweeper: ParallelSweep::from_env(),
            sweep_timing: None,
            vm_timing: None,
            output_digests: Vec::new(),
            extra_sections: Vec::new(),
            tuned: HashMap::new(),
            expected_events: 0,
        }
    }

    /// Registers tuned layout parameters for a series, making the
    /// `tuned:<series>` run name valid for [`Harness::run`]. Re-registering
    /// a label replaces its parameters (cached runs are keyed by name, so
    /// register before the first `tuned:` run).
    pub fn set_tuned(&mut self, series_label: &str, params: LayoutParams) {
        self.tuned.insert(series_label.to_string(), params);
    }

    /// The scenario label used for the manifest directory.
    pub fn scenario_label(&self) -> &str {
        &self.scenario_label
    }

    /// Registers an extra top-level manifest section (e.g. the serving
    /// loop's `serve` section) to include in [`Harness::write_manifest`].
    pub fn section(&mut self, key: &str, value: serde_json::Value) {
        self.extra_sections.push((key.to_string(), value));
    }

    /// Extra manifest sections registered with [`Harness::section`], in
    /// registration order.
    pub fn extra_sections(&self) -> &[(String, serde_json::Value)] {
        &self.extra_sections
    }

    /// FNV-1a digests of every JSON result this harness has written, in
    /// write order, as `(file name, digest)` pairs.
    pub fn output_digests(&self) -> &[(String, String)] {
        &self.output_digests
    }

    /// Timing of the first fully-instrumented layout's grid sweeps:
    /// parallel replay vs a single-thread replay of the same jobs.
    /// `None` until a full layout (`base`/`all`) has been measured.
    pub fn sweep_timing(&self) -> Option<&SweepTiming> {
        self.sweep_timing.as_ref()
    }

    /// Timing of the first fully-instrumented layout's measured run on
    /// both VM execution tiers (block-compiled vs interpreter oracle,
    /// asserted trace-identical). `None` until a full layout has been
    /// measured.
    pub fn vm_timing(&self) -> Option<&VmTiming> {
        self.vm_timing.as_ref()
    }

    /// Builds the scenario selected by `CODELAYOUT_SCENARIO`
    /// (`quick`/`sim`/`hw`; default `sim`).
    pub fn from_env() -> Self {
        let sc = scenario_from_env();
        Self::new(&sc)
    }

    /// The image for any layout-series label ([`LayoutSeries::parse`]):
    /// the paper's six, `hotcold`, `cfa` (with
    /// [`codelayout_core::CFA_RESERVED_BYTES`] reserved), `exttsp`, or
    /// `stitcher`. A `measured:` or `static:` prefix pins the profile
    /// source explicitly (plain labels honor
    /// `CODELAYOUT_PROFILE_SOURCE`); `fig_static` uses the prefixes to
    /// compare both sources side by side in one process. A `tuned:`
    /// prefix builds the series with the parameters registered via
    /// [`Harness::set_tuned`] (as `fig_tune` does for the autotuner's
    /// winners). Debug builds run translation validation on every linked
    /// image.
    fn image_for(&self, name: &str) -> Arc<Image> {
        if let Some(rest) = name.strip_prefix("tuned:") {
            let series = LayoutSeries::parse(rest).unwrap_or_else(|e| panic!("{name}: {e}"));
            let params = self.tuned.get(rest).unwrap_or_else(|| {
                panic!("no tuned parameters registered for `{rest}`; call Harness::set_tuned first")
            });
            return self.study.image_series_params(series, params);
        }
        let (label, source) = if let Some(rest) = name.strip_prefix("measured:") {
            (rest, Some(codelayout_obs::ProfileSource::Measured))
        } else if let Some(rest) = name.strip_prefix("static:") {
            (rest, Some(codelayout_obs::ProfileSource::Static))
        } else {
            (name, None)
        };
        let series = LayoutSeries::parse(label).unwrap_or_else(|e| panic!("{name}: {e}"));
        match source {
            Some(src) => self.study.image_series_with(series, src),
            None => self.study.image_series(series),
        }
    }

    /// Runs (or returns the cached) measurement for a layout. `base` and
    /// `all` get the full instrumentation; other layouts the light set.
    pub fn run(&mut self, name: &str) -> &LayoutData {
        if !self.runs.contains_key(name) {
            let full = matches!(name, "base" | "all");
            let data = self.measure(name, full);
            self.runs.insert(name.to_string(), data);
        }
        &self.runs[name]
    }

    fn measure(&mut self, name: &str, full: bool) -> LayoutData {
        let _measure_span = codelayout_obs::span("measure");
        let image = self.image_for(name);
        let num_cpus = self.study.scenario.num_cpus;
        let mut sink = CompositeSink::new(num_cpus, full);
        sink.trace.reserve(self.expected_events);
        let outcome = self
            .study
            .run_measured(&image, &self.study.base_kernel_image, &mut sink);
        outcome.assert_correct();

        // Record-once / replay-in-parallel: the live pass above recorded
        // the fetch stream; every grid sweep now replays it from worker
        // threads. Jobs: [user sizes, dm grid, combined sizes, kernel
        // sizes] — the last three only for fully-instrumented layouts.
        let trace = std::mem::take(&mut sink.trace).freeze();
        self.expected_events = self.expected_events.max(trace.len());
        codelayout_obs::metrics().gauge_set(
            &format!("vm.run.{name}.insts_per_sec"),
            outcome.report.instructions as f64 / outcome.run_wall.as_secs_f64().max(1e-9),
        );
        if full && self.vm_timing.is_none() {
            self.vm_oracle_run(name, &image, &trace, &outcome);
        }
        let mut jobs = vec![sizes_4w_spec(num_cpus, StreamFilter::UserOnly)];
        if full {
            jobs.push(
                SweepSpec::paper_grid(1)
                    .cpus(num_cpus)
                    .filter(StreamFilter::UserOnly),
            );
            jobs.push(sizes_4w_spec(num_cpus, StreamFilter::All));
            jobs.push(sizes_4w_spec(num_cpus, StreamFilter::KernelOnly));
        }
        // Phase timers (not ad-hoc `Instant` pairs) time both replays, so
        // the speedup `run_all` reports is exactly what the phase tree and
        // the run manifest show for the same work.
        let replay_span = codelayout_obs::span("replay");
        let mut grids = self.sweeper.run(&trace, &jobs);
        let primary_secs = replay_span.finish().as_secs_f64();
        self.record_replay_metrics(name, &sink, &jobs, &trace, primary_secs);
        if full && self.sweep_timing.is_none() {
            // Once per evaluation: replay the identical jobs on the
            // *other* engine at the same thread count — a standing
            // cross-engine equivalence check and the speedup baseline.
            let other_engine = match self.sweeper.engine() {
                SweepEngine::Stack => SweepEngine::Direct,
                SweepEngine::Direct => SweepEngine::Stack,
            };
            let other_span = codelayout_obs::span("oracle_replay");
            let other = ParallelSweep::new(self.sweeper.threads())
                .with_engine(other_engine)
                .run(&trace, &jobs);
            let other_secs = other_span.finish().as_secs_f64();
            assert_eq!(
                other, grids,
                "stack-distance sweep diverged from the direct engine"
            );
            let (stack_secs, direct_secs) = match self.sweeper.engine() {
                SweepEngine::Stack => (primary_secs, other_secs),
                SweepEngine::Direct => (other_secs, primary_secs),
            };
            let timing = SweepTiming {
                threads: self.sweeper.threads(),
                events: trace.len() as u64,
                shards: jobs.iter().map(SweepSpec::shard_count).sum(),
                stack_secs,
                direct_secs,
            };
            codelayout_obs::metrics().gauge_set("sweep.engine_speedup", timing.speedup());
            self.sweep_timing = Some(timing);
        }
        let sizes_4w_kernel = if full {
            grids.pop().unwrap()
        } else {
            Vec::new()
        };
        let sizes_4w_all = if full {
            grids.pop().unwrap()
        } else {
            Vec::new()
        };
        let dm_grid_user = if full {
            grids.pop().unwrap()
        } else {
            Vec::new()
        };
        let sizes_4w_user = grids.pop().unwrap();

        LayoutData {
            label: name.to_string(),
            text_bytes: image.text_bytes(),
            dm_grid_user,
            sizes_4w_user,
            sizes_4w_all,
            sizes_4w_kernel,
            seq_user: full.then(|| sink.seq_user.finish()),
            locality: full.then(|| sink.locality.finish()),
            footprint_line_bytes: full.then(|| sink.fp.line_footprint_bytes()),
            footprint_instr_bytes: full.then(|| sink.fp.instr_footprint_bytes()),
            hier_simos: full.then(|| *sink.hier_simos.stats()),
            hier_21264: *sink.hier_21264.stats(),
            hier_21164: *sink.hier_21164.stats(),
            user_fetches: sink.user_fetches,
            kernel_fetches: sink.kernel_fetches,
            outcome,
        }
    }

    /// Once per evaluation: re-execute the measured run on the *other*
    /// VM execution tier (interpreter oracle vs block-compiled) and
    /// assert the instruction trace and outcome are bit-identical — the
    /// standing correctness check behind the engine-speedup number.
    fn vm_oracle_run(
        &mut self,
        name: &str,
        image: &Arc<Image>,
        trace: &codelayout_vm::FrozenTrace,
        outcome: &RunOutcome,
    ) {
        let engine = self.study.machine_config().engine;
        let other = match engine {
            VmEngine::Interp => VmEngine::Block,
            VmEngine::Block => VmEngine::Interp,
        };
        let oracle_span = codelayout_obs::span("oracle_run");
        let mut oracle_trace = TraceBuffer::fetch_only();
        oracle_trace.reserve(trace.len());
        let oracle = self.study.run_measured_with(
            image,
            &self.study.base_kernel_image,
            &mut oracle_trace,
            other,
        );
        oracle_span.finish();
        oracle.assert_correct();
        assert_eq!(
            oracle_trace.freeze(),
            *trace,
            "{name}: {} engine diverged from {} engine",
            other.label(),
            engine.label(),
        );
        assert_eq!(oracle.report, outcome.report, "{name}: reports diverged");
        assert_eq!(
            oracle.invariants, outcome.invariants,
            "{name}: invariants diverged"
        );
        assert_eq!(
            oracle.per_process_txns, outcome.per_process_txns,
            "{name}: per-process transaction counts diverged"
        );
        let (interp_secs, block_secs) = match engine {
            VmEngine::Block => (
                oracle.run_wall.as_secs_f64(),
                outcome.run_wall.as_secs_f64(),
            ),
            VmEngine::Interp => (
                outcome.run_wall.as_secs_f64(),
                oracle.run_wall.as_secs_f64(),
            ),
        };
        // The code cache still holds this image's compiled form (the
        // image `Arc` is alive), so a fresh machine reports it cheaply.
        let cache = self
            .study
            .new_machine_with(image, &self.study.base_kernel_image, 0, VmEngine::Block)
            .0
            .code_cache_stats()
            .unwrap_or((0, 0));
        let timing = VmTiming {
            instructions: outcome.report.instructions,
            interp_secs,
            block_secs,
            cache,
        };
        codelayout_obs::metrics().gauge_set("vm.engine_speedup", timing.speedup());
        self.vm_timing = Some(timing);
    }

    /// Per-job replay throughput gauges for one measured layout. Job
    /// labels follow the fixed job order [`Harness::measure`] builds:
    /// the user size sweep always runs; fully-instrumented layouts add
    /// the direct-mapped grid and the combined/kernel size sweeps.
    fn record_replay_metrics(
        &self,
        name: &str,
        sink: &CompositeSink,
        jobs: &[SweepSpec],
        trace: &codelayout_vm::FrozenTrace,
        parallel_secs: f64,
    ) {
        const JOB_LABELS: [&str; 4] = ["sizes4w_user", "dm_user", "sizes4w_all", "sizes4w_kernel"];
        let m = codelayout_obs::metrics();
        let secs = parallel_secs.max(1e-9);
        m.gauge_set(
            &format!("replay.{name}.insts_per_sec"),
            trace.len() as f64 / secs,
        );
        for (j, job) in jobs.iter().enumerate() {
            let label = JOB_LABELS.get(j).copied().unwrap_or("extra");
            let events = match job.stream() {
                StreamFilter::UserOnly => sink.user_fetches,
                StreamFilter::KernelOnly => sink.kernel_fetches,
                StreamFilter::All => sink.user_fetches + sink.kernel_fetches,
            };
            m.gauge_set(
                &format!("replay.{name}.{label}.insts_per_sec"),
                events as f64 / secs,
            );
            m.gauge_set(
                &format!("replay.{name}.{label}.shards"),
                job.shard_count() as f64,
            );
        }
    }

    /// Writes a figure's JSON result under the results directory and
    /// records its digest for the run manifest.
    pub fn save_json(&mut self, name: &str, value: &serde_json::Value) {
        let _span = codelayout_obs::span("save");
        let _ = std::fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("{name}.json"));
        let text = serde_json::to_string_pretty(value).expect("json");
        self.output_digests.push((
            format!("{name}.json"),
            codelayout_obs::manifest::digest_hex(text.as_bytes()),
        ));
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    /// The manifest directory for this harness:
    /// `results/<scenario label>/`.
    pub fn manifest_dir(&self) -> PathBuf {
        self.out_dir.join(&self.scenario_label)
    }

    /// The scenario parameters recorded in the run manifest.
    pub fn config_json(&self) -> serde_json::Value {
        let sc = &self.study.scenario;
        serde_json::json!({
            "scenario": self.scenario_label.clone(),
            "num_cpus": sc.num_cpus as u64,
            "processes_per_cpu": sc.processes_per_cpu as u64,
            "profile_txns": sc.profile_txns,
            "warmup_txns": sc.warmup_txns,
            "measure_txns": sc.measure_txns,
            "seed": sc.seed,
            "sweep_threads": self.sweeper.threads() as u64,
            "sweep_engine": self.sweeper.engine().label(),
            "vm_engine": self.study.machine_config().engine.label(),
        })
    }

    /// Writes `results/<scenario>/manifest.json` for a finished run whose
    /// root span was named `tool`: config, phase tree (the `tool` span
    /// must already be closed), metrics snapshot, and the digests of
    /// every JSON result this harness wrote. Returns the manifest path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_manifest(&self, tool: &str) -> std::io::Result<PathBuf> {
        let mut b = codelayout_obs::manifest::ManifestBuilder::new(tool, &self.scenario_label);
        b.config(self.config_json());
        b.phases(codelayout_obs::tracer(), tool);
        b.metrics(codelayout_obs::metrics());
        for (key, value) in &self.extra_sections {
            b.section(key, value.clone());
        }
        for (name, digest) in &self.output_digests {
            b.output(name, digest.clone());
        }
        b.write(&self.manifest_dir())
    }
}

/// True when `--report` was passed on the command line; figure binaries
/// print the tracer's phase-tree report when set.
pub fn report_requested() -> bool {
    std::env::args().any(|a| a == "--report")
}

/// Shared entry point for the single-figure binaries: runs `f` on the
/// env-selected scenario under a root span named `tool`, saves the
/// figure JSON, writes the run manifest, and honors `--report`.
pub fn figure_main(tool: &str, f: fn(&mut Harness) -> serde_json::Value) {
    let root = codelayout_obs::span(tool);
    let mut h = Harness::from_env();
    let v = f(&mut h);
    h.save_json(tool, &v);
    root.finish();
    finish_run(tool, &h);
}

/// Writes the manifest for a finished run (root span `tool` already
/// closed) and prints the phase report when `--report` was passed.
pub fn finish_run(tool: &str, h: &Harness) {
    match h.write_manifest(tool) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
    if report_requested() {
        print!("{}", codelayout_obs::tracer().render_report());
    }
}

/// The scenario label selected by `CODELAYOUT_SCENARIO`
/// (`quick` / `sim` / `hw`, default `sim`; see [`RunEnv`]).
pub fn scenario_label_from_env() -> &'static str {
    run_env().scenario.label()
}

/// The [`Scenario`] selected by `CODELAYOUT_SCENARIO`
/// (`quick` / `sim` / `hw`, default `sim`; see [`RunEnv`]), with the
/// workload seed replaced by `CODELAYOUT_SEED` when set.
pub fn scenario_from_env() -> Scenario {
    let mut sc = match run_env().scenario {
        ScenarioSel::Quick => Scenario::quick(),
        ScenarioSel::Hw => Scenario::paper_hw(),
        ScenarioSel::Sim => Scenario::paper_sim(),
    };
    if let Some(seed) = run_env().seed {
        sc.seed = seed;
    }
    sc
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(n: u64, d: u64) -> String {
    if d == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * n as f64 / d as f64)
    }
}
