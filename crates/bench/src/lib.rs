//! Experiment harness reproducing the paper's evaluation.
//!
//! Every figure of the paper has a binary in `src/bin/` (`fig03` …
//! `fig15`, plus `claims` for the in-text numeric claims and several
//! `ablation_*` binaries for design-choice studies). `run_all` executes
//! the whole evaluation in one process, sharing workload runs between
//! figures, and writes `results/figNN.json` files plus human-readable
//! tables.
//!
//! The harness runs each code layout once with a composite trace sink that
//! feeds every simulator a figure needs: the direct-mapped line-size grid
//! (Fig. 4/5), the 128-byte 4-way size sweeps for user/kernel/combined
//! streams (Figs. 6, 7, 12, 13), the sequence profiler (Fig. 8), the
//! locality cache (Figs. 9–11), footprint counters (packing claims), and
//! three full memory hierarchies (Fig. 14 and the Fig. 15 timing models).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use codelayout_core::OptimizationSet;
use codelayout_ir::Image;
use codelayout_memsim::{
    CacheConfig, FootprintCounter, HierarchyStats, LocalityCache, LocalityStats,
    MemoryHierarchy, SequenceProfiler, SequenceStats, StreamFilter, SweepCell, SweepSink,
};
use codelayout_oltp::{build_study, RunOutcome, Scenario, Study};
use codelayout_timing::TimingModel;
use codelayout_vm::{DataRecord, FetchRecord, TraceSink};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Cache sizes (KB) used across the paper's sweeps.
pub const SIZES_KB: [u64; 5] = [32, 64, 128, 256, 512];
/// Line sizes (bytes) of the Figure 4 grid.
pub const LINES_B: [u32; 5] = [16, 32, 64, 128, 256];

/// The locality-metrics configuration used by Figures 9–11 (and 13):
/// 128 KB, 128-byte lines, 4-way.
pub fn locality_config() -> CacheConfig {
    CacheConfig::new(128 * 1024, 128, 4)
}

/// Everything measured for one code layout.
#[derive(Debug, Clone)]
pub struct LayoutData {
    /// Layout label (paper's x-axis names).
    pub label: String,
    /// Text size of the linked image in bytes.
    pub text_bytes: u64,
    /// Direct-mapped size × line grid, application stream only (full runs
    /// only).
    pub dm_grid_user: Vec<SweepCell>,
    /// 128 B / 4-way across sizes, application stream.
    pub sizes_4w_user: Vec<SweepCell>,
    /// 128 B / 4-way across sizes, combined stream (full runs only).
    pub sizes_4w_all: Vec<SweepCell>,
    /// 128 B / 4-way across sizes, kernel stream (full runs only).
    pub sizes_4w_kernel: Vec<SweepCell>,
    /// Sequential run lengths, application stream (full runs only).
    pub seq_user: Option<SequenceStats>,
    /// Word-use / reuse / lifetime metrics at [`locality_config`]
    /// (full runs only).
    pub locality: Option<LocalityStats>,
    /// Unique 128 B lines touched by the application stream, in bytes.
    pub footprint_line_bytes: Option<u64>,
    /// Unique application instructions executed, in bytes.
    pub footprint_instr_bytes: Option<u64>,
    /// Paper base SimOS hierarchy counters (full runs only).
    pub hier_simos: Option<HierarchyStats>,
    /// 21264-like hierarchy counters.
    pub hier_21264: HierarchyStats,
    /// 21164-like hierarchy counters.
    pub hier_21164: HierarchyStats,
    /// Application instructions fetched during measurement.
    pub user_fetches: u64,
    /// Kernel instructions fetched during measurement.
    pub kernel_fetches: u64,
    /// The run outcome (instruction counts, invariants).
    pub outcome: RunOutcome,
}

/// Composite sink feeding every simulator in one pass.
struct CompositeSink {
    full: bool,
    dm_grid_user: SweepSink,
    sizes_4w_user: SweepSink,
    sizes_4w_all: SweepSink,
    sizes_4w_kernel: SweepSink,
    seq_user: SequenceProfiler,
    locality: LocalityCache,
    fp: FootprintCounter,
    hier_simos: MemoryHierarchy,
    hier_21264: MemoryHierarchy,
    hier_21164: MemoryHierarchy,
    user_fetches: u64,
    kernel_fetches: u64,
}

impl CompositeSink {
    fn new(num_cpus: usize, full: bool) -> Self {
        let sizes_128_4w: Vec<CacheConfig> = SIZES_KB
            .iter()
            .map(|&k| CacheConfig::new(k * 1024, 128, 4))
            .collect();
        CompositeSink {
            full,
            dm_grid_user: SweepSink::new(
                if full { SweepSink::fig4_grid(1) } else { Vec::new() },
                num_cpus,
                StreamFilter::UserOnly,
            ),
            sizes_4w_user: SweepSink::new(sizes_128_4w.clone(), num_cpus, StreamFilter::UserOnly),
            sizes_4w_all: SweepSink::new(
                if full { sizes_128_4w.clone() } else { Vec::new() },
                num_cpus,
                StreamFilter::All,
            ),
            sizes_4w_kernel: SweepSink::new(
                if full { sizes_128_4w } else { Vec::new() },
                num_cpus,
                StreamFilter::KernelOnly,
            ),
            seq_user: SequenceProfiler::new(StreamFilter::UserOnly),
            locality: LocalityCache::new(locality_config(), StreamFilter::UserOnly),
            fp: FootprintCounter::new(128, StreamFilter::UserOnly),
            hier_simos: MemoryHierarchy::new(
                codelayout_memsim::HierarchyConfig::simos_base(num_cpus),
            ),
            hier_21264: MemoryHierarchy::new(TimingModel::hierarchy_21264(num_cpus)),
            hier_21164: MemoryHierarchy::new(TimingModel::hierarchy_21164(num_cpus)),
            user_fetches: 0,
            kernel_fetches: 0,
        }
    }
}

impl TraceSink for CompositeSink {
    #[inline]
    fn fetch(&mut self, rec: FetchRecord) {
        if rec.kernel {
            self.kernel_fetches += 1;
        } else {
            self.user_fetches += 1;
        }
        self.sizes_4w_user.fetch(rec);
        self.hier_21264.fetch(rec);
        self.hier_21164.fetch(rec);
        if self.full {
            self.dm_grid_user.fetch(rec);
            self.sizes_4w_all.fetch(rec);
            self.sizes_4w_kernel.fetch(rec);
            self.seq_user.fetch(rec);
            self.locality.fetch(rec);
            self.fp.fetch(rec);
            self.hier_simos.fetch(rec);
        }
    }

    #[inline]
    fn data(&mut self, rec: DataRecord) {
        self.hier_21264.data(rec);
        self.hier_21164.data(rec);
        if self.full {
            self.hier_simos.data(rec);
        }
    }
}

/// Builds and caches per-layout measurements for one scenario.
pub struct Harness {
    /// The prepared study (workload + profile).
    pub study: Study,
    runs: HashMap<String, LayoutData>,
    out_dir: PathBuf,
}

impl Harness {
    /// Builds the study for a scenario. The results directory defaults to
    /// `results/` under the current directory (created on demand).
    pub fn new(scenario: &Scenario) -> Self {
        Harness {
            study: build_study(scenario),
            runs: HashMap::new(),
            out_dir: PathBuf::from("results"),
        }
    }

    /// Builds the scenario selected by `CODELAYOUT_SCENARIO`
    /// (`quick`/`sim`/`hw`; default `sim`).
    pub fn from_env() -> Self {
        let sc = scenario_from_env();
        Self::new(&sc)
    }

    /// The scenario's paper layouts plus their images; `name` must be one
    /// of the paper series labels or `hotcold`/`cfa`.
    fn image_for(&self, name: &str) -> Arc<Image> {
        match name {
            "hotcold" => {
                let layout = codelayout_core::hot_cold_layout(
                    &self.study.app.program,
                    &self.study.profile,
                );
                Arc::new(
                    codelayout_ir::link::link(
                        &self.study.app.program,
                        &layout,
                        codelayout_vm::APP_TEXT_BASE,
                    )
                    .expect("hot/cold layout links"),
                )
            }
            "cfa" => {
                let (layout, _) = codelayout_core::cfa_layout(
                    &self.study.app.program,
                    &self.study.profile,
                    32 * 1024,
                );
                Arc::new(
                    codelayout_ir::link::link(
                        &self.study.app.program,
                        &layout,
                        codelayout_vm::APP_TEXT_BASE,
                    )
                    .expect("cfa layout links"),
                )
            }
            _ => {
                let set = OptimizationSet::paper_series()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, s)| s)
                    .unwrap_or_else(|| panic!("unknown layout {name}"));
                self.study.image(set)
            }
        }
    }

    /// Runs (or returns the cached) measurement for a layout. `base` and
    /// `all` get the full instrumentation; other layouts the light set.
    pub fn run(&mut self, name: &str) -> &LayoutData {
        if !self.runs.contains_key(name) {
            let full = matches!(name, "base" | "all");
            let data = self.measure(name, full);
            self.runs.insert(name.to_string(), data);
        }
        &self.runs[name]
    }

    fn measure(&self, name: &str, full: bool) -> LayoutData {
        let image = self.image_for(name);
        let mut sink = CompositeSink::new(self.study.scenario.num_cpus, full);
        let outcome =
            self.study
                .run_measured(&image, &self.study.base_kernel_image, &mut sink);
        outcome.assert_correct();
        LayoutData {
            label: name.to_string(),
            text_bytes: image.text_bytes(),
            dm_grid_user: sink.dm_grid_user.results(),
            sizes_4w_user: sink.sizes_4w_user.results(),
            sizes_4w_all: sink.sizes_4w_all.results(),
            sizes_4w_kernel: sink.sizes_4w_kernel.results(),
            seq_user: full.then(|| sink.seq_user.finish()),
            locality: full.then(|| sink.locality.finish()),
            footprint_line_bytes: full.then(|| sink.fp.line_footprint_bytes()),
            footprint_instr_bytes: full.then(|| sink.fp.instr_footprint_bytes()),
            hier_simos: full.then(|| *sink.hier_simos.stats()),
            hier_21264: *sink.hier_21264.stats(),
            hier_21164: *sink.hier_21164.stats(),
            user_fetches: sink.user_fetches,
            kernel_fetches: sink.kernel_fetches,
            outcome,
        }
    }

    /// Writes a figure's JSON result under the results directory.
    pub fn save_json(&self, name: &str, value: &serde_json::Value) {
        let _ = std::fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("{name}.json"));
        match std::fs::write(&path, serde_json::to_string_pretty(value).expect("json")) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Parses `CODELAYOUT_SCENARIO` (`quick` / `sim` / `hw`, default `sim`).
pub fn scenario_from_env() -> Scenario {
    match std::env::var("CODELAYOUT_SCENARIO").as_deref() {
        Ok("quick") => Scenario::quick(),
        Ok("hw") => Scenario::paper_hw(),
        _ => Scenario::paper_sim(),
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(n: u64, d: u64) -> String {
    if d == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * n as f64 / d as f64)
    }
}
