//! Reproduces the paper's fig03 (see `codelayout-bench` docs).
//!
//! Scenario via `CODELAYOUT_SCENARIO` (quick|sim|hw; default sim).

fn main() {
    codelayout_bench::figure_main("fig03", codelayout_bench::figures::fig03);
}
