//! Search-based layout autotuning, end to end: record the replay window
//! once, search each tunable series family's parameter space under a
//! candidate budget, re-measure the winners on the full workload, and
//! print the base vs fixed vs tuned comparison. Writes
//! `results/fig_tune.json` and a run manifest whose `tune` section
//! carries the search trajectory summary. Knobs:
//! `CODELAYOUT_TUNE_BUDGET`, `CODELAYOUT_TUNE_CANDIDATES`,
//! `CODELAYOUT_TUNE_WINDOW`, `CODELAYOUT_SEED`, plus the usual
//! scenario/engine/thread knobs. `CODELAYOUT_TRACE_OUT` streams each
//! evaluated candidate as a `tune/candidate` JSONL event.

use codelayout_bench::{figures, finish_run, Harness};
use codelayout_tune::TuneConfig;

fn main() {
    let root = codelayout_obs::span("fig_tune");
    let mut h = Harness::from_env();
    let cfg = TuneConfig::from_env(&h.study.scenario);
    let v = figures::fig_tune(&mut h, &cfg);
    h.save_json("fig_tune", &v);
    root.finish();
    finish_run("fig_tune", &h);
}
