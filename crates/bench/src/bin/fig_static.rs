//! Static-profile study: every lint-matrix layout series built from the
//! measured profile and from the static Ball–Larus-style estimate, both
//! measured on the identical workload (see
//! [`codelayout_bench::figures::fig_static`]).

fn main() {
    codelayout_bench::figure_main("fig_static", codelayout_bench::figures::fig_static);
}
