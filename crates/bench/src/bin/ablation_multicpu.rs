//! Ablation: uniprocessor vs 4-processor execution-time impact. The paper
//! reports 1.33× on one processor and 1.25× on four (data communication
//! misses dilute the instruction-fetch gains).

use codelayout_bench::Harness;
use codelayout_oltp::Scenario;
use codelayout_timing::TimingModel;

fn main() {
    let model = TimingModel::alpha_21264();
    for (label, scenario) in [
        ("1 CPU", Scenario::paper_hw()),
        ("4 CPUs", Scenario::paper_sim()),
    ] {
        let mut h = Harness::new(&scenario);
        let (base_cycles, opt_cycles);
        {
            let d = h.run("base");
            base_cycles = model
                .evaluate(d.user_fetches + d.kernel_fetches, &d.hier_21264)
                .total();
        }
        {
            let d = h.run("all");
            opt_cycles = model
                .evaluate(d.user_fetches + d.kernel_fetches, &d.hier_21264)
                .total();
        }
        println!(
            "{label}: speedup of 'all' = {:.2}x (paper: 1.33x on 1p, 1.25x on 4p)",
            base_cycles as f64 / opt_cycles as f64
        );
    }
}
