//! `bench_smoke`: the CI engine benchmark. Records the quick scenario's
//! fetch stream once per fully-instrumented layout, replays it through
//! the full sweep-job set on **both** grid-replay engines — the
//! single-pass stack-distance profiler and the direct
//! per-configuration simulator — asserts the two produce bit-identical
//! cells, and writes `BENCH_pr5.json` with best-of-N replay throughput
//! for each engine so the speedup is tracked as a CI artifact.

use codelayout_core::OptimizationSet;
use codelayout_memsim::{ParallelSweep, StreamFilter, SweepEngine, SweepSpec, LINES_B, SIZES_KB};
use codelayout_oltp::{build_study, Scenario};
use codelayout_vm::TraceBuffer;
use std::time::Instant;

/// Interleaved best-of-N rounds per engine; cancels warm-up noise.
const ROUNDS: usize = 3;

fn main() {
    let threads = codelayout_bench::run_env().sweep_threads();
    let sc = Scenario::quick();
    let study = build_study(&sc);
    let num_cpus = sc.num_cpus;

    // The same job set `Harness::measure` replays for a
    // fully-instrumented layout: user size sweep, direct-mapped grid,
    // combined and kernel size sweeps.
    let sizes_4w = |filter: StreamFilter| {
        SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .line_b(128)
            .ways(4)
            .cpus(num_cpus)
            .filter(filter)
    };
    let jobs = vec![
        sizes_4w(StreamFilter::UserOnly),
        SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .lines_b(&LINES_B)
            .ways(1)
            .cpus(num_cpus)
            .filter(StreamFilter::UserOnly),
        sizes_4w(StreamFilter::All),
        sizes_4w(StreamFilter::KernelOnly),
    ];
    let shards: usize = jobs.iter().map(SweepSpec::shard_count).sum();

    let stack = ParallelSweep::new(threads).with_engine(SweepEngine::Stack);
    let direct = ParallelSweep::new(threads).with_engine(SweepEngine::Direct);

    let mut layouts = serde_json::Map::new();
    let mut min_speedup = f64::INFINITY;
    for (name, set) in [
        ("base", OptimizationSet::BASE),
        ("all", OptimizationSet::ALL),
    ] {
        let image = study.image(set);
        let mut buf = TraceBuffer::fetch_only();
        study
            .run_measured(&image, &study.base_kernel_image, &mut buf)
            .assert_correct();
        let trace = buf.freeze();
        let events = trace.len() as u64;

        // Equivalence first: the stack engine must be bit-identical to
        // the direct oracle on the full job set.
        let want = direct.run(&trace, &jobs);
        let got = stack.run(&trace, &jobs);
        assert_eq!(
            got, want,
            "stack-distance sweep diverged from the direct engine on layout {name}"
        );

        let mut stack_best = f64::INFINITY;
        let mut direct_best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let t = Instant::now();
            let r = stack.run(&trace, &jobs);
            stack_best = stack_best.min(t.elapsed().as_secs_f64());
            assert_eq!(r, want);

            let t = Instant::now();
            let r = direct.run(&trace, &jobs);
            direct_best = direct_best.min(t.elapsed().as_secs_f64());
            assert_eq!(r, want);
        }

        let speedup = direct_best / stack_best.max(1e-12);
        min_speedup = min_speedup.min(speedup);
        eprintln!(
            "[bench_smoke] {name}: {events} events x {shards} direct shards on {threads} threads: \
             stack {:.4}s ({:.1} M evt/s) vs direct {:.4}s ({:.1} M evt/s) — {speedup:.2}x",
            stack_best,
            events as f64 / stack_best / 1e6,
            direct_best,
            events as f64 / direct_best / 1e6,
        );
        layouts.insert(
            name.to_string(),
            serde_json::json!({
                "events": events,
                "stack_secs": stack_best,
                "direct_secs": direct_best,
                "stack_minsts_per_sec": events as f64 / stack_best / 1e6,
                "direct_minsts_per_sec": events as f64 / direct_best / 1e6,
                "speedup": speedup,
            }),
        );
    }

    let out = serde_json::json!({
        "benchmark": "sweep_engine_smoke",
        "scenario": "quick",
        "threads": threads as u64,
        "rounds": ROUNDS as u64,
        "direct_shards": shards as u64,
        "equivalent": true,
        "min_speedup": min_speedup,
        "layouts": layouts,
    });
    let mut text = serde_json::to_string_pretty(&out).expect("serialize benchmark");
    text.push('\n');
    std::fs::write("BENCH_pr5.json", text).expect("write BENCH_pr5.json");
    eprintln!("[bench_smoke] wrote BENCH_pr5.json (min speedup {min_speedup:.2}x)");
}
