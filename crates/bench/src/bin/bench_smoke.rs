//! `bench_smoke`: the CI engine benchmarks. Three parts, all on the
//! quick scenario:
//!
//! 1. **Grid-replay engines** (`BENCH_pr5.json`): records each
//!    fully-instrumented layout's fetch stream once, replays it through
//!    the full sweep-job set on both engines — the single-pass
//!    stack-distance profiler and the direct per-configuration
//!    simulator — asserts bit-identical cells, and reports best-of-N
//!    replay throughput per engine.
//! 2. **VM execution tiers** (`BENCH_pr6.json`): executes the measured
//!    workload on both tiers — the block-compiled engine and the
//!    interpreter oracle — asserts bit-identical instruction traces and
//!    outcomes, reports best-of-N execution throughput per tier, and
//!    **exits nonzero if the block engine's execution speedup falls
//!    below [`MIN_VM_SPEEDUP`]** (the regression floor).
//! 3. **Layout autotuner** (`BENCH_pr10.json`): a small fixed-budget
//!    parameter search ([`codelayout_tune::run_tune`]), recording the
//!    tuned-vs-fixed per-cache-size window miss deltas, the winning
//!    series and parameters, and search throughput.

use codelayout_core::OptimizationSet;
use codelayout_memsim::{ParallelSweep, StreamFilter, SweepEngine, SweepSpec, LINES_B, SIZES_KB};
use codelayout_oltp::{build_study, Scenario, Study};
use codelayout_vm::{NullSink, TraceBuffer, VmEngine};
use std::time::Instant;

/// Interleaved best-of-N rounds per engine; cancels warm-up noise.
const ROUNDS: usize = 3;

/// Extra rounds for the VM tiers: their measured phase is sub-millisecond
/// on the quick scenario, so best-of-few is too noisy to gate on.
const VM_ROUNDS: usize = 40;

/// CI gate: minimum acceptable block-engine speedup over the interpreter
/// on the quick scenario's measured run (pure execution, null sink).
///
/// This is a regression floor, not the design target. The block tier was
/// sized against an interpreter an order of magnitude slower than the
/// one this repo actually ships: the oracle already pre-resolves
/// operands and runs at ~140 M inst/s, so on the OLTP mix — where both
/// tiers are bound by the simulated image's working set, not dispatch —
/// the compiled tier delivers ~1.1-1.25x end to end (~2x on straight-line
/// code; see `cargo run --release -p codelayout-vm --example
/// engine_bench`). The floor guards the win we actually have: a change
/// that makes the block tier no faster than the oracle fails CI.
const MIN_VM_SPEEDUP: f64 = 1.05;

fn main() {
    let threads = codelayout_bench::run_env().sweep_threads();
    let sc = Scenario::quick();
    let study = build_study(&sc);
    let num_cpus = sc.num_cpus;

    // The same job set `Harness::measure` replays for a
    // fully-instrumented layout: user size sweep, direct-mapped grid,
    // combined and kernel size sweeps.
    let sizes_4w = |filter: StreamFilter| {
        SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .line_b(128)
            .ways(4)
            .cpus(num_cpus)
            .filter(filter)
    };
    let jobs = vec![
        sizes_4w(StreamFilter::UserOnly),
        SweepSpec::grid()
            .sizes_kb(&SIZES_KB)
            .lines_b(&LINES_B)
            .ways(1)
            .cpus(num_cpus)
            .filter(StreamFilter::UserOnly),
        sizes_4w(StreamFilter::All),
        sizes_4w(StreamFilter::KernelOnly),
    ];
    let shards: usize = jobs.iter().map(SweepSpec::shard_count).sum();

    let stack = ParallelSweep::new(threads).with_engine(SweepEngine::Stack);
    let direct = ParallelSweep::new(threads).with_engine(SweepEngine::Direct);

    let mut layouts = serde_json::Map::new();
    let mut min_speedup = f64::INFINITY;
    for (name, set) in [
        ("base", OptimizationSet::BASE),
        ("all", OptimizationSet::ALL),
    ] {
        let image = study.image(set);
        let mut buf = TraceBuffer::fetch_only();
        study
            .run_measured(&image, &study.base_kernel_image, &mut buf)
            .assert_correct();
        let trace = buf.freeze();
        let events = trace.len() as u64;

        // Equivalence first: the stack engine must be bit-identical to
        // the direct oracle on the full job set.
        let want = direct.run(&trace, &jobs);
        let got = stack.run(&trace, &jobs);
        assert_eq!(
            got, want,
            "stack-distance sweep diverged from the direct engine on layout {name}"
        );

        let mut stack_best = f64::INFINITY;
        let mut direct_best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let t = Instant::now();
            let r = stack.run(&trace, &jobs);
            stack_best = stack_best.min(t.elapsed().as_secs_f64());
            assert_eq!(r, want);

            let t = Instant::now();
            let r = direct.run(&trace, &jobs);
            direct_best = direct_best.min(t.elapsed().as_secs_f64());
            assert_eq!(r, want);
        }

        let speedup = direct_best / stack_best.max(1e-12);
        min_speedup = min_speedup.min(speedup);
        eprintln!(
            "[bench_smoke] {name}: {events} events x {shards} direct shards on {threads} threads: \
             stack {:.4}s ({:.1} M evt/s) vs direct {:.4}s ({:.1} M evt/s) — {speedup:.2}x",
            stack_best,
            events as f64 / stack_best / 1e6,
            direct_best,
            events as f64 / direct_best / 1e6,
        );
        layouts.insert(
            name.to_string(),
            serde_json::json!({
                "events": events,
                "stack_secs": stack_best,
                "direct_secs": direct_best,
                "stack_minsts_per_sec": events as f64 / stack_best / 1e6,
                "direct_minsts_per_sec": events as f64 / direct_best / 1e6,
                "speedup": speedup,
            }),
        );
    }

    let out = serde_json::json!({
        "benchmark": "sweep_engine_smoke",
        "scenario": "quick",
        "threads": threads as u64,
        "rounds": ROUNDS as u64,
        "direct_shards": shards as u64,
        "equivalent": true,
        "min_speedup": min_speedup,
        "layouts": layouts,
    });
    let mut text = serde_json::to_string_pretty(&out).expect("serialize benchmark");
    text.push('\n');
    std::fs::write("BENCH_pr5.json", text).expect("write BENCH_pr5.json");
    eprintln!("[bench_smoke] wrote BENCH_pr5.json (min speedup {min_speedup:.2}x)");

    vm_engine_bench(&study);
    tune_bench(&study);
}

/// Part 2: the VM execution-tier benchmark (`BENCH_pr6.json`).
fn vm_engine_bench(study: &Study) {
    let mut layouts = serde_json::Map::new();
    let mut min_speedup = f64::INFINITY;
    for (name, set) in [
        ("base", OptimizationSet::BASE),
        ("all", OptimizationSet::ALL),
    ] {
        let image = study.image(set);

        // Equivalence first: both tiers must produce bit-identical
        // instruction traces and run outcomes.
        let mut interp_buf = TraceBuffer::fetch_only();
        let interp_out = study.run_measured_with(
            &image,
            &study.base_kernel_image,
            &mut interp_buf,
            VmEngine::Interp,
        );
        interp_out.assert_correct();
        let mut block_buf = TraceBuffer::fetch_only();
        let block_out = study.run_measured_with(
            &image,
            &study.base_kernel_image,
            &mut block_buf,
            VmEngine::Block,
        );
        block_out.assert_correct();
        let interp_trace = interp_buf.freeze();
        let block_trace = block_buf.freeze();
        let digest = interp_trace.digest();
        assert_eq!(
            interp_trace, block_trace,
            "block engine trace diverged from the interpreter on layout {name}"
        );
        assert_eq!(digest, block_trace.digest());
        assert_eq!(interp_out.report, block_out.report, "reports diverged");
        assert_eq!(
            interp_out.per_process_txns, block_out.per_process_txns,
            "transaction counts diverged"
        );
        let instructions = block_out.report.instructions;
        let events = interp_trace.len();

        // Throughput: best-of-N measured-phase wall time per tier, in
        // two configurations — a null sink (pure execution) and a
        // pre-sized fetch-only trace recording (what `Harness::measure`
        // actually runs).
        let mut interp_best = f64::INFINITY;
        let mut block_best = f64::INFINITY;
        let mut interp_rec_best = f64::INFINITY;
        let mut block_rec_best = f64::INFINITY;
        for _ in 0..VM_ROUNDS {
            for (engine, exec, rec) in [
                (VmEngine::Interp, &mut interp_best, &mut interp_rec_best),
                (VmEngine::Block, &mut block_best, &mut block_rec_best),
            ] {
                let out = study.run_measured_with(
                    &image,
                    &study.base_kernel_image,
                    &mut NullSink,
                    engine,
                );
                *exec = exec.min(out.run_wall.as_secs_f64());
                let mut buf = TraceBuffer::fetch_only();
                buf.reserve(events);
                let out =
                    study.run_measured_with(&image, &study.base_kernel_image, &mut buf, engine);
                *rec = rec.min(out.run_wall.as_secs_f64());
            }
        }
        let speedup = interp_best / block_best.max(1e-12);
        let rec_speedup = interp_rec_best / block_rec_best.max(1e-12);
        min_speedup = min_speedup.min(speedup);
        let cache = study
            .new_machine_with(&image, &study.base_kernel_image, 0, VmEngine::Block)
            .0
            .code_cache_stats()
            .unwrap_or((0, 0));
        eprintln!(
            "[bench_smoke] vm {name}: {instructions} instrs, {} runs ({} KiB cache): \
             exec block {:.1} vs interp {:.1} M inst/s ({speedup:.2}x); \
             record block {:.1} vs interp {:.1} M inst/s ({rec_speedup:.2}x)",
            cache.0,
            cache.1 / 1024,
            instructions as f64 / block_best / 1e6,
            instructions as f64 / interp_best / 1e6,
            instructions as f64 / block_rec_best / 1e6,
            instructions as f64 / interp_rec_best / 1e6,
        );
        layouts.insert(
            name.to_string(),
            serde_json::json!({
                "instructions": instructions,
                "trace_events": events as u64,
                "trace_digest": digest,
                "interp_secs": interp_best,
                "block_secs": block_best,
                "interp_minsts_per_sec": instructions as f64 / interp_best / 1e6,
                "block_minsts_per_sec": instructions as f64 / block_best / 1e6,
                "interp_record_minsts_per_sec": instructions as f64 / interp_rec_best / 1e6,
                "block_record_minsts_per_sec": instructions as f64 / block_rec_best / 1e6,
                "compiled_runs": cache.0 as u64,
                "cache_bytes": cache.1 as u64,
                "speedup": speedup,
                "record_speedup": rec_speedup,
            }),
        );
    }

    let out = serde_json::json!({
        "benchmark": "vm_engine_smoke",
        "scenario": "quick",
        "rounds": VM_ROUNDS as u64,
        "equivalent": true,
        "min_speedup": min_speedup,
        "min_speedup_gate": MIN_VM_SPEEDUP,
        "layouts": layouts,
    });
    let mut text = serde_json::to_string_pretty(&out).expect("serialize benchmark");
    text.push('\n');
    std::fs::write("BENCH_pr6.json", text).expect("write BENCH_pr6.json");
    eprintln!("[bench_smoke] wrote BENCH_pr6.json (min speedup {min_speedup:.2}x)");
    assert!(
        min_speedup >= MIN_VM_SPEEDUP,
        "block engine speedup {min_speedup:.2}x is below the {MIN_VM_SPEEDUP}x CI gate"
    );
}

/// Candidate budget per family for the benchmark search: big enough to
/// exercise descent and restarts, small enough to keep CI fast.
const TUNE_CANDIDATES: u64 = 16;

/// Part 3: the layout-autotuner benchmark (`BENCH_pr10.json`).
fn tune_bench(study: &Study) {
    use codelayout_core::ParamSpace;
    use codelayout_tune::{params_json, run_tune, TuneConfig, TUNE_SIZES_KB};

    let mut cfg = TuneConfig::for_scenario(&study.scenario);
    cfg.candidates = TUNE_CANDIDATES;
    let t = Instant::now();
    let report = run_tune(study, &cfg);
    let secs = t.elapsed().as_secs_f64();
    let evaluated = report.trajectory.len() as u64;

    let mut families = serde_json::Map::new();
    for f in &report.families {
        let fixed = report
            .fixed
            .iter()
            .find(|fx| fx.series.label() == f.series.label())
            .expect("every tuned family has a fixed counterpart in the comparison set");
        // Positive delta = misses the tuned point saves over the fixed
        // default at that cache size.
        let delta: Vec<i64> = f
            .best_cells
            .iter()
            .zip(&fixed.cells)
            .map(|(t, fx)| *fx as i64 - *t as i64)
            .collect();
        let space = ParamSpace::for_series(f.series);
        families.insert(
            f.series.label().to_string(),
            serde_json::json!({
                "default_score": f.default_score,
                "best_score": f.best_score,
                "evaluated": f.evaluated,
                "fixed_cells": &fixed.cells,
                "tuned_cells": &f.best_cells,
                "delta_misses": &delta,
                "params": params_json(&space, &f.best_params),
            }),
        );
    }
    let winner = report.winner().expect("tune produced at least one family");

    eprintln!(
        "[bench_smoke] tune: {evaluated} candidates over {} families in {secs:.3}s \
         ({:.0} cand/s, window {} events): winner {} ({} vs base {})",
        report.families.len(),
        evaluated as f64 / secs.max(1e-12),
        report.window_events,
        winner.series.label(),
        winner.best_score,
        report.base_score,
    );
    let out = serde_json::json!({
        "benchmark": "tune_smoke",
        "scenario": "quick",
        "sizes_kb": &TUNE_SIZES_KB[..],
        "candidates_per_family": TUNE_CANDIDATES,
        "window_events": report.window_events,
        "evaluated": evaluated,
        "secs": secs,
        "candidates_per_sec": evaluated as f64 / secs.max(1e-12),
        "base_score": report.base_score,
        "winner": winner.series.label(),
        "winner_score": winner.best_score,
        "families": families,
    });
    let mut text = serde_json::to_string_pretty(&out).expect("serialize benchmark");
    text.push('\n');
    std::fs::write("BENCH_pr10.json", text).expect("write BENCH_pr10.json");
    eprintln!(
        "[bench_smoke] wrote BENCH_pr10.json (winner {})",
        winner.series.label()
    );
}
