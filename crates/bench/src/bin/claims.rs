//! Checks the paper's in-text numeric claims (footprint packing, unused
//! fetched words, sequence lengths, miss-reduction bands, kernel-layout
//! gain).

fn main() {
    let mut h = codelayout_bench::Harness::from_env();
    let v = codelayout_bench::figures::claims(&mut h);
    h.save_json("claims", &v);
}
