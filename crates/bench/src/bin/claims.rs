//! Checks the paper's in-text numeric claims (footprint packing, unused
//! fetched words, sequence lengths, miss-reduction bands, kernel-layout
//! gain).

fn main() {
    codelayout_bench::figure_main("claims", codelayout_bench::figures::claims);
}
