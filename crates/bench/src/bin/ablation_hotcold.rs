//! Ablation: fine-grain splitting (the paper's contribution) vs the
//! hot/cold splitting shipped in the Spike distribution (§2). Fine-grain
//! segments give the ordering pass more freedom; hot/cold only separates
//! the never-executed half of each procedure.

use codelayout_core::{hot_cold_layout, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_memsim::{StreamFilter, SweepSink, SweepSpec};
use codelayout_oltp::build_study;
use codelayout_vm::APP_TEXT_BASE;
use std::sync::Arc;

fn main() {
    let sc = codelayout_bench::scenario_from_env();
    let study = build_study(&sc);
    let spec = SweepSpec::grid()
        .sizes_kb(&[32, 64, 128])
        .line_b(128)
        .ways(4)
        .cpus(sc.num_cpus)
        .filter(StreamFilter::UserOnly);

    let run = |image: &Arc<codelayout_ir::Image>| -> Vec<u64> {
        let mut sweep = SweepSink::from_spec(&spec);
        let out = study.run_measured(image, &study.base_kernel_image, &mut sweep);
        out.assert_correct();
        sweep.results().iter().map(|c| c.stats.misses).collect()
    };

    println!(
        "{:>28} {:>9} {:>9} {:>9}",
        "layout", "32KB", "64KB", "128KB"
    );
    for (name, set) in [
        ("base", OptimizationSet::BASE),
        ("chain", OptimizationSet::CHAIN),
        ("chain+porder (no split)", OptimizationSet::CHAIN_PORDER),
        ("fine-grain split+PH (all)", OptimizationSet::ALL),
    ] {
        let m = run(&study.image(set));
        println!("{:>28} {:>9} {:>9} {:>9}", name, m[0], m[1], m[2]);
    }
    let hc = hot_cold_layout(&study.app.program, &study.profile);
    let image = Arc::new(link(&study.app.program, &hc, APP_TEXT_BASE).unwrap());
    let m = run(&image);
    println!(
        "{:>28} {:>9} {:>9} {:>9}",
        "hot/cold split+PH (Spike)", m[0], m[1], m[2]
    );
}
