//! Diagnostic probe: headline numbers for a scenario, used while tuning
//! the workload shape. Not one of the paper figures.
//!
//! Usage: `probe [quick|sim|hw]`

use codelayout_core::OptimizationSet;
use codelayout_memsim::{FootprintCounter, SequenceProfiler, StreamFilter, SweepSink, SweepSpec};
use codelayout_oltp::{build_study, Scenario};
use codelayout_vm::TeeSink;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "quick".into());
    let sc = match which.as_str() {
        "sim" => Scenario::paper_sim(),
        "hw" => Scenario::paper_hw(),
        _ => Scenario::quick(),
    };
    let t0 = Instant::now();
    let study = build_study(&sc);
    eprintln!("study built in {:?}", t0.elapsed());
    let st = study.app.program.stats();
    eprintln!(
        "app: {} procs, {} blocks, {} body instrs (~{} KB static)",
        st.procs,
        st.blocks,
        st.body_instrs,
        st.body_instrs * 4 / 1024
    );
    eprintln!(
        "profile: {} block entries",
        study.profile.total_block_entries()
    );
    // Top procedures by executed blocks.
    let owner = study.app.program.owner_of_blocks();
    let mut per_proc = vec![0u64; study.app.program.procs.len()];
    for (bi, &c) in study.profile.block_counts.iter().enumerate() {
        per_proc[owner[bi].index()] += c;
    }
    let mut idx: Vec<usize> = (0..per_proc.len()).collect();
    idx.sort_by(|&a, &b| per_proc[b].cmp(&per_proc[a]));
    for &i in idx.iter().take(12) {
        eprintln!("  {:>12} {}", per_proc[i], study.app.program.procs[i].name);
    }

    let spec = SweepSpec::grid()
        .sizes_kb(&codelayout_memsim::SIZES_KB)
        .line_b(128)
        .ways(4)
        .cpus(sc.num_cpus)
        .filter(StreamFilter::UserOnly);
    for (name, set) in OptimizationSet::paper_series() {
        let t = Instant::now();
        let img = study.image(set);
        let mut sweep = SweepSink::from_spec(&spec);
        let mut seq = SequenceProfiler::new(StreamFilter::UserOnly);
        let mut fp = FootprintCounter::new(128, StreamFilter::UserOnly);
        let mut sink = TeeSink(&mut sweep, TeeSink(&mut seq, &mut fp));
        let out = study.run_measured(&img, &study.base_kernel_image, &mut sink);
        out.assert_correct();
        let misses: Vec<u64> = sweep.results().iter().map(|c| c.stats.misses).collect();
        let accesses = sweep.results()[0].stats.accesses;
        let seq_stats = seq.finish();
        eprintln!(
            "{name:>12}: text={}KB fetches={}M misses(32..512K)={misses:?} seq_avg={:.2} fp={}KB [{:?}]",
            img.text_bytes() / 1024,
            accesses / 1_000_000,
            seq_stats.average_length(),
            fp.line_footprint_bytes() / 1024,
            t.elapsed(),
        );
    }
}
