//! Cross-algorithm layout comparison table: paper trio vs ext-TSP vs
//! Codestitcher (see `codelayout_bench::figures::compare`).
//!
//! Scenario via `CODELAYOUT_SCENARIO` (quick|sim|hw; default sim);
//! series via `CODELAYOUT_LAYOUT_SERIES` (comma-separated labels,
//! default base,all,hotcold,exttsp,stitcher).

fn main() {
    codelayout_bench::figure_main("compare", codelayout_bench::figures::compare);
}
