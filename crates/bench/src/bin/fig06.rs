//! Reproduces the paper's fig06 (see `codelayout-bench` docs).
//!
//! Scenario via `CODELAYOUT_SCENARIO` (quick|sim|hw; default sim).

fn main() {
    let mut h = codelayout_bench::Harness::from_env();
    let v = codelayout_bench::figures::fig06(&mut h);
    h.save_json("fig06", &v);
}
