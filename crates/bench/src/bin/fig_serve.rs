//! Continuous-profiling serving loop, end to end: phase-shifting
//! transaction stream, sampled drift detection, validated live
//! re-layout, and the staleness-recovery evaluation. Writes
//! `results/fig_serve.json` and a run manifest whose `serve` section
//! carries the per-epoch ledger.
//!
//! Unlike the offline figures, the study is built on the serving
//! stream itself ([`ServeConfig::serve_scenario`]): the warmup is
//! folded away and the measured section sized to the full stream so
//! the SGA history region fits every epoch. Knobs:
//! `CODELAYOUT_SERVE_EPOCH_TXNS`, `CODELAYOUT_SERVE_SAMPLE_PERIOD`,
//! `CODELAYOUT_SERVE_SAMPLE_DUTY`, `CODELAYOUT_SERVE_DRIFT_THRESHOLD`,
//! `CODELAYOUT_SEED`, plus the usual scenario/engine/thread knobs.

use codelayout_bench::{figures, finish_run, scenario_label_from_env, Harness};
use codelayout_serve::ServeConfig;

fn main() {
    let root = codelayout_obs::span("fig_serve");
    let base = codelayout_bench::scenario_from_env();
    let cfg = ServeConfig::from_env(&base);
    let mut h = Harness::with_label(&cfg.serve_scenario(&base), scenario_label_from_env());
    let v = figures::fig_serve(&mut h, &cfg);
    h.save_json("fig_serve", &v);
    root.finish();
    finish_run("fig_serve", &h);
}
