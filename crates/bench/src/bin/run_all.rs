//! Runs the entire evaluation: every figure plus the in-text claims,
//! sharing workload runs between figures, then the Figure 15 timing study
//! on the single-processor scenario. Writes `results/*.json` and the run
//! manifest `results/<scenario>/manifest.json`.
//!
//! Scenario for Figures 3–14 via `CODELAYOUT_SCENARIO` (default `sim`,
//! the paper's 4-CPU simulated system). `--report` prints the tracer's
//! phase-tree breakdown after the run; `CODELAYOUT_TRACE_OUT=<file>`
//! additionally streams every span boundary as JSON lines.

use codelayout_bench::{figures, print_table, Harness};

fn main() {
    let root = codelayout_obs::span("run_all");
    let study_span = codelayout_obs::span("study_build");
    let mut h = Harness::from_env();
    eprintln!("[run_all] study ready in {:?}", study_span.finish());

    type FigFn = fn(&mut Harness) -> serde_json::Value;
    let figs: [(&str, FigFn); 15] = [
        ("fig03", figures::fig03),
        ("fig04", figures::fig04),
        ("fig05", figures::fig05),
        ("fig06", figures::fig06),
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("claims", figures::claims),
        ("compare", figures::compare),
        ("fig_static", figures::fig_static),
    ];
    for (name, f) in figs {
        let fig_span = codelayout_obs::span(name);
        let v = f(&mut h);
        h.save_json(name, &v);
        eprintln!("[run_all] {name} in {:?}", fig_span.finish());
    }

    if let Some(t) = h.sweep_timing() {
        eprintln!(
            "[run_all] grid sweep replay: {} direct shards x {} events on {} threads: \
             {:.3}s stack-distance vs {:.3}s direct ({:.2}x engine speedup)",
            t.shards,
            t.events,
            t.threads,
            t.stack_secs,
            t.direct_secs,
            t.speedup()
        );
    }
    if let Some(t) = h.vm_timing() {
        eprintln!(
            "[run_all] vm execution: {} instrs, {} compiled runs ({} KiB cache): \
             {:.3}s block vs {:.3}s interp ({:.2}x engine speedup)",
            t.instructions,
            t.cache.0,
            t.cache.1 / 1024,
            t.block_secs,
            t.interp_secs,
            t.speedup()
        );
    }

    // Figure 15 on the single-processor scenario (the paper's hardware
    // execution-time runs are 1-processor).
    let fig15_span = codelayout_obs::span("fig15");
    let (label15, hw) = match codelayout_bench::run_env().scenario {
        codelayout_bench::ScenarioSel::Quick => ("quick", codelayout_oltp::Scenario::quick()),
        _ => ("hw", codelayout_oltp::Scenario::paper_hw()),
    };
    let mut h15 = Harness::with_label(&hw, label15);
    let v = figures::fig15(&mut h15);
    h15.save_json("fig15", &v);
    eprintln!("[run_all] fig15 in {:?}", fig15_span.finish());

    // The serving loop on its own phase-shift stream (the study is
    // sized to the full stream; see `ServeConfig::serve_scenario`).
    let serve_span = codelayout_obs::span("fig_serve");
    let base = codelayout_bench::scenario_from_env();
    let serve_cfg = codelayout_serve::ServeConfig::from_env(&base);
    let mut hs = Harness::with_label(&serve_cfg.serve_scenario(&base), h.scenario_label());
    let v = figures::fig_serve(&mut hs, &serve_cfg);
    hs.save_json("fig_serve", &v);
    eprintln!("[run_all] fig_serve in {:?}", serve_span.finish());

    // The layout autotuner on the main study (shares its measurement
    // cache with the figures above; the `tune` manifest section lands on
    // `h`).
    let tune_span = codelayout_obs::span("fig_tune");
    let tune_cfg = codelayout_tune::TuneConfig::from_env(&h.study.scenario);
    let v = figures::fig_tune(&mut h, &tune_cfg);
    h.save_json("fig_tune", &v);
    eprintln!("[run_all] fig_tune in {:?}", tune_span.finish());

    let total = root.finish();
    eprintln!("[run_all] total {total:?}");

    print_throughput_table();

    // One manifest for the whole evaluation, covering all three
    // harnesses' outputs (fig15 ran on its own single-processor study,
    // the serving loop on its phase-shift stream).
    let mut b = codelayout_obs::manifest::ManifestBuilder::new("run_all", h.scenario_label());
    b.config(h.config_json());
    b.section("fig15_config", h15.config_json());
    for (key, value) in h.extra_sections().iter().chain(hs.extra_sections()) {
        b.section(key, value.clone());
    }
    b.phases(codelayout_obs::tracer(), "run_all");
    b.metrics(codelayout_obs::metrics());
    for (name, digest) in h
        .output_digests()
        .iter()
        .chain(h15.output_digests())
        .chain(hs.output_digests())
    {
        b.output(name, digest.clone());
    }
    match b.write(&h.manifest_dir()) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
    if codelayout_bench::report_requested() {
        print!("{}", codelayout_obs::tracer().render_report());
    }
}

/// Per-layout, per-job replay throughput from the metrics registry (the
/// `replay.<layout>.<job>.insts_per_sec` gauges `Harness::measure`
/// records for every sweep it replays).
fn print_throughput_table() {
    let snapshot = codelayout_obs::metrics().snapshot();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, value) in &snapshot.gauges {
        let Some(rest) = name.strip_prefix("replay.") else {
            continue;
        };
        let Some(rest) = rest.strip_suffix(".insts_per_sec") else {
            continue;
        };
        let (layout, job) = match rest.split_once('.') {
            Some((layout, job)) => (layout, job),
            None => (rest, "(all jobs)"),
        };
        rows.push(vec![
            layout.to_string(),
            job.to_string(),
            format!("{:.1}", value / 1e6),
        ]);
    }
    if !rows.is_empty() {
        print_table(
            "replay throughput (M insts/sec)",
            &["layout", "job", "Minsts/s"],
            &rows,
        );
    }

    // Execution throughput of the measured runs themselves (the
    // `vm.run.<layout>.insts_per_sec` gauges, on the configured engine).
    let mut vm_rows: Vec<Vec<String>> = Vec::new();
    for (name, value) in &snapshot.gauges {
        let Some(rest) = name.strip_prefix("vm.run.") else {
            continue;
        };
        let Some(layout) = rest.strip_suffix(".insts_per_sec") else {
            continue;
        };
        vm_rows.push(vec![layout.to_string(), format!("{:.1}", value / 1e6)]);
    }
    if !vm_rows.is_empty() {
        print_table(
            "vm execution throughput (M insts/sec)",
            &["layout", "Minsts/s"],
            &vm_rows,
        );
    }
}
