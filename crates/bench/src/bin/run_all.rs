//! Runs the entire evaluation: every figure plus the in-text claims,
//! sharing workload runs between figures, then the Figure 15 timing study
//! on the single-processor scenario. Writes `results/*.json`.
//!
//! Scenario for Figures 3–14 via `CODELAYOUT_SCENARIO` (default `sim`,
//! the paper's 4-CPU simulated system).

use codelayout_bench::{figures, Harness};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut h = Harness::from_env();
    eprintln!("[run_all] study ready in {:?}", t0.elapsed());

    type FigFn = fn(&mut Harness) -> serde_json::Value;
    let figs: [(&str, FigFn); 13] = [
        ("fig03", figures::fig03),
        ("fig04", figures::fig04),
        ("fig05", figures::fig05),
        ("fig06", figures::fig06),
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("claims", figures::claims),
    ];
    for (name, f) in figs {
        let t = Instant::now();
        let v = f(&mut h);
        h.save_json(name, &v);
        eprintln!("[run_all] {name} in {:?}", t.elapsed());
    }

    if let Some(t) = h.sweep_timing() {
        eprintln!(
            "[run_all] grid sweep replay: {} shards x {} events on {} threads: \
             {:.3}s parallel vs {:.3}s single-thread ({:.2}x speedup)",
            t.shards,
            t.events,
            t.threads,
            t.parallel_secs,
            t.serial_secs,
            t.speedup()
        );
    }

    // Figure 15 on the single-processor scenario (the paper's hardware
    // execution-time runs are 1-processor).
    let t = Instant::now();
    let hw = match std::env::var("CODELAYOUT_SCENARIO").as_deref() {
        Ok("quick") => codelayout_oltp::Scenario::quick(),
        _ => codelayout_oltp::Scenario::paper_hw(),
    };
    let mut h15 = Harness::new(&hw);
    let v = figures::fig15(&mut h15);
    h15.save_json("fig15", &v);
    eprintln!("[run_all] fig15 in {:?}", t.elapsed());
    eprintln!("[run_all] total {:?}", t0.elapsed());
}
