//! Ablation: exact (Pixie) vs sampled (DCPI) profiles as the optimizer's
//! input (§3.2 offers both). Sampling loses edge information — Spike
//! estimates edges from block counts — so the question is how much layout
//! quality that costs at various sampling periods.

use codelayout_core::{LayoutPipeline, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_memsim::{CacheConfig, StreamFilter, SweepSink, SweepSpec};
use codelayout_oltp::build_study;
use codelayout_profile::{profile_from_block_samples, SampledCollector};
use codelayout_vm::{NullSink, APP_TEXT_BASE};
use std::sync::Arc;

fn main() {
    let sc = codelayout_bench::scenario_from_env();
    let study = build_study(&sc);
    let cache = CacheConfig::new(64 * 1024, 128, 2);
    let spec = SweepSpec::grid()
        .size_kb(64)
        .line_b(128)
        .ways(2)
        .cpus(sc.num_cpus)
        .filter(StreamFilter::UserOnly);

    let run = |image: &Arc<codelayout_ir::Image>| -> u64 {
        let mut sweep = SweepSink::from_spec(&spec);
        let out = study.run_measured(image, &study.base_kernel_image, &mut sweep);
        out.assert_correct();
        sweep.results()[0].stats.misses
    };

    println!("cache: {cache}");
    let base = run(&study.image(OptimizationSet::BASE));
    println!("{:>22} misses={base}", "base");
    let exact = run(&study.image(OptimizationSet::ALL));
    println!(
        "{:>22} misses={exact} ({:.0}% reduction)",
        "all (exact pixie)",
        100.0 * (1.0 - exact as f64 / base as f64)
    );

    for period in [64u64, 256, 1024, 4096] {
        // Re-run the profiling phase with a sampling collector.
        let (mut m, _) =
            study.new_machine(&study.base_image, &study.base_kernel_image, sc.profile_txns);
        let mut sampler = SampledCollector::user(study.app.program.blocks.len(), period);
        while m.live_processes() > 0 {
            m.run_hooked(&mut NullSink, &mut sampler, 1_000_000);
        }
        let profile = profile_from_block_samples(&study.app.program, &sampler);
        let layout = LayoutPipeline::new(&study.app.program, &profile).build(OptimizationSet::ALL);
        let image = Arc::new(link(&study.app.program, &layout, APP_TEXT_BASE).unwrap());
        let misses = run(&image);
        println!(
            "{:>22} misses={misses} ({:.0}% reduction)",
            format!("all (sampled 1/{period})"),
            100.0 * (1.0 - misses as f64 / base as f64)
        );
    }
}
