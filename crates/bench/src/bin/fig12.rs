//! Reproduces the paper's fig12 (see `codelayout-bench` docs).
//!
//! Scenario via `CODELAYOUT_SCENARIO` (quick|sim|hw; default sim).

fn main() {
    codelayout_bench::figure_main("fig12", codelayout_bench::figures::fig12);
}
