//! `layout_lint` — static layout-quality gate.
//!
//! Builds the selected scenario's study, lays out both its programs under
//! every `OptimizationSet::paper_series()` configuration, proves each
//! linked image semantically equivalent to its source program (translation
//! validation), and runs the layout lints. Exits nonzero when any
//! deny-level finding is present, so CI can gate on it.
//!
//! ```text
//! layout_lint [--scenario quick|sim|hw]... [--format text|json]
//! ```
//!
//! With no `--scenario` the `quick` scenario is used. `--format json`
//! prints one stable JSON document (the same shape the golden test
//! snapshots) instead of the human-readable report. In either format
//! the per-code summary is merged into the scenario's run manifest
//! (`results/<scenario>/manifest.json`), creating a minimal manifest
//! when none exists.

use codelayout_bench::lint::{
    cells_to_json, has_deny, lint_study, render_cells_text, summary_json,
};
use codelayout_oltp::{build_study, Scenario};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: layout_lint [--scenario quick|sim|hw]... [--format text|json]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut scenarios: Vec<(String, Scenario)> = Vec::new();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                let name = args.next().unwrap_or_else(|| usage());
                let sc = match name.as_str() {
                    "quick" => Scenario::quick(),
                    "sim" => Scenario::paper_sim(),
                    "hw" => Scenario::paper_hw(),
                    _ => usage(),
                };
                scenarios.push((name, sc));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if scenarios.is_empty() {
        scenarios.push(("quick".into(), Scenario::quick()));
    }

    let mut denied = false;
    for (name, sc) in &scenarios {
        let study = build_study(sc);
        let cells = lint_study(&study);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&cells_to_json(name, &cells)).expect("render json")
            );
        } else {
            print!("{}", render_cells_text(name, &cells));
        }
        // Fold the per-code summary into the scenario's run manifest so
        // one document carries both the figures and the lint gate.
        let dir = PathBuf::from("results").join(name);
        match codelayout_obs::manifest::merge_section(
            &dir,
            "layout_lint",
            name,
            "lint",
            summary_json(&cells),
        ) {
            Ok(path) => eprintln!("lint summary merged into {}", path.display()),
            Err(e) => eprintln!("warning: could not update manifest: {e}"),
        }
        denied |= has_deny(&cells);
    }
    if denied {
        eprintln!("layout_lint: deny-level findings present");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
