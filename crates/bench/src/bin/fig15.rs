//! Reproduces the paper's Figure 15 (execution time on two machine
//! models). Uses the single-processor scenario, matching the paper's
//! 1-processor hardware runs (override with `CODELAYOUT_SCENARIO`).

fn main() {
    let (label, sc) = match std::env::var("CODELAYOUT_SCENARIO").as_deref() {
        Ok("quick") => ("quick", codelayout_oltp::Scenario::quick()),
        Ok("sim") => ("sim", codelayout_oltp::Scenario::paper_sim()),
        _ => ("hw", codelayout_oltp::Scenario::paper_hw()),
    };
    let root = codelayout_obs::span("fig15");
    let mut h = codelayout_bench::Harness::with_label(&sc, label);
    let v = codelayout_bench::figures::fig15(&mut h);
    h.save_json("fig15", &v);
    root.finish();
    codelayout_bench::finish_run("fig15", &h);
}
