//! Reproduces the paper's Figure 15 (execution time on two machine
//! models). Uses the single-processor scenario, matching the paper's
//! 1-processor hardware runs (`CODELAYOUT_SCENARIO=quick` shrinks it
//! to the CI workload).

fn main() {
    let (label, sc) = match codelayout_bench::run_env().scenario {
        codelayout_bench::ScenarioSel::Quick => ("quick", codelayout_oltp::Scenario::quick()),
        _ => ("hw", codelayout_oltp::Scenario::paper_hw()),
    };
    let root = codelayout_obs::span("fig15");
    let mut h = codelayout_bench::Harness::with_label(&sc, label);
    let v = codelayout_bench::figures::fig15(&mut h);
    h.save_json("fig15", &v);
    root.finish();
    codelayout_bench::finish_run("fig15", &h);
}
