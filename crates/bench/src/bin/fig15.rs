//! Reproduces the paper's Figure 15 (execution time on two machine
//! models). Uses the single-processor scenario, matching the paper's
//! 1-processor hardware runs (override with `CODELAYOUT_SCENARIO`).

fn main() {
    let sc = match std::env::var("CODELAYOUT_SCENARIO").as_deref() {
        Ok("quick") => codelayout_oltp::Scenario::quick(),
        Ok("sim") => codelayout_oltp::Scenario::paper_sim(),
        _ => codelayout_oltp::Scenario::paper_hw(),
    };
    let mut h = codelayout_bench::Harness::new(&sc);
    let v = codelayout_bench::figures::fig15(&mut h);
    h.save_json("fig15", &v);
}
