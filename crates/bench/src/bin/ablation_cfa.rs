//! Ablation: the conflict-free-area (software trace cache) layout the
//! paper implemented and rejected (§2). Reproduces the negative result:
//! the hot-trace footprint of OLTP is far larger than any reasonable
//! reserved fraction of the cache, so CFA yields no gain over `all`.

use codelayout_core::{cfa_layout, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_memsim::{CacheConfig, StreamFilter, SweepSink, SweepSpec};
use codelayout_oltp::build_study;
use codelayout_vm::APP_TEXT_BASE;
use std::sync::Arc;

fn main() {
    let sc = codelayout_bench::scenario_from_env();
    let study = build_study(&sc);
    let cache = CacheConfig::new(64 * 1024, 128, 2);
    let spec = SweepSpec::grid()
        .size_kb(64)
        .line_b(128)
        .ways(2)
        .cpus(sc.num_cpus)
        .filter(StreamFilter::UserOnly);

    let run = |image: &Arc<codelayout_ir::Image>| -> u64 {
        let mut sweep = SweepSink::from_spec(&spec);
        let out = study.run_measured(image, &study.base_kernel_image, &mut sweep);
        out.assert_correct();
        sweep.results()[0].stats.misses
    };

    println!("cache: {cache}");
    let all = run(&study.image(OptimizationSet::ALL));
    println!("{:>24} misses={all}", "all (paper pipeline)");

    for reserved_kb in [8u64, 16, 32, 48] {
        let (layout, report) = cfa_layout(&study.app.program, &study.profile, reserved_kb * 1024);
        let image = Arc::new(link(&study.app.program, &layout, APP_TEXT_BASE).unwrap());
        let misses = run(&image);
        println!(
            "{:>21}KB  misses={misses}  reserved-covers={}.{}% of execution  (traces for 90% need {} KB)",
            format!("CFA {reserved_kb}"),
            report.coverage_permille / 10,
            report.coverage_permille % 10,
            report.bytes_for_90pct / 1024,
        );
    }
    println!(
        "\npaper: \"the footprint for such traces … was too large to fit within a \
         reasonably sized fraction of the cache, and the optimization yielded no gains\""
    );
}
