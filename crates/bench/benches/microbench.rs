//! Criterion micro-benchmarks: throughput of the simulator substrate and
//! runtime of the layout optimizations themselves (the cost of "running
//! Spike").

use codelayout_core::{chain_all, pettis_hansen_order, LayoutPipeline, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::Layout;
use codelayout_memsim::{AccessClass, CacheConfig, ICacheSim, SweepSink, SweepSpec};
use codelayout_oltp::{build_study, Scenario};
use codelayout_vm::{FetchRecord, Machine, MachineConfig, NullSink, TraceSink, APP_TEXT_BASE};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

fn bench_vm(c: &mut Criterion) {
    let program = random_program(
        42,
        &GenConfig {
            procs: 6,
            max_blocks: 8,
            max_instrs: 6,
            loop_iters: 100_000,
            call_prob: 0.5,
        },
    );
    let image = Arc::new(link(&program, &Layout::natural(&program), APP_TEXT_BASE).unwrap());
    let mut g = c.benchmark_group("vm");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("interpret_1M_instrs", |b| {
        b.iter(|| {
            let mut m = Machine::new(Arc::clone(&image), MachineConfig::default());
            let report = m.run(&mut NullSink, 1_000_000);
            assert!(report.faults.is_empty());
            report.instructions
        })
    });
    g.finish();
}

fn synthetic_trace(n: usize) -> Vec<FetchRecord> {
    let mut out = Vec::with_capacity(n);
    let mut pc: u64 = 0x40_0000;
    let mut x: u64 = 0x2545F4914F6CDD1D;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x.is_multiple_of(8) {
            pc = 0x40_0000 + ((x % (512 * 1024)) & !3);
        } else {
            pc += 4;
        }
        out.push(FetchRecord {
            addr: pc,
            cpu: 0,
            pid: 0,
            kernel: false,
        });
    }
    out
}

fn bench_caches(c: &mut Criterion) {
    let trace = synthetic_trace(1_000_000);
    let mut g = c.benchmark_group("memsim");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("icache_1M_accesses", |b| {
        b.iter(|| {
            let mut sim = ICacheSim::new(CacheConfig::new(64 * 1024, 64, 2));
            for r in &trace {
                sim.access(r.addr, AccessClass::User);
            }
            sim.stats().misses
        })
    });
    g.bench_function("sweep25_1M_accesses", |b| {
        let spec = SweepSpec::paper_grid(1);
        b.iter(|| {
            let mut sweep = SweepSink::from_spec(&spec);
            for r in &trace {
                sweep.fetch(*r);
            }
            sweep.results().len()
        })
    });
    g.bench_function("stack25_1M_accesses", |b| {
        let configs = SweepSpec::paper_grid(1).configs();
        let mut lines: Vec<u32> = configs.iter().map(|c| c.line_bytes).collect();
        lines.sort_unstable();
        lines.dedup();
        b.iter(|| {
            let mut profs: Vec<codelayout_memsim::StackDistanceSim> = lines
                .iter()
                .map(|&line| {
                    codelayout_memsim::StackDistanceSim::new(
                        line,
                        configs
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.line_bytes == line)
                            .map(|(i, c)| (i, *c)),
                    )
                })
                .collect();
            for r in &trace {
                for p in &mut profs {
                    p.access(r.addr, AccessClass::User);
                }
            }
            profs.len()
        })
    });
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    // The cost of "running Spike" on the full-scale OLTP binary.
    let study = build_study(&Scenario::quick());
    let big = codelayout_oltp::gen_app(
        &codelayout_oltp::SgaLayout::new(40, 10, 2500, 32, 5000),
        &Scenario::paper_sim(),
    );
    let mut g = c.benchmark_group("optimizer");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.bench_function("chain_all_quick", |b| {
        b.iter(|| chain_all(&study.app.program, &study.profile).len())
    });
    g.bench_function("pipeline_all_quick", |b| {
        b.iter(|| {
            LayoutPipeline::new(&study.app.program, &study.profile)
                .build(OptimizationSet::ALL)
                .len()
        })
    });
    g.bench_function("link_papersim_binary", |b| {
        let layout = Layout::natural(&big.program);
        b.iter(|| link(&big.program, &layout, APP_TEXT_BASE).unwrap().len())
    });
    g.bench_function("pettis_hansen_5k_nodes", |b| {
        let mut x: u64 = 7;
        let edges: Vec<(u32, u32, u64)> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (
                    (x >> 11) as u32 % 5000,
                    (x >> 31) as u32 % 5000,
                    (x >> 51) & 0xFF,
                )
            })
            .collect();
        b.iter(|| pettis_hansen_order(5000, edges.iter().copied()).len())
    });
    g.finish();
}

criterion_group!(benches, bench_vm, bench_caches, bench_optimizer);
criterion_main!(benches);
