//! Shared memory ("SGA") layout and host-side database loader.
//!
//! All server processes attach to one shared region modelled on a database
//! system global area: global counters, the TPC-B tables (branch, teller,
//! account, history), a B-tree index over accounts, the buffer-pool hash
//! table, log staging buffers and the kernel run queue. The *layout* is
//! computed host-side; the *contents* are read and written by IR code at
//! simulation time (plus this loader, which plays the role of the initial
//! database load).

use codelayout_vm::Machine;

/// Number of key slots per B-tree node.
pub const BTREE_FANOUT: usize = 8;
/// Words per B-tree node: header + keys + (fanout + 1) pointers.
pub const BTREE_NODE_WORDS: usize = 2 * BTREE_FANOUT + 2;

/// Words per branch row: `[balance, lock, txn_count, pad…]`.
pub const BRANCH_STRIDE: usize = 8;
/// Words per teller row: `[balance, branch, pad…]`.
pub const TELLER_STRIDE: usize = 8;
/// Words per account row: `[balance, branch, last_serial, pad…]`.
pub const ACCT_STRIDE: usize = 8;
/// Words per history record: `[serial, account, teller, delta]`.
pub const HIST_STRIDE: usize = 4;
/// Words per buffer-pool hash entry: `[page_id+1, frame, hits, pad]`.
pub const BUF_STRIDE: usize = 4;
/// Words of log staging area per process.
pub const LOG_STAGE_WORDS: usize = 64;
/// Account rows per buffer-pool "page".
pub const ROWS_PER_PAGE: usize = 64;

/// Fixed global word offsets.
pub mod words {
    /// Global transaction serial counter (atomically incremented by the
    /// kernel's receive handler).
    pub const COUNTER: usize = 0;
    /// Transaction limit; receive returns -1 at or beyond it.
    pub const LIMIT: usize = 1;
    /// Next history slot (atomic).
    pub const HIST_NEXT: usize = 2;
    /// Buffer pool miss counter.
    pub const BUF_MISSES: usize = 3;
    /// Global log tail.
    pub const LOG_TAIL: usize = 4;
    /// Word offset of the account B-tree root node (set by the loader and
    /// read by the generated lookup code, like a root pointer in a
    /// database control block).
    pub const BTREE_ROOT: usize = 5;
    /// Scratch statistics area (16 words).
    pub const STATS_BASE: usize = 16;
    /// Kernel run-queue area (32 words).
    pub const RUNQ_BASE: usize = 32;
    /// Statement-variant frequency table: 256 words mapping a random byte
    /// to a variant id (filled with a Zipf-like distribution by the
    /// driver, modelling a few dominant statement types).
    pub const VARIANT_TABLE: usize = 256;
    /// Size of the variant table in words.
    pub const VARIANT_TABLE_WORDS: usize = 256;
    /// Start of per-process log staging buffers.
    pub const LOG_STAGE_BASE: usize = 512;
}

/// Fixed per-process private-memory word offsets, agreed between the
/// application and kernel code generators and the driver.
pub mod priv_words {
    /// The process id, written by the driver before the run.
    pub const PID: usize = 0;
    /// Initial RNG seed mirror (`r5` is the live state).
    pub const SEED: usize = 1;
    /// Number of valid words in the private log buffer.
    pub const LOG_COUNT: usize = 8;
    /// Private log buffer (up to 48 words).
    pub const LOG_BUF: usize = 16;
    /// Per-statement-variant plan cache (4 words per variant).
    pub const PLAN_CACHE: usize = 128;
    /// General scratch area.
    pub const SCRATCH: usize = 512;
}

/// The computed shared-memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgaLayout {
    /// Number of branches.
    pub branches: usize,
    /// Tellers per branch.
    pub tellers_per_branch: usize,
    /// Accounts per branch.
    pub accounts_per_branch: usize,
    /// Max processes (sizes the log staging area).
    pub max_processes: usize,
    /// First word of the branch table.
    pub branch_base: usize,
    /// First word of the teller table.
    pub teller_base: usize,
    /// First word of the account table.
    pub acct_base: usize,
    /// First word of the buffer-pool hash table.
    pub buf_base: usize,
    /// Buffer hash entries (power of two).
    pub buf_entries: usize,
    /// First word of the B-tree node arena.
    pub btree_base: usize,
    /// Word offset of the B-tree root node (set by the loader).
    pub btree_root: usize,
    /// Number of B-tree nodes.
    pub btree_nodes: usize,
    /// First word of the history table.
    pub hist_base: usize,
    /// History capacity in records.
    pub hist_capacity: usize,
    /// Total words required.
    pub total_words: usize,
}

impl SgaLayout {
    /// Computes the layout for a database scale and a transaction budget
    /// (history must hold every transaction so the invariant checks are
    /// exact).
    pub fn new(
        branches: usize,
        tellers_per_branch: usize,
        accounts_per_branch: usize,
        max_processes: usize,
        max_txns: usize,
    ) -> Self {
        assert!(branches > 0 && tellers_per_branch > 0 && accounts_per_branch > 0);
        let accounts = branches * accounts_per_branch;
        let tellers = branches * tellers_per_branch;

        let branch_base = words::LOG_STAGE_BASE + max_processes * LOG_STAGE_WORDS;
        let teller_base = branch_base + branches * BRANCH_STRIDE;
        let acct_base = teller_base + tellers * TELLER_STRIDE;
        let buf_base = acct_base + accounts * ACCT_STRIDE;
        let pages = accounts.div_ceil(ROWS_PER_PAGE);
        let buf_entries = (pages * 2).next_power_of_two();
        let btree_base = buf_base + buf_entries * BUF_STRIDE;
        let btree_nodes = btree_node_budget(accounts);
        let hist_base = btree_base + btree_nodes * BTREE_NODE_WORDS;
        let hist_capacity = max_txns + 16;
        let total_words = hist_base + hist_capacity * HIST_STRIDE;

        SgaLayout {
            branches,
            tellers_per_branch,
            accounts_per_branch,
            max_processes,
            branch_base,
            teller_base,
            acct_base,
            buf_base,
            buf_entries,
            btree_base,
            btree_root: 0, // set by the loader
            btree_nodes,
            hist_base,
            hist_capacity,
            total_words,
        }
    }

    /// Total accounts.
    pub fn accounts(&self) -> usize {
        self.branches * self.accounts_per_branch
    }

    /// Total tellers.
    pub fn tellers(&self) -> usize {
        self.branches * self.tellers_per_branch
    }

    /// Word offset of an account row.
    pub fn acct_row(&self, account: usize) -> usize {
        self.acct_base + account * ACCT_STRIDE
    }

    /// Word offset of a teller row.
    pub fn teller_row(&self, teller: usize) -> usize {
        self.teller_base + teller * TELLER_STRIDE
    }

    /// Word offset of a branch row.
    pub fn branch_row(&self, branch: usize) -> usize {
        self.branch_base + branch * BRANCH_STRIDE
    }

    /// Loads the database into a machine's shared memory: table rows, the
    /// account B-tree and global counters. Sets `self.btree_root`.
    pub fn load_database(&mut self, m: &mut Machine, txn_limit: i64) {
        for b in 0..self.branches {
            let row = self.branch_row(b);
            m.set_shared_word(row, 0); // balance
            m.set_shared_word(row + 1, 0); // lock
            m.set_shared_word(row + 2, 0); // txn count
        }
        for t in 0..self.tellers() {
            let row = self.teller_row(t);
            m.set_shared_word(row, 0);
            m.set_shared_word(row + 1, (t / self.tellers_per_branch) as i64);
        }
        for a in 0..self.accounts() {
            let row = self.acct_row(a);
            m.set_shared_word(row, 0);
            m.set_shared_word(row + 1, (a / self.accounts_per_branch) as i64);
            m.set_shared_word(row + 2, -1);
        }
        let (root, used) = build_btree(self, m);
        assert!(used <= self.btree_nodes, "btree node budget exceeded");
        self.btree_root = root;
        m.set_shared_word(words::BTREE_ROOT, root as i64);
        m.set_shared_word(words::COUNTER, 0);
        m.set_shared_word(words::LIMIT, txn_limit);
        m.set_shared_word(words::HIST_NEXT, 0);
    }

    /// Fills the statement-variant frequency table with a Zipf(s=1)
    /// distribution over `variants` statement types: real OLTP workloads
    /// are dominated by a few statements with a long warm tail, and this
    /// skew is what gives the execution profile the paper's Figure 3 shape.
    ///
    /// # Panics
    /// Panics if `variants` is 0 or exceeds the table size.
    pub fn fill_variant_table(m: &mut Machine, variants: usize) {
        Self::fill_variant_table_rotated(m, variants, 0);
    }

    /// Like [`SgaLayout::fill_variant_table`], but rotates which variant
    /// sits at the head of the Zipf distribution: slot weights stay
    /// identical while the variant written into each slot becomes
    /// `(v + rotation) % variants`. Rotating the head moves the hot
    /// statement mass onto a different code path — the canonical
    /// workload-drift event a serving loop must detect and re-layout
    /// for.
    ///
    /// # Panics
    /// Panics if `variants` is 0 or exceeds the table size.
    pub fn fill_variant_table_rotated(m: &mut Machine, variants: usize, rotation: usize) {
        assert!(
            variants > 0 && variants <= words::VARIANT_TABLE_WORDS,
            "1..=256 variants supported"
        );
        let weights: Vec<f64> = (0..variants).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        // Largest-remainder allocation of 256 slots, at least one each.
        let mut slots: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * words::VARIANT_TABLE_WORDS as f64).floor() as usize)
            .map(|s| s.max(1))
            .collect();
        let mut assigned: usize = slots.iter().sum();
        let mut i = 0;
        while assigned < words::VARIANT_TABLE_WORDS {
            slots[i % variants] += 1;
            assigned += 1;
            i += 1;
        }
        while assigned > words::VARIANT_TABLE_WORDS {
            let j = slots
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .map(|(j, _)| j)
                .expect("nonempty");
            slots[j] -= 1;
            assigned -= 1;
        }
        let mut slot = 0usize;
        for (v, &n) in slots.iter().enumerate() {
            let rotated = (v + rotation) % variants;
            for _ in 0..n {
                m.set_shared_word(words::VARIANT_TABLE + slot, rotated as i64);
                slot += 1;
            }
        }
        debug_assert_eq!(slot, words::VARIANT_TABLE_WORDS);
    }

    /// Reads the TPC-B invariants back out of shared memory.
    pub fn read_invariants(&self, m: &Machine) -> Invariants {
        let sum = |base: usize, stride: usize, n: usize| -> i64 {
            (0..n)
                .map(|i| m.shared_word(base + i * stride))
                .fold(0i64, i64::wrapping_add)
        };
        Invariants {
            sum_accounts: sum(self.acct_base, ACCT_STRIDE, self.accounts()),
            sum_tellers: sum(self.teller_base, TELLER_STRIDE, self.tellers()),
            sum_branches: sum(self.branch_base, BRANCH_STRIDE, self.branches),
            history_count: m.shared_word(words::HIST_NEXT),
            txn_counter: m.shared_word(words::COUNTER),
            sum_history_deltas: {
                let n = m.shared_word(words::HIST_NEXT).max(0) as usize;
                (0..n.min(self.hist_capacity))
                    .map(|i| m.shared_word(self.hist_base + i * HIST_STRIDE + 3))
                    .fold(0i64, i64::wrapping_add)
            },
        }
    }
}

/// The TPC-B consistency conditions: after N committed transactions the
/// account, teller and branch balance totals all equal the sum of the
/// applied deltas, and the history holds one record per transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invariants {
    /// Sum of all account balances.
    pub sum_accounts: i64,
    /// Sum of all teller balances.
    pub sum_tellers: i64,
    /// Sum of all branch balances.
    pub sum_branches: i64,
    /// Records appended to history.
    pub history_count: i64,
    /// Global transaction serial counter.
    pub txn_counter: i64,
    /// Sum of the per-transaction deltas recorded in history.
    pub sum_history_deltas: i64,
}

impl Invariants {
    /// True when all balance totals agree with the history deltas.
    pub fn consistent(&self) -> bool {
        self.sum_accounts == self.sum_tellers
            && self.sum_tellers == self.sum_branches
            && self.sum_branches == self.sum_history_deltas
    }
}

/// Upper bound on B-tree nodes for `n` keys.
fn btree_node_budget(n: usize) -> usize {
    let mut total = 0usize;
    let mut level = n.div_ceil(BTREE_FANOUT);
    loop {
        total += level;
        if level <= 1 {
            break;
        }
        level = level.div_ceil(BTREE_FANOUT + 1);
    }
    total + 4
}

/// Builds the account B-tree bottom-up in shared memory. Returns
/// `(root offset, nodes used)`.
fn build_btree(sga: &SgaLayout, m: &mut Machine) -> (usize, usize) {
    let n = sga.accounts();
    let mut next_node = sga.btree_base;
    let mut alloc = |m: &mut Machine| -> usize {
        let off = next_node;
        next_node += BTREE_NODE_WORDS;
        // Zero the node.
        for w in 0..BTREE_NODE_WORDS {
            m.set_shared_word(off + w, 0);
        }
        off
    };

    // Leaves: (offset, min_key).
    let mut level: Vec<(usize, i64)> = Vec::new();
    let mut key = 0usize;
    while key < n {
        let node = alloc(m);
        let count = BTREE_FANOUT.min(n - key);
        m.set_shared_word(node, ((count as i64) << 1) | 1);
        for j in 0..count {
            let k = (key + j) as i64;
            m.set_shared_word(node + 1 + j, k);
            m.set_shared_word(node + 1 + BTREE_FANOUT + j, sga.acct_row(key + j) as i64);
        }
        level.push((node, key as i64));
        key += count;
    }

    // Internal levels.
    while level.len() > 1 {
        let mut parent_level = Vec::new();
        for chunk in level.chunks(BTREE_FANOUT + 1) {
            let node = alloc(m);
            let nkeys = chunk.len() - 1;
            m.set_shared_word(node, (nkeys as i64) << 1);
            for (j, &(child, min_key)) in chunk.iter().enumerate() {
                if j > 0 {
                    m.set_shared_word(node + j, min_key); // separator j-1
                }
                m.set_shared_word(node + 1 + BTREE_FANOUT + j, child as i64);
            }
            parent_level.push((node, chunk[0].1));
        }
        level = parent_level;
    }

    let root = level[0].0;
    let used = (next_node - sga.btree_base) / BTREE_NODE_WORDS;
    (root, used)
}

/// Host-side mirror of the IR B-tree search; used by tests to validate the
/// loader and by the code generator's documentation of the node format.
pub fn btree_search_host(m: &Machine, root: usize, key: i64) -> i64 {
    let mut node = root;
    loop {
        let hdr = m.shared_word(node);
        let leaf = hdr & 1 == 1;
        let nkeys = (hdr >> 1) as usize;
        let mut i = 0usize;
        while i < nkeys && key >= m.shared_word(node + 1 + i) {
            i += 1;
        }
        if leaf {
            assert!(i > 0, "key below leaf minimum");
            return m.shared_word(node + 1 + BTREE_FANOUT + (i - 1));
        }
        node = m.shared_word(node + 1 + BTREE_FANOUT + i) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::link::link;
    use codelayout_ir::{Layout, ProcBuilder, ProgramBuilder};
    use codelayout_vm::MachineConfig;
    use std::sync::Arc;

    fn dummy_machine(words: usize) -> Machine {
        let mut pb = ProgramBuilder::new("noop");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let img = Arc::new(link(&p, &Layout::natural(&p), 0x40_0000).unwrap());
        Machine::new(
            img,
            MachineConfig {
                shared_words: words,
                ..MachineConfig::default()
            },
        )
    }

    #[test]
    fn regions_do_not_overlap_and_are_ordered() {
        let s = SgaLayout::new(4, 2, 100, 8, 1000);
        assert!(words::LOG_STAGE_BASE < s.branch_base);
        assert!(s.branch_base < s.teller_base);
        assert!(s.teller_base < s.acct_base);
        assert!(s.acct_base < s.buf_base);
        assert!(s.buf_base < s.btree_base);
        assert!(s.btree_base < s.hist_base);
        assert!(s.hist_base < s.total_words);
        assert!(s.buf_entries.is_power_of_two());
    }

    #[test]
    fn loader_initializes_rows() {
        let mut s = SgaLayout::new(3, 2, 50, 4, 100);
        let mut m = dummy_machine(s.total_words.next_power_of_two());
        s.load_database(&mut m, 100);
        assert_eq!(m.shared_word(words::LIMIT), 100);
        // Teller 3 belongs to branch 1 (2 tellers per branch).
        assert_eq!(m.shared_word(s.teller_row(3) + 1), 1);
        // Account 120 belongs to branch 2.
        assert_eq!(m.shared_word(s.acct_row(120) + 1), 2);
        assert!(s.btree_root >= s.btree_base);
    }

    #[test]
    fn btree_finds_every_account() {
        let mut s = SgaLayout::new(2, 1, 77, 2, 10);
        let mut m = dummy_machine(s.total_words.next_power_of_two());
        s.load_database(&mut m, 10);
        for a in 0..s.accounts() {
            let row = btree_search_host(&m, s.btree_root, a as i64);
            assert_eq!(row, s.acct_row(a) as i64, "account {a}");
        }
    }

    #[test]
    fn btree_node_budget_is_sufficient_for_large_dbs() {
        for n in [1usize, 7, 8, 9, 64, 1000, 100_000] {
            let mut s = SgaLayout::new(1, 1, n, 1, 1);
            let mut m = dummy_machine(s.total_words.next_power_of_two());
            s.load_database(&mut m, 1); // asserts budget internally
            let last = s.accounts() - 1;
            assert_eq!(
                btree_search_host(&m, s.btree_root, last as i64),
                s.acct_row(last) as i64
            );
        }
    }

    #[test]
    fn variant_table_rotation_permutes_without_reshaping() {
        let variants = 6;
        let mut m = dummy_machine(2048);
        SgaLayout::fill_variant_table(&mut m, variants);
        let base: Vec<i64> = (0..words::VARIANT_TABLE_WORDS)
            .map(|i| m.shared_word(words::VARIANT_TABLE + i))
            .collect();
        SgaLayout::fill_variant_table_rotated(&mut m, variants, 3);
        let rotated: Vec<i64> = (0..words::VARIANT_TABLE_WORDS)
            .map(|i| m.shared_word(words::VARIANT_TABLE + i))
            .collect();
        // Slot-for-slot the rotated table is (v + 3) mod 6 of the base
        // table: same slot distribution, different hot variant.
        for (b, r) in base.iter().zip(&rotated) {
            assert_eq!((b + 3) % variants as i64, *r);
        }
        // Rotation changed which variant dominates.
        let head = |t: &[i64]| t.iter().filter(|&&v| v == t[0]).count();
        assert_eq!(head(&base), head(&rotated));
        assert_ne!(base[0], rotated[0]);
        // Rotation by 0 is the identity.
        SgaLayout::fill_variant_table_rotated(&mut m, variants, 0);
        let zero: Vec<i64> = (0..words::VARIANT_TABLE_WORDS)
            .map(|i| m.shared_word(words::VARIANT_TABLE + i))
            .collect();
        assert_eq!(base, zero);
    }

    #[test]
    fn invariants_read_zeroed_database_as_consistent() {
        let mut s = SgaLayout::new(2, 2, 10, 2, 10);
        let mut m = dummy_machine(s.total_words.next_power_of_two());
        s.load_database(&mut m, 10);
        let inv = s.read_invariants(&m);
        assert!(inv.consistent());
        assert_eq!(inv.history_count, 0);
    }
}
