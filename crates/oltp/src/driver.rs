//! Study driver: generation → profiling → optimization → measured runs.
//!
//! A [`Study`] mirrors the paper's methodology (§3): generate the workload,
//! collect a Pixie profile on the baseline binary over the transaction
//! processing section, feed the profile to the layout optimizer, and then
//! run measured experiments (with cache-warmup transactions excluded, and
//! arbitrary [`TraceSink`]s attached) on any combination of optimized
//! application/kernel images.

use crate::app::{gen_app, AppSpec};
use crate::kernel::{gen_kernel, KernelSpec, SYS_LOG_WRITE, SYS_RECEIVE, SYS_REPLY};
use crate::scenario::Scenario;
use crate::sga::{priv_words, words, Invariants, SgaLayout};
use codelayout_core::{LayoutParams, LayoutPipeline, LayoutSeries, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_ir::{Image, Layout, Reg};
use codelayout_obs::ProfileSource;
use codelayout_profile::{PixieCollector, Profile};
use codelayout_vm::{
    Machine, MachineConfig, NullSink, PairHook, RunReport, SyscallDef, TraceSink, VmEngine,
    APP_TEXT_BASE, KERNEL_TEXT_BASE,
};
use std::sync::Arc;

/// Instruction budget per scheduling chunk while polling for phase
/// transitions.
const CHUNK: u64 = 200_000;
/// Hard per-run instruction ceiling (safety stop against regressions).
const MAX_RUN_INSTRS: u64 = 4_000_000_000;

/// Outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregated execution report.
    pub report: RunReport,
    /// TPC-B consistency data read from shared memory.
    pub invariants: Invariants,
    /// Transactions executed per process (from the `Emit` channel).
    pub per_process_txns: Vec<i64>,
    /// Host wall-clock time of the measured phase (warmup excluded).
    /// The only field that may legitimately differ between execution
    /// tiers; everything else is deterministic.
    pub run_wall: std::time::Duration,
}

impl RunOutcome {
    /// Panics with diagnostics unless the run was fault-free and the
    /// database is consistent. Experiments call this to guarantee the
    /// numbers they report come from a correct execution.
    pub fn assert_correct(&self) {
        assert!(
            self.report.faults.is_empty(),
            "faulted processes: {:?}",
            self.report.faults
        );
        assert!(
            self.invariants.consistent(),
            "TPC-B invariants violated: {:?}",
            self.invariants
        );
    }
}

/// A fully prepared workload study.
#[derive(Debug, Clone)]
pub struct Study {
    /// The scenario this study was built for.
    pub scenario: Scenario,
    /// Shared-memory map (with the B-tree root resolved).
    pub sga: SgaLayout,
    /// Generated application.
    pub app: AppSpec,
    /// Generated kernel.
    pub kernel: KernelSpec,
    /// Application profile from the Pixie run on the baseline binary.
    pub profile: Profile,
    /// Kernel profile from the same run.
    pub kernel_profile: Profile,
    /// Static (profile-free) application frequency estimate from the
    /// Ball–Larus-style analyzer in `codelayout-analysis`.
    pub static_profile: Profile,
    /// Static kernel frequency estimate.
    pub static_kernel_profile: Profile,
    /// Baseline (natural layout) application image.
    pub base_image: Arc<Image>,
    /// Baseline (natural layout) kernel image.
    pub base_kernel_image: Arc<Image>,
}

/// Generates the workload and collects the profiling run.
///
/// # Panics
/// Panics if the generated programs fail validation or the profiling run
/// faults or breaks the TPC-B invariants — all of which indicate a bug, not
/// an environmental condition.
pub fn build_study(scenario: &Scenario) -> Study {
    let _span = codelayout_obs::span("study");
    let gen_span = codelayout_obs::span("generate");
    let max_txns = scenario
        .profile_txns
        .max(scenario.warmup_txns + scenario.measure_txns) as usize;
    let sga = SgaLayout::new(
        scenario.branches,
        scenario.tellers_per_branch,
        scenario.accounts_per_branch,
        scenario.processes(),
        max_txns,
    );
    let app = gen_app(&sga, scenario);
    let kernel = gen_kernel(&sga, &scenario.scale, scenario.seed);
    let base_image = Arc::new(
        link(&app.program, &Layout::natural(&app.program), APP_TEXT_BASE)
            .expect("baseline app links"),
    );
    let base_kernel_image = Arc::new(
        link(
            &kernel.program,
            &Layout::natural(&kernel.program),
            KERNEL_TEXT_BASE,
        )
        .expect("baseline kernel links"),
    );

    // Static frequency estimates need no execution at all; compute them
    // while the generated programs are at hand.
    let static_profile = codelayout_analysis::estimate_static_profile(&app.program);
    let static_kernel_profile = codelayout_analysis::estimate_static_profile(&kernel.program);

    let mut study = Study {
        scenario: scenario.clone(),
        sga,
        app,
        kernel,
        profile: Profile::new(0),
        kernel_profile: Profile::new(0),
        static_profile,
        static_kernel_profile,
        base_image,
        base_kernel_image,
    };
    gen_span.finish();

    // Profiling run: pixified server binaries, `profile_txns` transactions.
    let profile_span = codelayout_obs::span("profile_run");
    let (mut machine, sga_loaded) = study.new_machine(
        &study.base_image,
        &study.base_kernel_image,
        scenario.profile_txns,
    );
    study.sga = sga_loaded;
    let mut hook = PairHook(
        PixieCollector::user(study.app.program.blocks.len()),
        PixieCollector::kernel(study.kernel.program.blocks.len()),
    );
    let mut report = RunReport::default();
    loop {
        let r = machine.run_hooked(&mut NullSink, &mut hook, CHUNK);
        report.absorb(&r);
        if machine.live_processes() == 0 {
            break;
        }
        assert!(
            report.instructions < MAX_RUN_INSTRS,
            "profiling run exceeded instruction ceiling"
        );
    }
    assert!(
        report.faults.is_empty(),
        "profiling faults: {:?}",
        report.faults
    );
    let inv = study.sga.read_invariants(&machine);
    assert!(inv.consistent(), "profiling run inconsistent: {inv:?}");
    study.profile = hook.0.into_profile();
    study.kernel_profile = hook.1.into_profile();
    let m = codelayout_obs::metrics();
    m.add("study.builds", 1);
    m.add("study.profile_instructions", report.instructions);
    profile_span.finish();
    study
}

impl Study {
    /// The syscall bindings for this workload.
    pub fn syscall_table(&self) -> Vec<(u16, SyscallDef)> {
        vec![
            (
                SYS_RECEIVE,
                SyscallDef {
                    proc: self.kernel.receive,
                    block_instrs: 0,
                },
            ),
            (
                SYS_LOG_WRITE,
                SyscallDef {
                    proc: self.kernel.log_write,
                    block_instrs: self.scenario.log_write_latency,
                },
            ),
            (
                SYS_REPLY,
                SyscallDef {
                    proc: self.kernel.reply,
                    block_instrs: 0,
                },
            ),
        ]
    }

    /// The machine configuration for this scenario. The execution tier
    /// comes from the process environment (`CODELAYOUT_VM_ENGINE`) via
    /// [`MachineConfig::default`].
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            num_cpus: self.scenario.num_cpus,
            processes_per_cpu: self.scenario.processes_per_cpu,
            quantum: self.scenario.quantum,
            private_words: 2048,
            shared_words: self.sga.total_words.next_power_of_two(),
            max_call_depth: 128,
            sched_proc: Some(self.kernel.sched),
            ..MachineConfig::default()
        }
    }

    /// Creates a machine with the database loaded and processes seeded.
    /// Returns the machine and the SGA layout with the B-tree root filled.
    pub fn new_machine(
        &self,
        app_image: &Arc<Image>,
        kernel_image: &Arc<Image>,
        txn_limit: u64,
    ) -> (Machine, SgaLayout) {
        self.new_machine_with(
            app_image,
            kernel_image,
            txn_limit,
            self.machine_config().engine,
        )
    }

    /// [`Study::new_machine`] with an explicit execution tier, for
    /// cross-engine oracle runs that must ignore the environment knob.
    pub fn new_machine_with(
        &self,
        app_image: &Arc<Image>,
        kernel_image: &Arc<Image>,
        txn_limit: u64,
        engine: VmEngine,
    ) -> (Machine, SgaLayout) {
        let mut m = Machine::with_kernel(
            Arc::clone(app_image),
            Arc::clone(kernel_image),
            self.syscall_table(),
            MachineConfig {
                engine,
                ..self.machine_config()
            },
        );
        let mut sga = self.sga.clone();
        sga.load_database(&mut m, txn_limit as i64);
        SgaLayout::fill_variant_table(&mut m, self.scenario.scale.stmt_variants);
        for pid in 0..m.num_processes() {
            let seed = splitmix(self.scenario.seed.wrapping_add(pid as u64 + 1));
            m.set_reg(pid, Reg(5), seed as i64);
            m.set_private_word(pid, priv_words::PID, pid as i64);
            m.set_private_word(pid, priv_words::SEED, seed as i64);
        }
        (m, sga)
    }

    /// The application profile for an explicit source: the measured
    /// Pixie profile or the static Ball–Larus-style estimate.
    pub fn profile_for(&self, source: ProfileSource) -> &Profile {
        match source {
            ProfileSource::Measured => &self.profile,
            ProfileSource::Static => &self.static_profile,
        }
    }

    /// The kernel profile for an explicit source.
    pub fn kernel_profile_for(&self, source: ProfileSource) -> &Profile {
        match source {
            ProfileSource::Measured => &self.kernel_profile,
            ProfileSource::Static => &self.static_kernel_profile,
        }
    }

    /// The profile source selected by `CODELAYOUT_PROFILE_SOURCE`
    /// (default: measured).
    pub fn profile_source(&self) -> ProfileSource {
        codelayout_obs::run_env().profile_source
    }

    /// The application profile feeding the layout passes, honoring the
    /// `CODELAYOUT_PROFILE_SOURCE` knob.
    pub fn active_profile(&self) -> &Profile {
        self.profile_for(self.profile_source())
    }

    /// The kernel profile feeding the layout passes, honoring the
    /// `CODELAYOUT_PROFILE_SOURCE` knob.
    pub fn active_kernel_profile(&self) -> &Profile {
        self.kernel_profile_for(self.profile_source())
    }

    /// Builds the application layout for an optimization set using the
    /// study's active profile (measured by default — "running Spike" on
    /// the baseline binary — or the static estimate under
    /// `CODELAYOUT_PROFILE_SOURCE=static`).
    pub fn layout(&self, set: OptimizationSet) -> Layout {
        LayoutPipeline::new(&self.app.program, self.active_profile()).build(set)
    }

    /// Links the application image for an optimization set.
    ///
    /// Debug builds additionally run translation validation on the linked
    /// image, proving the layout preserved the program's control flow.
    pub fn image(&self, set: OptimizationSet) -> Arc<Image> {
        let layout = self.layout(set);
        let image = link(&self.app.program, &layout, APP_TEXT_BASE)
            .expect("optimized layouts are valid permutations");
        #[cfg(debug_assertions)]
        codelayout_analysis::validate_translation(&self.app.program, &layout, &image)
            .unwrap_or_else(|e| panic!("`{set}` app image failed translation validation: {e}"));
        Arc::new(image)
    }

    /// Links a kernel image for an optimization set using the kernel
    /// profile (the paper's "optimize the operating system" experiment).
    pub fn kernel_image(&self, set: OptimizationSet) -> Arc<Image> {
        let layout =
            LayoutPipeline::new(&self.kernel.program, self.active_kernel_profile()).build(set);
        let image = link(&self.kernel.program, &layout, KERNEL_TEXT_BASE)
            .expect("optimized kernel layouts are valid");
        #[cfg(debug_assertions)]
        codelayout_analysis::validate_translation(&self.kernel.program, &layout, &image)
            .unwrap_or_else(|e| panic!("`{set}` kernel image failed translation validation: {e}"));
        Arc::new(image)
    }

    /// Builds the application layout for any [`LayoutSeries`] — the
    /// paper's six sets via [`Study::layout`], plus hot/cold, CFA,
    /// ext-TSP and Codestitcher behind the same surface — with the
    /// active profile source.
    pub fn layout_series(&self, series: LayoutSeries) -> Layout {
        self.layout_series_with(series, self.profile_source())
    }

    /// [`Study::layout_series`] with an explicit profile source, for
    /// figures that compare measured-profile and static-profile layouts
    /// side by side regardless of the environment knob.
    pub fn layout_series_with(&self, series: LayoutSeries, source: ProfileSource) -> Layout {
        LayoutPipeline::new(&self.app.program, self.profile_for(source)).build_series(series)
    }

    /// Links the application image for any [`LayoutSeries`], with the
    /// same debug-build translation validation as [`Study::image`].
    pub fn image_series(&self, series: LayoutSeries) -> Arc<Image> {
        self.image_series_with(series, self.profile_source())
    }

    /// [`Study::image_series`] with an explicit profile source.
    pub fn image_series_with(&self, series: LayoutSeries, source: ProfileSource) -> Arc<Image> {
        let layout = self.layout_series_with(series, source);
        let image = link(&self.app.program, &layout, APP_TEXT_BASE)
            .expect("series layouts are valid permutations");
        #[cfg(debug_assertions)]
        codelayout_analysis::validate_translation(&self.app.program, &layout, &image)
            .unwrap_or_else(|e| panic!("`{series}` app image failed translation validation: {e}"));
        Arc::new(image)
    }

    /// Builds the application layout for any [`LayoutSeries`] with
    /// explicit layout-construction parameters instead of the defaults,
    /// using the active profile. This is the autotuner's entry point:
    /// `codelayout-tune` materializes each candidate [`ParamPoint`] into
    /// a [`LayoutParams`] and builds the series through here.
    ///
    /// [`ParamPoint`]: codelayout_core::ParamPoint
    pub fn layout_series_params(&self, series: LayoutSeries, params: &LayoutParams) -> Layout {
        LayoutPipeline::with_params(&self.app.program, self.active_profile(), *params)
            .build_series(series)
    }

    /// Links the application image for any [`LayoutSeries`] built with
    /// explicit layout-construction parameters, with the same
    /// debug-build translation validation as [`Study::image_series`].
    pub fn image_series_params(&self, series: LayoutSeries, params: &LayoutParams) -> Arc<Image> {
        let layout = self.layout_series_params(series, params);
        let image = link(&self.app.program, &layout, APP_TEXT_BASE)
            .expect("parameterized series layouts are valid permutations");
        #[cfg(debug_assertions)]
        codelayout_analysis::validate_translation(&self.app.program, &layout, &image)
            .unwrap_or_else(|e| {
                panic!("tuned `{series}` app image failed translation validation: {e}")
            });
        Arc::new(image)
    }

    /// Links a kernel image for any [`LayoutSeries`] using the active
    /// kernel profile, with the same debug-build translation validation
    /// as [`Study::kernel_image`].
    pub fn kernel_image_series(&self, series: LayoutSeries) -> Arc<Image> {
        let layout = LayoutPipeline::new(&self.kernel.program, self.active_kernel_profile())
            .build_series(series);
        let image = link(&self.kernel.program, &layout, KERNEL_TEXT_BASE)
            .expect("series kernel layouts are valid");
        #[cfg(debug_assertions)]
        codelayout_analysis::validate_translation(&self.kernel.program, &layout, &image)
            .unwrap_or_else(|e| {
                panic!("`{series}` kernel image failed translation validation: {e}")
            });
        Arc::new(image)
    }

    /// Runs warm-up transactions (trace discarded), then streams the
    /// measured transactions into `sink` until every server shuts down.
    pub fn run_measured<S: TraceSink>(
        &self,
        app_image: &Arc<Image>,
        kernel_image: &Arc<Image>,
        sink: &mut S,
    ) -> RunOutcome {
        self.run_measured_with(app_image, kernel_image, sink, self.machine_config().engine)
    }

    /// [`Study::run_measured`] on an explicit execution tier. Both tiers
    /// produce identical traces and outcomes; only [`RunOutcome::run_wall`]
    /// differs, which is what engine-speedup benchmarks measure.
    pub fn run_measured_with<S: TraceSink>(
        &self,
        app_image: &Arc<Image>,
        kernel_image: &Arc<Image>,
        sink: &mut S,
        engine: VmEngine,
    ) -> RunOutcome {
        let _span = codelayout_obs::span("measured_run");
        let total = self.scenario.warmup_txns + self.scenario.measure_txns;
        let (mut m, sga) = self.new_machine_with(app_image, kernel_image, total, engine);

        // Warm-up phase: caches in the paper's methodology are warmed
        // before measurement; here the sink simply isn't attached yet. The
        // polling chunk is small so measurement starts close to the warmup
        // boundary.
        let warmup_span = codelayout_obs::span("warmup");
        if self.scenario.warmup_txns > 0 {
            const WARMUP_CHUNK: u64 = 4_096;
            while (m.shared_word(words::COUNTER) as u64) < self.scenario.warmup_txns {
                let r = m.run(&mut NullSink, WARMUP_CHUNK);
                if m.live_processes() == 0 {
                    break;
                }
                let _ = r;
                assert!(m.now() < MAX_RUN_INSTRS, "warmup exceeded ceiling");
            }
        }

        warmup_span.finish();

        let run_span = codelayout_obs::span("run");
        let run_start = std::time::Instant::now();
        let mut report = RunReport::default();
        while m.live_processes() > 0 {
            let r = m.run(sink, CHUNK);
            report.absorb(&r);
            assert!(
                report.instructions < MAX_RUN_INSTRS,
                "measured run exceeded instruction ceiling"
            );
        }
        let run_wall = run_start.elapsed();
        run_span.finish();
        let metrics = codelayout_obs::metrics();
        metrics.add("run.measured_runs", 1);
        metrics.add("run.instructions", report.instructions);
        let invariants = sga.read_invariants(&m);
        let per_process_txns = (0..m.num_processes())
            .map(|pid| m.emitted(pid).last().copied().unwrap_or(0))
            .collect();
        RunOutcome {
            report,
            invariants,
            per_process_txns,
            run_wall,
        }
    }
}

/// SplitMix64 step for seeding per-process RNG states.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_vm::CountingSink;

    #[test]
    fn quick_study_profiles_and_measures() {
        let sc = Scenario::quick();
        let study = build_study(&sc);
        // The profile must cover a meaningful slice of the program.
        assert!(study.profile.total_block_entries() > 1_000);
        assert!(study.kernel_profile.total_block_entries() > 100);

        // Baseline measured run.
        let mut sink = CountingSink::default();
        let out = study.run_measured(&study.base_image, &study.base_kernel_image, &mut sink);
        out.assert_correct();
        assert!(sink.fetches > 10_000);
        assert!(sink.kernel_fetches > 0);
        // All measured transactions committed.
        assert_eq!(
            out.invariants.history_count as u64,
            sc.warmup_txns + sc.measure_txns
        );
    }

    #[test]
    fn optimized_layouts_preserve_semantics() {
        let sc = Scenario::quick();
        let study = build_study(&sc);
        let base = study.run_measured(&study.base_image, &study.base_kernel_image, &mut NullSink);
        base.assert_correct();
        for (_, set) in OptimizationSet::paper_series() {
            let img = study.image(set);
            let out = study.run_measured(&img, &study.base_kernel_image, &mut NullSink);
            out.assert_correct();
            // Data effects are serial-determined (RNG reseeded per txn),
            // so the final database state is layout-invariant. Per-process
            // transaction *counts* may differ: layouts change instruction
            // counts and therefore scheduling boundaries.
            assert_eq!(
                out.invariants, base.invariants,
                "layout {set} changed architectural results"
            );
        }
    }
}
