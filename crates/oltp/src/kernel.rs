//! Synthetic operating-system kernel, written in the IR.
//!
//! The paper's combined-stream study (§5) interleaves Tru64 Unix kernel
//! instructions with the database's. This module generates a kernel image
//! providing the services the OLTP engine uses — transaction receive,
//! blocking log writes, reply accounting and the context-switch scheduler
//! path — plus a mass of never-executed kernel code (drivers, recovery) so
//! the kernel image, like the application, has a live footprint much
//! smaller than its static size.
//!
//! Kernel code may clobber any register: the VM banks user registers at
//! kernel entry (Alpha PALcode shadow-register style).

use crate::scenario::CodeScale;
use crate::sga::{priv_words, words, SgaLayout, LOG_STAGE_WORDS};
use codelayout_ir::{
    BinOp, Cond, MemSpace, Operand, ProcBuilder, ProcId, Program, ProgramBuilder, Reg,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Syscall code: fetch the next transaction serial (or -1 for shutdown).
pub const SYS_RECEIVE: u16 = 1;
/// Syscall code: flush the process log buffer (blocking I/O).
pub const SYS_LOG_WRITE: u16 = 2;
/// Syscall code: reply to the client (accounting only).
pub const SYS_REPLY: u16 = 3;

/// The generated kernel program plus the procedure ids the driver needs.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// The kernel program.
    pub program: Program,
    /// Handler for [`SYS_RECEIVE`].
    pub receive: ProcId,
    /// Handler for [`SYS_LOG_WRITE`].
    pub log_write: ProcId,
    /// Handler for [`SYS_REPLY`].
    pub reply: ProcId,
    /// Context-switch scheduler path.
    pub sched: ProcId,
}

const R0: Reg = Reg(0);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const R10: Reg = Reg(10);
const R11: Reg = Reg(11);
const R12: Reg = Reg(12);
const R13: Reg = Reg(13);
const R14: Reg = Reg(14);
const R15: Reg = Reg(15);

/// Number of generated service paths per handler (dispatch by low serial
/// or pid bits), modelling the fan of kernel code a syscall traverses
/// (VFS, buffer cache, network, scheduler classes, …).
const KPATHS: usize = 32;

/// Generates the kernel program for an SGA layout.
pub fn gen_kernel(sga: &SgaLayout, scale: &CodeScale, seed: u64) -> KernelSpec {
    let mut pb = ProgramBuilder::new("kernel");
    let receive = pb.declare_proc("sys_receive");
    let log_write = pb.declare_proc("sys_log_write");
    let reply = pb.declare_proc("sys_reply");
    let sched = pb.declare_proc("k_sched");
    let account = pb.declare_proc("k_account");
    let queue_scan = pb.declare_proc("k_queue_scan");
    let helpers: Vec<ProcId> = (0..12)
        .map(|i| pb.declare_proc(format!("k_util_{i}")))
        .collect();
    let rx_paths: Vec<ProcId> = (0..KPATHS)
        .map(|i| pb.declare_proc(format!("k_rx_path_{i}")))
        .collect();
    let fs_paths: Vec<ProcId> = (0..KPATHS)
        .map(|i| pb.declare_proc(format!("k_fs_path_{i}")))
        .collect();
    let sched_paths: Vec<ProcId> = (0..8)
        .map(|i| pb.declare_proc(format!("k_sched_class_{i}")))
        .collect();

    // Dead kernel mass: drivers, recovery, diagnostics.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b65_726e);
    let n_dead = scale.dead_procs / 8;
    let dead: Vec<ProcId> = (0..n_dead)
        .map(|i| pb.declare_proc(format!("k_dead_{i}")))
        .collect();

    pb.define_proc(receive, gen_receive(account, &rx_paths))
        .unwrap();
    pb.define_proc(log_write, gen_log_write(sga, account, &fs_paths))
        .unwrap();
    pb.define_proc(reply, gen_reply()).unwrap();
    pb.define_proc(sched, gen_sched(queue_scan, &sched_paths))
        .unwrap();
    pb.define_proc(account, gen_account()).unwrap();
    pb.define_proc(queue_scan, gen_queue_scan()).unwrap();
    for (i, &h) in helpers.iter().enumerate() {
        pb.define_proc(h, gen_k_helper(&mut rng, i)).unwrap();
    }
    for &p in rx_paths.iter() {
        pb.define_proc(p, gen_k_path(&mut rng, 10, &helpers))
            .unwrap();
    }
    for &p in fs_paths.iter() {
        pb.define_proc(p, gen_k_path(&mut rng, 12, &helpers))
            .unwrap();
    }
    for &p in sched_paths.iter() {
        pb.define_proc(p, gen_k_path(&mut rng, 7, &helpers))
            .unwrap();
    }
    for &d in &dead {
        pb.define_proc(d, gen_dead(&mut rng, scale.dead_blocks))
            .unwrap();
    }

    let program = pb.finish(receive).unwrap();
    KernelSpec {
        program,
        receive,
        log_write,
        reply,
        sched,
    }
}

/// A generated kernel service path: a chain of warm blocks with skewed
/// branches and helper calls, like the body of a real syscall service
/// routine. Input: `A1` = a varying selector value. Uses `r12`/`r13`.
fn gen_k_path(rng: &mut StdRng, blocks: usize, helpers: &[ProcId]) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.mov(R12, Reg(1));
    for _ in 0..blocks {
        f.work(R13, rng.gen_range(4..11));
        f.bin_imm(BinOp::Mul, R12, R12, 1103515245);
        f.bin_imm(BinOp::Add, R12, R12, 12345);
        if rng.gen_bool(0.3) {
            let h = helpers[rng.gen_range(0..helpers.len())];
            f.bin_imm(BinOp::And, Reg(1), R12, 0xFF);
            f.call(h);
        }
        let next = f.new_block();
        if rng.gen_bool(0.45) {
            let common = f.new_block();
            let rare = f.new_block();
            f.bin_imm(BinOp::And, R13, R12, 15);
            f.branch(Cond::Lt, R13, Operand::Imm(14), common, rare);
            f.select(common);
            f.work(R13, rng.gen_range(3..9));
            f.jump(next);
            f.select(rare);
            f.work(R13, rng.gen_range(5..14));
            f.jump(next);
        } else {
            f.jump(next);
        }
        f.select(next);
    }
    f.ret();
    f
}

/// A small kernel leaf helper (hash/copy style). Uses `r14`/`r15`.
fn gen_k_helper(rng: &mut StdRng, i: usize) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.mov(R14, Reg(1));
    f.work(R15, rng.gen_range(6..18));
    f.bin_imm(BinOp::Mul, R14, R14, 31 + i as i64);
    f.bin_imm(BinOp::And, Reg(1), R14, 0xFFFF);
    f.ret();
    f
}

/// `r0 = serial` (atomic counter) or `-1` at/after the limit.
fn gen_receive(account: ProcId, rx_paths: &[ProcId]) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let grant = f.new_block();
    let over = f.new_block();
    let done = f.new_block();
    let arms: Vec<_> = rx_paths.iter().map(|_| f.new_block()).collect();
    f.select(entry);
    f.imm(R8, 0).imm(R9, 1);
    f.atomic_rmw(
        BinOp::Add,
        R0,
        R8,
        words::COUNTER as i32,
        R9,
        MemSpace::Shared,
    );
    f.load(R10, R8, words::LIMIT as i32, MemSpace::Shared);
    f.branch(Cond::Lt, R0, Operand::Reg(R10), grant, over);
    f.select(grant);
    // Run-queue bookkeeping: record the serial in a queue slot.
    f.bin_imm(BinOp::And, R11, R0, 31);
    f.bin_imm(BinOp::Add, R11, R11, words::RUNQ_BASE as i64);
    f.store(R0, R11, 0, MemSpace::Shared);
    // The serial stays in R0 for the whole handler: the service paths,
    // helpers and accounting all keep clear of R0. (A bug once parked it
    // in R8, which k_account zeroes — every transaction then returned
    // serial 0.)
    // Service path fan: different requests traverse different kernel code.
    f.bin_imm(BinOp::And, R11, R0, rx_paths.len() as i64 - 1);
    f.jump_table(R11, arms.clone(), done);
    for (i, &a) in arms.iter().enumerate() {
        f.select(a);
        f.mov(Reg(1), R0);
        f.call(rx_paths[i]);
        f.jump(done);
    }
    f.select(done);
    f.call(account);
    f.ret();
    f.select(over);
    f.imm(R0, -1);
    f.ret();
    f
}

/// Copies the process's private log buffer into its shared staging area and
/// bumps the global log tail. The post-handler blocking latency models the
/// disk write.
fn gen_log_write(sga: &SgaLayout, account: ProcId, fs_paths: &[ProcId]) -> ProcBuilder {
    let _ = sga;
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let loop_head = f.new_block();
    let copy = f.new_block();
    let done = f.new_block();
    let out = f.new_block();
    let arms: Vec<_> = fs_paths.iter().map(|_| f.new_block()).collect();
    f.select(entry);
    f.imm(R8, 0);
    f.load(R9, R8, priv_words::PID as i32, MemSpace::Private);
    // Staging base = LOG_STAGE_BASE + pid * LOG_STAGE_WORDS.
    f.bin_imm(BinOp::Mul, R10, R9, LOG_STAGE_WORDS as i64);
    f.bin_imm(BinOp::Add, R10, R10, words::LOG_STAGE_BASE as i64);
    f.load(R11, R8, priv_words::LOG_COUNT as i32, MemSpace::Private);
    f.bin_imm(BinOp::Min, R11, R11, (LOG_STAGE_WORDS - 1) as i64);
    f.imm(R12, 0);
    f.jump(loop_head);
    f.select(loop_head);
    f.branch(Cond::Lt, R12, Operand::Reg(R11), copy, done);
    f.select(copy);
    f.bin_imm(BinOp::Add, R13, R12, priv_words::LOG_BUF as i64);
    f.load(R14, R13, 0, MemSpace::Private);
    f.bin(BinOp::Add, R15, R10, R12);
    f.store(R14, R15, 0, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R12, R12, 1);
    f.jump(loop_head);
    f.select(done);
    f.atomic_rmw(
        BinOp::Add,
        R13,
        R8,
        words::LOG_TAIL as i32,
        R11,
        MemSpace::Shared,
    );
    f.imm(R14, 0);
    f.store(R14, R8, priv_words::LOG_COUNT as i32, MemSpace::Private);
    // File-system / device path fan, selected by the (old) log tail so
    // successive writes traverse different device/FS code.
    f.bin_imm(BinOp::And, R11, R13, fs_paths.len() as i64 - 1);
    f.jump_table(R11, arms.clone(), out);
    for (i, &a) in arms.iter().enumerate() {
        f.select(a);
        f.mov(Reg(1), R9);
        f.call(fs_paths[i]);
        f.jump(out);
    }
    f.select(out);
    f.call(account);
    f.imm(R0, 0);
    f.ret();
    f
}

/// Minimal reply accounting: bump a per-process stat slot.
fn gen_reply() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.imm(R8, 0);
    f.load(R9, R8, priv_words::PID as i32, MemSpace::Private);
    f.bin_imm(BinOp::And, R10, R9, 7);
    f.bin_imm(BinOp::Add, R10, R10, words::STATS_BASE as i64);
    f.load(R11, R10, 0, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R11, R11, 1);
    f.store(R11, R10, 0, MemSpace::Shared);
    f.work(R12, 4);
    f.imm(R0, 0);
    f.ret();
    f
}

/// Context-switch path: scan the run queue, account, then run one of the
/// scheduler-class paths (alternating with the switch counter).
fn gen_sched(queue_scan: ProcId, sched_paths: &[ProcId]) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let out = f.new_block();
    let arms: Vec<_> = sched_paths.iter().map(|_| f.new_block()).collect();
    f.select(entry);
    f.call(queue_scan);
    f.imm(R8, 0);
    f.load(R9, R8, (words::STATS_BASE + 8) as i32, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R9, R9, 1);
    f.store(R9, R8, (words::STATS_BASE + 8) as i32, MemSpace::Shared);
    f.work(R10, 8);
    f.bin_imm(BinOp::And, R11, R9, sched_paths.len() as i64 - 1);
    f.jump_table(R11, arms.clone(), out);
    for (i, &a) in arms.iter().enumerate() {
        f.select(a);
        f.mov(Reg(1), R9);
        f.call(sched_paths[i]);
        f.jump(out);
    }
    f.select(out);
    f.ret();
    f
}

/// Scans the 32-slot run queue and stores the maximum serial seen.
fn gen_queue_scan() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let head = f.new_block();
    let body = f.new_block();
    let out = f.new_block();
    f.select(entry);
    f.imm(R8, words::RUNQ_BASE as i64).imm(R9, 0).imm(R10, 0);
    f.jump(head);
    f.select(head);
    f.branch(Cond::Lt, R9, Operand::Imm(32), body, out);
    f.select(body);
    f.bin(BinOp::Add, R11, R8, R9);
    f.load(R12, R11, 0, MemSpace::Shared);
    f.bin(BinOp::Max, R10, R10, R12);
    f.bin_imm(BinOp::Add, R9, R9, 1);
    f.jump(head);
    f.select(out);
    f.imm(R11, 0);
    f.store(R10, R11, (words::STATS_BASE + 9) as i32, MemSpace::Shared);
    f.ret();
    f
}

/// Accounting helper shared by the handlers.
fn gen_account() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.imm(R8, 0);
    f.load(R9, R8, (words::STATS_BASE + 10) as i32, MemSpace::Shared);
    f.bin_imm(BinOp::Add, R9, R9, 1);
    f.store(R9, R8, (words::STATS_BASE + 10) as i32, MemSpace::Shared);
    f.work(R10, 5);
    f.ret();
    f
}

/// Never-executed kernel code (drivers, recovery, diagnostics).
fn gen_dead(rng: &mut StdRng, blocks: usize) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let n = blocks.max(2);
    let ids: Vec<_> = std::iter::once(f.entry())
        .chain((1..n).map(|_| f.new_block()))
        .collect();
    for (i, &b) in ids.iter().enumerate() {
        f.select(b);
        f.work(R8, rng.gen_range(3..12));
        if i + 1 == n {
            f.ret();
        } else if rng.gen_bool(0.3) {
            let t = ids[rng.gen_range(i + 1..n)];
            f.branch(Cond::Gt, R8, Operand::Imm(0), t, ids[i + 1]);
        } else {
            f.jump(ids[i + 1]);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn kernel_builds_and_verifies() {
        let sc = Scenario::quick();
        let sga = SgaLayout::new(
            sc.branches,
            sc.tellers_per_branch,
            sc.accounts_per_branch,
            8,
            1000,
        );
        let spec = gen_kernel(&sga, &sc.scale, 42);
        assert!(spec.program.procs.len() >= 6);
        assert_eq!(spec.program.proc(spec.receive).name, "sys_receive");
        // Deterministic generation.
        let spec2 = gen_kernel(&sga, &sc.scale, 42);
        assert_eq!(spec.program, spec2.program);
        let spec3 = gen_kernel(&sga, &sc.scale, 43);
        assert_ne!(spec.program, spec3.program);
    }
}
