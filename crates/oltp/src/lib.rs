//! A miniature TPC-B transaction-processing workload, written in the
//! `codelayout` IR — the stand-in for the paper's Oracle-on-Alpha setup.
//!
//! The crate provides:
//!
//! * [`Scenario`] / [`CodeScale`] — workload scale and binary-shape knobs;
//! * [`SgaLayout`] — the shared-memory map (tables, B-tree index, buffer
//!   pool, history, log staging) and the host-side database loader;
//! * [`gen_app`] — the generated database server program (parser paths,
//!   executor paths, B-tree lookups, buffer manager, branch locks, WAL);
//! * [`gen_kernel`] — the synthetic kernel (receive/log-write/reply
//!   syscalls, scheduler path, dead driver mass);
//! * [`build_study`] / [`Study`] — the full methodology driver: profile on
//!   the baseline binary, build optimized layouts, run measured
//!   experiments with cache simulators attached.
//!
//! Correctness is checkable: the TPC-B consistency conditions (account,
//! teller and branch balance totals all equal the sum of committed deltas;
//! one history record per transaction) are read back from shared memory
//! after every run, and every layout must reproduce the baseline's
//! architectural results exactly.
//!
//! # Example
//!
//! ```no_run
//! use codelayout_oltp::{build_study, Scenario};
//! use codelayout_core::OptimizationSet;
//! use codelayout_vm::CountingSink;
//!
//! let study = build_study(&Scenario::quick());
//! let optimized = study.image(OptimizationSet::ALL);
//! let mut sink = CountingSink::default();
//! let out = study.run_measured(&optimized, &study.base_kernel_image, &mut sink);
//! out.assert_correct();
//! println!("measured {} instructions", sink.fetches);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod driver;
mod kernel;
mod scenario;
mod sga;

pub use app::{gen_app, AppSpec};
pub use driver::{build_study, RunOutcome, Study};
pub use kernel::{gen_kernel, KernelSpec, SYS_LOG_WRITE, SYS_RECEIVE, SYS_REPLY};
pub use scenario::{drift_schedule, CodeScale, MixPhase, Scenario};
pub use sga::{
    btree_search_host, priv_words, words, Invariants, SgaLayout, ACCT_STRIDE, BRANCH_STRIDE,
    BTREE_FANOUT, BTREE_NODE_WORDS, BUF_STRIDE, HIST_STRIDE, LOG_STAGE_WORDS, ROWS_PER_PAGE,
    TELLER_STRIDE,
};
