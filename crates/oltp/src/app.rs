//! The miniature transaction-processing engine, generated in the IR.
//!
//! This stands in for the Oracle server binary the paper profiled. The
//! engine is a real program: every transaction receives a serial from the
//! kernel, picks a statement variant, runs a generated parser path, then an
//! executor path that performs the TPC-B work — B-tree account lookup,
//! buffer-pool fix, branch spin-lock, atomic balance updates, history
//! append, private WAL append and a blocking log-flush syscall. The TPC-B
//! consistency conditions are checkable on shared memory afterwards.
//!
//! The generator's *shape knobs* ([`crate::CodeScale`]) produce the code
//! properties the paper's results depend on: a wide, flat hot footprint
//! (many statement variants, each moderately warm), cold error paths inline
//! with hot code, and a large never-executed code mass.
//!
//! # Register conventions
//!
//! | Regs | Role |
//! |------|------|
//! | `r0` | syscall return |
//! | `r1..r4` | call arguments / returns (caller-saved, dead across calls) |
//! | `r5` | RNG state (mutated only by `rand`) |
//! | `r6..r9` | level 0 (server main loop) |
//! | `r10..r13` | level 1 (transaction flow) |
//! | `r14..r21` | level 2 (parser/executor paths) |
//! | `r22..r25` | level 3 (storage subsystems, lexer helpers) |
//! | `r26..r28` | level 4 (leaves: rand, checksum, backoff, evict, error) |
//!
//! A procedure at level L only calls procedures at deeper levels, so no
//! save/restore is needed. Kernel code is exempt: the VM banks registers at
//! kernel entry.

use crate::kernel::{SYS_LOG_WRITE, SYS_RECEIVE, SYS_REPLY};
use crate::scenario::Scenario;
use crate::sga::{
    priv_words, words, SgaLayout, ACCT_STRIDE, BRANCH_STRIDE, BTREE_FANOUT, BUF_STRIDE,
    HIST_STRIDE, ROWS_PER_PAGE, TELLER_STRIDE,
};
use codelayout_ir::{
    BinOp, Cond, LocalBlock, MemSpace, Operand, ProcBuilder, ProcId, Program, ProgramBuilder, Reg,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const R0: Reg = Reg(0);
const A1: Reg = Reg(1);
const A2: Reg = Reg(2);
const A3: Reg = Reg(3);
const A4: Reg = Reg(4);
// Level 0 (main loop).
const S_SERIAL: Reg = Reg(6);
const S_VARIANT: Reg = Reg(7);
const S_TMP: Reg = Reg(8);
const S_COUNT: Reg = Reg(9);
// Level 1 (transaction flow).
const T0: Reg = Reg(10);
const T1: Reg = Reg(11);
const T2: Reg = Reg(12);
// Level 2 (parser/executor paths).
const X0: Reg = Reg(14);
const X1: Reg = Reg(15);
const X2: Reg = Reg(16);
const X3: Reg = Reg(17);
const X4: Reg = Reg(18);
const X5: Reg = Reg(19);
const X6: Reg = Reg(20);
const X7: Reg = Reg(21);
// Level 3 (subsystems).
const U0: Reg = Reg(22);
const U1: Reg = Reg(23);
const U2: Reg = Reg(24);
const U3: Reg = Reg(25);
// Level 4 (leaves).
const V0: Reg = Reg(26);
const V1: Reg = Reg(27);
const V2: Reg = Reg(28);

/// A guard constant no bounded value ever exceeds; branches comparing
/// against it are genuinely never taken (cold error paths).
const NEVER: i64 = 1 << 42;

/// The generated application program plus the ids the driver needs.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// The application program (entry = server main loop).
    pub program: Program,
    /// The server main procedure.
    pub main: ProcId,
}

/// Ids of every procedure, filled during declaration.
struct Procs {
    main: ProcId,
    txn_begin: ProcId,
    txn_commit: ProcId,
    parse_dispatch: ProcId,
    exec_dispatch: ProcId,
    stats: ProcId,
    checkpoint: ProcId,
    parse: Vec<ProcId>,
    exec: Vec<ProcId>,
    lex: Vec<ProcId>,
    btree_lookup: ProcId,
    buf_fix: ProcId,
    buf_evict: ProcId,
    lock_acquire: ProcId,
    lock_release: ProcId,
    backoff: ProcId,
    upd_account: ProcId,
    upd_teller: ProcId,
    upd_branch: ProcId,
    insert_hist: ProcId,
    log_append: ProcId,
    rand: ProcId,
    checksum: ProcId,
    error: ProcId,
    dead: Vec<ProcId>,
}

/// Generates the application program for a scenario and SGA layout.
pub fn gen_app(sga: &SgaLayout, sc: &Scenario) -> AppSpec {
    let mut pb = ProgramBuilder::new("oltp-server");
    let mut rng = StdRng::seed_from_u64(sc.seed ^ 0x6170_7067);
    let v = sc.scale.stmt_variants;

    // Declaration order is the baseline (natural) link order. Real
    // binaries are linked in build-system order, which is uncorrelated
    // with dynamic call sequences — that lack of correlation is exactly
    // what procedure ordering repairs. We therefore declare procedures in
    // a seeded arbitrary order rather than generation order.
    #[derive(Clone)]
    enum Role {
        Named(&'static str),
        Parse(usize),
        Exec(usize),
        Lex(usize),
        Dead(usize),
    }
    const NAMED: [&str; 21] = [
        "server_main",
        "txn_begin",
        "txn_commit",
        "sql_parse_dispatch",
        "sql_exec_dispatch",
        "stats_update",
        "checkpoint",
        "bt_lookup",
        "buf_fix",
        "buf_evict",
        "lock_acquire",
        "lock_release",
        "lock_backoff",
        "upd_account",
        "upd_teller",
        "upd_branch",
        "insert_history",
        "log_append",
        "rand_next",
        "row_checksum",
        "error_path",
    ];
    let mut roles: Vec<Role> = NAMED.iter().map(|n| Role::Named(n)).collect();
    roles.extend((0..v).map(Role::Parse));
    roles.extend((0..v).map(Role::Exec));
    roles.extend((0..sc.scale.lex_helpers.max(1)).map(Role::Lex));
    roles.extend((0..sc.scale.dead_procs).map(Role::Dead));
    // Fisher-Yates with the scenario seed: arbitrary but reproducible
    // link order.
    for i in (1..roles.len()).rev() {
        let j = rng.gen_range(0..=i);
        roles.swap(i, j);
    }

    let mut named = std::collections::HashMap::new();
    let mut parse = vec![ProcId(u32::MAX); v];
    let mut exec = vec![ProcId(u32::MAX); v];
    let mut lex = vec![ProcId(u32::MAX); sc.scale.lex_helpers.max(1)];
    let mut dead = vec![ProcId(u32::MAX); sc.scale.dead_procs];
    for role in &roles {
        match role {
            Role::Named(n) => {
                named.insert(*n, pb.declare_proc(*n));
            }
            Role::Parse(i) => parse[*i] = pb.declare_proc(format!("parse_q{i}")),
            Role::Exec(i) => exec[*i] = pb.declare_proc(format!("exec_q{i}")),
            Role::Lex(i) => lex[*i] = pb.declare_proc(format!("lex_{i}")),
            Role::Dead(i) => dead[*i] = pb.declare_proc(format!("admin_{i}")),
        }
    }
    let main = named["server_main"];
    let txn_begin = named["txn_begin"];
    let txn_commit = named["txn_commit"];
    let parse_dispatch = named["sql_parse_dispatch"];
    let exec_dispatch = named["sql_exec_dispatch"];
    let stats = named["stats_update"];
    let checkpoint = named["checkpoint"];
    let btree_lookup = named["bt_lookup"];
    let buf_fix = named["buf_fix"];
    let buf_evict = named["buf_evict"];
    let lock_acquire = named["lock_acquire"];
    let lock_release = named["lock_release"];
    let backoff = named["lock_backoff"];
    let upd_account = named["upd_account"];
    let upd_teller = named["upd_teller"];
    let upd_branch = named["upd_branch"];
    let insert_hist = named["insert_history"];
    let log_append = named["log_append"];
    let rand = named["rand_next"];
    let checksum = named["row_checksum"];
    let error = named["error_path"];

    let p = Procs {
        main,
        txn_begin,
        txn_commit,
        parse_dispatch,
        exec_dispatch,
        stats,
        checkpoint,
        parse,
        exec,
        lex,
        btree_lookup,
        buf_fix,
        buf_evict,
        lock_acquire,
        lock_release,
        backoff,
        upd_account,
        upd_teller,
        upd_branch,
        insert_hist,
        log_append,
        rand,
        checksum,
        error,
        dead,
    };

    // Definitions.
    pb.define_proc(p.main, gen_main(&p, sc)).unwrap();
    pb.define_proc(p.txn_begin, gen_txn_begin(&p)).unwrap();
    pb.define_proc(p.txn_commit, gen_txn_commit(&p)).unwrap();
    pb.define_proc(p.parse_dispatch, gen_dispatch(&p.parse, p.error))
        .unwrap();
    pb.define_proc(p.exec_dispatch, gen_dispatch(&p.exec, p.error))
        .unwrap();
    pb.define_proc(p.stats, gen_stats(sga)).unwrap();
    pb.define_proc(p.checkpoint, gen_checkpoint(&p, sga))
        .unwrap();
    for i in 0..v {
        let body = gen_parse_variant(&p, sc, &mut rng, i);
        pb.define_proc(p.parse[i], body).unwrap();
        let body = gen_exec_variant(&p, sga, sc, &mut rng, i);
        pb.define_proc(p.exec[i], body).unwrap();
    }
    for (i, &l) in p.lex.iter().enumerate() {
        pb.define_proc(l, gen_lex(&mut rng, i)).unwrap();
    }
    pb.define_proc(p.btree_lookup, gen_btree_lookup(&p))
        .unwrap();
    pb.define_proc(p.buf_fix, gen_buf_fix(&p, sga)).unwrap();
    pb.define_proc(p.buf_evict, gen_buf_evict(sga)).unwrap();
    pb.define_proc(p.lock_acquire, gen_lock_acquire(&p))
        .unwrap();
    pb.define_proc(p.lock_release, gen_lock_release()).unwrap();
    pb.define_proc(p.backoff, gen_backoff()).unwrap();
    pb.define_proc(p.upd_account, gen_upd_account(&p)).unwrap();
    pb.define_proc(p.upd_teller, gen_upd_simple(0)).unwrap();
    pb.define_proc(p.upd_branch, gen_upd_branch()).unwrap();
    pb.define_proc(p.insert_hist, gen_insert_hist(&p, sga))
        .unwrap();
    pb.define_proc(p.log_append, gen_log_append(&p)).unwrap();
    pb.define_proc(p.rand, gen_rand()).unwrap();
    pb.define_proc(p.checksum, gen_checksum()).unwrap();
    pb.define_proc(p.error, gen_error()).unwrap();
    for &d in &p.dead {
        pb.define_proc(d, gen_dead(&mut rng, sc.scale.dead_blocks, p.error))
            .unwrap();
    }

    let program = pb.finish(p.main).unwrap();
    AppSpec {
        program,
        main: p.main,
    }
}

/// Server main loop (level 0).
fn gen_main(p: &Procs, sc: &Scenario) -> ProcBuilder {
    let v = sc.scale.stmt_variants as i64;
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let loop_head = f.new_block();
    let got = f.new_block();
    let after_commit = f.new_block();
    let do_stats = f.new_block();
    let after_stats = f.new_block();
    let do_ckpt = f.new_block();
    let shutdown = f.new_block();

    f.select(entry);
    f.imm(S_COUNT, 0);
    f.jump(loop_head);

    f.select(loop_head);
    f.syscall(SYS_RECEIVE);
    f.branch(Cond::Ge, R0, Operand::Imm(0), got, shutdown);

    f.select(got);
    f.mov(S_SERIAL, R0);
    // Reseed the RNG from the serial: a transaction's data effects then
    // depend only on *which* transaction it is, not on which process runs
    // it or how scheduling interleaved — so any two layouts (or kernel
    // images) must produce an identical final database state.
    f.bin_imm(BinOp::Add, Reg(5), S_SERIAL, 1);
    f.bin_imm(BinOp::Mul, Reg(5), Reg(5), -7046029254386353131i64);
    f.mov(A1, S_SERIAL).call(p.txn_begin);
    // Statement type: Zipf-distributed via the shared frequency table.
    f.call(p.rand);
    f.bin_imm(BinOp::And, S_VARIANT, A1, 255);
    f.bin_imm(
        BinOp::Add,
        S_VARIANT,
        S_VARIANT,
        words::VARIANT_TABLE as i64,
    );
    f.load(S_VARIANT, S_VARIANT, 0, MemSpace::Shared);
    let _ = v;
    f.mov(A1, S_SERIAL)
        .mov(A2, S_VARIANT)
        .call(p.parse_dispatch);
    f.mov(A1, S_SERIAL).mov(A2, S_VARIANT).call(p.exec_dispatch);
    f.mov(A1, S_SERIAL).call(p.txn_commit);
    f.syscall(SYS_REPLY);
    f.bin_imm(BinOp::Add, S_COUNT, S_COUNT, 1);
    f.bin_imm(BinOp::And, S_TMP, S_SERIAL, 63);
    f.branch(Cond::Eq, S_TMP, Operand::Imm(0), do_stats, after_stats);

    f.select(do_stats);
    f.call(p.stats);
    f.jump(after_stats);

    f.select(after_stats);
    f.bin_imm(BinOp::And, S_TMP, S_SERIAL, 255);
    f.branch(Cond::Eq, S_TMP, Operand::Imm(0), do_ckpt, after_commit);

    f.select(do_ckpt);
    f.call(p.checkpoint);
    f.jump(after_commit);

    f.select(after_commit);
    f.jump(loop_head);

    f.select(shutdown);
    f.emit(S_COUNT);
    f.halt();
    f
}

/// Transaction begin: WAL begin record + stats (level 1).
fn gen_txn_begin(p: &Procs) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.mov(T0, A1);
    f.imm(A2, -1);
    f.call(p.log_append);
    f.work(T1, 4);
    let _ = T0;
    f.ret();
    f
}

/// Transaction commit: WAL commit record + blocking log flush (level 1).
fn gen_txn_commit(p: &Procs) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.mov(T0, A1);
    f.imm(A2, -2);
    f.call(p.log_append);
    f.syscall(SYS_LOG_WRITE);
    f.work(T1, 3);
    f.ret();
    f
}

/// Statement dispatch through a jump table (level 1). `A2` = variant.
fn gen_dispatch(targets: &[ProcId], error: ProcId) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let exit = f.new_block();
    let bad = f.new_block();
    let blocks: Vec<LocalBlock> = targets.iter().map(|_| f.new_block()).collect();
    f.select(entry);
    f.jump_table(A2, blocks.clone(), bad);
    for (i, &b) in blocks.iter().enumerate() {
        f.select(b);
        f.call(targets[i]);
        f.jump(exit);
    }
    f.select(bad);
    f.call(error);
    f.ret();
    f.select(exit);
    f.ret();
    f
}

/// Periodic statistics sweep (level 1, every 64th transaction).
fn gen_stats(sga: &SgaLayout) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let head = f.new_block();
    let body = f.new_block();
    let out = f.new_block();
    f.select(entry);
    f.imm(T0, 0);
    f.load(T1, T0, priv_words::PID as i32, MemSpace::Private);
    f.bin_imm(BinOp::And, T1, T1, 7);
    f.bin_imm(BinOp::Add, T1, T1, words::STATS_BASE as i64);
    f.load(T2, T1, 0, MemSpace::Shared);
    f.bin_imm(BinOp::Add, T2, T2, 1);
    f.store(T2, T1, 0, MemSpace::Shared);
    // Sweep the first 8 branch rows.
    f.imm(T0, 0).imm(T2, 0);
    f.jump(head);
    f.select(head);
    f.branch(Cond::Lt, T0, Operand::Imm(8), body, out);
    f.select(body);
    f.bin_imm(BinOp::Mul, T1, T0, BRANCH_STRIDE as i64);
    f.bin_imm(BinOp::Add, T1, T1, sga.branch_base as i64);
    f.load(A2, T1, 0, MemSpace::Shared);
    f.bin(BinOp::Add, T2, T2, A2);
    f.bin_imm(BinOp::Add, T0, T0, 1);
    f.jump(head);
    f.select(out);
    f.imm(T0, 0);
    f.store(T2, T0, (words::STATS_BASE + 13) as i32, MemSpace::Shared);
    f.ret();
    f
}

/// Periodic checkpoint (level 1, every 256th transaction): sweep all branch
/// balances and flush the log.
fn gen_checkpoint(p: &Procs, sga: &SgaLayout) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let head = f.new_block();
    let body = f.new_block();
    let out = f.new_block();
    f.select(entry);
    f.imm(T0, 0).imm(T2, 0);
    f.jump(head);
    f.select(head);
    f.branch(Cond::Lt, T0, Operand::Imm(sga.branches as i64), body, out);
    f.select(body);
    f.bin_imm(BinOp::Mul, T1, T0, BRANCH_STRIDE as i64);
    f.bin_imm(BinOp::Add, T1, T1, sga.branch_base as i64);
    f.load(A2, T1, 0, MemSpace::Shared);
    f.bin(BinOp::Add, T2, T2, A2);
    f.load(A2, T1, 2, MemSpace::Shared);
    f.bin(BinOp::Add, T2, T2, A2);
    f.bin_imm(BinOp::Add, T0, T0, 1);
    f.jump(head);
    f.select(out);
    f.imm(T0, 0);
    f.store(T2, T0, (words::STATS_BASE + 14) as i32, MemSpace::Shared);
    f.imm(A1, -3).imm(A2, -3);
    f.call(p.log_append);
    f.syscall(SYS_LOG_WRITE);
    f.ret();
    f
}

/// Appends generator-chosen filler to the current block and returns the
/// register holding a bounded pseudo-input value.
fn filler_work(f: &mut ProcBuilder, rng: &mut StdRng, sc: &Scenario, scratch: Reg) {
    f.work(
        scratch,
        rng.gen_range(sc.scale.work_min..=sc.scale.work_max),
    );
}

/// Emits a chain of generated hot blocks with branches, helper calls and
/// inline cold paths. Used by both parser and executor paths (level 2).
///
/// `input` must hold a pseudo-input value; `scratch` and `scratch2` are
/// free level-2 registers. Ends positioned on a fresh open block.
#[allow(clippy::too_many_arguments)]
fn gen_hot_chain(
    f: &mut ProcBuilder,
    rng: &mut StdRng,
    sc: &Scenario,
    p: &Procs,
    blocks: usize,
    input: Reg,
    scratch: Reg,
    scratch2: Reg,
) {
    for _ in 0..blocks {
        filler_work(f, rng, sc, scratch);
        // Mutate the pseudo-input so branch outcomes vary per transaction.
        f.bin_imm(BinOp::Mul, input, input, 1103515245);
        f.bin_imm(BinOp::Add, input, input, 12345);

        // Occasionally call a lexer/utility helper.
        if rng.gen_bool(0.35) && !p.lex.is_empty() {
            let l = p.lex[rng.gen_range(0..p.lex.len())];
            f.bin_imm(BinOp::And, A1, input, 0xFF);
            f.call(l);
            f.bin(BinOp::Xor, input, input, A1);
        }

        // Transition to the next block.
        let next = f.new_block();
        let cold_cut = 45 + (sc.scale.cold_guard_prob * 100.0) as i32;
        let style: i32 = rng.gen_range(0..100);
        if style < 30 {
            f.jump(next);
        } else if style < 45 {
            // 50/50 branch on an input bit; both arms warm.
            let shift = rng.gen_range(8..24) as i64;
            let arm_a = f.new_block();
            let arm_b = f.new_block();
            f.bin_imm(BinOp::Shr, scratch2, input, shift);
            f.bin_imm(BinOp::And, scratch2, scratch2, 1);
            f.branch(Cond::Eq, scratch2, Operand::Imm(0), arm_a, arm_b);
            f.select(arm_a);
            filler_work(f, rng, sc, scratch);
            f.jump(next);
            f.select(arm_b);
            filler_work(f, rng, sc, scratch);
            f.jump(next);
        } else if style < cold_cut {
            // Inline cold error path, never taken; sized like real error
            // handling (format, log, unwind) so it dilutes baseline lines.
            let cold = f.new_block();
            let cold2 = f.new_block();
            f.bin_imm(BinOp::And, scratch2, input, 0xFFFF);
            f.branch(Cond::Gt, scratch2, Operand::Imm(NEVER), cold, next);
            f.select(cold);
            f.work(scratch, rng.gen_range(10..28));
            f.call(p.error);
            f.jump(cold2);
            f.select(cold2);
            f.work(scratch, rng.gen_range(8..24));
            f.jump(next);
        } else {
            // Skewed branch: ~87/13, both warm; the chainer straightens
            // the common arm.
            let common = f.new_block();
            let rare = f.new_block();
            f.bin_imm(BinOp::And, scratch2, input, 15);
            f.branch(Cond::Lt, scratch2, Operand::Imm(14), common, rare);
            f.select(common);
            filler_work(f, rng, sc, scratch);
            f.jump(next);
            f.select(rare);
            f.work(scratch, rng.gen_range(6..16));
            f.jump(next);
        }
        f.select(next);
    }
}

/// One generated parser path (level 2).
fn gen_parse_variant(p: &Procs, sc: &Scenario, rng: &mut StdRng, v: usize) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.mov(X0, A1);
    f.bin_imm(BinOp::Mul, X1, A1, 2654435761);
    f.bin_imm(BinOp::Add, X1, X1, (v as i64) * 977 + 13);
    gen_hot_chain(&mut f, rng, sc, p, sc.scale.parse_blocks, X1, X2, X3);
    // Plan-cache touch (private memory).
    f.imm(X4, (priv_words::PLAN_CACHE + v * 4) as i64);
    f.load(X5, X4, 0, MemSpace::Private);
    f.bin_imm(BinOp::Add, X5, X5, 1);
    f.store(X5, X4, 0, MemSpace::Private);
    let _ = X0;
    f.ret();
    f
}

/// One generated executor path (level 2): TPC-B spine + variant filler.
fn gen_exec_variant(
    p: &Procs,
    sga: &SgaLayout,
    sc: &Scenario,
    rng: &mut StdRng,
    v: usize,
) -> ProcBuilder {
    let n_tellers = sga.tellers() as i64;
    let tpb = sga.tellers_per_branch as i64;
    let apb = sga.accounts_per_branch as i64;
    let n_acct = sga.accounts() as i64;

    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let local = f.new_block();
    let global = f.new_block();
    let cont = f.new_block();

    f.select(entry);
    f.mov(X0, A1); // serial
    f.call(p.rand);
    f.bin_imm(BinOp::Rem, X1, A1, n_tellers); // teller id
    f.call(p.rand);
    f.bin_imm(BinOp::Rem, X3, A1, 1999);
    f.bin_imm(BinOp::Sub, X3, X3, 999); // delta in [-999, 999]
    f.call(p.rand);
    f.bin_imm(BinOp::Div, X2, X1, tpb); // branch id
    f.bin_imm(BinOp::And, X6, A1, 255);
    f.branch(Cond::Lt, X6, Operand::Imm(217), local, global); // 85% local

    f.select(local);
    f.bin_imm(BinOp::Mul, X4, X2, apb);
    f.bin_imm(BinOp::Shr, X7, A1, 8);
    f.bin_imm(BinOp::Rem, X7, X7, apb);
    f.bin(BinOp::Add, X4, X4, X7);
    f.jump(cont);

    f.select(global);
    f.bin_imm(BinOp::Shr, X7, A1, 8);
    f.bin_imm(BinOp::Rem, X4, X7, n_acct);
    f.jump(cont);

    f.select(cont);
    // Variant-specific pseudo-input drives the filler between spine steps.
    f.bin_imm(BinOp::Mul, X6, X0, 48271);
    f.bin_imm(BinOp::Add, X6, X6, (v as i64) * 131 + 7);
    let spine_filler = (sc.scale.exec_blocks / 4).max(1);
    gen_hot_chain(&mut f, rng, sc, p, spine_filler, X6, X7, A2);

    f.mov(A1, X4);
    f.call(p.btree_lookup);
    f.mov(X5, A1); // account row
    gen_hot_chain(&mut f, rng, sc, p, spine_filler, X6, X7, A2);

    f.mov(A1, X5);
    f.call(p.buf_fix);
    // Branch row offset replaces the branch id.
    f.bin_imm(BinOp::Mul, X2, X2, BRANCH_STRIDE as i64);
    f.bin_imm(BinOp::Add, X2, X2, sga.branch_base as i64);
    f.mov(A1, X2);
    f.call(p.lock_acquire);

    f.mov(A1, X5).mov(A2, X3).mov(A3, X0);
    f.call(p.upd_account);
    // Teller row offset replaces the teller id.
    f.bin_imm(BinOp::Mul, X1, X1, TELLER_STRIDE as i64);
    f.bin_imm(BinOp::Add, X1, X1, sga.teller_base as i64);
    f.mov(A1, X1).mov(A2, X3);
    f.call(p.upd_teller);
    f.mov(A1, X2).mov(A2, X3);
    f.call(p.upd_branch);
    f.mov(A1, X0).mov(A2, X4).mov(A3, X3).mov(A4, X1);
    f.call(p.insert_hist);
    f.mov(A1, X2);
    f.call(p.lock_release);
    f.mov(A1, X0).mov(A2, X3);
    f.call(p.log_append);

    gen_hot_chain(&mut f, rng, sc, p, spine_filler, X6, X7, A2);
    f.ret();
    f
}

/// A generated lexer/utility helper (level 3).
fn gen_lex(rng: &mut StdRng, i: usize) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let head = f.new_block();
    let body = f.new_block();
    let out = f.new_block();
    f.select(entry);
    f.mov(U0, A1);
    f.work(U1, rng.gen_range(3..10));
    // Short data-dependent loop: 1..=4 iterations.
    f.bin_imm(BinOp::And, U2, A1, 3);
    f.jump(head);
    f.select(head);
    f.branch(Cond::Ge, U2, Operand::Imm(0), body, out);
    f.select(body);
    f.bin_imm(BinOp::Mul, U0, U0, 31);
    f.bin_imm(BinOp::Add, U0, U0, i as i64 + 1);
    f.bin_imm(BinOp::Sub, U2, U2, 1);
    f.jump(head);
    f.select(out);
    f.bin_imm(BinOp::And, A1, U0, 0xFFFF);
    f.ret();
    f
}

/// B-tree account lookup (level 3). `A1` = key in, `A1` = row offset out.
fn gen_btree_lookup(p: &Procs) -> ProcBuilder {
    let fan = BTREE_FANOUT as i64;
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let node_loop = f.new_block();
    let scan = f.new_block();
    let scan_body = f.new_block();
    let scan_inc = f.new_block();
    let after = f.new_block();
    let internal = f.new_block();
    let leaf = f.new_block();
    let done = f.new_block();
    let bad = f.new_block();

    f.select(entry);
    f.imm(U0, 0);
    f.load(U0, U0, words::BTREE_ROOT as i32, MemSpace::Shared);
    f.jump(node_loop);

    f.select(node_loop);
    f.load(U1, U0, 0, MemSpace::Shared); // header
    f.bin_imm(BinOp::And, U3, U1, 1); // leaf flag
    f.bin_imm(BinOp::Shr, U1, U1, 1); // nkeys
    f.imm(U2, 0);
    f.jump(scan);

    f.select(scan);
    f.branch(Cond::Lt, U2, Operand::Reg(U1), scan_body, after);

    f.select(scan_body);
    f.bin(BinOp::Add, A2, U0, U2);
    f.load(A3, A2, 1, MemSpace::Shared); // key[i]
    f.branch(Cond::Ge, A1, Operand::Reg(A3), scan_inc, after);

    f.select(scan_inc);
    f.bin_imm(BinOp::Add, U2, U2, 1);
    f.jump(scan);

    f.select(after);
    f.branch(Cond::Eq, U3, Operand::Imm(1), leaf, internal);

    f.select(internal);
    f.bin(BinOp::Add, A2, U0, U2);
    f.load(U0, A2, 1 + fan as i32, MemSpace::Shared);
    f.jump(node_loop);

    f.select(leaf);
    f.bin_imm(BinOp::Sub, U2, U2, 1);
    f.bin(BinOp::Add, A2, U0, U2);
    f.load(A1, A2, 1 + fan as i32, MemSpace::Shared); // row offset
    f.branch(Cond::Lt, A1, Operand::Imm(0), bad, done);

    f.select(done);
    f.ret();

    f.select(bad);
    f.call(p.error);
    f.ret();
    f
}

/// Buffer-pool fix (level 3). `A1` = row offset.
fn gen_buf_fix(p: &Procs, sga: &SgaLayout) -> ProcBuilder {
    let page_shift = (ROWS_PER_PAGE * ACCT_STRIDE).trailing_zeros() as i64;
    let mask = (sga.buf_entries - 1) as i64;
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let probe_head = f.new_block();
    let probe_body = f.new_block();
    let probe_inc = f.new_block();
    let hit = f.new_block();
    let miss = f.new_block();

    f.select(entry);
    f.bin_imm(BinOp::Shr, U0, A1, page_shift); // page id
    f.bin_imm(BinOp::Mul, U1, U0, 2654435761);
    f.bin_imm(BinOp::And, U1, U1, mask); // hash slot
    f.imm(U2, 0);
    f.jump(probe_head);

    f.select(probe_head);
    f.branch(Cond::Lt, U2, Operand::Imm(4), probe_body, miss);

    f.select(probe_body);
    f.bin(BinOp::Add, A2, U1, U2);
    f.bin_imm(BinOp::And, A2, A2, mask);
    f.bin_imm(BinOp::Mul, A2, A2, BUF_STRIDE as i64);
    f.bin_imm(BinOp::Add, A2, A2, sga.buf_base as i64);
    f.load(A3, A2, 0, MemSpace::Shared);
    f.bin_imm(BinOp::Add, U3, U0, 1);
    f.branch(Cond::Eq, A3, Operand::Reg(U3), hit, probe_inc);

    f.select(probe_inc);
    f.bin_imm(BinOp::Add, U2, U2, 1);
    f.jump(probe_head);

    f.select(hit);
    f.load(A3, A2, 2, MemSpace::Shared);
    f.bin_imm(BinOp::Add, A3, A3, 1);
    f.store(A3, A2, 2, MemSpace::Shared);
    f.ret();

    f.select(miss);
    f.bin_imm(BinOp::Mul, A2, U1, BUF_STRIDE as i64);
    f.bin_imm(BinOp::Add, A2, A2, sga.buf_base as i64);
    f.bin_imm(BinOp::Add, U3, U0, 1);
    f.store(U3, A2, 0, MemSpace::Shared);
    f.imm(A3, 1);
    f.imm(A4, 0);
    f.atomic_rmw(
        BinOp::Add,
        A4,
        A4,
        words::BUF_MISSES as i32,
        A3,
        MemSpace::Shared,
    );
    f.mov(A1, U1);
    f.call(p.buf_evict);
    f.ret();
    f
}

/// Buffer eviction sweep (level 4). `A1` = starting hash slot.
fn gen_buf_evict(sga: &SgaLayout) -> ProcBuilder {
    let mask = (sga.buf_entries - 1) as i64;
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let head = f.new_block();
    let body = f.new_block();
    let out = f.new_block();
    f.select(entry);
    f.bin_imm(BinOp::And, V0, A1, mask);
    f.imm(V1, 0);
    f.jump(head);
    f.select(head);
    f.branch(Cond::Lt, V1, Operand::Imm(16), body, out);
    f.select(body);
    f.bin(BinOp::Add, V2, V0, V1);
    f.bin_imm(BinOp::And, V2, V2, mask);
    f.bin_imm(BinOp::Mul, V2, V2, BUF_STRIDE as i64);
    f.bin_imm(BinOp::Add, V2, V2, sga.buf_base as i64);
    f.load(A2, V2, 2, MemSpace::Shared);
    f.bin_imm(BinOp::Add, V1, V1, 1);
    f.jump(head);
    f.select(out);
    f.ret();
    f
}

/// Branch spin-lock acquire (level 3). `A1` = branch row offset.
fn gen_lock_acquire(p: &Procs) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let spin = f.new_block();
    let contended = f.new_block();
    let slow = f.new_block();
    let done = f.new_block();
    f.select(entry);
    f.imm(U0, 0);
    f.jump(spin);
    f.select(spin);
    f.imm(A2, 1);
    f.atomic_rmw(BinOp::Or, U1, A1, 1, A2, MemSpace::Shared);
    f.branch(Cond::Eq, U1, Operand::Imm(0), done, contended);
    f.select(contended);
    f.bin_imm(BinOp::Add, U0, U0, 1);
    f.branch(Cond::Gt, U0, Operand::Imm(64), slow, spin);
    f.select(slow);
    f.mov(U2, A1); // backoff clobbers A-regs
    f.call(p.backoff);
    f.mov(A1, U2);
    f.imm(U0, 0);
    f.jump(spin);
    f.select(done);
    f.ret();
    f
}

/// Branch spin-lock release (level 3). `A1` = branch row offset.
fn gen_lock_release() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.imm(A2, 0);
    f.store(A2, A1, 1, MemSpace::Shared);
    f.ret();
    f
}

/// Contention backoff (level 4).
fn gen_backoff() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.work(V0, 24);
    f.ret();
    f
}

/// Account update (level 3). `A1` = row, `A2` = delta, `A3` = serial.
fn gen_upd_account(p: &Procs) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.atomic_rmw(BinOp::Add, U0, A1, 0, A2, MemSpace::Shared);
    f.store(A3, A1, 2, MemSpace::Shared);
    f.mov(A1, U0);
    f.call(p.checksum);
    f.imm(U1, 0);
    f.store(A1, U1, (words::STATS_BASE + 12) as i32, MemSpace::Shared);
    f.ret();
    f
}

/// Teller/branch balance update (level 3). `A1` = row, `A2` = delta.
/// `extra_count_word` adds a non-atomic counter bump at the given row
/// offset (safe only under the branch lock).
fn gen_upd_simple(extra_count_word: i32) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.atomic_rmw(BinOp::Add, U0, A1, 0, A2, MemSpace::Shared);
    if extra_count_word > 0 {
        f.load(U1, A1, extra_count_word, MemSpace::Shared);
        f.bin_imm(BinOp::Add, U1, U1, 1);
        f.store(U1, A1, extra_count_word, MemSpace::Shared);
    }
    f.work(U2, 2);
    f.ret();
    f
}

/// Branch update: balance plus the per-branch transaction counter (held
/// under the branch lock).
fn gen_upd_branch() -> ProcBuilder {
    gen_upd_simple(2)
}

/// History append (level 3). `A1` = serial, `A2` = account, `A3` = delta,
/// `A4` = teller row.
fn gen_insert_hist(p: &Procs, sga: &SgaLayout) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let ok = f.new_block();
    let overflow = f.new_block();
    f.select(entry);
    f.imm(U0, 0).imm(U1, 1);
    f.atomic_rmw(
        BinOp::Add,
        U2,
        U0,
        words::HIST_NEXT as i32,
        U1,
        MemSpace::Shared,
    );
    f.branch(
        Cond::Lt,
        U2,
        Operand::Imm(sga.hist_capacity as i64),
        ok,
        overflow,
    );
    f.select(ok);
    f.bin_imm(BinOp::Mul, U3, U2, HIST_STRIDE as i64);
    f.bin_imm(BinOp::Add, U3, U3, sga.hist_base as i64);
    f.store(A1, U3, 0, MemSpace::Shared);
    f.store(A2, U3, 1, MemSpace::Shared);
    f.store(A4, U3, 2, MemSpace::Shared);
    f.store(A3, U3, 3, MemSpace::Shared);
    f.ret();
    f.select(overflow);
    f.call(p.error);
    f.ret();
    f
}

/// Private WAL append (level 3). `A1` = serial, `A2` = tag.
fn gen_log_append(p: &Procs) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let entry = f.entry();
    let mix = f.new_block();
    let done = f.new_block();
    f.select(entry);
    f.imm(U0, 0);
    f.load(U1, U0, priv_words::LOG_COUNT as i32, MemSpace::Private);
    f.bin_imm(BinOp::And, U2, U1, 7);
    f.bin_imm(BinOp::Mul, U2, U2, 6);
    f.bin_imm(BinOp::Add, U2, U2, priv_words::LOG_BUF as i64);
    f.store(A1, U2, 0, MemSpace::Private);
    f.store(A2, U2, 1, MemSpace::Private);
    f.bin(BinOp::Xor, U3, A1, A2);
    f.store(U3, U2, 2, MemSpace::Private);
    f.bin_imm(BinOp::Add, U1, U1, 1);
    f.store(U1, U0, priv_words::LOG_COUNT as i32, MemSpace::Private);
    // Occasionally mix in a checksum (every 16th record).
    f.bin_imm(BinOp::And, U3, U1, 15);
    f.branch(Cond::Eq, U3, Operand::Imm(0), mix, done);
    f.select(mix);
    f.mov(A1, U3);
    f.call(p.checksum);
    f.jump(done);
    f.select(done);
    f.ret();
    f
}

/// The RNG (level 4): a 64-bit LCG; returns 30 uniform bits in `A1`.
fn gen_rand() -> ProcBuilder {
    const RNG: Reg = Reg(5);
    let mut f = ProcBuilder::new();
    f.bin_imm(BinOp::Mul, RNG, RNG, 6364136223846793005);
    f.bin_imm(BinOp::Add, RNG, RNG, 1442695040888963407);
    f.bin_imm(BinOp::Shr, A1, RNG, 33);
    f.bin_imm(BinOp::And, A1, A1, 0x3FFF_FFFF);
    f.ret();
    f
}

/// Row checksum (level 4): mixes `A1` and returns 16 bits.
fn gen_checksum() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.mov(V0, A1);
    f.bin_imm(BinOp::Mul, V0, V0, 0x9E37_79B9);
    f.bin_imm(BinOp::Shr, V1, V0, 16);
    f.bin(BinOp::Xor, V0, V0, V1);
    f.work(V2, 4);
    f.bin_imm(BinOp::And, A1, V0, 0xFFFF);
    f.ret();
    f
}

/// Error path (level 4): bumps a statistics word. Reached only from cold
/// guards (never in practice) and the dispatch default arm.
fn gen_error() -> ProcBuilder {
    let mut f = ProcBuilder::new();
    f.imm(V0, 0);
    f.load(V1, V0, (words::STATS_BASE + 11) as i32, MemSpace::Shared);
    f.bin_imm(BinOp::Add, V1, V1, 1);
    f.store(V1, V0, (words::STATS_BASE + 11) as i32, MemSpace::Shared);
    f.work(V2, 8);
    f.ret();
    f
}

/// Never-executed application code (admin, recovery, DDL).
fn gen_dead(rng: &mut StdRng, blocks: usize, error: ProcId) -> ProcBuilder {
    let mut f = ProcBuilder::new();
    let n = blocks.max(2);
    let ids: Vec<LocalBlock> = std::iter::once(f.entry())
        .chain((1..n).map(|_| f.new_block()))
        .collect();
    for (i, &b) in ids.iter().enumerate() {
        f.select(b);
        f.work(X0, rng.gen_range(3..14));
        if rng.gen_bool(0.1) {
            f.call(error);
        }
        if i + 1 == n {
            f.ret();
        } else if rng.gen_bool(0.3) {
            let t = ids[rng.gen_range(i + 1..n)];
            f.branch(Cond::Gt, X0, Operand::Imm(0), t, ids[i + 1]);
        } else {
            f.jump(ids[i + 1]);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_builds_and_verifies() {
        let sc = Scenario::quick();
        let sga = SgaLayout::new(
            sc.branches,
            sc.tellers_per_branch,
            sc.accounts_per_branch,
            sc.processes(),
            (sc.profile_txns + sc.warmup_txns + sc.measure_txns) as usize,
        );
        let spec = gen_app(&sga, &sc);
        let stats = spec.program.stats();
        assert!(stats.procs > 50, "procs: {}", stats.procs);
        assert!(stats.body_instrs > 2_000, "instrs: {}", stats.body_instrs);
        // Deterministic generation.
        let spec2 = gen_app(&sga, &sc);
        assert_eq!(spec.program, spec2.program);
    }
}
