//! Workload scenarios: database scale, system shape, code-size knobs.

use serde::{Deserialize, Serialize};

/// Code-size knobs for the generated database engine. These control the
/// *shape* of the binary: how wide and flat the hot footprint is, how much
/// cold error-path code sits inline with hot code, and how much
/// never-executed code pads the image (the paper's Oracle binary is 27 MB
/// with a ~260 KB live footprint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeScale {
    /// Number of generated SQL statement variants; each transaction picks
    /// one uniformly, flattening the execution profile.
    pub stmt_variants: usize,
    /// Basic blocks per generated parser path.
    pub parse_blocks: usize,
    /// Basic blocks per generated executor path.
    pub exec_blocks: usize,
    /// Filler (straight-line) instructions per hot block: min..=max.
    pub work_min: usize,
    /// See [`CodeScale::work_min`].
    pub work_max: usize,
    /// Shared lexer/utility helper procedures.
    pub lex_helpers: usize,
    /// Probability that a hot block carries an inline cold error path.
    pub cold_guard_prob: f64,
    /// Never-executed procedures (admin, recovery, DDL, …).
    pub dead_procs: usize,
    /// Average blocks per dead procedure.
    pub dead_blocks: usize,
}

/// A complete experiment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed for code generation and per-process RNG seeds.
    pub seed: u64,
    /// TPC-B branches (the paper uses 40).
    pub branches: usize,
    /// Tellers per branch (TPC-B: 10).
    pub tellers_per_branch: usize,
    /// Accounts per branch (TPC-B: 100 000; scaled down here, see
    /// DESIGN.md substitutions).
    pub accounts_per_branch: usize,
    /// Simulated CPUs.
    pub num_cpus: usize,
    /// Server processes per CPU (the paper uses 8).
    pub processes_per_cpu: usize,
    /// Scheduling quantum in instructions.
    pub quantum: u64,
    /// Transactions executed by the profiling run (paper: 2000).
    pub profile_txns: u64,
    /// Warm-up transactions before measurement starts.
    pub warmup_txns: u64,
    /// Measured transactions (paper: 500 under simulation).
    pub measure_txns: u64,
    /// Blocking latency of a log write, in instructions.
    pub log_write_latency: u64,
    /// Code-size knobs.
    pub scale: CodeScale,
}

impl Scenario {
    /// Tiny scenario for unit/integration tests: small database, two
    /// processes, a few hundred transactions, small generated binary.
    pub fn quick() -> Self {
        Scenario {
            seed: 0xC0DE_1A70,
            branches: 4,
            tellers_per_branch: 2,
            accounts_per_branch: 250,
            num_cpus: 1,
            processes_per_cpu: 2,
            quantum: 5_000,
            profile_txns: 60,
            warmup_txns: 10,
            measure_txns: 60,
            log_write_latency: 400,
            scale: CodeScale {
                stmt_variants: 6,
                parse_blocks: 8,
                exec_blocks: 10,
                work_min: 3,
                work_max: 8,
                lex_helpers: 6,
                cold_guard_prob: 0.25,
                dead_procs: 40,
                dead_blocks: 8,
            },
        }
    }

    /// The paper's simulated system: 4 CPUs × 8 server processes, a 40
    /// branch database, 500 measured transactions, and a generated binary
    /// with a large flat hot footprint (~200–300 KB live).
    pub fn paper_sim() -> Self {
        Scenario {
            seed: 0x01A7_0B42,
            branches: 40,
            tellers_per_branch: 10,
            accounts_per_branch: 2_500,
            num_cpus: 4,
            processes_per_cpu: 8,
            quantum: 20_000,
            profile_txns: 2_000,
            warmup_txns: 400,
            measure_txns: 2_000,
            log_write_latency: 2_000,
            scale: CodeScale {
                stmt_variants: 40,
                parse_blocks: 38,
                exec_blocks: 60,
                work_min: 4,
                work_max: 12,
                lex_helpers: 24,
                cold_guard_prob: 0.30,
                dead_procs: 1_200,
                dead_blocks: 14,
            },
        }
    }

    /// Single-processor variant used for the hardware-style execution-time
    /// comparison (paper Figure 15 reports 1-processor runs).
    pub fn paper_hw() -> Self {
        Scenario {
            num_cpus: 1,
            processes_per_cpu: 8,
            ..Self::paper_sim()
        }
    }

    /// Total server processes.
    pub fn processes(&self) -> usize {
        self.num_cpus * self.processes_per_cpu
    }

    /// Total accounts.
    pub fn accounts(&self) -> usize {
        self.branches * self.accounts_per_branch
    }

    /// Total tellers.
    pub fn tellers(&self) -> usize {
        self.branches * self.tellers_per_branch
    }
}

/// One phase of a drifting transaction mix: `epochs` serving-loop epochs
/// executed with the statement-variant Zipf head rotated by `rotation`
/// (see `SgaLayout::fill_variant_table_rotated`). A schedule is a list
/// of phases; the rotation changing between phases is the drift event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixPhase {
    /// Number of serving-loop epochs this phase lasts.
    pub epochs: u64,
    /// Zipf-head rotation applied to the variant table.
    pub rotation: usize,
}

impl MixPhase {
    /// A phase of `epochs` epochs at variant rotation `rotation`.
    pub fn new(epochs: u64, rotation: usize) -> Self {
        MixPhase { epochs, rotation }
    }
}

/// The bundled phase-shift schedule for a scenario: a stable prefix on
/// the natural mix (rotation 0), then an abrupt shift that moves the hot
/// Zipf head halfway around the variant set for the remainder. Three
/// stable epochs give the loop time to converge before the shift; five
/// drifted epochs give it room to detect the drift, re-layout, and show
/// the recovery.
pub fn drift_schedule(scenario: &Scenario) -> Vec<MixPhase> {
    let half = (scenario.scale.stmt_variants / 2).max(1);
    vec![MixPhase::new(3, 0), MixPhase::new(5, half)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let q = Scenario::quick();
        assert!(q.processes() >= 2);
        assert_eq!(q.accounts(), 1000);
        let p = Scenario::paper_sim();
        assert_eq!(p.branches, 40);
        assert_eq!(p.processes(), 32);
        assert_eq!(p.tellers(), 400);
        let h = Scenario::paper_hw();
        assert_eq!(h.num_cpus, 1);
        assert_eq!(h.scale, p.scale);
    }

    #[test]
    fn drift_schedule_shifts_the_head() {
        let q = Scenario::quick();
        let phases = drift_schedule(&q);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].rotation, 0);
        assert_eq!(phases[1].rotation, 3); // 6 variants / 2
        assert!(phases.iter().all(|p| p.epochs > 0));
    }
}
