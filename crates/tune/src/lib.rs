//! Search-based layout autotuning: perturb the layout-construction
//! parameters ([`codelayout_core::ParamSpace`]) and keep whatever the
//! cache says is better.
//!
//! The paper's passes — and the two modern successors — all carry
//! magic constants (split thresholds, ext-TSP distance windows,
//! Codestitcher level budgets) inherited from their original papers'
//! SPEC-style workloads. This crate asks whether those constants are
//! right for *this* workload by direct search:
//!
//! 1. **Record once.** Run the measured transaction window on the
//!    baseline image and keep the first [`TuneConfig::window`] user-mode
//!    fetches as `(block, offset, cpu, pid)` tuples — a layout-independent
//!    representation of the control-flow the workload executed.
//! 2. **Remap + replay per candidate.** For each candidate parameter
//!    point, build the layout ([`codelayout_core::LayoutPipeline`]),
//!    link it, and run [`codelayout_analysis::validate_translation`]
//!    **unconditionally** (an invalid candidate scores `u64::MAX` and can
//!    never win). Then translate every recorded tuple into the candidate
//!    image's addresses and replay the window through the parallel cache
//!    sweep ([`codelayout_memsim::ParallelSweep`]); the fitness is the
//!    summed miss count over the evaluation grid.
//! 3. **Search.** Per series family: evaluate the defaults first (the
//!    fixed series everyone ships), greedy coordinate descent from
//!    there, then seeded random restarts, under a per-family candidate
//!    budget. The RNG is `CODELAYOUT_SEED`-derived
//!    ([`rand::rngs::StdRng`], one stream per family), duplicate points
//!    hit a cache instead of consuming budget, and every fresh
//!    evaluation is streamed as a `tune/candidate` tracer event.
//!
//! The remap clamps an offset that exceeds the candidate block's length
//! (layouts erase or materialize unconditional jumps, so per-block
//! instruction counts differ by the terminator); jump instructions a
//! candidate adds are not replayed. The approximation is exact for
//! every block body and off by at most the terminator fetch, uniformly
//! across candidates.
//!
//! Everything in [`TuneReport::deterministic_json`] is bit-identical
//! across sweep engines and thread counts, and contains no wall-clock.
//! A wall budget ([`TuneConfig::budget_ms`]) that actually fires cuts
//! the search at a time-dependent point — the default (0, unlimited)
//! keeps the whole trajectory reproducible from the seed, and a
//! triggered cut is recorded as `budget_hit`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use codelayout_core::{LayoutParams, LayoutSeries, OptimizationSet, ParamPoint, ParamSpace};
use codelayout_ir::link::link;
use codelayout_ir::Image;
use codelayout_memsim::{ParallelSweep, StreamFilter, SweepSpec};
use codelayout_obs::{run_env, SweepEngine};
use codelayout_oltp::{Scenario, Study};
use codelayout_vm::{FetchRecord, TraceBuffer, TraceSink, APP_TEXT_BASE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Cache sizes (KB) of the fitness-oracle grid. Deliberately extends
/// the paper's 32–512 KB sweep *downward*: layout quality shows up as
/// conflict and capacity misses, and a workload whose hot footprint
/// fits the smallest paper cache (the CI `quick` scenario does) would
/// otherwise present every candidate with identical compulsory-miss
/// counts and give the search no gradient at all.
pub const TUNE_SIZES_KB: [u64; 6] = [4, 8, 16, 32, 64, 128];
/// Line size (bytes) of the fitness-oracle cache grid: the paper's
/// 128-byte user sweep, the same geometry the comparison table reports.
pub const EVAL_LINE_B: u32 = 128;
/// Associativity of the fitness-oracle cache grid.
pub const EVAL_WAYS: u32 = 4;
/// Consecutive fruitless random restarts before a family's search stops
/// early (every draw landed on an already-evaluated point — the space is
/// effectively exhausted).
const STALE_RESTART_LIMIT: u32 = 20;

/// Configuration of one autotuning run.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Master seed; each family searches under `seed ^ fnv1a(label)`.
    pub seed: u64,
    /// Fresh candidate evaluations allowed per series family (cache hits
    /// are free).
    pub candidates: u64,
    /// Maximum user-mode fetch events kept from the recording run.
    pub window: u64,
    /// Wall-clock budget in milliseconds; 0 = unlimited (the
    /// deterministic default — see the module docs on `budget_hit`).
    pub budget_ms: u64,
    /// The series families to tune, searched in order.
    pub series: Vec<LayoutSeries>,
    /// Cache-replay engine for the fitness oracle.
    pub sweep_engine: SweepEngine,
    /// Worker threads for the cache replay.
    pub sweep_threads: usize,
}

impl TuneConfig {
    /// Defaults for a scenario: the scenario's seed, 48 candidates per
    /// family, a one-million-event window, no wall budget, and the four
    /// tunable comparison families (`all`, `hotcold`, `exttsp`,
    /// `stitcher` — `base` has no knobs).
    pub fn for_scenario(scenario: &Scenario) -> Self {
        TuneConfig {
            seed: scenario.seed,
            candidates: 48,
            window: 1_000_000,
            budget_ms: 0,
            series: vec![
                LayoutSeries::Paper(OptimizationSet::ALL),
                LayoutSeries::HotCold,
                LayoutSeries::ExtTsp,
                LayoutSeries::Stitcher,
            ],
            sweep_engine: SweepEngine::default(),
            sweep_threads: 1,
        }
    }

    /// [`TuneConfig::for_scenario`] with the `CODELAYOUT_SEED`,
    /// `CODELAYOUT_TUNE_{BUDGET,CANDIDATES,WINDOW}`,
    /// `CODELAYOUT_SWEEP_ENGINE` and `CODELAYOUT_THREADS` environment
    /// knobs applied.
    pub fn from_env(scenario: &Scenario) -> Self {
        let env = run_env();
        let mut cfg = Self::for_scenario(scenario);
        if let Some(s) = env.seed {
            cfg.seed = s;
        }
        if let Some(b) = env.tune_budget_ms {
            cfg.budget_ms = b;
        }
        if let Some(c) = env.tune_candidates {
            cfg.candidates = c;
        }
        if let Some(w) = env.tune_window {
            cfg.window = w;
        }
        cfg.sweep_engine = env.sweep_engine;
        cfg.sweep_threads = env.sweep_threads();
        cfg
    }

    /// Configuration echo for manifests and figure JSON. Deterministic:
    /// engine and thread count are deliberately omitted (the report is
    /// byte-diffed across both).
    pub fn to_json(&self) -> Value {
        json!({
            "seed": self.seed,
            "candidates": self.candidates,
            "window": self.window,
            "budget_ms": self.budget_ms,
            "series": self.series.iter().map(|s| s.label()).collect::<Vec<_>>(),
        })
    }
}

/// Why a candidate was evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOrigin {
    /// The family's default point (the shipped fixed series).
    Default,
    /// A ±1 neighbor probed by greedy coordinate descent.
    Descent,
    /// A seeded random restart point.
    Restart,
}

impl CandidateOrigin {
    /// Stable lowercase label for JSON.
    pub fn label(self) -> &'static str {
        match self {
            CandidateOrigin::Default => "default",
            CandidateOrigin::Descent => "descent",
            CandidateOrigin::Restart => "restart",
        }
    }
}

/// One fresh candidate evaluation, in search order.
#[derive(Debug, Clone)]
pub struct CandidateRecord {
    /// Global evaluation index across all families, starting at 0.
    pub candidate: u64,
    /// The series family the candidate belongs to.
    pub series: LayoutSeries,
    /// The evaluated point.
    pub point: ParamPoint,
    /// Window miss count (`u64::MAX` for a rejected candidate).
    pub score: u64,
    /// True when the candidate became its family's best so far.
    pub accepted: bool,
    /// True when the linked image passed translation validation.
    pub validated: bool,
    /// How the search arrived at this point.
    pub origin: CandidateOrigin,
}

/// The outcome of one family's search.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// The tuned series.
    pub series: LayoutSeries,
    /// Best point found.
    pub best_point: ParamPoint,
    /// Best point, materialized.
    pub best_params: LayoutParams,
    /// Window miss count of the best point.
    pub best_score: u64,
    /// Per-cell window misses of the best point (size-major over the
    /// evaluation grid).
    pub best_cells: Vec<u64>,
    /// Window miss count of the default point (the fixed series).
    pub default_score: u64,
    /// Fresh evaluations spent.
    pub evaluated: u64,
    /// Duplicate points served from the cache.
    pub cache_hits: u64,
    /// Candidates rejected by translation validation.
    pub rejected: u64,
}

/// One fixed comparison series evaluated through the same window
/// oracle the search uses (same remap, same grid): the yardstick the
/// tuned layouts must beat.
#[derive(Debug, Clone)]
pub struct FixedResult {
    /// The fixed series.
    pub series: LayoutSeries,
    /// Window miss count under default parameters.
    pub score: u64,
    /// Per-cell window misses (size-major over [`TUNE_SIZES_KB`]).
    pub cells: Vec<u64>,
}

/// The full autotuning outcome.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The configuration searched under.
    pub config: TuneConfig,
    /// User-mode fetch events in the replay window.
    pub window_events: u64,
    /// Window miss count of the baseline (natural-layout) image.
    pub base_score: u64,
    /// Per-cell window misses of the baseline image.
    pub base_cells: Vec<u64>,
    /// Every fixed comparison series scored by the same oracle, in
    /// [`LayoutSeries::comparison`] order.
    pub fixed: Vec<FixedResult>,
    /// Per-family results, in [`TuneConfig::series`] order.
    pub families: Vec<FamilyResult>,
    /// Every fresh evaluation, in search order.
    pub trajectory: Vec<CandidateRecord>,
    /// True when the wall budget truncated the search (the trajectory is
    /// then wall-clock-dependent and not reproducible from the seed).
    pub budget_hit: bool,
    /// Wall time of the whole tune. **Not** part of
    /// [`TuneReport::deterministic_json`].
    pub wall_ms: u64,
}

/// Dotted-name → value object of the knobs a family's space controls,
/// in coordinate order.
pub fn params_json(space: &ParamSpace, params: &LayoutParams) -> Value {
    let mut map = serde_json::Map::new();
    for k in space.knobs() {
        map.insert(k.name().to_string(), Value::from(k.get(params)));
    }
    Value::from(map)
}

impl TuneReport {
    /// The family whose best point has the lowest window miss count
    /// (ties break toward the earlier family — deterministic).
    pub fn winner(&self) -> Option<&FamilyResult> {
        self.families.iter().min_by_key(|f| f.best_score)
    }

    /// The report as JSON, bit-identical across sweep engines and thread
    /// counts, with no wall-clock anywhere (the figure-grid CI byte-diffs
    /// this across engines).
    pub fn deterministic_json(&self) -> Value {
        json!({
            "config": self.config.to_json(),
            "sizes_kb": &TUNE_SIZES_KB[..],
            "window_events": self.window_events,
            "base": { "score": self.base_score, "cells": &self.base_cells },
            "fixed": self.fixed.iter().map(|f| json!({
                "series": f.series.label(),
                "score": f.score,
                "cells": &f.cells,
            })).collect::<Vec<_>>(),
            "families": self.families.iter().map(|f| {
                let space = ParamSpace::for_series(f.series);
                json!({
                    "series": f.series.label(),
                    "best_point": f.best_point.indices(),
                    "best_params": params_json(&space, &f.best_params),
                    "best_score": f.best_score,
                    "best_cells": &f.best_cells,
                    "default_score": f.default_score,
                    "evaluated": f.evaluated,
                    "cache_hits": f.cache_hits,
                    "rejected": f.rejected,
                })
            }).collect::<Vec<_>>(),
            "trajectory": self.trajectory.iter().map(|c| json!({
                "candidate": c.candidate,
                "series": c.series.label(),
                "point": c.point.indices(),
                "score": c.score,
                "accepted": c.accepted,
                "validated": c.validated,
                "origin": c.origin.label(),
            })).collect::<Vec<_>>(),
            "budget_hit": self.budget_hit,
        })
    }
}

/// One recorded user-mode fetch, in layout-independent coordinates.
#[derive(Debug, Clone, Copy)]
struct WindowEvent {
    /// Block index in the program.
    block: u32,
    /// Instruction offset from the block's start in the recording image.
    off: u32,
    cpu: u8,
    pid: u8,
}

/// A [`TraceSink`] keeping the first `cap` user-mode fetches as
/// [`WindowEvent`]s, resolved against the recording image.
struct WindowSink<'a> {
    image: &'a Image,
    cap: usize,
    events: Vec<WindowEvent>,
}

impl TraceSink for WindowSink<'_> {
    fn fetch(&mut self, rec: FetchRecord) {
        if rec.kernel || self.events.len() >= self.cap {
            return;
        }
        let Some(idx) = self.image.index_of(rec.addr) else {
            return;
        };
        let b = self.image.block_of[idx as usize];
        self.events.push(WindowEvent {
            block: b.index() as u32,
            off: idx - self.image.block_start[b.index()],
            cpu: rec.cpu,
            pid: rec.pid,
        });
    }
}

/// Per-block instruction counts of an image (lengths differ across
/// layouts: erased fall-through jumps and materialized branches live in
/// the terminator).
fn block_lengths(image: &Image, nblocks: usize) -> Vec<u32> {
    let mut len = vec![0u32; nblocks];
    for &b in &image.block_of {
        len[b.index()] += 1;
    }
    len
}

/// FNV-1a of a label, for per-family RNG stream separation.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Oracle<'a> {
    study: &'a Study,
    sweeper: ParallelSweep,
    spec: SweepSpec,
    window: Vec<WindowEvent>,
    nblocks: usize,
    start: std::time::Instant,
    budget_ms: u64,
    budget_hit: bool,
    candidate_no: u64,
    trajectory: Vec<CandidateRecord>,
}

impl Oracle<'_> {
    /// Replays the window remapped onto `image`; returns (total misses,
    /// per-cell misses).
    fn replay(&self, image: &Image) -> (u64, Vec<u64>) {
        let len = block_lengths(image, self.nblocks);
        let last = image.len() as u32 - 1;
        let mut buf = TraceBuffer::fetch_only();
        buf.reserve(self.window.len());
        for ev in &self.window {
            let b = ev.block as usize;
            let off = ev.off.min(len[b].saturating_sub(1));
            let idx = (image.block_start[b] + off).min(last);
            buf.fetch(FetchRecord {
                addr: image.addr(idx),
                cpu: ev.cpu,
                pid: ev.pid,
                kernel: false,
            });
        }
        let frozen = buf.freeze();
        let cells = self.sweeper.run_one(&frozen, &self.spec);
        let per_cell: Vec<u64> = cells.iter().map(|c| c.stats.misses).collect();
        (per_cell.iter().sum(), per_cell)
    }

    /// True when the wall budget is exhausted (records `budget_hit`).
    fn wall_exhausted(&mut self) -> bool {
        if self.budget_ms > 0 && self.start.elapsed().as_millis() as u64 >= self.budget_ms {
            self.budget_hit = true;
        }
        self.budget_hit
    }
}

struct FamilySearch {
    series: LayoutSeries,
    space: ParamSpace,
    budget: u64,
    cache: BTreeMap<ParamPoint, u64>,
    evaluated: u64,
    cache_hits: u64,
    rejected: u64,
    best: Option<(ParamPoint, u64, Vec<u64>)>,
    default_score: u64,
}

impl FamilySearch {
    /// Evaluates one point: cache hit is free, a fresh evaluation spends
    /// budget, builds + links + validates + replays, and appends to the
    /// trajectory. Returns `None` when out of budget (candidate or wall).
    fn eval(
        &mut self,
        oracle: &mut Oracle<'_>,
        point: &ParamPoint,
        origin: CandidateOrigin,
    ) -> Option<u64> {
        if let Some(&score) = self.cache.get(point) {
            self.cache_hits += 1;
            return Some(score);
        }
        if self.evaluated >= self.budget || oracle.wall_exhausted() {
            return None;
        }
        let params = self.space.params(point);
        let layout = oracle.study.layout_series_params(self.series, &params);
        // Validation is unconditional for every candidate — a layout the
        // validator rejects can never win, whatever the cache says.
        let (score, cells, validated) =
            match link(&oracle.study.app.program, &layout, APP_TEXT_BASE) {
                Ok(image) => match codelayout_analysis::validate_translation(
                    &oracle.study.app.program,
                    &layout,
                    &image,
                ) {
                    Ok(_) => {
                        let (score, cells) = oracle.replay(&image);
                        (score, cells, true)
                    }
                    Err(_) => (u64::MAX, Vec::new(), false),
                },
                Err(_) => (u64::MAX, Vec::new(), false),
            };
        self.evaluated += 1;
        if !validated {
            self.rejected += 1;
        }
        let accepted = validated && self.best.as_ref().is_none_or(|(_, s, _)| score < *s);
        if accepted {
            self.best = Some((point.clone(), score, cells));
        }
        let rec = CandidateRecord {
            candidate: oracle.candidate_no,
            series: self.series,
            point: point.clone(),
            score,
            accepted,
            validated,
            origin,
        };
        codelayout_obs::tracer().event(
            "tune/candidate",
            json!({
                "candidate": rec.candidate,
                "series": rec.series.label(),
                "point": rec.point.indices(),
                "params": params_json(&self.space, &params),
                "score": if validated { json!(score) } else { json!(null) },
                "accepted": rec.accepted,
                "validated": rec.validated,
                "origin": rec.origin.label(),
            }),
        );
        let m = codelayout_obs::metrics();
        m.add("tune.candidates", 1);
        if !validated {
            m.add("tune.rejected", 1);
        }
        oracle.candidate_no += 1;
        oracle.trajectory.push(rec);
        self.cache.insert(point.clone(), score);
        Some(score)
    }

    /// Greedy coordinate descent from `start`: probe each knob's ±1
    /// neighbors in order, move on strict improvement, repeat until a
    /// full pass makes no move (or the budget runs out).
    fn descend(&mut self, oracle: &mut Oracle<'_>, start: ParamPoint) {
        let Some(mut cur_score) = self.eval(oracle, &start, CandidateOrigin::Restart) else {
            return;
        };
        let mut cur = start;
        loop {
            let mut improved = false;
            for knob in 0..self.space.len() {
                for delta in [-1i64, 1] {
                    let Some(next) = cur.step(&self.space, knob, delta) else {
                        continue;
                    };
                    let Some(s) = self.eval(oracle, &next, CandidateOrigin::Descent) else {
                        return;
                    };
                    if s < cur_score {
                        cur = next;
                        cur_score = s;
                        improved = true;
                    }
                }
            }
            if !improved {
                return;
            }
        }
    }

    /// The full family search: default point, descent, random restarts.
    fn run(&mut self, oracle: &mut Oracle<'_>, seed: u64) {
        let default = self.space.default_point();
        if self
            .eval(oracle, &default, CandidateOrigin::Default)
            .is_none()
        {
            return;
        }
        self.default_score = self.cache[&default];
        self.descend(oracle, default);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stale = 0u32;
        while self.evaluated < self.budget
            && !oracle.wall_exhausted()
            && stale < STALE_RESTART_LIMIT
        {
            let idx: Vec<u32> = self
                .space
                .knobs()
                .iter()
                .map(|k| rng.gen_range(0..k.values().len()) as u32)
                .collect();
            let before = self.evaluated;
            self.descend(oracle, ParamPoint::new(&self.space, idx));
            if self.evaluated == before {
                stale += 1;
            } else {
                stale = 0;
            }
        }
    }
}

/// Runs the autotuner over a built study.
///
/// Records the replay window from a measured run on the baseline image,
/// then searches each family in [`TuneConfig::series`] (families with no
/// knobs, like `base`, are skipped).
///
/// # Panics
/// Panics if the recording run produced no user-mode fetches.
pub fn run_tune(study: &Study, cfg: &TuneConfig) -> TuneReport {
    let _span = codelayout_obs::span("tune");
    let start = std::time::Instant::now();

    let record_span = codelayout_obs::span("tune_record");
    let mut sink = WindowSink {
        image: &study.base_image,
        cap: cfg.window as usize,
        events: Vec::new(),
    };
    study.run_measured(&study.base_image, &study.base_kernel_image, &mut sink);
    record_span.finish();
    assert!(
        !sink.events.is_empty(),
        "recording run produced no user-mode fetches"
    );

    let mut oracle = Oracle {
        study,
        sweeper: ParallelSweep::new(cfg.sweep_threads).with_engine(cfg.sweep_engine),
        spec: SweepSpec::grid()
            .sizes_kb(&TUNE_SIZES_KB)
            .line_b(EVAL_LINE_B)
            .ways(EVAL_WAYS)
            .cpus(study.scenario.num_cpus)
            .filter(StreamFilter::UserOnly),
        window: sink.events,
        nblocks: study.app.program.blocks.len(),
        start,
        budget_ms: cfg.budget_ms,
        budget_hit: false,
        candidate_no: 0,
        trajectory: Vec::new(),
    };
    let window_events = oracle.window.len() as u64;
    let (base_score, base_cells) = oracle.replay(&study.base_image);

    // Score every fixed comparison series through the same oracle: the
    // yardstick the tuned layouts must beat, on the same window and
    // grid, so the comparison is apples-to-apples and deterministic.
    let fixed_span = codelayout_obs::span("tune_fixed");
    let mut fixed = Vec::new();
    for series in LayoutSeries::comparison() {
        let space = ParamSpace::for_series(series);
        let params = space.params(&space.default_point());
        let layout = study.layout_series_params(series, &params);
        let image = link(&study.app.program, &layout, APP_TEXT_BASE)
            .expect("fixed comparison series layouts are valid permutations");
        codelayout_analysis::validate_translation(&study.app.program, &layout, &image)
            .unwrap_or_else(|e| {
                panic!("fixed `{series}` image failed translation validation: {e}")
            });
        let (score, cells) = oracle.replay(&image);
        fixed.push(FixedResult {
            series,
            score,
            cells,
        });
    }
    fixed_span.finish();

    let search_span = codelayout_obs::span("tune_search");
    let mut families = Vec::new();
    for &series in &cfg.series {
        let space = ParamSpace::for_series(series);
        if space.is_empty() {
            continue;
        }
        let mut fam = FamilySearch {
            series,
            space,
            budget: cfg.candidates,
            cache: BTreeMap::new(),
            evaluated: 0,
            cache_hits: 0,
            rejected: 0,
            best: None,
            default_score: u64::MAX,
        };
        fam.run(&mut oracle, cfg.seed ^ fnv1a(series.label()));
        let Some((best_point, best_score, best_cells)) = fam.best.clone() else {
            // Budget ran out before even the default evaluated.
            break;
        };
        codelayout_obs::metrics().add("tune.families", 1);
        families.push(FamilyResult {
            series,
            best_params: fam.space.params(&best_point),
            best_point,
            best_score,
            best_cells,
            default_score: fam.default_score,
            evaluated: fam.evaluated,
            cache_hits: fam.cache_hits,
            rejected: fam.rejected,
        });
    }
    search_span.finish();

    TuneReport {
        config: cfg.clone(),
        window_events,
        base_score,
        base_cells,
        fixed,
        families,
        trajectory: oracle.trajectory,
        budget_hit: oracle.budget_hit,
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_labels_are_stable() {
        assert_eq!(CandidateOrigin::Default.label(), "default");
        assert_eq!(CandidateOrigin::Descent.label(), "descent");
        assert_eq!(CandidateOrigin::Restart.label(), "restart");
    }

    #[test]
    fn fnv_separates_family_streams() {
        let labels = ["all", "hotcold", "exttsp", "stitcher"];
        for a in labels {
            for b in labels {
                assert_eq!(a == b, fnv1a(a) == fnv1a(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn config_json_has_no_engine_or_wall_fields() {
        let cfg = TuneConfig::for_scenario(&Scenario::quick());
        let v = cfg.to_json();
        let obj = v.as_object().expect("config echo is an object");
        assert!(obj.contains_key("seed"));
        assert!(!obj.contains_key("sweep_engine"));
        assert!(!obj.contains_key("sweep_threads"));
    }
}
