//! Property tests for the parameterized layout surface: **every** point
//! the search could possibly draw from a family's [`ParamSpace`] must
//! produce a layout that verifies as a permutation, links, and passes
//! full translation validation — so the autotuner can never build an
//! image that silently breaks the program, whatever the knobs say.

use codelayout_core::{LayoutPipeline, LayoutSeries, ParamPoint, ParamSpace};
use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::verify_layout;
use codelayout_profile::Profile;
use codelayout_vm::APP_TEXT_BASE;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random (not necessarily flow-consistent) profile.
fn random_profile(program: &codelayout_ir::Program, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Profile::new(program.blocks.len());
    for c in &mut p.block_counts {
        *c = rng.gen_range(0..1000);
    }
    for (bi, b) in program.blocks.iter().enumerate() {
        for s in b.term.successors() {
            p.edge_counts
                .insert((bi as u32, s.0), rng.gen_range(0..500));
        }
    }
    p
}

/// A uniformly random point of `space`, from a seeded stream.
fn random_point(space: &ParamSpace, rng: &mut StdRng) -> ParamPoint {
    let idx: Vec<u32> = space
        .knobs()
        .iter()
        .map(|k| rng.gen_range(0..k.values().len()) as u32)
        .collect();
    ParamPoint::new(space, idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any parameter point of any tunable family yields a verified,
    /// linkable, translation-valid layout on arbitrary programs and
    /// profiles.
    #[test]
    fn every_param_point_yields_a_valid_layout(
        seed in 0u64..10_000,
        pseed in 0u64..1_000,
        kseed in 0u64..1_000,
    ) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        let mut rng = StdRng::seed_from_u64(kseed);
        for series in LayoutSeries::all() {
            let space = ParamSpace::for_series(series);
            if space.is_empty() {
                continue;
            }
            let point = random_point(&space, &mut rng);
            let params = space.params(&point);
            let layout =
                LayoutPipeline::with_params(&program, &profile, params).build_series(series);
            verify_layout(&program, &layout)
                .unwrap_or_else(|e| panic!("{seed}/{pseed}/{kseed} {series} {point:?}: {e}"));
            let image = link(&program, &layout, APP_TEXT_BASE)
                .unwrap_or_else(|e| panic!("{seed}/{pseed}/{kseed} {series} {point:?}: {e}"));
            codelayout_analysis::validate_translation(&program, &layout, &image)
                .unwrap_or_else(|e| panic!("{seed}/{pseed}/{kseed} {series} {point:?}: {e}"));
        }
    }

    /// The default point of every family reproduces the unparameterized
    /// pipeline's layout byte for byte — the api_redesign contract that
    /// pins all shipped series to their pre-refactor output.
    #[test]
    fn default_point_matches_legacy_pipeline(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        let legacy = LayoutPipeline::new(&program, &profile);
        for series in LayoutSeries::all() {
            let space = ParamSpace::for_series(series);
            let params = space.params(&space.default_point());
            let tuned =
                LayoutPipeline::with_params(&program, &profile, params).build_series(series);
            prop_assert_eq!(
                &legacy.build_series(series),
                &tuned,
                "{} default params drifted from the legacy constants",
                series
            );
        }
    }
}
