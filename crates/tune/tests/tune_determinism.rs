//! End-to-end determinism of the autotuner: the search trajectory and
//! report must be bit-identical across cache-replay engines and worker
//! thread counts, and every accepted candidate must have passed
//! translation validation.

use codelayout_obs::SweepEngine;
use codelayout_oltp::{build_study, Scenario};
use codelayout_tune::{run_tune, TuneConfig, TUNE_SIZES_KB};

/// Budget small enough to keep the double run fast, big enough to get
/// past the default point and into descent in every family.
const CANDIDATES: u64 = 12;

#[test]
fn tune_is_deterministic_across_engines_and_threads() {
    let study = build_study(&Scenario::quick());

    let mut cfg = TuneConfig::for_scenario(&study.scenario);
    cfg.candidates = CANDIDATES;
    cfg.sweep_engine = SweepEngine::Stack;
    cfg.sweep_threads = 1;
    let a = run_tune(&study, &cfg);

    cfg.sweep_engine = SweepEngine::Direct;
    cfg.sweep_threads = 7;
    let b = run_tune(&study, &cfg);

    let ja = serde_json::to_string_pretty(&a.deterministic_json()).unwrap();
    let jb = serde_json::to_string_pretty(&b.deterministic_json()).unwrap();
    assert_eq!(
        ja, jb,
        "tune report differs between stack/1-thread and direct/7-thread runs"
    );

    // The deterministic report must not leak engine, thread, or wall
    // fields (run_all byte-diffs it across engines).
    for leak in ["sweep_engine", "sweep_threads", "wall_ms", "secs"] {
        assert!(!ja.contains(leak), "deterministic report leaks `{leak}`");
    }

    // Structural guarantees the figure asserts on, checked here without
    // a full harness: accepted candidates validated, per-family best no
    // worse than the shipped default, fixed yardsticks present.
    assert!(!a.trajectory.is_empty());
    assert!(a.trajectory.iter().all(|c| c.validated || !c.accepted));
    for f in &a.families {
        assert!(
            f.best_score <= f.default_score,
            "{}: best {} worse than default {}",
            f.series.label(),
            f.best_score,
            f.default_score
        );
        assert_eq!(f.best_cells.len(), TUNE_SIZES_KB.len());
    }
    assert_eq!(a.fixed.len(), 5, "one yardstick per comparison series");
    assert!(a.winner().is_some());
    assert!(!a.budget_hit, "no wall budget was set");
}
