//! Machine-readable run manifests.
//!
//! Every harness binary finishes by writing
//! `results/<scenario>/manifest.json`: which tool ran, against which
//! config and git revision, where the wall time went (the tracer's
//! phase tree, with a coverage figure proving the phases account for
//! the run), a full metrics snapshot, and an FNV-1a digest of every
//! output file it produced. A later run — or CI — can diff two
//! manifests and see at a glance whether a figure drifted, a phase got
//! slower, or a lint count regressed.
//!
//! The schema is deliberately stable and self-describing:
//!
//! ```text
//! {
//!   "tool": "run_all",            // binary that wrote the manifest
//!   "schema_version": 2,
//!   "scenario": "quick",
//!   "git": "4668bbd",             // git describe --always --dirty
//!   "created_unix_ms": 1754380800000,
//!   "config": { ... },            // scenario parameters
//!   "host": { "parallelism": 8, "threads_env": null },
//!   "total_wall_ns": 2134000000,  // the root phase's wall time
//!   "phase_coverage_pct": 99.2,   // children / root, must stay ≥ 95
//!   "phases": [ {"name","wall_ns","pct","count","children"} ... ],
//!   "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} },
//!   "outputs": { "fig04.json": "fnv1a64:..." },
//!   "lint": { ... },              // optional, merged by layout_lint
//!   "serve": { ... }              // optional, the serving loop's epoch
//!                                 // records (see `codelayout-serve`)
//! }
//! ```
//!
//! Volatile fields (times, git, digests, metric values) are masked by
//! [`mask_volatile`] so the golden schema test pins structure and
//! names without pinning wall-clock noise.

use crate::metrics::Registry;
use crate::span::Tracer;
use serde_json::{json, Map, Value};
use std::path::{Path, PathBuf};

/// Current manifest schema version. Version 2 added the optional
/// `serve` section (the serving loop's epoch records), the `p95`
/// histogram quantile, and the `swap_wall_ns` volatile key.
pub const SCHEMA_VERSION: u64 = 2;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The digest string stored in manifests: `fnv1a64:<16 hex digits>`.
pub fn digest_hex(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(bytes))
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable (manifests must never fail a run).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Builds one run manifest. Sections are filled by the harness and
/// written with [`write`](ManifestBuilder::write); see the module docs
/// for the schema.
#[derive(Debug)]
pub struct ManifestBuilder {
    map: Map,
}

impl ManifestBuilder {
    /// Starts a manifest for `tool` on `scenario`, stamping schema
    /// version, git revision, creation time, and host parallelism.
    pub fn new(tool: &str, scenario: &str) -> Self {
        let mut map = Map::new();
        map.insert("tool".into(), Value::from(tool));
        map.insert("schema_version".into(), Value::from(SCHEMA_VERSION));
        map.insert("scenario".into(), Value::from(scenario));
        map.insert("git".into(), Value::from(git_describe()));
        map.insert("created_unix_ms".into(), Value::from(unix_ms()));
        map.insert("config".into(), json!({}));
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        map.insert(
            "host".into(),
            json!({
                "parallelism": parallelism,
                "threads_env": crate::run_env().threads.map(|n| n.to_string()),
            }),
        );
        map.insert("total_wall_ns".into(), Value::from(0u64));
        map.insert("phase_coverage_pct".into(), Value::from(0.0f64));
        map.insert("phases".into(), Value::Array(Vec::new()));
        map.insert("metrics".into(), json!({}));
        map.insert("outputs".into(), json!({}));
        ManifestBuilder { map }
    }

    /// Sets the scenario configuration section.
    pub fn config(&mut self, config: Value) -> &mut Self {
        self.map.insert("config".into(), config);
        self
    }

    /// Fills the phase sections from a tracer's completed spans. `root`
    /// names the phase whose wall time is the run total (the binary's
    /// outermost span); coverage is that root's direct-children
    /// coverage. All recorded roots (e.g. worker-thread spans) are
    /// included in `phases`.
    pub fn phases(&mut self, tracer: &Tracer, root: &str) -> &mut Self {
        let tree = tracer.phase_tree();
        let (total_ns, coverage) = tree
            .iter()
            .find(|n| n.name == root)
            .map(|n| (n.stat.total_ns, n.coverage_pct()))
            .unwrap_or((0, 0.0));
        let phases: Vec<Value> = tree.iter().map(|n| n.to_json(total_ns.max(1))).collect();
        self.map
            .insert("total_wall_ns".into(), Value::from(total_ns));
        self.map.insert(
            "phase_coverage_pct".into(),
            Value::from((coverage * 100.0).round() / 100.0),
        );
        self.map.insert("phases".into(), Value::Array(phases));
        self
    }

    /// Fills the metrics section from a registry snapshot.
    pub fn metrics(&mut self, registry: &Registry) -> &mut Self {
        self.map
            .insert("metrics".into(), registry.snapshot().to_json());
        self
    }

    /// Records one output file's digest (see [`digest_hex`]).
    pub fn output(&mut self, name: &str, digest: String) -> &mut Self {
        let outputs = match self.map.get("outputs") {
            Some(Value::Object(m)) => {
                let mut m = m.clone();
                m.insert(name.into(), Value::from(digest));
                m
            }
            _ => {
                let mut m = Map::new();
                m.insert(name.into(), Value::from(digest));
                m
            }
        };
        self.map.insert("outputs".into(), Value::Object(outputs));
        self
    }

    /// Sets an arbitrary extra section (e.g. `lint`).
    pub fn section(&mut self, key: &str, value: Value) -> &mut Self {
        self.map.insert(key.into(), value);
        self
    }

    /// The manifest as a JSON value.
    pub fn build(&self) -> Value {
        Value::Object(self.map.clone())
    }

    /// Writes `<dir>/manifest.json` (creating `dir`), returning the
    /// path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        write_manifest(dir, &self.build())
    }
}

/// Writes a manifest value to `<dir>/manifest.json` (creating `dir`).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_manifest(dir: &Path, manifest: &Value) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("manifest.json");
    let mut text =
        serde_json::to_string_pretty(manifest).map_err(|e| std::io::Error::other(e.to_string()))?;
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Loads `<dir>/manifest.json` if present and parseable.
pub fn load_manifest(dir: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
    serde_json::from_str(&text).ok()
}

/// Merges `value` under `key` into `<dir>/manifest.json`, creating a
/// minimal manifest (tool = `tool`) when none exists. This is how
/// `layout_lint` folds its summary into a manifest `run_all` wrote
/// earlier — or stands one up when it runs alone.
///
/// # Errors
/// Propagates filesystem errors.
pub fn merge_section(
    dir: &Path,
    tool: &str,
    scenario: &str,
    key: &str,
    value: Value,
) -> std::io::Result<PathBuf> {
    let manifest = match load_manifest(dir) {
        Some(Value::Object(mut map)) => {
            map.insert(key.into(), value);
            Value::Object(map)
        }
        _ => {
            let mut b = ManifestBuilder::new(tool, scenario);
            b.section(key, value);
            b.build()
        }
    };
    write_manifest(dir, &manifest)
}

/// Checks that a manifest value has the documented schema: required
/// keys, right JSON types, phases shaped as `{name, wall_ns, pct,
/// count, children}` trees, and metrics split into
/// counters/gauges/histograms.
///
/// # Errors
/// Returns a human-readable description of the first violation.
pub fn validate_manifest(v: &Value) -> Result<(), String> {
    let obj = v.as_object().ok_or("manifest is not an object")?;
    for key in ["tool", "scenario", "git"] {
        if v.get(key).as_str().is_none() {
            return Err(format!("missing or non-string `{key}`"));
        }
    }
    if v.get("schema_version").as_u64() != Some(SCHEMA_VERSION) {
        return Err(format!("schema_version must be {SCHEMA_VERSION}"));
    }
    for key in ["created_unix_ms", "total_wall_ns"] {
        if v.get(key).as_u64().is_none() {
            return Err(format!("missing or non-integer `{key}`"));
        }
    }
    if v.get("phase_coverage_pct").as_f64().is_none() {
        return Err("missing or non-number `phase_coverage_pct`".into());
    }
    for key in ["config", "host", "outputs"] {
        if v.get(key).as_object().is_none() {
            return Err(format!("missing or non-object `{key}`"));
        }
    }
    let phases = v
        .get("phases")
        .as_array()
        .ok_or("missing or non-array `phases`")?;
    for p in phases {
        validate_phase(p)?;
    }
    let metrics = v
        .get("metrics")
        .as_object()
        .ok_or("missing or non-object `metrics`")?;
    for key in ["counters", "gauges", "histograms"] {
        if metrics.get(key).and_then(Value::as_object).is_none() {
            return Err(format!("metrics section missing object `{key}`"));
        }
    }
    for (name, digest) in v.get("outputs").as_object().expect("checked above").iter() {
        if digest.as_str().is_none() {
            return Err(format!("output `{name}` digest is not a string"));
        }
    }
    let _ = obj;
    Ok(())
}

fn validate_phase(p: &Value) -> Result<(), String> {
    if p.get("name").as_str().is_none() {
        return Err("phase node missing string `name`".into());
    }
    for key in ["wall_ns", "count"] {
        if p.get(key).as_u64().is_none() {
            return Err(format!("phase node missing integer `{key}`"));
        }
    }
    if p.get("pct").as_f64().is_none() {
        return Err("phase node missing number `pct`".into());
    }
    let children = p
        .get("children")
        .as_array()
        .ok_or("phase node missing array `children`")?;
    for c in children {
        validate_phase(c)?;
    }
    Ok(())
}

/// Keys whose values are wall-clock noise, environment-dependent, or
/// content hashes — masked by [`mask_volatile`] wherever they appear.
/// `swap_wall_ns` is the `serve` section's only wall-clock leaf, and
/// `wall_ms` the `tune` section's: every other serve/tune field (epoch
/// records, drift scores, search trajectories, miss counts, image
/// digests) is deterministic and stays pinned by goldens.
pub const VOLATILE_KEYS: [&str; 14] = [
    "git",
    "created_unix_ms",
    "wall_ns",
    "pct",
    "count",
    "total_wall_ns",
    "phase_coverage_pct",
    "parallelism",
    "threads_env",
    "sweep_threads",
    "sweep_engine",
    "vm_engine",
    "swap_wall_ns",
    "wall_ms",
];

/// Returns a copy of a manifest with volatile values masked: values of
/// [`VOLATILE_KEYS`] anywhere, every value inside `metrics` (metric
/// *names* stay), and every digest inside `outputs`. Masked numbers
/// become `0`, strings `"<masked>"`, and arrays `[]` (histogram bucket
/// lists vary in length with timing, so only their presence is pinned).
/// The result is deterministic across machines and runs, so golden
/// tests can pin it.
pub fn mask_volatile(v: &Value) -> Value {
    mask_walk(v, None, false)
}

fn mask_value(v: &Value) -> Value {
    match v {
        Value::Number(_) => Value::from(0u64),
        // Null masks like a string so optional fields (e.g. an unset
        // `threads_env`) compare equal whether or not the environment
        // supplied them.
        Value::String(_) | Value::Null => Value::from("<masked>"),
        Value::Bool(_) => v.clone(),
        _ => Value::Null,
    }
}

fn mask_walk(v: &Value, key: Option<&str>, mask_leaves: bool) -> Value {
    match v {
        Value::Object(map) => {
            let mut out = Map::new();
            for (k, val) in map.iter() {
                let enter_masked = mask_leaves || matches!(key, Some("metrics" | "outputs"));
                out.insert(k.clone(), mask_walk(val, Some(k), enter_masked));
            }
            Value::Object(out)
        }
        Value::Array(items) => {
            if mask_leaves || key.is_some_and(|k| VOLATILE_KEYS.contains(&k)) {
                Value::Array(Vec::new())
            } else {
                Value::Array(
                    items
                        .iter()
                        .map(|item| mask_walk(item, key, mask_leaves))
                        .collect(),
                )
            }
        }
        leaf => {
            let volatile = key.is_some_and(|k| VOLATILE_KEYS.contains(&k));
            if mask_leaves || volatile {
                mask_value(leaf)
            } else {
                leaf.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::Tracer;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = digest_hex(b"hello");
        assert_eq!(a, digest_hex(b"hello"));
        assert_ne!(a, digest_hex(b"hellp"));
        assert!(a.starts_with("fnv1a64:"));
        assert_eq!(a.len(), "fnv1a64:".len() + 16);
        // Known FNV-1a vector: empty string hashes to the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    fn sample_manifest() -> Value {
        let tracer = Tracer::new();
        {
            let _root = tracer.span("tool");
            tracer.span("phase_a").finish();
            tracer.span("phase_b").finish();
        }
        let registry = Registry::new();
        registry.add("link.fallthroughs", 7);
        registry.observe("sweep.wait_us", 12);
        registry.gauge_set("replay.rate", 2.5);
        let mut b = ManifestBuilder::new("tool", "quick");
        b.config(json!({"num_cpus": 4u64}));
        b.phases(&tracer, "tool");
        b.metrics(&registry);
        b.output("fig04.json", digest_hex(b"{}"));
        b.section("lint", json!({"deny": 0u64}));
        b.section(
            "serve",
            json!({
                "epoch_txns": 60u64,
                "swaps": 1u64,
                "swap_wall_ns": 123_456u64,
                "epochs": [json!({"epoch": 0u64, "drift_milli": 412u64})],
            }),
        );
        b.build()
    }

    #[test]
    fn built_manifest_validates() {
        let m = sample_manifest();
        validate_manifest(&m).unwrap();
        assert_eq!(m.get("tool").as_str(), Some("tool"));
        assert!(m.get("total_wall_ns").as_u64().unwrap() > 0);
        assert!(m.get("phase_coverage_pct").as_f64().unwrap() > 0.0);
    }

    #[test]
    fn validation_rejects_broken_manifests() {
        assert!(validate_manifest(&json!([])).is_err());
        assert!(validate_manifest(&json!({"tool": "x"})).is_err());
        let mut m = sample_manifest();
        if let Value::Object(map) = &mut m {
            map.insert("phases".into(), json!({"not": "an array"}));
        }
        assert!(validate_manifest(&m).is_err());
    }

    #[test]
    fn masking_is_deterministic_and_keeps_names() {
        let masked = mask_volatile(&sample_manifest());
        // Stable across two runs (different wall times, same mask).
        let again = mask_volatile(&sample_manifest());
        assert_eq!(masked, again);
        // Metric names survive, values are zeroed.
        let counters = masked.get("metrics").get("counters");
        assert_eq!(counters.get("link.fallthroughs").as_u64(), Some(0));
        // Git and times are masked, stable keys are not.
        assert_eq!(masked.get("git").as_str(), Some("<masked>"));
        assert_eq!(masked.get("scenario").as_str(), Some("quick"));
        assert_eq!(masked.get("config").get("num_cpus").as_u64(), Some(4));
        assert_eq!(masked.get("lint").get("deny").as_u64(), Some(0));
        // Output digests are masked but the file names stay.
        assert_eq!(
            masked.get("outputs").get("fig04.json").as_str(),
            Some("<masked>")
        );
        // The serve section: deterministic fields survive, the
        // wall-clock leaf is masked.
        let serve = masked.get("serve");
        assert_eq!(serve.get("epoch_txns").as_u64(), Some(60));
        assert_eq!(serve.get("swaps").as_u64(), Some(1));
        assert_eq!(serve.get("swap_wall_ns").as_u64(), Some(0));
        let epochs = serve.get("epochs").as_array().unwrap();
        assert_eq!(epochs[0].get("drift_milli").as_u64(), Some(412));
    }

    #[test]
    fn write_load_and_merge_round_trip() {
        let dir = std::env::temp_dir().join(format!("codelayout-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_manifest(&dir, &sample_manifest()).unwrap();
        assert!(path.ends_with("manifest.json"));
        let loaded = load_manifest(&dir).unwrap();
        validate_manifest(&loaded).unwrap();
        // Merge into the existing manifest: section added, rest kept.
        merge_section(&dir, "layout_lint", "quick", "lint", json!({"deny": 3u64})).unwrap();
        let merged = load_manifest(&dir).unwrap();
        assert_eq!(merged.get("lint").get("deny").as_u64(), Some(3));
        assert_eq!(merged.get("tool").as_str(), Some("tool"));
        // Merge with no manifest present: a minimal one is created.
        let _ = std::fs::remove_dir_all(&dir);
        merge_section(&dir, "layout_lint", "quick", "lint", json!({"deny": 1u64})).unwrap();
        let fresh = load_manifest(&dir).unwrap();
        assert_eq!(fresh.get("tool").as_str(), Some("layout_lint"));
        assert_eq!(fresh.get("lint").get("deny").as_u64(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
