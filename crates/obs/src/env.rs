//! `RunEnv`: every `CODELAYOUT_*` knob, parsed once.
//!
//! Before this module, environment handling was scattered: the sweep
//! engine read `CODELAYOUT_THREADS`, the tracer read
//! `CODELAYOUT_TRACE_OUT`, the bench harness matched on
//! `CODELAYOUT_SCENARIO`, and every golden test re-implemented the
//! `CODELAYOUT_UPDATE_GOLDEN` check. Each site parsed, defaulted and
//! documented the knob its own way. [`RunEnv`] is the single source of
//! truth: one struct, parsed once per process by [`run_env`], consumed
//! everywhere (and re-exported by `codelayout-memsim` /
//! `codelayout-bench` so downstream crates need no extra dependency).
//!
//! | Variable | Field | Meaning |
//! |---|---|---|
//! | `CODELAYOUT_SCENARIO` | [`RunEnv::scenario`] | workload scale: `quick` / `sim` / `hw` (default `sim`) |
//! | `CODELAYOUT_THREADS` | [`RunEnv::threads`] | sweep worker count (default: available parallelism) |
//! | `CODELAYOUT_SWEEP_ENGINE` | [`RunEnv::sweep_engine`] | `stack` (default) or `direct` grid-replay engine |
//! | `CODELAYOUT_VM_ENGINE` | [`RunEnv::vm_engine`] | `block` (default) or `interp` VM execution tier |
//! | `CODELAYOUT_LAYOUT_SERIES` | [`RunEnv::layout_series`] | comma-separated layout-series labels for the comparison table (default: the five-series comparison set) |
//! | `CODELAYOUT_PROFILE_SOURCE` | [`RunEnv::profile_source`] | `measured` (default) or `static` profile feeding the layout passes |
//! | `CODELAYOUT_TRACE_OUT` | [`RunEnv::trace_out`] | JSON-lines span event log file |
//! | `CODELAYOUT_UPDATE_GOLDEN` | [`RunEnv::update_golden`] | `1` = rewrite golden snapshots instead of asserting |
//! | `CODELAYOUT_SEED` | [`RunEnv::seed`] | scenario master-seed override (decimal or `0x` hex) |
//! | `CODELAYOUT_SERVE_EPOCH_TXNS` | [`RunEnv::serve_epoch_txns`] | serving-loop epoch length in transactions |
//! | `CODELAYOUT_SERVE_SAMPLE_PERIOD` | [`RunEnv::serve_sample_period`] | serving-loop control-transfer sampling period |
//! | `CODELAYOUT_SERVE_DRIFT_THRESHOLD` | [`RunEnv::serve_drift_threshold`] | re-layout drift threshold, milli-L1 units (0–2000) |
//! | `CODELAYOUT_SERVE_SAMPLE_DUTY` | [`RunEnv::serve_sample_duty`] | serving-loop temporal duty cycle (sampler attached 1-in-N chunks) |
//! | `CODELAYOUT_TUNE_BUDGET` | [`RunEnv::tune_budget_ms`] | autotuner wall-clock budget in ms (0 = unlimited; a triggered cut is non-deterministic) |
//! | `CODELAYOUT_TUNE_CANDIDATES` | [`RunEnv::tune_candidates`] | autotuner candidate-evaluation budget per series family |
//! | `CODELAYOUT_TUNE_WINDOW` | [`RunEnv::tune_window`] | autotuner trace-window length in fetch events |
//!
//! The README's "Environment knobs" table is generated from this list;
//! keep the two in sync.

use std::sync::OnceLock;

/// Environment variable selecting the workload scenario.
pub const SCENARIO_ENV: &str = "CODELAYOUT_SCENARIO";
/// Environment variable overriding the sweep worker-thread count.
pub const THREADS_ENV: &str = "CODELAYOUT_THREADS";
/// Environment variable selecting the grid-replay engine.
pub const SWEEP_ENGINE_ENV: &str = "CODELAYOUT_SWEEP_ENGINE";
/// Environment variable selecting the VM execution tier.
pub const VM_ENGINE_ENV: &str = "CODELAYOUT_VM_ENGINE";
/// Environment variable selecting the layout series for the comparison
/// table (comma-separated labels; this crate stores them as opaque
/// strings — `codelayout-core`'s `LayoutSeries::parse` interprets them).
pub const LAYOUT_SERIES_ENV: &str = "CODELAYOUT_LAYOUT_SERIES";
/// Environment variable selecting the profile source feeding the layout
/// passes: `measured` execution counts or the `static` Ball–Larus-style
/// estimate (`codelayout-analysis` owns the estimator).
pub const PROFILE_SOURCE_ENV: &str = "CODELAYOUT_PROFILE_SOURCE";
/// Environment variable naming the JSON-lines span event log file.
pub const TRACE_OUT_ENV: &str = "CODELAYOUT_TRACE_OUT";
/// Environment variable switching golden tests into rewrite mode.
pub const UPDATE_GOLDEN_ENV: &str = "CODELAYOUT_UPDATE_GOLDEN";
/// Environment variable overriding the scenario's master seed (decimal
/// or `0x`-prefixed hex). One seed determines workload generation, the
/// per-process RNG streams, and therefore every serving-loop epoch
/// record.
pub const SEED_ENV: &str = "CODELAYOUT_SEED";
/// Environment variable overriding the serving-loop epoch length
/// (transactions per epoch).
pub const SERVE_EPOCH_TXNS_ENV: &str = "CODELAYOUT_SERVE_EPOCH_TXNS";
/// Environment variable overriding the serving-loop sampling period
/// (one sample every N control transfers).
pub const SERVE_SAMPLE_PERIOD_ENV: &str = "CODELAYOUT_SERVE_SAMPLE_PERIOD";
/// Environment variable overriding the serving-loop re-layout drift
/// threshold, in milli-L1 units (0 = always re-layout, 2000 = never).
pub const SERVE_DRIFT_THRESHOLD_ENV: &str = "CODELAYOUT_SERVE_DRIFT_THRESHOLD";
/// Environment variable overriding the serving-loop temporal duty
/// cycle (the sampler is attached for one of every N scheduling
/// chunks).
pub const SERVE_SAMPLE_DUTY_ENV: &str = "CODELAYOUT_SERVE_SAMPLE_DUTY";
/// Environment variable overriding the layout autotuner's wall-clock
/// budget in milliseconds (0 = unlimited — the deterministic default;
/// a budget that actually fires truncates the search at a
/// wall-clock-dependent point, so the trajectory is no longer
/// reproducible).
pub const TUNE_BUDGET_ENV: &str = "CODELAYOUT_TUNE_BUDGET";
/// Environment variable overriding the layout autotuner's
/// candidate-evaluation budget per series family.
pub const TUNE_CANDIDATES_ENV: &str = "CODELAYOUT_TUNE_CANDIDATES";
/// Environment variable overriding the layout autotuner's trace-window
/// length (fetch events replayed per candidate).
pub const TUNE_WINDOW_ENV: &str = "CODELAYOUT_TUNE_WINDOW";

/// Workload scale selected by `CODELAYOUT_SCENARIO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioSel {
    /// Seconds-scale CI workload.
    Quick,
    /// The paper's 4-CPU simulated system (default).
    Sim,
    /// The paper's single-processor hardware runs.
    Hw,
}

impl ScenarioSel {
    /// The label used for `results/<label>/` manifest directories.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioSel::Quick => "quick",
            ScenarioSel::Sim => "sim",
            ScenarioSel::Hw => "hw",
        }
    }
}

/// Grid-replay engine selected by `CODELAYOUT_SWEEP_ENGINE`.
///
/// `Stack` is the single-pass Mattson stack-distance engine (one
/// profiler per line size yields every configuration's exact miss
/// counts); `Direct` instantiates one LRU simulator per configuration
/// and survives as the equivalence oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SweepEngine {
    /// One set-associative LRU simulator per (configuration, CPU).
    Direct,
    /// One stack-distance profiler per (line size, CPU) (default).
    #[default]
    Stack,
}

impl SweepEngine {
    /// Stable lowercase name (`"direct"` / `"stack"`), as accepted by
    /// `CODELAYOUT_SWEEP_ENGINE` and recorded in run manifests.
    pub fn label(self) -> &'static str {
        match self {
            SweepEngine::Direct => "direct",
            SweepEngine::Stack => "stack",
        }
    }
}

/// VM execution tier selected by `CODELAYOUT_VM_ENGINE`.
///
/// `Block` pre-compiles each basic block of a linked image into a flat
/// superinstruction form and executes whole blocks at a time; `Interp`
/// is the deliberately-plain one-instruction-at-a-time decoder that
/// survives as the equivalence oracle (the same discipline as
/// [`SweepEngine::Direct`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VmEngine {
    /// Decode-dispatch interpreter; the oracle.
    Interp,
    /// Block-compiled tier with a per-image code cache (default).
    #[default]
    Block,
}

impl VmEngine {
    /// Stable lowercase name (`"interp"` / `"block"`), as accepted by
    /// `CODELAYOUT_VM_ENGINE` and recorded in run manifests.
    pub fn label(self) -> &'static str {
        match self {
            VmEngine::Interp => "interp",
            VmEngine::Block => "block",
        }
    }
}

/// Profile source selected by `CODELAYOUT_PROFILE_SOURCE`.
///
/// `Measured` feeds the layout passes the execution profile collected by
/// the instrumented profiling run (the paper's Pixie/DCPI path);
/// `Static` feeds them the purely static Ball–Larus-style estimate, so
/// every layout series runs without any profiling run at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ProfileSource {
    /// Instrumented execution counts (default).
    #[default]
    Measured,
    /// Static branch-heuristic frequency estimates.
    Static,
}

impl ProfileSource {
    /// Stable lowercase name (`"measured"` / `"static"`), as accepted by
    /// `CODELAYOUT_PROFILE_SOURCE` and recorded in run manifests.
    pub fn label(self) -> &'static str {
        match self {
            ProfileSource::Measured => "measured",
            ProfileSource::Static => "static",
        }
    }
}

/// Every `CODELAYOUT_*` knob, parsed once per process.
#[derive(Debug, Clone)]
pub struct RunEnv {
    /// Workload scale (`CODELAYOUT_SCENARIO`), default [`ScenarioSel::Sim`].
    pub scenario: ScenarioSel,
    /// Sweep worker-thread override (`CODELAYOUT_THREADS`); `None`
    /// falls back to the host's available parallelism.
    pub threads: Option<usize>,
    /// Grid-replay engine (`CODELAYOUT_SWEEP_ENGINE`), default
    /// [`SweepEngine::Stack`].
    pub sweep_engine: SweepEngine,
    /// VM execution tier (`CODELAYOUT_VM_ENGINE`), default
    /// [`VmEngine::Block`].
    pub vm_engine: VmEngine,
    /// Layout-series labels for the comparison table
    /// (`CODELAYOUT_LAYOUT_SERIES`, comma-separated); `None` selects the
    /// default five-series comparison set. Labels are kept as strings
    /// here — `codelayout-core` owns their interpretation.
    pub layout_series: Option<Vec<String>>,
    /// Profile source feeding the layout passes
    /// (`CODELAYOUT_PROFILE_SOURCE`), default [`ProfileSource::Measured`].
    pub profile_source: ProfileSource,
    /// Span event-log file (`CODELAYOUT_TRACE_OUT`), if any.
    pub trace_out: Option<String>,
    /// True when golden tests should rewrite their snapshots
    /// (`CODELAYOUT_UPDATE_GOLDEN=1`).
    pub update_golden: bool,
    /// Scenario master-seed override (`CODELAYOUT_SEED`), if any.
    pub seed: Option<u64>,
    /// Serving-loop epoch length override in transactions
    /// (`CODELAYOUT_SERVE_EPOCH_TXNS`), if any.
    pub serve_epoch_txns: Option<u64>,
    /// Serving-loop sampling-period override
    /// (`CODELAYOUT_SERVE_SAMPLE_PERIOD`), if any.
    pub serve_sample_period: Option<u64>,
    /// Serving-loop drift-threshold override in milli-L1 units
    /// (`CODELAYOUT_SERVE_DRIFT_THRESHOLD`), if any.
    pub serve_drift_threshold: Option<u64>,
    /// Serving-loop temporal duty-cycle override
    /// (`CODELAYOUT_SERVE_SAMPLE_DUTY`), if any.
    pub serve_sample_duty: Option<u64>,
    /// Autotuner wall-clock budget override in milliseconds
    /// (`CODELAYOUT_TUNE_BUDGET`), if any. `Some(0)` means unlimited.
    pub tune_budget_ms: Option<u64>,
    /// Autotuner candidate-evaluation budget override
    /// (`CODELAYOUT_TUNE_CANDIDATES`), if any.
    pub tune_candidates: Option<u64>,
    /// Autotuner trace-window length override in fetch events
    /// (`CODELAYOUT_TUNE_WINDOW`), if any.
    pub tune_window: Option<u64>,
}

impl RunEnv {
    /// Parses the current process environment. Unknown values fall back
    /// to defaults with a warning on stderr (a misspelled knob should
    /// be visible, not silently ignored).
    pub fn from_process_env() -> Self {
        let scenario = match std::env::var(SCENARIO_ENV).as_deref() {
            Ok("quick") => ScenarioSel::Quick,
            Ok("hw") => ScenarioSel::Hw,
            Ok("sim") | Err(_) => ScenarioSel::Sim,
            Ok(other) => {
                eprintln!("warning: {SCENARIO_ENV}={other} is not quick/sim/hw; using sim");
                ScenarioSel::Sim
            }
        };
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let sweep_engine = match std::env::var(SWEEP_ENGINE_ENV).as_deref() {
            Ok("direct") => SweepEngine::Direct,
            Ok("stack") | Err(_) => SweepEngine::Stack,
            Ok(other) => {
                eprintln!("warning: {SWEEP_ENGINE_ENV}={other} is not direct/stack; using stack");
                SweepEngine::Stack
            }
        };
        let vm_engine = match std::env::var(VM_ENGINE_ENV).as_deref() {
            Ok("interp") => VmEngine::Interp,
            Ok("block") | Err(_) => VmEngine::Block,
            Ok(other) => {
                eprintln!("warning: {VM_ENGINE_ENV}={other} is not interp/block; using block");
                VmEngine::Block
            }
        };
        let layout_series = std::env::var(LAYOUT_SERIES_ENV)
            .ok()
            .and_then(|v| parse_series_list(&v));
        let profile_source = match std::env::var(PROFILE_SOURCE_ENV).as_deref() {
            Ok("static") => ProfileSource::Static,
            Ok("measured") | Err(_) => ProfileSource::Measured,
            Ok(other) => {
                eprintln!(
                    "warning: {PROFILE_SOURCE_ENV}={other} is not measured/static; using measured"
                );
                ProfileSource::Measured
            }
        };
        let trace_out = std::env::var(TRACE_OUT_ENV).ok().filter(|p| !p.is_empty());
        let update_golden = std::env::var(UPDATE_GOLDEN_ENV).as_deref() == Ok("1");
        let seed = parse_u64_knob(SEED_ENV);
        let serve_epoch_txns = parse_u64_knob(SERVE_EPOCH_TXNS_ENV).filter(|&n| n > 0);
        let serve_sample_period = parse_u64_knob(SERVE_SAMPLE_PERIOD_ENV).filter(|&n| n > 0);
        let serve_drift_threshold = parse_u64_knob(SERVE_DRIFT_THRESHOLD_ENV).map(|t| {
            if t > 2000 {
                eprintln!(
                    "warning: {SERVE_DRIFT_THRESHOLD_ENV}={t} exceeds the L1 range; clamping to 2000"
                );
            }
            t.min(2000)
        });
        let serve_sample_duty = parse_u64_knob(SERVE_SAMPLE_DUTY_ENV).filter(|&n| n > 0);
        let tune_budget_ms = parse_u64_knob(TUNE_BUDGET_ENV);
        let tune_candidates = parse_u64_knob(TUNE_CANDIDATES_ENV).filter(|&n| n > 0);
        let tune_window = parse_u64_knob(TUNE_WINDOW_ENV).filter(|&n| n > 0);
        RunEnv {
            scenario,
            threads,
            sweep_engine,
            vm_engine,
            layout_series,
            profile_source,
            trace_out,
            update_golden,
            seed,
            serve_epoch_txns,
            serve_sample_period,
            serve_drift_threshold,
            serve_sample_duty,
            tune_budget_ms,
            tune_candidates,
            tune_window,
        }
    }

    /// The sweep worker count: the `CODELAYOUT_THREADS` override, or
    /// the host's available parallelism.
    pub fn sweep_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

/// Parses a `u64` knob, accepting decimal or `0x`-prefixed hex; a
/// malformed value warns on stderr and falls back to unset.
fn parse_u64_knob(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse::<u64>(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: {var}={raw} is not an unsigned integer; ignoring");
            None
        }
    }
}

/// Splits a comma-separated label list, trimming whitespace and dropping
/// empty items; an all-empty value means "use the default set".
fn parse_series_list(v: &str) -> Option<Vec<String>> {
    let labels: Vec<String> = v
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if labels.is_empty() {
        None
    } else {
        Some(labels)
    }
}

static RUN_ENV: OnceLock<RunEnv> = OnceLock::new();

/// The process-global [`RunEnv`], parsed from the environment on first
/// access and cached for the life of the process.
pub fn run_env() -> &'static RunEnv {
    RUN_ENV.get_or_init(RunEnv::from_process_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // The test process may carry CODELAYOUT_* from the caller; only
        // assert the invariants that hold regardless.
        let env = RunEnv::from_process_env();
        assert!(env.sweep_threads() >= 1);
        if env.threads.is_none() {
            assert_eq!(
                env.sweep_threads(),
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ScenarioSel::Quick.label(), "quick");
        assert_eq!(ScenarioSel::Sim.label(), "sim");
        assert_eq!(ScenarioSel::Hw.label(), "hw");
        assert_eq!(SweepEngine::Stack.label(), "stack");
        assert_eq!(SweepEngine::Direct.label(), "direct");
        assert_eq!(SweepEngine::default(), SweepEngine::Stack);
        assert_eq!(VmEngine::Interp.label(), "interp");
        assert_eq!(VmEngine::Block.label(), "block");
        assert_eq!(VmEngine::default(), VmEngine::Block);
        assert_eq!(ProfileSource::Measured.label(), "measured");
        assert_eq!(ProfileSource::Static.label(), "static");
        assert_eq!(ProfileSource::default(), ProfileSource::Measured);
    }

    #[test]
    fn series_list_parsing() {
        assert_eq!(
            parse_series_list("base, exttsp,stitcher"),
            Some(vec![
                "base".to_string(),
                "exttsp".to_string(),
                "stitcher".to_string()
            ])
        );
        assert_eq!(parse_series_list(""), None);
        assert_eq!(parse_series_list(" , ,"), None);
    }

    #[test]
    fn u64_knob_parsing() {
        // A var name no other test (or caller) uses, so parallel tests
        // cannot race on it.
        let var = "CODELAYOUT_TEST_U64_KNOB_PARSING";
        assert_eq!(parse_u64_knob(var), None);
        std::env::set_var(var, "1234");
        assert_eq!(parse_u64_knob(var), Some(1234));
        std::env::set_var(var, "0xC0DE");
        assert_eq!(parse_u64_knob(var), Some(0xC0DE));
        std::env::set_var(var, "not-a-number");
        assert_eq!(parse_u64_knob(var), None);
        std::env::remove_var(var);
    }

    #[test]
    fn global_handle_is_stable() {
        let a = run_env() as *const RunEnv;
        let b = run_env() as *const RunEnv;
        assert_eq!(a, b);
    }
}
