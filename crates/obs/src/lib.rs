//! Observability layer for the codelayout pipeline: phase tracing,
//! sharded metrics, and machine-readable run manifests.
//!
//! The experiment harness chains six phases — chain → split → order →
//! link → trace → sweep — and every performance question about the
//! pipeline ("where did the wall time go?", "how many branches were
//! inverted?", "what replay throughput did the sweep sustain?") needs
//! telemetry from inside those phases. This crate provides the three
//! cooperating pieces the rest of the workspace instruments itself
//! with:
//!
//! * **Span tracing** ([`span`], [`Tracer`], [`Span`]). RAII phase
//!   timers with nested paths (a span opened while another is live on
//!   the same thread becomes its child, `run_all/fig04/measure/replay`),
//!   monotonic timing from one process-wide epoch, and thread-tagged
//!   begin/end events. When `CODELAYOUT_TRACE_OUT` names a file, every
//!   span boundary is appended to it as a JSON-lines event log.
//!   Aggregated phase totals are queried as a tree
//!   ([`Tracer::phase_tree`]) and rendered as a human `--report`
//!   breakdown with percentages ([`Tracer::render_report`]).
//! * **Metrics** ([`metrics`], [`Registry`], [`MetricsShard`],
//!   [`Histogram`]). Named counters, gauges, and power-of-two-bucket
//!   histograms. The global registry takes a lock per update, which is
//!   fine for coarse events (images linked, layouts built) but not for
//!   replay workers; those own a lock-free [`MetricsShard`] and merge
//!   it into the registry once, at join time, so the replay hot loop
//!   carries **zero** instrumentation cost per event. Snapshots render
//!   to JSON and to Prometheus text exposition.
//! * **Run manifests** ([`manifest::ManifestBuilder`]). `run_all` and
//!   the figure binaries write `results/<scenario>/manifest.json`:
//!   config, `git describe`, per-phase wall times with coverage,
//!   a metrics snapshot, and FNV-1a digests of every figure output.
//!   Volatile fields can be masked ([`manifest::mask_volatile`]) so
//!   golden tests can pin the schema without pinning wall-clock noise.
//!
//! Tracing and metrics are globally enabled by default and can be
//! switched off with [`set_enabled`]; the overhead-guard test proves
//! that replay results are bit-identical either way and that the
//! instrumented replay loses less than 5% throughput.
//!
//! This crate also hosts [`RunEnv`] ([`run_env`]), the single parse of
//! every `CODELAYOUT_*` environment knob. It lives here (rather than in
//! `memsim` or `bench`) because `codelayout-obs` is the one crate every
//! instrumented layer already depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod manifest;
pub mod metrics;
pub mod span;

pub use env::{run_env, ProfileSource, RunEnv, ScenarioSel, SweepEngine, VmEngine};
pub use metrics::{Histogram, HistogramSnapshot, MetricsShard, MetricsSnapshot, Registry};
pub use span::{PhaseNode, PhaseStat, Span, Tracer};

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (the first call
/// into this crate). All span timestamps share this epoch, so event
/// logs from different threads are directly comparable.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

static TRACER: OnceLock<Tracer> = OnceLock::new();
static METRICS: OnceLock<Registry> = OnceLock::new();

/// The process-global tracer. On first access the JSON-lines exporter
/// is initialized from `CODELAYOUT_TRACE_OUT` (if set).
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| {
        let t = Tracer::new();
        t.init_export_from_env();
        t
    })
}

/// The process-global metrics registry.
pub fn metrics() -> &'static Registry {
    METRICS.get_or_init(Registry::new)
}

/// Opens a span on the global tracer; equivalent to
/// `tracer().span(name)`.
pub fn span(name: &str) -> Span<'static> {
    tracer().span(name)
}

/// Enables or disables both global tracing and global metrics. Disabled
/// observability records nothing: spans become inert and metric updates
/// are dropped at the enabled-flag check.
pub fn set_enabled(on: bool) {
    tracer().set_enabled(on);
    metrics().set_enabled(on);
}

/// True when the global observability layer is recording.
pub fn enabled() -> bool {
    tracer().is_enabled()
}

/// Clears all recorded phases and metrics (the enabled flag and the
/// event-log exporter are kept). Intended for tests that snapshot
/// global state.
pub fn reset() {
    tracer().reset();
    metrics().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn global_handles_are_stable() {
        let t1 = tracer() as *const Tracer;
        let t2 = tracer() as *const Tracer;
        assert_eq!(t1, t2);
        let m1 = metrics() as *const Registry;
        let m2 = metrics() as *const Registry;
        assert_eq!(m1, m2);
    }
}
