//! Near-zero-overhead metrics: counters, gauges, and power-of-two
//! histograms, with per-worker shards merged at report time.
//!
//! Two write paths, by cost:
//!
//! * **Registry updates** ([`Registry::add`], [`Registry::observe`],
//!   [`Registry::gauge_set`]) take one mutex per call. Used for coarse
//!   events — an image linked, a layout built, a sweep finished.
//! * **Shard updates** ([`MetricsShard`]). A worker thread owns a plain
//!   unsynchronized shard, updates it with ordinary integer arithmetic,
//!   and merges it into the registry **once**, at join time
//!   ([`Registry::merge_shard`]). The replay hot loop therefore runs
//!   with no locks, no atomics, and no per-event instrumentation at
//!   all — the overhead-guard test holds instrumented replay to within
//!   5% of uninstrumented throughput (and bit-identical results).
//!
//! Snapshots ([`Registry::snapshot`]) are immutable maps rendered to
//! JSON ([`MetricsSnapshot::to_json`]) for the run manifest and to
//! Prometheus text exposition ([`MetricsSnapshot::to_prometheus`]) for
//! scraping.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds zeros; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`. 65 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-footprint histogram over `u64` samples with power-of-two
/// buckets. Merging is element-wise addition, so shard-merged totals
/// are independent of how samples were distributed over shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`0.0 ..= 1.0`): the inclusive upper edge of
    /// the bucket containing the q-th sample, clamped to the observed
    /// max. Exact for the bucket boundaries, never off by more than one
    /// power of two inside a bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`. Element-wise and
    /// commutative: merging shards in any order yields the same totals.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)` pairs, in
    /// ascending edge order (for Prometheus cumulative rendering).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                (upper, c)
            })
            .collect()
    }

    /// The fixed summary rendered into snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Immutable summary of a [`Histogram`] at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty `(upper_edge, count)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// JSON rendering used inside the run manifest.
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
        })
    }
}

/// A thread-local, lock-free batch of metric updates. Workers fill one
/// of these with plain integer arithmetic and merge it into the
/// [`Registry`] exactly once, at join time.
#[derive(Debug, Clone, Default)]
pub struct MetricsShard {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsShard {
    /// An empty shard.
    pub fn new() -> Self {
        MetricsShard::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge (last write wins at merge time).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another shard into this one (counters add, histograms
    /// merge, gauges take `other`'s value).
    pub fn merge(&mut self, other: &MetricsShard) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry: a named set of counters, gauges, and
/// histograms behind one mutex, with an enabled flag checked before the
/// lock so disabled metrics cost one relaxed atomic load.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A new, enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether updates are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges a worker's shard under one lock acquisition.
    pub fn merge_shard(&self, shard: &MetricsShard) {
        if !self.is_enabled() || shard.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (k, v) in &shard.counters {
            *inner.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &shard.gauges {
            inner.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &shard.histograms {
            inner.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Clears every metric (the enabled flag is kept).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner = Inner::default();
    }

    /// An immutable copy of every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Reads one counter (0 when absent). Mostly for tests and report
    /// printing.
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads one gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.get(name).copied()
    }
}

/// Immutable view of a [`Registry`] at one instant: name-sorted maps of
/// counters, gauges, and histogram summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// JSON rendering: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with names in sorted order.
    pub fn to_json(&self) -> Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::from(*v));
        }
        let mut gauges = serde_json::Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), Value::from(*v));
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.clone(), h.to_json());
        }
        json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    }

    /// Prometheus text exposition (one `# TYPE` line per metric, names
    /// sanitized to `[a-z0-9_]` and prefixed `codelayout_`). Histograms
    /// render cumulative `_bucket{le="..."}` series plus `_sum` and
    /// `_count`, followed by estimated `_p50` / `_p95` / `_p99` gauges
    /// (bucket-upper-edge quantiles, clamped to the observed max) so
    /// latency histograms are readable straight off the scrape output.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (upper, c) in &h.buckets {
                cum += c;
                let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            for (suffix, q) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                let _ = writeln!(out, "# TYPE {n}_{suffix} gauge");
                let _ = writeln!(out, "{n}_{suffix} {q}");
            }
        }
        out
    }
}

/// Sanitizes a dotted metric name into a Prometheus series name.
fn prom_name(name: &str) -> String {
    let mut n = String::with_capacity(name.len() + 11);
    n.push_str("codelayout_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            n.push(c.to_ascii_lowercase());
        } else {
            n.push('_');
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 8, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1119);
        // Median of 9 samples is the 5th (value 3): bucket [2,4) upper
        // edge is 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 clamps to the observed max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        // Zeros live in bucket 0.
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_merge_is_order_independent_and_matches_direct() {
        let samples: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(2654435761) >> 20)
            .collect();
        let mut direct = Histogram::new();
        for &s in &samples {
            direct.record(s);
        }
        // Split over 7 shards round-robin, merge in two different orders.
        let mut shards = vec![Histogram::new(); 7];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 7].record(s);
        }
        let mut fwd = Histogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Histogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, direct);
        assert_eq!(rev, direct);
        assert_eq!(fwd.snapshot(), direct.snapshot());
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn shard_merge_equals_direct_registry_updates() {
        let direct = Registry::new();
        let sharded = Registry::new();
        let mut shards = vec![MetricsShard::new(); 3];
        for i in 0..300u64 {
            direct.add("c.events", i);
            direct.observe("h.lat", i * 3);
            shards[(i % 3) as usize].add("c.events", i);
            shards[(i % 3) as usize].observe("h.lat", i * 3);
        }
        direct.gauge_set("g.rate", 42.5);
        shards[2].gauge_set("g.rate", 42.5);
        for s in &shards {
            sharded.merge_shard(s);
        }
        assert_eq!(direct.snapshot(), sharded.snapshot());
        assert_eq!(sharded.counter("c.events"), (0..300u64).sum());
        assert_eq!(sharded.gauge("g.rate"), Some(42.5));
    }

    #[test]
    fn shards_merge_into_each_other() {
        let mut a = MetricsShard::new();
        let mut b = MetricsShard::new();
        a.add("x", 1);
        b.add("x", 2);
        b.observe("h", 7);
        a.merge(&b);
        let r = Registry::new();
        r.merge_shard(&a);
        assert_eq!(r.counter("x"), 3);
        assert_eq!(r.snapshot().histograms["h"].count, 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.set_enabled(false);
        r.add("c", 5);
        r.observe("h", 5);
        r.gauge_set("g", 5.0);
        let mut shard = MetricsShard::new();
        shard.add("c", 9);
        r.merge_shard(&shard);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.add("link.fallthroughs", 12);
        r.gauge_set("replay.rate", 1.5);
        r.observe("sweep.wait_us", 3);
        r.observe("sweep.wait_us", 900);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE codelayout_link_fallthroughs counter"));
        assert!(text.contains("codelayout_link_fallthroughs 12"));
        assert!(text.contains("# TYPE codelayout_replay_rate gauge"));
        assert!(text.contains("# TYPE codelayout_sweep_wait_us histogram"));
        assert!(text.contains("codelayout_sweep_wait_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("codelayout_sweep_wait_us_count 2"));
        assert!(text.contains("codelayout_sweep_wait_us_sum 903"));
        // Cumulative buckets are nondecreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn quantile_estimates_on_known_distributions() {
        // Uniform 0..1024: p50 lands exactly on the [256,512) bucket
        // boundary, p95/p99 in [512,1024) — the estimator returns the
        // inclusive upper edge of the covering bucket.
        let mut uniform = Histogram::new();
        for v in 0..1024u64 {
            uniform.record(v);
        }
        assert_eq!(uniform.quantile(0.50), 511);
        assert_eq!(uniform.quantile(0.95), 1023);
        assert_eq!(uniform.quantile(0.99), 1023);

        // Heavily skewed: 99 fast samples of 1, one slow sample of
        // 1_000_000. p50/p95 sit in the fast bucket; p99 does too (rank
        // 99 of 100), while p100 reaches the outlier.
        let mut skewed = Histogram::new();
        for _ in 0..99 {
            skewed.record(1);
        }
        skewed.record(1_000_000);
        assert_eq!(skewed.quantile(0.50), 1);
        assert_eq!(skewed.quantile(0.95), 1);
        assert_eq!(skewed.quantile(0.99), 1);
        assert_eq!(skewed.quantile(1.0), 1_000_000);

        // A point mass never overshoots: estimates clamp to the max.
        let mut point = Histogram::new();
        for _ in 0..10 {
            point.record(700);
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(point.quantile(q), 700);
        }
        let snap = point.snapshot();
        assert_eq!((snap.p50, snap.p95, snap.p99), (700, 700, 700));
    }

    #[test]
    fn prometheus_exposition_renders_quantile_gauges() {
        let r = Registry::new();
        for _ in 0..99 {
            r.observe("serve.swap_ns", 1);
        }
        r.observe("serve.swap_ns", 1_000_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE codelayout_serve_swap_ns_p50 gauge"));
        assert!(text.contains("codelayout_serve_swap_ns_p50 1\n"));
        assert!(text.contains("codelayout_serve_swap_ns_p95 1\n"));
        assert!(text.contains("codelayout_serve_swap_ns_p99 1\n"));
        // The quantile gauges come after the histogram series proper.
        assert!(
            text.find("codelayout_serve_swap_ns_count").unwrap()
                < text.find("codelayout_serve_swap_ns_p50").unwrap()
        );
    }

    #[test]
    fn snapshot_json_is_name_sorted() {
        let r = Registry::new();
        r.add("z.last", 1);
        r.add("a.first", 2);
        let s = serde_json::to_string(&r.snapshot().to_json()).unwrap();
        assert!(s.find("a.first").unwrap() < s.find("z.last").unwrap());
    }
}
